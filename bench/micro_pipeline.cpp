// Micro-benchmarks of the data pipeline substrates: log synthesis
// throughput, feature extraction, deviation computation, compound
// matrix assembly, the critic, and the parallel ensemble runtime
// (serial-vs-parallel train+score speedup).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "behavior/compound_matrix.h"
#include "behavior/normalized_day.h"
#include "common/health.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/attribution.h"
#include "core/critic.h"
#include "core/ensemble.h"
#include "features/cert_features.h"
#include "simdata/cert_simulator.h"

using namespace acobe;

namespace {

sim::CertSimConfig SmallSim(int users_per_department) {
  sim::CertSimConfig cfg;
  cfg.org.departments = 2;
  cfg.org.users_per_department = users_per_department;
  cfg.org.extra_users = 0;
  cfg.start = Date(2010, 1, 2);
  cfg.end = Date(2010, 3, 31);
  cfg.profiles.rate_scale = 0.5;
  cfg.seed = 11;
  return cfg;
}

void BM_SimulateLogs(benchmark::State& state) {
  const int users = state.range(0);
  std::size_t events = 0;
  for (auto _ : state) {
    LogStore store;
    sim::CertSimulator simulator(SmallSim(users), store);
    LogStore sink;
    simulator.Run(sink);
    events = sink.TotalEvents();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * events);
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateLogs)->Arg(10)->Arg(40);

void BM_ExtractFeatures(benchmark::State& state) {
  LogStore store;
  sim::CertSimulator simulator(SmallSim(20), store);
  LogStore sink;
  simulator.Run(sink);
  sink.SortChronologically();
  const int days =
      static_cast<int>(DaysBetween(Date(2010, 1, 2), Date(2010, 3, 31))) + 1;
  for (auto _ : state) {
    CertAcobeExtractor extractor(Date(2010, 1, 2), days);
    ReplayStore(sink, extractor);
    benchmark::DoNotOptimize(extractor.cube().users());
  }
  state.SetItemsProcessed(state.iterations() * sink.TotalEvents());
}
BENCHMARK(BM_ExtractFeatures);

MeasurementCube MakeCube(int users, int days) {
  MeasurementCube cube(Date(2010, 1, 2), days, 16, 2);
  Rng rng(3);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(u);
    for (int f = 0; f < 16; ++f) {
      for (int d = 0; d < days; ++d) {
        for (int t = 0; t < 2; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(4.0));
        }
      }
    }
  }
  return cube;
}

void BM_DeviationCompute(benchmark::State& state) {
  const int users = state.range(0);
  const MeasurementCube cube = MakeCube(users, 365);
  DeviationConfig cfg;
  cfg.omega = 30;
  for (auto _ : state) {
    auto dev = DeviationSeries::Compute(cube, cfg);
    benchmark::DoNotOptimize(dev.entities());
  }
  state.SetItemsProcessed(state.iterations() * users * 16 * 365 * 2);
}
BENCHMARK(BM_DeviationCompute)->Arg(25)->Arg(100);

void BM_CompoundMatrixBuild(benchmark::State& state) {
  const MeasurementCube cube = MakeCube(25, 365);
  DeviationConfig cfg;
  cfg.omega = 30;
  cfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  CompoundMatrixBuilder builder(&dev, {}, {});
  std::vector<int> features;
  for (int f = 0; f < 16; ++f) features.push_back(f);
  for (auto _ : state) {
    auto m = builder.Build(0, features, 100);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompoundMatrixBuild);

std::vector<AspectGroup> MakeAspects(int n_aspects, int features_per_aspect) {
  std::vector<AspectGroup> aspects;
  for (int a = 0; a < n_aspects; ++a) {
    AspectGroup g;
    g.name = "aspect" + std::to_string(a);
    for (int f = 0; f < features_per_aspect; ++f) {
      g.feature_indices.push_back(a * features_per_aspect + f);
    }
    aspects.push_back(std::move(g));
  }
  return aspects;
}

EnsembleConfig SmallEnsembleConfig(int threads) {
  EnsembleConfig cfg;
  cfg.encoder_dims = {32, 16};
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 1e-3f;
  cfg.train.epochs = 4;
  cfg.train.batch_size = 32;
  cfg.threads = threads;
  return cfg;
}

double TrainScoreSeconds(const MeasurementCube& cube, int users,
                         int threads) {
  NormalizedDayBuilder builder(&cube, 0, 60);
  const auto start = std::chrono::steady_clock::now();
  AspectEnsemble ensemble(MakeAspects(4, 4), SmallEnsembleConfig(threads));
  ensemble.Train(builder, users, 0, 60);
  const ScoreGrid grid = ensemble.Score(builder, users, 60, 90);
  benchmark::DoNotOptimize(grid.users());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Multi-aspect train+score at a fixed thread count (real time, since
/// the work happens on pool workers).
void BM_EnsembleTrainScore(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int users = 24;
  const MeasurementCube cube = MakeCube(users, 90);
  for (auto _ : state) {
    TrainScoreSeconds(cube, users, threads);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_EnsembleTrainScore)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// End-to-end serial-vs-parallel comparison in one benchmark so the
/// speedup lands directly in BENCH output. Parallel uses the resolved
/// default (ACOBE_THREADS env or hardware concurrency).
void BM_EnsembleParallelSpeedup(benchmark::State& state) {
  const int users = 24;
  const MeasurementCube cube = MakeCube(users, 90);
  const int parallel_threads = DefaultThreadCount();
  double serial_s = 0.0, parallel_s = 0.0;
  for (auto _ : state) {
    serial_s += TrainScoreSeconds(cube, users, /*threads=*/1);
    parallel_s += TrainScoreSeconds(cube, users, parallel_threads);
  }
  state.counters["serial_ms"] = 1e3 * serial_s / state.iterations();
  state.counters["parallel_ms"] = 1e3 * parallel_s / state.iterations();
  state.counters["threads"] = parallel_threads;
  state.counters["speedup"] = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
}
BENCHMARK(BM_EnsembleParallelSpeedup)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The <2% overhead contract: the same train+score pipeline with the
/// metrics registry off vs on (spans, counters, histograms all active).
/// Reported as overhead_pct; trace buffering is measured separately by
/// the tracing_pct counter since it additionally records events.
void BM_TelemetryOverhead(benchmark::State& state) {
  const int users = 24;
  const MeasurementCube cube = MakeCube(users, 90);
  const bool metrics_was = telemetry::MetricsEnabled();
  const bool tracing_was = telemetry::TracingEnabled();
  double off_s = 0.0, on_s = 0.0, trace_s = 0.0;
  for (auto _ : state) {
    telemetry::EnableMetrics(false);
    telemetry::EnableTracing(false);
    off_s += TrainScoreSeconds(cube, users, /*threads=*/2);
    telemetry::EnableMetrics(true);
    on_s += TrainScoreSeconds(cube, users, /*threads=*/2);
    telemetry::EnableTracing(true);
    trace_s += TrainScoreSeconds(cube, users, /*threads=*/2);
  }
  telemetry::EnableMetrics(metrics_was);
  telemetry::EnableTracing(tracing_was);
  state.counters["off_ms"] = 1e3 * off_s / state.iterations();
  state.counters["on_ms"] = 1e3 * on_s / state.iterations();
  state.counters["overhead_pct"] =
      off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
  state.counters["tracing_pct"] =
      off_s > 0.0 ? 100.0 * (trace_s - off_s) / off_s : 0.0;
}
BENCHMARK(BM_TelemetryOverhead)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The health plane's own <2% contract: the same metrics-on train+score
/// pipeline with and without the background heartbeat sampler running
/// (stage tracking, span-stack bookkeeping and the crash snapshot
/// double-buffer are always on; the sampler at a 50ms interval is the
/// only part this toggles). Reported as health_pct.
void BM_HealthOverhead(benchmark::State& state) {
  const int users = 24;
  const MeasurementCube cube = MakeCube(users, 90);
  const bool metrics_was = telemetry::MetricsEnabled();
  telemetry::EnableMetrics(true);
  const std::string heartbeat_path =
      std::filesystem::temp_directory_path() /
      ("acobe-bench-health-" + std::to_string(::getpid()) + ".jsonl");
  double off_s = 0.0, on_s = 0.0;
  for (auto _ : state) {
    off_s += TrainScoreSeconds(cube, users, /*threads=*/2);
    health::HealthOptions opts;
    opts.path = heartbeat_path;
    opts.interval_ms = 50;
    opts.tool = "micro-pipeline";
    opts.crash_recorder = false;  // don't hook the bench's signals
    if (!health::StartHealth(opts)) {
      state.SkipWithError("StartHealth failed");
      break;
    }
    health::SetStage("bench", 1);
    on_s += TrainScoreSeconds(cube, users, /*threads=*/2);
    health::StageAdvance();
    health::StopHealth();
  }
  telemetry::EnableMetrics(metrics_was);
  std::error_code ec;
  std::filesystem::remove(heartbeat_path, ec);
  state.counters["off_ms"] = 1e3 * off_s / state.iterations();
  state.counters["on_ms"] = 1e3 * on_s / state.iterations();
  state.counters["health_pct"] =
      off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
}
BENCHMARK(BM_HealthOverhead)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// One detection pass (train + score + rank), optionally followed by
/// the per-detection attribution pass (core/attribution.h).
double DetectSeconds(const MeasurementCube& cube, int users, bool attribute) {
  NormalizedDayBuilder builder(&cube, 0, 60);
  const auto start = std::chrono::steady_clock::now();
  AspectEnsemble ensemble(MakeAspects(4, 4), SmallEnsembleConfig(2));
  ensemble.Train(builder, users, 0, 60);
  const ScoreGrid grid = ensemble.Score(builder, users, 60, 90);
  const auto list = RankUsers(grid, 3);
  benchmark::DoNotOptimize(list.size());
  if (attribute) {
    AttributionConfig cfg;
    cfg.enabled = true;
    cfg.top_users = 10;
    cfg.top_cells = 5;
    const auto attributions =
        AttributeDetections(ensemble, builder, grid, list, cfg);
    benchmark::DoNotOptimize(attributions.size());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The <5% attribution-overhead contract: detection with attribution
/// off is the unchanged pipeline (attribution never touches the
/// scoring path); with it on, the added cost is one inference batch
/// per attributed (user, aspect). Reported as attribution_pct.
void BM_AttributionOverhead(benchmark::State& state) {
  const int users = 24;
  const MeasurementCube cube = MakeCube(users, 90);
  double off_s = 0.0, on_s = 0.0;
  for (auto _ : state) {
    off_s += DetectSeconds(cube, users, /*attribute=*/false);
    on_s += DetectSeconds(cube, users, /*attribute=*/true);
  }
  state.counters["off_ms"] = 1e3 * off_s / state.iterations();
  state.counters["on_ms"] = 1e3 * on_s / state.iterations();
  state.counters["attribution_pct"] =
      off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
}
BENCHMARK(BM_AttributionOverhead)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Critic(benchmark::State& state) {
  const int users = state.range(0);
  ScoreGrid grid({"a", "b", "c"}, users, 0, 30);
  Rng rng(9);
  for (int a = 0; a < 3; ++a) {
    for (int u = 0; u < users; ++u) {
      for (int d = 0; d < 30; ++d) {
        grid.At(a, u, d) = static_cast<float>(rng.NextDouble());
      }
    }
  }
  for (auto _ : state) {
    auto list = RankUsers(grid, 3);
    benchmark::DoNotOptimize(list.data());
  }
  state.SetItemsProcessed(state.iterations() * users);
}
BENCHMARK(BM_Critic)->Arg(100)->Arg(1000);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off --metrics-out/
// --trace-out (google-benchmark rejects flags it does not know) and
// flush the telemetry registry after the run so micro benches emit the
// same JSON artifacts as the tools.
int main(int argc, char** argv) {
  std::string metrics_out, trace_out;
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!telemetry::FlushTelemetry("micro_pipeline", metrics_out, trace_out,
                                 std::cerr)) {
    return 1;
  }
  return 0;
}
