// Micro-benchmarks of the data pipeline substrates: log synthesis
// throughput, feature extraction, deviation computation, compound
// matrix assembly and the critic.

#include <benchmark/benchmark.h>

#include "behavior/compound_matrix.h"
#include "core/critic.h"
#include "features/cert_features.h"
#include "simdata/cert_simulator.h"

using namespace acobe;

namespace {

sim::CertSimConfig SmallSim(int users_per_department) {
  sim::CertSimConfig cfg;
  cfg.org.departments = 2;
  cfg.org.users_per_department = users_per_department;
  cfg.org.extra_users = 0;
  cfg.start = Date(2010, 1, 2);
  cfg.end = Date(2010, 3, 31);
  cfg.profiles.rate_scale = 0.5;
  cfg.seed = 11;
  return cfg;
}

void BM_SimulateLogs(benchmark::State& state) {
  const int users = state.range(0);
  std::size_t events = 0;
  for (auto _ : state) {
    LogStore store;
    sim::CertSimulator simulator(SmallSim(users), store);
    LogStore sink;
    simulator.Run(sink);
    events = sink.TotalEvents();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * events);
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateLogs)->Arg(10)->Arg(40);

void BM_ExtractFeatures(benchmark::State& state) {
  LogStore store;
  sim::CertSimulator simulator(SmallSim(20), store);
  LogStore sink;
  simulator.Run(sink);
  sink.SortChronologically();
  const int days =
      static_cast<int>(DaysBetween(Date(2010, 1, 2), Date(2010, 3, 31))) + 1;
  for (auto _ : state) {
    CertAcobeExtractor extractor(Date(2010, 1, 2), days);
    ReplayStore(sink, extractor);
    benchmark::DoNotOptimize(extractor.cube().users());
  }
  state.SetItemsProcessed(state.iterations() * sink.TotalEvents());
}
BENCHMARK(BM_ExtractFeatures);

MeasurementCube MakeCube(int users, int days) {
  MeasurementCube cube(Date(2010, 1, 2), days, 16, 2);
  Rng rng(3);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(u);
    for (int f = 0; f < 16; ++f) {
      for (int d = 0; d < days; ++d) {
        for (int t = 0; t < 2; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(4.0));
        }
      }
    }
  }
  return cube;
}

void BM_DeviationCompute(benchmark::State& state) {
  const int users = state.range(0);
  const MeasurementCube cube = MakeCube(users, 365);
  DeviationConfig cfg;
  cfg.omega = 30;
  for (auto _ : state) {
    auto dev = DeviationSeries::Compute(cube, cfg);
    benchmark::DoNotOptimize(dev.entities());
  }
  state.SetItemsProcessed(state.iterations() * users * 16 * 365 * 2);
}
BENCHMARK(BM_DeviationCompute)->Arg(25)->Arg(100);

void BM_CompoundMatrixBuild(benchmark::State& state) {
  const MeasurementCube cube = MakeCube(25, 365);
  DeviationConfig cfg;
  cfg.omega = 30;
  cfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  CompoundMatrixBuilder builder(&dev, {}, {});
  std::vector<int> features;
  for (int f = 0; f < 16; ++f) features.push_back(f);
  for (auto _ : state) {
    auto m = builder.Build(0, features, 100);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompoundMatrixBuild);

void BM_Critic(benchmark::State& state) {
  const int users = state.range(0);
  ScoreGrid grid({"a", "b", "c"}, users, 0, 30);
  Rng rng(9);
  for (int a = 0; a < 3; ++a) {
    for (int u = 0; u < users; ++u) {
      for (int d = 0; d < 30; ++d) {
        grid.At(a, u, d) = static_cast<float>(rng.NextDouble());
      }
    }
  }
  for (auto _ : state) {
    auto list = RankUsers(grid, 3);
    benchmark::DoNotOptimize(list.data());
  }
  state.SetItemsProcessed(state.iterations() * users);
}
BENCHMARK(BM_Critic)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
