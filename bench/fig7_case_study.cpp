// Reproduces Figure 7: the enterprise case studies — (a) WannaCry-style
// ransomware and (b) Zeus-style botnet detonated on one employee on
// Feb 2, against 246 employees and seven months of Windows/proxy logs.
//
// For each attack the bench prints the victim's per-aspect daily score
// against the population average (the paper's waveforms), the org-wide
// Jan-26 environmental change (Command rises, HTTP drops for everyone),
// and the victim's position in the daily investigation list (paper:
// ranked 1st from Feb 3rd to Feb 15th).

#include <cmath>
#include <cstdio>
#include <cstring>

#include "baselines/experiment.h"
#include "bench_util.h"
#include "core/detector.h"

using namespace acobe;
using namespace acobe::bench;
using namespace acobe::baselines;

namespace {

void RunCaseStudy(sim::AttackKind kind, const char* title, int employees,
                  double rate_scale, const ScaleProfile& scale,
                  std::uint64_t seed) {
  EnterpriseExperimentConfig cfg;
  cfg.sim.employees = employees;
  cfg.sim.start = Date(2020, 8, 1);   // six months training ...
  cfg.sim.end = Date(2021, 2, 28);    // ... one month testing
  cfg.sim.rate_scale = rate_scale;
  cfg.sim.seed = seed;
  cfg.attacks = {{kind, Date(2021, 2, 2)}};
  cfg.victim_index = 17;
  const EnterpriseData data = BuildEnterpriseData(cfg);

  DetectorSpec spec;
  spec.name = title;
  spec.deviation.omega = 14;  // the case study's two-week window
  spec.deviation.matrix_days = 14;
  spec.ensemble.encoder_dims = scale.encoder_dims;
  spec.ensemble.train.epochs = scale.epochs;
  spec.ensemble.train_stride = scale.train_stride;
  spec.ensemble.optimizer = scale.optimizer;
  spec.ensemble.learning_rate = scale.learning_rate;
  spec.ensemble.seed = scale.seed;
  spec.critic_votes = 3;

  const int train_end =
      static_cast<int>(DaysBetween(data.start, Date(2021, 2, 1)));
  const Detector detector(spec);
  const DetectionOutput out = detector.Run(
      data.extractor->cube(), data.extractor->catalog(), data.employees, 0,
      train_end, train_end - 14, data.days);

  const UserId victim = data.attacks[0].victim;
  int vidx = -1;
  for (std::size_t i = 0; i < out.members.size(); ++i) {
    if (out.members[i] == victim) vidx = static_cast<int>(i);
  }
  const int attack_day =
      static_cast<int>(DaysBetween(data.start, data.attacks[0].attack_date));
  const int env_day =
      static_cast<int>(DaysBetween(data.start, cfg.sim.env_change));

  std::printf("\n[%s] victim %s, attack on %s (day %d)\n", title,
              data.attacks[0].victim_name.c_str(),
              data.attacks[0].attack_date.ToString().c_str(), attack_day);

  // Per-aspect population-vs-victim averages before/after the attack.
  std::printf("%-10s | pre-attack pop/victim | post-attack pop/victim | "
              "victim rise\n", "aspect");
  for (int a = 0; a < out.grid.aspects(); ++a) {
    double pre_pop = 0, pre_vic = 0, post_pop = 0, post_vic = 0;
    int pre_n = 0, post_n = 0;
    for (int d = out.grid.day_begin(); d < out.grid.day_end(); ++d) {
      double mean = 0;
      for (int u = 0; u < out.grid.users(); ++u) mean += out.grid.At(a, u, d);
      mean /= out.grid.users();
      if (d < attack_day) {
        pre_pop += mean;
        pre_vic += out.grid.At(a, vidx, d);
        ++pre_n;
      } else {
        post_pop += mean;
        post_vic += out.grid.At(a, vidx, d);
        ++post_n;
      }
    }
    std::printf("%-10s |   %.4f / %.4f     |   %.4f / %.4f      |  x%.1f\n",
                out.grid.aspect_name(a).c_str(), pre_pop / pre_n,
                pre_vic / pre_n, post_pop / post_n, post_vic / post_n,
                (post_vic / post_n) / std::max(1e-9, pre_vic / pre_n));
  }

  // Org-wide environmental change (Jan 26): Command rises, HTTP drops.
  const int cmd = 1, http = 4;  // aspect order: file,command,config,resource,http,logon
  auto pop_mean = [&](int aspect, int day) {
    double mean = 0;
    for (int u = 0; u < out.grid.users(); ++u) {
      mean += out.grid.At(aspect, u, day);
    }
    return mean / out.grid.users();
  };
  if (env_day >= out.grid.day_begin() + 7) {
    std::printf("env change Jan 26 (new tool rollout: Command activity up, "
                "HTTP traffic down org-wide):\n");
    std::printf("  population Command score %.4f -> %.4f (rises for "
                "everyone, as in the paper)\n",
                pop_mean(cmd, env_day - 7), pop_mean(cmd, env_day + 1));
    std::printf("  population HTTP    score %.4f -> %.4f (any org-wide "
                "deviation ripples through scores)\n",
                pop_mean(http, env_day - 7), pop_mean(http, env_day + 1));
  }

  // Daily investigation list: victim's position each day after attack.
  std::printf("daily investigation-list position of victim (day offset: "
              "position, 0 = top):\n  ");
  int days_at_top = 0;
  for (int d = attack_day + 1;
       d <= attack_day + 13 && d < out.grid.day_end(); ++d) {
    const auto daily = RankUsersOnDay(out.grid, spec.critic_votes, d);
    int pos = -1;
    for (std::size_t i = 0; i < daily.size(); ++i) {
      if (daily[i].user_idx == vidx) pos = static_cast<int>(i);
    }
    if (pos == 0) ++days_at_top;
    std::printf("+%d:%d ", d - attack_day, pos);
  }
  std::printf("\n  victim at position 0 on %d of the 13 days following the "
              "attack (paper: 1st place Feb 3-15)\n", days_at_top);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  // The enterprise dataset has 246 employees; the reduced-scale default
  // keeps the full population but trims rates.
  const int employees = args.paper_scale ? 246 : 60;
  const double rate_scale = args.paper_scale ? 1.0 : 0.5;

  PrintHeader("Figure 7 - enterprise case studies (ransomware, Zeus bot)");
  RunCaseStudy(sim::AttackKind::kRansomware, "7(a) ransomware", employees,
               rate_scale, args.Scale(), args.seed);
  RunCaseStudy(sim::AttackKind::kZeusBot, "7(b) zeus-bot", employees,
               rate_scale, args.Scale(), args.seed + 1);
  PrintRule();
  std::printf(
      "expected shape: Command/Config rise right after Feb 2 in both\n"
      "attacks; File rises for ransomware; HTTP rises later for the bot\n"
      "(C&C + DGA); the victim tops the daily list for ~2 weeks.\n");
  args.FinishTelemetry();
  return 0;
}
