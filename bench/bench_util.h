#pragma once

// Shared plumbing for the figure-reproduction bench binaries: argument
// parsing (reduced vs paper scale), the standard four-department
// CERT-style experiment layout, and small printing helpers.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "baselines/experiment.h"
#include "baselines/variants.h"
#include "common/telemetry.h"

namespace acobe::bench {

struct BenchArgs {
  bool paper_scale = false;
  int departments = 4;
  int users_per_department = 25;
  double rate_scale = 0.5;
  std::uint64_t seed = 7;
  std::string metrics_out;
  std::string trace_out;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper-scale") == 0) {
        args.paper_scale = true;
        args.users_per_department = 232;
        args.rate_scale = 1.0;
      } else if (std::strncmp(argv[i], "--users=", 8) == 0) {
        args.users_per_department = std::atoi(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
        args.metrics_out = argv[i] + 14;
      } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
        args.trace_out = argv[i] + 12;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --paper-scale    full 929-user/512-wide configuration\n"
            "       --users=N        users per department (default 25)\n"
            "       --seed=S         dataset seed (default 7)\n"
            "       --metrics-out=F  write telemetry metrics JSON to F\n"
            "       --trace-out=F    write chrome://tracing JSON to F\n");
        std::exit(0);
      }
    }
    telemetry::EnableMetrics(true);
    telemetry::EnableTracing(!args.trace_out.empty());
    return args;
  }

  /// End-of-run telemetry flush: report on stderr, plus the same JSON
  /// exports the tools emit (schema acobe.metrics.v1 / trace-event).
  /// One shared implementation with the tools (common/telemetry.h).
  void FinishTelemetry() const {
    telemetry::FlushTelemetry("bench", metrics_out, trace_out, std::cerr);
  }

  baselines::ScaleProfile Scale() const {
    return paper_scale ? baselines::ScaleProfile::Paper()
                       : baselines::ScaleProfile::Bench();
  }
};

/// The standard evaluation layout (Section V.A): four groups, one
/// insider each — scenario 1 and scenario 2 once per "sub-dataset"
/// (r6.1 / r6.2 analog), over the paper's exact date range.
inline baselines::CertExperimentConfig StandardCertConfig(
    const BenchArgs& args) {
  baselines::CertExperimentConfig cfg;
  cfg.sim.org.departments = args.departments;
  cfg.sim.org.users_per_department = args.users_per_department;
  cfg.sim.org.extra_users = args.paper_scale ? 1 : 0;  // 929 total
  cfg.sim.start = Date(2010, 1, 2);
  cfg.sim.end = Date(2011, 5, 31);
  cfg.sim.profiles.rate_scale = args.rate_scale;
  cfg.sim.seed = args.seed;
  // r6.1 scenario 1 / scenario 2, r6.2 scenario 1 / scenario 2.
  cfg.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario1, 0, Date(2010, 8, 16), 14});
  cfg.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario2, 1, Date(2011, 1, 7), 60});
  cfg.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario1, 2, Date(2010, 10, 11), 14});
  cfg.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario2, 3, Date(2010, 11, 8), 45});
  cfg.train_gap_days = 30;
  cfg.test_tail_days = 30;
  return cfg;
}

inline void PrintRule() {
  std::printf(
      "--------------------------------------------------------------\n");
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace acobe::bench
