// Reproduces Figure 6 and the in-text detection numbers of Section V.C:
//   (a) ROC curves + AUC for ACOBE, Baseline, Base-FF, No-Group, 1-Day,
//       All-in-1 (paper: ACOBE 99.99%, Baseline 99.23%, Base-FF 99.54%),
//       plus the "k FPs listed before the i-th TP" counts
//       (paper: ACOBE 0,0,0,1 / Baseline 1,1,17,18 / Base-FF 1,1,10,10).
//   (b) Precision-recall curves (ACOBE >> Baseline/Base-FF).
//   (c) ACOBE with critic N = 1, 2, 3.
//
// Four scenarios (two per sub-dataset analog), one insider per
// department; per-scenario investigation lists are pooled exactly as in
// the paper, with worst-case tie ordering (FP before TP).

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "eval/metrics.h"

using namespace acobe;
using namespace acobe::bench;
using namespace acobe::baselines;

namespace {

std::vector<eval::RankedUser> PoolScenarios(
    const std::vector<std::vector<eval::RankedUser>>& per_scenario) {
  std::vector<eval::RankedUser> pooled;
  for (const auto& list : per_scenario) {
    pooled.insert(pooled.end(), list.begin(), list.end());
  }
  eval::SortWorstCase(pooled);
  return pooled;
}

void PrintCurves(const std::string& name,
                 const std::vector<eval::RankedUser>& pooled) {
  const auto flags = eval::PositiveFlags(pooled);
  const auto fps = eval::FalsePositivesBeforeEachTp(flags);
  std::printf("%-10s AUC=%7.4f%%  AP=%6.4f  FPs-before-TPs:", name.c_str(),
              100.0 * eval::RocAuc(flags), eval::AveragePrecision(flags));
  for (int fp : fps) std::printf(" %d", fp);
  std::printf("\n");
  std::printf("           ROC points (fpr,tpr):");
  const auto pr = eval::PrCurve(flags);
  int tp = 0, fp_count = 0, total_pos = 0, total_neg = 0;
  for (bool f : flags) f ? ++total_pos : ++total_neg;
  for (bool f : flags) {
    f ? ++tp : ++fp_count;
    if (f) {
      std::printf(" (%.4f,%.2f)", double(fp_count) / total_neg,
                  double(tp) / total_pos);
    }
  }
  std::printf("\n           PR points (recall,precision):");
  for (const auto& p : pr) std::printf(" (%.2f,%.3f)", p.recall, p.precision);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const auto cfg = StandardCertConfig(args);
  const ScaleProfile scale = args.Scale();

  PrintHeader("Figure 6 - ROC / precision-recall comparison across models");
  const CertData data = BuildCertData(cfg);
  std::printf("%d users, %zu insiders, %zu departments\n",
              data.fine->cube().users(), data.scenarios.size(),
              data.department_users.size());

  const VariantKind kinds[] = {VariantKind::kAcobe,    VariantKind::kNoGroup,
                               VariantKind::kOneDay,   VariantKind::kAllInOne,
                               VariantKind::kBaseline, VariantKind::kBaseFF};

  // Keep ACOBE's raw grids for the Figure 6(c) critic-N sweep.
  std::vector<DetectionOutput> acobe_outputs;

  std::printf("\n[Figure 6(a,b)] pooled over %zu scenarios\n",
              data.scenarios.size());
  std::map<std::string, double> auc_by_name;
  for (VariantKind kind : kinds) {
    std::vector<std::vector<eval::RankedUser>> per_scenario;
    for (const sim::InsiderScenario& scenario : data.scenarios) {
      DetectionOutput out =
          RunVariantOnScenario(data, kind, scale, scenario,
                               cfg.train_gap_days, cfg.test_tail_days);
      per_scenario.push_back(MakeRankedUsers(out, data.truth));
      if (kind == VariantKind::kAcobe) {
        acobe_outputs.push_back(std::move(out));
      }
    }
    const auto pooled = PoolScenarios(per_scenario);
    PrintCurves(ToString(kind), pooled);
    auc_by_name[ToString(kind)] =
        eval::RocAuc(eval::PositiveFlags(pooled));
  }

  std::printf("\n[Figure 6(c)] ACOBE critic with N = 1, 2, 3\n");
  const int top_k = MakeVariantSpec(VariantKind::kAcobe, scale).score_top_k_days;
  for (int n = 1; n <= 3; ++n) {
    std::vector<std::vector<eval::RankedUser>> per_scenario;
    for (std::size_t s = 0; s < acobe_outputs.size(); ++s) {
      DetectionOutput out;
      out.grid = acobe_outputs[s].grid;
      out.members = acobe_outputs[s].members;
      out.list = RankUsers(out.grid, n, top_k);
      per_scenario.push_back(MakeRankedUsers(out, data.truth));
    }
    PrintCurves("N=" + std::to_string(n), PoolScenarios(per_scenario));
  }

  PrintRule();
  std::printf("expected shape (paper): ACOBE tops every model (99.99%% AUC,\n"
              "FPs 0,0,0,1); Base-FF > Baseline; compound models (ACOBE,\n"
              "No-Group) beat single-day models by a large PR margin.\n");
  std::printf("measured: ACOBE %.2f%%, No-Group %.2f%%, Baseline %.2f%%, "
              "Base-FF %.2f%%\n",
              100 * auc_by_name["ACOBE"], 100 * auc_by_name["No-Group"],
              100 * auc_by_name["Baseline"], 100 * auc_by_name["Base-FF"]);
  args.FinishTelemetry();
  return 0;
}
