// Reproduces Figure 4: compound behavioral deviation matrices of the
// scenario-2 insider (the paper's JPH1910) — device-access and
// HTTP-access aspects, working hours and off hours, sigma in [-3, 3].
// Prints each feature row over the anomaly period plus an ASCII shade
// map; the expected shape is a dark upload-doc band starting at the
// anomaly onset, echoed in http-new-op, with "white tails" where the
// sliding history absorbs the shift.

#include <cstdio>

#include "behavior/deviation.h"
#include "bench_util.h"

using namespace acobe;
using namespace acobe::bench;

namespace {

char Shade(float sigma) {
  // ASCII shade from white (very negative) to dark (very positive).
  static const char* kRamp = " .:-=+*#%@";
  const float unit = (sigma + 3.0f) / 6.0f;
  int idx = static_cast<int>(unit * 9.99f);
  if (idx < 0) idx = 0;
  if (idx > 9) idx = 9;
  return kRamp[idx];
}

void PrintAspect(const DeviationSeries& dev, const FeatureCatalog& catalog,
                 int entity, const std::string& aspect, int frame,
                 int day_begin, int day_end, int anomaly_begin,
                 int anomaly_end) {
  std::printf("\n[%s aspect, %s]\n", aspect.c_str(),
              frame == 0 ? "working hours 06-18" : "off hours 18-06");
  const int aidx = catalog.AspectIndex(aspect);
  for (int f : catalog.aspects()[aidx].feature_indices) {
    std::printf("%26s |", catalog.feature(f).name.c_str());
    for (int d = day_begin; d < day_end; ++d) {
      std::putchar(Shade(dev.Sigma(entity, f, d, frame)));
    }
    std::printf("|\n");
  }
  std::printf("%26s |", "labeled anomaly days");
  for (int d = day_begin; d < day_end; ++d) {
    std::putchar(d >= anomaly_begin && d <= anomaly_end ? '*' : ' ');
  }
  std::printf("|\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  auto cfg = StandardCertConfig(args);
  cfg.build_fine_hourly = false;
  cfg.build_coarse = false;

  PrintHeader("Figure 4 - compound behavioral deviation matrix (insider, "
              "scenario 2)");
  const baselines::CertData data = baselines::BuildCertData(cfg);
  const sim::InsiderScenario& scenario = data.scenarios[1];
  std::printf("abnormal user: %s (department %d), labeled %s .. %s\n",
              scenario.user_name.c_str(), scenario.department,
              scenario.anomaly_start.ToString().c_str(),
              scenario.anomaly_end.ToString().c_str());

  DeviationConfig dev_cfg;
  dev_cfg.omega = args.Scale().omega;
  dev_cfg.matrix_days = args.Scale().matrix_days;
  const auto dev = DeviationSeries::Compute(data.fine->cube(), dev_cfg);
  const int entity = data.fine->cube().UserIndex(scenario.user);

  const int anomaly_begin =
      static_cast<int>(DaysBetween(data.start, scenario.anomaly_start));
  const int anomaly_end =
      static_cast<int>(DaysBetween(data.start, scenario.anomaly_end));
  const int day_begin = std::max(dev_cfg.FirstDeviationDay(),
                                 anomaly_begin - 30);
  const int day_end = std::min(data.days, anomaly_end + 31);

  std::printf("columns: days %d..%d relative to data start; shade ' '..'@' "
              "maps sigma -3..+3 (0 = '=')\n",
              day_begin, day_end - 1);
  for (int frame = 0; frame < 2; ++frame) {
    PrintAspect(dev, data.fine->catalog(), entity, "device", frame, day_begin,
                day_end, anomaly_begin, anomaly_end);
  }
  for (int frame = 0; frame < 2; ++frame) {
    PrintAspect(dev, data.fine->catalog(), entity, "http", frame, day_begin,
                day_end, anomaly_begin, anomaly_end);
  }

  // Quantitative check of the figure's claims.
  PrintRule();
  using F = CertAcobeExtractor;
  double in_span = 0, out_span = 0;
  int in_n = 0, out_n = 0;
  for (int d = day_begin; d < day_end; ++d) {
    const double s = dev.Sigma(entity, F::kHttpUploadDoc, d, 0);
    if (d >= anomaly_begin && d <= anomaly_end) {
      in_span += s;
      ++in_n;
    } else {
      out_span += s;
      ++out_n;
    }
  }
  std::printf("upload-doc mean sigma inside labeled span: %+.3f, outside: "
              "%+.3f  (expect inside >> outside)\n",
              in_span / in_n, out_span / out_n);
  args.FinishTelemetry();
  return 0;
}
