// Micro-benchmarks of the neural-network substrate: GEMM kernels,
// layer forward/backward, full autoencoder training steps.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/autoencoder.h"
#include "nn/gemm.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

using namespace acobe;
using namespace acobe::nn;

namespace {

Tensor RandomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(1);
  const Tensor a = RandomTensor(n, n, rng);
  const Tensor b = RandomTensor(n, n, rng);
  Tensor c;
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransA(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(2);
  const Tensor a = RandomTensor(n, n, rng);
  const Tensor b = RandomTensor(n, n, rng);
  Tensor c;
  for (auto _ : state) {
    GemmTransA(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTransA)->Arg(128);

void BM_AutoencoderForward(benchmark::State& state) {
  const std::size_t input_dim = state.range(0);
  Rng rng(3);
  AutoencoderSpec spec;
  spec.input_dim = input_dim;
  spec.encoder_dims = ScaledEncoderDims(8);
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  const Tensor batch = RandomTensor(64, input_dim, rng);
  for (auto _ : state) {
    Tensor y = net.Forward(batch, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AutoencoderForward)->Arg(112)->Arg(392)->Arg(896);

void BM_AutoencoderTrainStep(benchmark::State& state) {
  const std::size_t input_dim = state.range(0);
  Rng rng(4);
  AutoencoderSpec spec;
  spec.input_dim = input_dim;
  spec.encoder_dims = ScaledEncoderDims(8);
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Adadelta opt;
  opt.Attach(net.Params());
  const Tensor batch = RandomTensor(64, input_dim, rng);
  Tensor grad;
  for (auto _ : state) {
    net.ZeroGrad();
    Tensor pred = net.Forward(batch, true);
    MseLoss(pred, batch, grad);
    net.Backward(grad);
    opt.Step();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AutoencoderTrainStep)->Arg(392);

void BM_OptimizerStep(benchmark::State& state) {
  Rng rng(5);
  Param p;
  p.value = RandomTensor(512, 256, rng);
  p.grad = RandomTensor(512, 256, rng);
  Adadelta opt;
  opt.Attach({&p});
  for (auto _ : state) {
    opt.Step();
    benchmark::DoNotOptimize(p.value.data());
  }
  state.SetItemsProcessed(state.iterations() * p.value.size());
}
BENCHMARK(BM_OptimizerStep);

}  // namespace

BENCHMARK_MAIN();
