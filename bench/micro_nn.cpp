// Micro-benchmarks of the neural-network substrate: GEMM kernels
// (blocked vs scalar reference), layer-shaped sweeps, full autoencoder
// training steps and epochs.
//
// Beyond the standard google-benchmark console output, `--metrics-out=F`
// writes an acobe.metrics.v1 JSON file with one gauge per benchmark
// ("bench.<name>.items_per_second"); bench/BENCH_nn.json is a checked-in
// run of this on the reference machine, and tools/check_bench.py gates
// CI on the blocked/reference speedup ratios derived from it (ratios,
// unlike absolute GFLOP/s, transfer across machines).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "nn/autoencoder.h"
#include "nn/backend.h"
#include "nn/gemm.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

using namespace acobe;
using namespace acobe::nn;

namespace {

Tensor RandomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

// --- Square GEMM (historic shapes, comparable to pre-refactor runs) ---------

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(1);
  const Tensor a = RandomTensor(n, n, rng);
  const Tensor b = RandomTensor(n, n, rng);
  Tensor c;
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmRef(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(1);
  const Tensor a = RandomTensor(n, n, rng);
  const Tensor b = RandomTensor(n, n, rng);
  Tensor c;
  for (auto _ : state) {
    reference::Gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmRef)->Arg(64)->Arg(128)->Arg(256);

// --- Panel-parallel GEMM ----------------------------------------------------
//
// Same square shapes at explicit GEMM thread counts. The in-run ratio
// BM_GemmMT/N/4 over BM_GemmMT/N/1 is the multi-thread speedup
// check_bench.py gates (only on machines with >= 4 hardware threads —
// the ratio is meaningless when the pool is oversubscribed on one core).

void BM_GemmMT(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  Rng rng(9);
  const Tensor a = RandomTensor(n, n, rng);
  const Tensor b = RandomTensor(n, n, rng);
  Tensor c;
  SetNnThreads(threads);
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  SetNnThreads(1);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
// Real time, not main-thread CPU time: the work happens on pool
// workers, which per-thread CPU clocks don't see.
BENCHMARK(BM_GemmMT)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({384, 4})
    ->UseRealTime();

// --- Layer-shaped sweeps ----------------------------------------------------
//
// (batch, in, out) triples taken from the autoencoder stacks the
// pipeline actually trains: divisor-8 widths {64, 32, 16, 8} over
// normalized-day inputs (dim 112/392) at batch sizes 32-256.

void GemmLayerArgs(benchmark::internal::Benchmark* b) {
  b->Args({32, 112, 64})
      ->Args({64, 112, 64})
      ->Args({64, 64, 32})
      ->Args({64, 32, 16})
      ->Args({64, 16, 8})
      ->Args({128, 64, 32})
      ->Args({256, 128, 64})
      ->Args({256, 8, 128});
}

void BM_GemmLayer(benchmark::State& state) {
  const std::size_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(6);
  const Tensor a = RandomTensor(m, k, rng);
  const Tensor b = RandomTensor(k, n, rng);
  const Tensor bias = RandomTensor(1, n, rng);
  Tensor c;
  for (auto _ : state) {
    Gemm(a, b, c, bias.data());  // fused bias: the Dense forward path
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_GemmLayer)->Apply(GemmLayerArgs);

void BM_GemmTransA(benchmark::State& state) {
  const std::size_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(2);
  // Weight-gradient shape: x^T g with x (k x m), g (k x n).
  const Tensor a = RandomTensor(k, m, rng);
  const Tensor b = RandomTensor(k, n, rng);
  Tensor c;
  for (auto _ : state) {
    GemmTransA(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_GemmTransA)
    ->Args({128, 128, 128})
    ->Args({112, 64, 64})
    ->Args({64, 128, 32});

void BM_GemmTransB(benchmark::State& state) {
  const std::size_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(7);
  // Input-gradient shape: g W^T with g (m x k), W (n x k).
  const Tensor a = RandomTensor(m, k, rng);
  const Tensor b = RandomTensor(n, k, rng);
  Tensor c;
  for (auto _ : state) {
    GemmTransB(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_GemmTransB)
    ->Args({64, 64, 112})
    ->Args({128, 32, 64})
    ->Args({256, 64, 128});

// --- Whole-model paths ------------------------------------------------------

void BM_AutoencoderForward(benchmark::State& state) {
  const std::size_t input_dim = state.range(0);
  Rng rng(3);
  AutoencoderSpec spec;
  spec.input_dim = input_dim;
  spec.encoder_dims = ScaledEncoderDims(8);
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  const Tensor batch = RandomTensor(64, input_dim, rng);
  Sequential::InferScratch scratch;
  for (auto _ : state) {
    const Tensor& y = net.Infer(batch, scratch);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AutoencoderForward)->Arg(112)->Arg(392)->Arg(896);

void BM_AutoencoderTrainStep(benchmark::State& state) {
  const std::size_t input_dim = state.range(0);
  Rng rng(4);
  AutoencoderSpec spec;
  spec.input_dim = input_dim;
  spec.encoder_dims = ScaledEncoderDims(8);
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Adadelta opt;
  opt.Attach(net.Params());
  const Tensor batch = RandomTensor(64, input_dim, rng);
  Tensor grad;
  Sequential::TrainScratch scratch;
  for (auto _ : state) {
    net.ZeroGrad();
    const Tensor& pred = net.Forward(batch, scratch, /*training=*/true);
    MseLoss(pred, batch, grad);
    net.Backward(grad, scratch, /*need_input_grad=*/false);
    opt.Step();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AutoencoderTrainStep)->Arg(112)->Arg(392);

void BM_TrainEpoch(benchmark::State& state) {
  const std::size_t input_dim = state.range(0);
  Rng rng(8);
  AutoencoderSpec spec;
  spec.input_dim = input_dim;
  spec.encoder_dims = ScaledEncoderDims(8);
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Adadelta opt;
  const Tensor data = RandomTensor(512, input_dim, rng);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 64;
  for (auto _ : state) {
    const auto history = TrainReconstruction(net, opt, data, cfg);
    benchmark::DoNotOptimize(history.data());
  }
  state.SetItemsProcessed(state.iterations() * data.rows());
}
BENCHMARK(BM_TrainEpoch)->Arg(112)->Arg(392);

// --- Ensemble training stream -----------------------------------------------
//
// The ensemble's training pattern: kStreamJobs independent autoencoders
// over their own data. BM_TrainStreamSolo is the pre-stream shape — N
// cold TrainReconstruction calls, each with its own workspace.
// BM_TrainStreamFused is the fused TrainStream path (shared workspace,
// warm pool; /4 fans the jobs over four workers). The in-run fused/solo
// ratio is what check_bench.py gates on multi-core machines.

constexpr int kStreamJobs = 4;

struct StreamFixture {
  std::vector<Sequential> nets;
  std::vector<Adadelta> opts;
  std::vector<Tensor> datas;
  TrainConfig cfg;

  explicit StreamFixture(std::size_t input_dim) {
    Rng rng(10);
    AutoencoderSpec spec;
    spec.input_dim = input_dim;
    spec.encoder_dims = ScaledEncoderDims(8);
    nets.reserve(kStreamJobs);
    opts.reserve(kStreamJobs);
    datas.reserve(kStreamJobs);
    for (int j = 0; j < kStreamJobs; ++j) {
      nets.push_back(BuildAutoencoder(spec));
      nets.back().InitParams(rng);
      opts.emplace_back();
      datas.push_back(RandomTensor(512, input_dim, rng));
    }
    cfg.epochs = 1;
    cfg.batch_size = 64;
  }
};

void BM_TrainStreamSolo(benchmark::State& state) {
  StreamFixture fx(state.range(0));
  for (auto _ : state) {
    for (int j = 0; j < kStreamJobs; ++j) {
      const auto history =
          TrainReconstruction(fx.nets[j], fx.opts[j], fx.datas[j], fx.cfg);
      benchmark::DoNotOptimize(history.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kStreamJobs * 512);
}
BENCHMARK(BM_TrainStreamSolo)->Arg(112)->UseRealTime();

void BM_TrainStreamFused(benchmark::State& state) {
  StreamFixture fx(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    std::vector<TrainJob> jobs(kStreamJobs);
    for (int j = 0; j < kStreamJobs; ++j) {
      jobs[j].net = &fx.nets[j];
      jobs[j].optimizer = &fx.opts[j];
      jobs[j].data = &fx.datas[j];
      jobs[j].config = fx.cfg;
    }
    TrainStream(jobs, threads);
    benchmark::DoNotOptimize(jobs.data());
  }
  state.SetItemsProcessed(state.iterations() * kStreamJobs * 512);
}
BENCHMARK(BM_TrainStreamFused)
    ->Args({112, 1})
    ->Args({112, 4})
    ->UseRealTime();

void BM_OptimizerStep(benchmark::State& state) {
  Rng rng(5);
  Param p;
  p.value = RandomTensor(512, 256, rng);
  p.grad = RandomTensor(512, 256, rng);
  Adadelta opt;
  opt.Attach({&p});
  for (auto _ : state) {
    opt.Step();
    benchmark::DoNotOptimize(p.value.data());
  }
  state.SetItemsProcessed(state.iterations() * p.value.size());
}
BENCHMARK(BM_OptimizerStep);

// --- Metrics export ---------------------------------------------------------

// Console reporter that additionally records every run's
// items_per_second into a telemetry gauge, so --metrics-out can emit
// the standard acobe.metrics.v1 JSON used by BENCH_* baselines.
class GaugeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        telemetry::GetGauge("bench." + run.benchmark_name() +
                            ".items_per_second")
            .Set(static_cast<double>(it->second));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  GaugeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // Machine context the gate needs: multi-thread speedup ratios are
  // only meaningful when the hardware can actually run the workers
  // concurrently, so check_bench.py reads bench.hw_threads to decide
  // whether to apply or skip the threaded floors.
  telemetry::GetGauge("bench.hw_threads")
      .Set(static_cast<double>(std::thread::hardware_concurrency()));
  if (!metrics_out.empty() && !telemetry::WriteMetricsJsonFile(metrics_out)) {
    std::fprintf(stderr, "micro_nn: cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  return 0;
}
