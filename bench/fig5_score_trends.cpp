// Reproduces Figure 5: trends of anomaly scores of one department's
// users under different model configurations, for the scenario-2
// insider (the paper's r6.1 scenario 2, 114 users, user JPH1910).
//
//   (a,b) ACOBE            — abnormal user's waveform stands out
//   (c)   1-Day            — waveform indistinguishable (weekday peaks)
//   (d)   No-Group         — distinguishable but higher mean error
//   (e)   All-in-1         — device signal drowned by other aspects
//   (f)   Baseline         — never stands out
//
// For every configuration the bench prints the per-subfigure statistics
// the paper annotates (mean/std over all data points), the abnormal
// user's separation (peak z-score vs the per-day population, number of
// test days ranked 1st), and a sparkline of victim-vs-population score.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "eval/metrics.h"

using namespace acobe;
using namespace acobe::bench;
using namespace acobe::baselines;

namespace {

char Spark(double v) {
  static const char* kRamp = "_.-=+*#@";
  int idx = static_cast<int>(v * 7.99);
  if (idx < 0) idx = 0;
  if (idx > 7) idx = 7;
  return kRamp[idx];
}

struct AspectStats {
  double mean = 0, stddev = 0, victim_peak_z = 0;
  int victim_top1_days = 0, days = 0;
};

AspectStats StatsFor(const ScoreGrid& grid, int aspect, int vidx) {
  AspectStats st;
  double sum = 0, sumsq = 0;
  std::size_t n = 0;
  for (int u = 0; u < grid.users(); ++u) {
    for (int d = grid.day_begin(); d < grid.day_end(); ++d) {
      const double s = grid.At(aspect, u, d);
      sum += s;
      sumsq += s * s;
      ++n;
    }
  }
  st.mean = sum / n;
  st.stddev = std::sqrt(std::max(0.0, sumsq / n - st.mean * st.mean));
  st.days = grid.day_count();
  for (int d = grid.day_begin(); d < grid.day_end(); ++d) {
    double day_mean = 0, day_sq = 0;
    double top = -1;
    int top_user = -1;
    for (int u = 0; u < grid.users(); ++u) {
      const double s = grid.At(aspect, u, d);
      day_mean += s;
      day_sq += s * s;
      if (s > top) {
        top = s;
        top_user = u;
      }
    }
    day_mean /= grid.users();
    const double day_std = std::sqrt(
        std::max(1e-12, day_sq / grid.users() - day_mean * day_mean));
    const double z = (grid.At(aspect, vidx, d) - day_mean) / day_std;
    st.victim_peak_z = std::max(st.victim_peak_z, z);
    if (top_user == vidx) ++st.victim_top1_days;
  }
  return st;
}

void PrintSparkline(const ScoreGrid& grid, int aspect, int vidx,
                    int anomaly_begin) {
  std::printf("    victim  |");
  double max_score = 1e-9;
  for (int d = grid.day_begin(); d < grid.day_end(); ++d) {
    for (int u = 0; u < grid.users(); ++u) {
      max_score = std::max(max_score, (double)grid.At(aspect, u, d));
    }
  }
  for (int d = grid.day_begin(); d < grid.day_end(); d += 2) {
    std::putchar(Spark(grid.At(aspect, vidx, d) / max_score));
  }
  std::printf("|\n    pop.avg |");
  for (int d = grid.day_begin(); d < grid.day_end(); d += 2) {
    double mean = 0;
    for (int u = 0; u < grid.users(); ++u) mean += grid.At(aspect, u, d);
    std::putchar(Spark(mean / grid.users() / max_score));
  }
  std::printf("|\n    anomaly |");
  for (int d = grid.day_begin(); d < grid.day_end(); d += 2) {
    std::putchar(d >= anomaly_begin ? '*' : ' ');
  }
  std::printf("|\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const auto cfg = StandardCertConfig(args);
  const ScaleProfile scale = args.Scale();

  PrintHeader("Figure 5 - anomaly-score trends under different model "
              "configurations (scenario 2 department)");
  const CertData data = BuildCertData(cfg);
  const sim::InsiderScenario& scenario = data.scenarios[1];
  const int anomaly_begin =
      static_cast<int>(DaysBetween(data.start, scenario.anomaly_start));
  std::printf("department %d: %zu users; abnormal user %s; labeled from %s\n",
              scenario.department,
              data.department_users[scenario.department].size(),
              scenario.user_name.c_str(),
              scenario.anomaly_start.ToString().c_str());

  const VariantKind kinds[] = {VariantKind::kAcobe,    VariantKind::kOneDay,
                               VariantKind::kNoGroup,  VariantKind::kAllInOne,
                               VariantKind::kBaseline};
  const char* panel[] = {"(a,b) ACOBE", "(c) 1-Day", "(d) No-Group",
                         "(e) All-in-1", "(f) Baseline"};

  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    // Figure 5 plots raw reconstruction errors (the paper annotates
    // their mean/std per sub-figure), so per-user calibration is off.
    const DetectionOutput out = RunVariantOnScenario(
        data, kinds[k], scale, scenario, cfg.train_gap_days,
        cfg.test_tail_days, nullptr,
        [](DetectorSpec& spec) { spec.per_user_calibration = false; });
    int vidx = -1;
    for (std::size_t i = 0; i < out.members.size(); ++i) {
      if (out.members[i] == scenario.user) vidx = static_cast<int>(i);
    }
    std::printf("\n%s\n", panel[k]);
    for (int a = 0; a < out.grid.aspects(); ++a) {
      const AspectStats st = StatsFor(out.grid, a, vidx);
      std::printf("  aspect %-8s mean=%.4f std=%.4f victim-peak-z=%+.2f "
                  "victim-top1-days=%d/%d\n",
                  out.grid.aspect_name(a).c_str(), st.mean, st.stddev,
                  st.victim_peak_z, st.victim_top1_days, st.days);
    }
    // Sparkline for the aspect where the victim separates most.
    int best_aspect = 0;
    double best_z = -1e9;
    for (int a = 0; a < out.grid.aspects(); ++a) {
      const AspectStats st = StatsFor(out.grid, a, vidx);
      if (st.victim_peak_z > best_z) {
        best_z = st.victim_peak_z;
        best_aspect = a;
      }
    }
    std::printf("  strongest aspect: %s\n",
                out.grid.aspect_name(best_aspect).c_str());
    PrintSparkline(out.grid, best_aspect, vidx, anomaly_begin);
  }

  PrintRule();
  std::printf(
      "expected shape: ACOBE and No-Group separate the victim (high peak-z,\n"
      "many top-1 days); No-Group shows a higher mean error than ACOBE;\n"
      "1-Day and Baseline do not separate the victim; All-in-1 separates\n"
      "less than ACOBE's per-aspect ensemble.\n");
  args.FinishTelemetry();
  return 0;
}
