// Ablation bench for the design choices DESIGN.md calls out (beyond
// the paper's own figure-6 ablations): feature weights on/off, the
// deviation clamp Delta, history window omega, trimmed-vs-plain group
// mean, per-user score calibration, and the top-k day aggregation.
//
// Each row runs the full ACOBE pipeline on the scenario-2 department
// with one knob changed and reports the insider's list position and
// the department AUC.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "eval/metrics.h"

using namespace acobe;
using namespace acobe::bench;
using namespace acobe::baselines;

namespace {

struct Row {
  const char* name;
  std::function<void(DetectorSpec&)> tweak;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  auto cfg = StandardCertConfig(args);
  cfg.build_fine_hourly = false;
  cfg.build_coarse = false;
  const ScaleProfile scale = args.Scale();

  PrintHeader("Ablations - ACOBE design choices (scenario-2 department)");
  const CertData data = BuildCertData(cfg);
  const sim::InsiderScenario& scenario = data.scenarios[1];

  const Row rows[] = {
      {"ACOBE (reference)", [](DetectorSpec&) {}},
      {"no feature weights",
       [](DetectorSpec& s) { s.deviation.apply_weights = false; }},
      {"delta = 1.5", [](DetectorSpec& s) { s.deviation.delta = 1.5; }},
      {"delta = 6", [](DetectorSpec& s) { s.deviation.delta = 6.0; }},
      {"omega = 7",
       [](DetectorSpec& s) {
         s.deviation.omega = 7;
         s.deviation.matrix_days = 7;
       }},
      {"omega = 21",
       [](DetectorSpec& s) {
         s.deviation.omega = 21;
         s.deviation.matrix_days = 21;
       }},
      {"plain group mean (no trim)",
       [](DetectorSpec& s) { s.deviation.group_trim = 0.0; }},
      {"no per-user calibration",
       [](DetectorSpec& s) { s.per_user_calibration = false; }},
      {"score = max day (k=1)",
       [](DetectorSpec& s) { s.score_top_k_days = 1; }},
      {"score = top-14 days",
       [](DetectorSpec& s) { s.score_top_k_days = 14; }},
      {"critic N = 1", [](DetectorSpec& s) { s.critic_votes = 1; }},
      {"critic N = 3", [](DetectorSpec& s) { s.critic_votes = 3; }},
  };

  std::printf("%-28s | insider position | dept AUC\n", "configuration");
  PrintRule();
  for (const Row& row : rows) {
    const DetectionOutput out = RunVariantOnScenario(
        data, VariantKind::kAcobe, scale, scenario, cfg.train_gap_days,
        cfg.test_tail_days, nullptr, row.tweak);
    const auto ranked = MakeRankedUsers(out, data.truth);
    int position = -1;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].positive) position = static_cast<int>(i);
    }
    const double auc = eval::RocAuc(eval::PositiveFlags(ranked));
    std::printf("%-28s |      %3d / %-3zu   |  %.4f\n", row.name, position,
                ranked.size(), auc);
  }
  PrintRule();
  std::printf("expected: the reference configuration is at or near the top;\n"
              "removing weights / trim / calibration or shrinking the window\n"
              "degrades the insider's position.\n");
  args.FinishTelemetry();
  return 0;
}
