// Unit tests for src/nn: tensors, GEMM, layers (with numeric gradient
// checks), optimizers, autoencoder construction, training, serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "nn/activations.h"
#include "nn/autoencoder.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/gemm.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "nn/trainer.h"

namespace acobe::nn {
namespace {

// --- Tensor ------------------------------------------------------------------

TEST(TensorTest, ConstructionAndIndexing) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t(1, 2), 1.5f);
  t(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 3), std::out_of_range);
}

TEST(TensorTest, FromVectorAndReshape) {
  Tensor t = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t(1, 0), 3.0f);
  t.Reshape(4, 1);
  EXPECT_FLOAT_EQ(t(2, 0), 3.0f);
  EXPECT_THROW(t.Reshape(3, 3), std::invalid_argument);
  EXPECT_THROW(Tensor::FromVector(2, 2, {1.0f}), std::invalid_argument);
}

TEST(TensorTest, RowSpan) {
  Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  auto row = t.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_FLOAT_EQ(row[0], 4.0f);
}

// --- GEMM --------------------------------------------------------------------

Tensor NaiveMul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  Tensor c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::size_t l = 0; l < k; ++l) {
        const float av = ta ? a(l, i) : a(i, l);
        const float bv = tb ? b(j, l) : b(l, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  }
  return c;
}

Tensor RandomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

struct GemmShape {
  std::size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k * 7 + n);
  const Tensor a = RandomTensor(m, k, rng);
  const Tensor b = RandomTensor(k, n, rng);
  Tensor c;
  Gemm(a, b, c);
  const Tensor ref = NaiveMul(a, b, false, false);
  ASSERT_EQ(c.rows(), m);
  ASSERT_EQ(c.cols(), n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4f * (k + 1));
  }
}

TEST_P(GemmTest, TransAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  const Tensor a = RandomTensor(k, m, rng);  // will be transposed
  const Tensor b = RandomTensor(k, n, rng);
  Tensor c;
  GemmTransA(a, b, c);
  const Tensor ref = NaiveMul(a, b, true, false);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4f * (k + 1));
  }
}

TEST_P(GemmTest, TransBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 3 + k + n * 5);
  const Tensor a = RandomTensor(m, k, rng);
  const Tensor b = RandomTensor(n, k, rng);  // will be transposed
  Tensor c;
  GemmTransB(a, b, c);
  const Tensor ref = NaiveMul(a, b, false, true);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4f * (k + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTest,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{2, 3, 4},
                                           GemmShape{5, 1, 7},
                                           GemmShape{8, 16, 8},
                                           GemmShape{17, 13, 29},
                                           GemmShape{64, 32, 64}));

TEST(GemmTest, ShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 5), c;
  EXPECT_THROW(Gemm(a, b, c), std::invalid_argument);
  EXPECT_THROW(GemmTransA(a, b, c), std::invalid_argument);
  EXPECT_THROW(GemmTransB(a, b, c), std::invalid_argument);
}

// --- Gradient checking -------------------------------------------------------

// Runs a single layer through the out-parameter API, returning the
// output by value for test convenience.
Tensor LForward(Layer& layer, const Tensor& x, bool training) {
  Tensor y;
  layer.Forward(x, y, training);
  return y;
}

// Numerically verifies dL/dx and dL/dparam for a layer under L = sum(y*g)
// with fixed random g (so dL/dy = g).
void CheckGradients(Layer& layer, Tensor x, bool training, float tol = 2e-2f) {
  Rng rng(77);
  Tensor y;
  layer.Forward(x, y, training);
  Tensor g(y.rows(), y.cols());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  for (Param* p : layer.Params()) p->grad.Fill(0.0f);
  Tensor dx;
  layer.Backward(x, y, g, dx, /*need_dx=*/true);

  auto loss_at = [&]() {
    Tensor out;
    layer.Forward(x, out, training);
    double acc = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc += static_cast<double>(out.data()[i]) * g.data()[i];
    }
    return acc;
  };

  const float eps = 1e-3f;
  // Input gradient at a few positions.
  for (std::size_t i = 0; i < std::min<std::size_t>(x.size(), 8); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = loss_at();
    x.data()[i] = orig - eps;
    const double lm = loss_at();
    x.data()[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, tol * (1.0 + std::fabs(numeric)))
        << "input grad at " << i;
  }
  // Parameter gradients at a few positions.
  // Re-run forward/backward to get fresh parameter grads for unperturbed x.
  for (Param* p : layer.Params()) p->grad.Fill(0.0f);
  layer.Forward(x, y, training);
  layer.Backward(x, y, g, dx, /*need_dx=*/true);
  for (Param* p : layer.Params()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.size(), 6);
         ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double lp = loss_at();
      p->value.data()[i] = orig - eps;
      const double lm = loss_at();
      p->value.data()[i] = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric,
                  tol * (1.0 + std::fabs(numeric)))
          << p->name << " grad at " << i;
    }
  }
}

TEST(DenseTest, ForwardComputesAffine) {
  Dense dense(2, 2);
  dense.Params()[0]->value = Tensor::FromVector(2, 2, {1, 2, 3, 4});  // W
  dense.Params()[1]->value = Tensor::FromVector(1, 2, {0.5f, -0.5f});  // b
  Tensor x = Tensor::FromVector(1, 2, {1, 1});
  Tensor y = LForward(dense, x, true);
  EXPECT_FLOAT_EQ(y(0, 0), 1 + 3 + 0.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 2 + 4 - 0.5f);
}

TEST(DenseTest, GradientsMatchNumeric) {
  Rng rng(11);
  Dense dense(4, 3);
  dense.InitParams(rng);
  CheckGradients(dense, RandomTensor(5, 4, rng), true);
}

TEST(DenseTest, BadShapesThrow) {
  Dense dense(4, 3);
  Tensor x(2, 5);
  Tensor y;
  EXPECT_THROW(dense.Forward(x, y, true), std::invalid_argument);
  EXPECT_THROW(Dense(0, 3), std::invalid_argument);
}

TEST(ReluTest, ForwardZeroesNegatives) {
  ReLU relu;
  Tensor x = Tensor::FromVector(1, 4, {-1, 0, 2, -3});
  Tensor y = LForward(relu, x, true);
  EXPECT_FLOAT_EQ(y(0, 0), 0);
  EXPECT_FLOAT_EQ(y(0, 1), 0);
  EXPECT_FLOAT_EQ(y(0, 2), 2);
  EXPECT_FLOAT_EQ(y(0, 3), 0);
}

TEST(ReluTest, GradientsMatchNumeric) {
  Rng rng(12);
  ReLU relu;
  Tensor x = RandomTensor(4, 6, rng);
  // Nudge values away from the kink at 0 for stable numeric diff.
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] += 0.1f;
  }
  CheckGradients(relu, x, true);
}

TEST(SigmoidTest, ForwardRange) {
  Sigmoid sigmoid;
  Tensor x = Tensor::FromVector(1, 3, {-10, 0, 10});
  Tensor y = LForward(sigmoid, x, true);
  EXPECT_NEAR(y(0, 0), 0.0f, 1e-4);
  EXPECT_FLOAT_EQ(y(0, 1), 0.5f);
  EXPECT_NEAR(y(0, 2), 1.0f, 1e-4);
}

TEST(SigmoidTest, GradientsMatchNumeric) {
  Rng rng(13);
  Sigmoid sigmoid;
  CheckGradients(sigmoid, RandomTensor(3, 5, rng), true);
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  BatchNorm bn(3);
  Rng rng(14);
  Tensor x = RandomTensor(64, 3, rng);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = x.data()[i] * 3 + 5;
  Tensor y = LForward(bn, x, true);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0, var = 0;
    for (std::size_t r = 0; r < 64; ++r) mean += y(r, c);
    mean /= 64;
    for (std::size_t r = 0; r < 64; ++r) {
      var += (y(r, c) - mean) * (y(r, c) - mean);
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm bn(2, /*momentum=*/0.0f);  // running stats = last batch stats
  Rng rng(15);
  Tensor x = RandomTensor(128, 2, rng);
  LForward(bn, x, true);
  // A single-row inference must not explode (it uses running stats).
  Tensor one = RandomTensor(1, 2, rng);
  Tensor y = LForward(bn, one, false);
  EXPECT_TRUE(std::isfinite(y(0, 0)));
  EXPECT_TRUE(std::isfinite(y(0, 1)));
}

TEST(BatchNormTest, GradientsMatchNumeric) {
  Rng rng(16);
  BatchNorm bn(4);
  CheckGradients(bn, RandomTensor(8, 4, rng), /*training=*/false);
}

TEST(BatchNormTest, TrainingGradientsMatchNumeric) {
  Rng rng(17);
  BatchNorm bn(3);
  CheckGradients(bn, RandomTensor(6, 3, rng), /*training=*/true, 5e-2f);
}

// --- Sequential & loss --------------------------------------------------------

TEST(SequentialTest, GradCheckThroughStack) {
  Rng rng(18);
  Sequential net;
  net.Add(std::make_unique<Dense>(3, 5));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Dense>(5, 3));
  net.Add(std::make_unique<Sigmoid>());
  net.InitParams(rng);

  Tensor x = RandomTensor(4, 3, rng);
  Tensor y = net.Forward(x, true);
  Tensor target = RandomTensor(4, 3, rng);
  Tensor grad;
  MseLoss(y, target, grad);
  net.ZeroGrad();
  net.Backward(grad);

  // Numeric check on first dense weight.
  Param* w = net.Params()[0];
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 4; ++i) {
    const float orig = w->value.data()[i];
    Tensor g;
    w->value.data()[i] = orig + eps;
    const float lp = MseLoss(net.Forward(x, true), target, g);
    w->value.data()[i] = orig - eps;
    const float lm = MseLoss(net.Forward(x, true), target, g);
    w->value.data()[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(w->grad.data()[i], numeric, 2e-2 * (1 + std::fabs(numeric)));
  }
}

TEST(MseLossTest, ValueAndGradient) {
  Tensor pred = Tensor::FromVector(1, 2, {1.0f, 3.0f});
  Tensor target = Tensor::FromVector(1, 2, {0.0f, 1.0f});
  Tensor grad;
  const float loss = MseLoss(pred, target, grad);
  EXPECT_FLOAT_EQ(loss, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(grad(0, 0), 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(grad(0, 1), 2.0f * 2.0f / 2.0f);
}

TEST(MseLossTest, PerSampleErrors) {
  Tensor pred = Tensor::FromVector(2, 2, {1, 1, 0, 0});
  Tensor target = Tensor::FromVector(2, 2, {0, 0, 0, 2});
  const auto errors = PerSampleMse(pred, target);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_FLOAT_EQ(errors[0], 1.0f);
  EXPECT_FLOAT_EQ(errors[1], 2.0f);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout dropout(0.5f, 3);
  Rng rng(61);
  Tensor x = RandomTensor(4, 6, rng);
  Tensor y = LForward(dropout, x, /*training=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(DropoutTest, TrainingDropsAndScales) {
  Dropout dropout(0.5f, 3);
  Tensor x(1, 1000, 1.0f);
  Tensor y = LForward(dropout, x, /*training=*/true);
  int zeros = 0;
  double sum = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 2.0f);  // inverted scaling 1/(1-0.5)
    }
    sum += y.data()[i];
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.12);  // expectation preserved
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout dropout(0.3f, 4);
  Rng rng(62);
  Tensor x = RandomTensor(2, 50, rng);
  Tensor y = LForward(dropout, x, true);
  Tensor g(2, 50, 1.0f);
  Tensor dx;
  dropout.Backward(x, y, g, dx, /*need_dx=*/true);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(dx.data()[i], 0.0f);
    } else {
      EXPECT_GT(dx.data()[i], 0.0f);
    }
  }
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

TEST(HuberLossTest, QuadraticInsideLinearOutside) {
  Tensor pred = Tensor::FromVector(1, 2, {0.5f, 5.0f});
  Tensor target = Tensor::FromVector(1, 2, {0.0f, 0.0f});
  Tensor grad;
  const float loss = HuberLoss(pred, target, grad, 1.0f);
  // Element 0: 0.5*0.25 = 0.125; element 1: 1*(5-0.5) = 4.5.
  EXPECT_NEAR(loss, (0.125f + 4.5f) / 2.0f, 1e-5);
  EXPECT_FLOAT_EQ(grad(0, 0), 0.5f / 2.0f);   // d/2 inside
  EXPECT_FLOAT_EQ(grad(0, 1), 1.0f / 2.0f);   // clipped at delta outside
  EXPECT_THROW(HuberLoss(pred, target, grad, 0.0f), std::invalid_argument);
}

TEST(HuberLossTest, MatchesMseForSmallErrors) {
  Rng rng(63);
  Tensor pred = RandomTensor(3, 4, rng);
  Tensor target = pred;
  for (std::size_t i = 0; i < target.size(); ++i) {
    target.data()[i] += 0.01f;
  }
  Tensor g1, g2;
  const float huber = HuberLoss(pred, target, g1, 1.0f);
  const float mse = MseLoss(pred, target, g2);
  EXPECT_NEAR(huber, mse / 2.0f, 1e-6);  // Huber = 0.5 d^2 vs MSE = d^2
}

// --- Optimizers ----------------------------------------------------------------

TEST(OptimizerTest, SgdStepMath) {
  Param p;
  p.value = Tensor::FromVector(1, 2, {1.0f, 2.0f});
  p.grad = Tensor::FromVector(1, 2, {0.5f, -1.0f});
  Sgd sgd(0.1f);
  sgd.Attach({&p});
  sgd.Step();
  EXPECT_FLOAT_EQ(p.value(0, 0), 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(p.value(0, 1), 2.0f + 0.1f);
}

TEST(OptimizerTest, StepBeforeAttachThrows) {
  Sgd sgd(0.1f);
  EXPECT_THROW(sgd.Step(), std::logic_error);
  Adam adam;
  EXPECT_THROW(adam.Step(), std::logic_error);
  Adadelta adadelta;
  EXPECT_THROW(adadelta.Step(), std::logic_error);
}

// A quadratic bowl: all optimizers must monotonically-ish reduce loss.
template <typename Opt>
double MinimizeQuadratic(Opt opt, int steps) {
  Param p;
  p.value = Tensor::FromVector(1, 2, {5.0f, -4.0f});
  p.grad = Tensor(1, 2);
  opt.Attach({&p});
  double loss = 0;
  for (int i = 0; i < steps; ++i) {
    loss = 0;
    for (int j = 0; j < 2; ++j) {
      loss += p.value.data()[j] * p.value.data()[j];
      p.grad.data()[j] = 2 * p.value.data()[j];
    }
    opt.Step();
  }
  return loss;
}

TEST(OptimizerTest, AllOptimizersReduceQuadratic) {
  EXPECT_LT(MinimizeQuadratic(Sgd(0.1f), 100), 1e-6);
  EXPECT_LT(MinimizeQuadratic(Adam(0.1f), 300), 1e-3);
  EXPECT_LT(MinimizeQuadratic(Adadelta(1.0f), 3000), 1.0);
}

// --- Autoencoder & trainer -----------------------------------------------------

TEST(AutoencoderTest, BuildsSymmetricStack) {
  AutoencoderSpec spec;
  spec.input_dim = 20;
  spec.encoder_dims = {16, 8};
  Sequential net = BuildAutoencoder(spec);
  Rng rng(19);
  net.InitParams(rng);
  Tensor x(3, 20, 0.5f);
  Tensor y = net.Forward(x, false);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 20u);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GE(y.data()[i], 0.0f);  // sigmoid output
    EXPECT_LE(y.data()[i], 1.0f);
  }
}

TEST(AutoencoderTest, InvalidSpecsThrow) {
  AutoencoderSpec spec;
  spec.input_dim = 0;
  EXPECT_THROW(BuildAutoencoder(spec), std::invalid_argument);
  spec.input_dim = 4;
  spec.encoder_dims = {};
  EXPECT_THROW(BuildAutoencoder(spec), std::invalid_argument);
}

TEST(AutoencoderTest, ScaledDimsFloorAtEight) {
  const auto dims = ScaledEncoderDims(8);
  EXPECT_EQ(dims, (std::vector<std::size_t>{64, 32, 16, 8}));
  const auto tiny = ScaledEncoderDims(1000);
  for (std::size_t d : tiny) EXPECT_EQ(d, 8u);
  EXPECT_THROW(ScaledEncoderDims(0), std::invalid_argument);
}

// The fundamental autoencoder property the whole paper rests on:
// reconstruction error is low for training-like data and high for
// out-of-distribution data.
TEST(TrainerTest, AnomalyScoresSeparate) {
  Rng rng(20);
  const std::size_t dim = 12;
  // Normal data: two prototype patterns + small noise.
  Tensor data(256, dim);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const bool pattern = r % 2 == 0;
    for (std::size_t c = 0; c < dim; ++c) {
      const float base = pattern ? (c < dim / 2 ? 0.8f : 0.2f)
                                 : (c < dim / 2 ? 0.2f : 0.8f);
      data(r, c) = base + 0.03f * static_cast<float>(rng.NextGaussian());
    }
  }
  AutoencoderSpec spec;
  spec.input_dim = dim;
  spec.encoder_dims = {16, 4};
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Adadelta opt(1.0f);
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  const auto history = TrainReconstruction(net, opt, data, cfg);
  EXPECT_LT(history.back().loss, history.front().loss);

  // Normal-like sample vs inverted (anomalous) sample.
  Tensor probe(2, dim);
  for (std::size_t c = 0; c < dim; ++c) {
    probe(0, c) = c < dim / 2 ? 0.8f : 0.2f;   // in-distribution
    probe(1, c) = c % 2 ? 0.95f : 0.05f;        // out-of-distribution
  }
  const auto errors = ReconstructionErrors(net, probe);
  EXPECT_LT(errors[0], errors[1]);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  auto run = [] {
    Rng rng(21);
    Tensor data = RandomTensor(64, 6, rng);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.data()[i] = std::fabs(data.data()[i]) * 0.2f;
    }
    AutoencoderSpec spec;
    spec.input_dim = 6;
    spec.encoder_dims = {8, 4};
    Sequential net = BuildAutoencoder(spec);
    net.InitParams(rng);
    Adadelta opt;
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.seed = 7;
    return TrainReconstruction(net, opt, data, cfg).back().loss;
  };
  EXPECT_FLOAT_EQ(run(), run());
}

TEST(TrainerTest, PartialFinalBatchLossIsPerSampleMean) {
  // 5 samples with batch size 2 -> batches of 2, 2 and 1. With a zero
  // learning rate the parameters never move, and without batch-norm the
  // per-sample predictions are independent of batch composition, so the
  // reported epoch loss must equal the whole-dataset MSE. The old
  // per-batch average over-weighted the final single-sample batch.
  Rng rng(33);
  Tensor data = RandomTensor(5, 3, rng);
  AutoencoderSpec spec;
  spec.input_dim = 3;
  spec.encoder_dims = {4};
  spec.batch_norm = false;
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Sgd opt(0.0f);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 2;
  const auto history = TrainReconstruction(net, opt, data, cfg);
  ASSERT_EQ(history.size(), 1u);

  Tensor pred = net.Forward(data, /*training=*/false);
  Tensor grad;
  const float expected = MseLoss(pred, data, grad);
  EXPECT_NEAR(history[0].loss, expected, 1e-6f);
}

TEST(SequentialTest, InferMatchesInferenceForward) {
  Rng rng(29);
  AutoencoderSpec spec;
  spec.input_dim = 10;
  spec.encoder_dims = {12, 6};
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  // Move batch-norm running statistics off their init values first.
  Tensor data = RandomTensor(32, 10, rng);
  net.Forward(data, true);

  Tensor probe = RandomTensor(4, 10, rng);
  Tensor y1 = net.Forward(probe, /*training=*/false);
  const Sequential& const_net = net;
  Sequential::InferScratch scratch;
  const Tensor& y2 = const_net.Infer(probe, scratch);
  ASSERT_TRUE(y1.SameShape(y2));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    // Bit-identical, not merely close: Infer promises the exact
    // arithmetic of the inference-mode Forward.
    EXPECT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(TrainerTest, EarlyStoppingHalts) {
  Rng rng(22);
  Tensor data(32, 4, 0.5f);  // constant data: converges immediately
  AutoencoderSpec spec;
  spec.input_dim = 4;
  spec.encoder_dims = {8, 4};
  spec.batch_norm = false;
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Adam opt(0.01f);
  TrainConfig cfg;
  cfg.epochs = 500;
  cfg.patience = 3;
  cfg.min_delta = 1e-7f;
  const auto history = TrainReconstruction(net, opt, data, cfg);
  EXPECT_LT(history.size(), 500u);
}

TEST(TrainerTest, EmptyDatasetThrows) {
  Sequential net;
  Adam opt;
  Tensor empty;
  EXPECT_THROW(TrainReconstruction(net, opt, empty, {}), std::invalid_argument);
}

// --- Serialization --------------------------------------------------------------

TEST(SerializeTest, RoundTripReproducesInference) {
  Rng rng(23);
  AutoencoderSpec spec;
  spec.input_dim = 10;
  spec.encoder_dims = {12, 6};
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  // Push some data through in training mode so running stats move.
  Tensor data = RandomTensor(32, 10, rng);
  net.Forward(data, true);

  std::stringstream ss;
  SaveAutoencoder(spec, net, ss);
  AutoencoderSpec loaded_spec;
  Sequential loaded = LoadAutoencoder(ss, loaded_spec);
  EXPECT_EQ(loaded_spec.input_dim, spec.input_dim);
  EXPECT_EQ(loaded_spec.encoder_dims, spec.encoder_dims);

  Tensor probe = RandomTensor(4, 10, rng);
  Tensor y1 = net.Forward(probe, false);
  Tensor y2 = loaded.Forward(probe, false);
  ASSERT_TRUE(y1.SameShape(y2));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream ss("garbage that is not a model");
  AutoencoderSpec spec;
  EXPECT_THROW(LoadAutoencoder(ss, spec), std::runtime_error);
}

TEST(SerializeTest, TruncatedStreamThrows) {
  Rng rng(24);
  AutoencoderSpec spec;
  spec.input_dim = 6;
  spec.encoder_dims = {8, 4};
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  std::stringstream ss;
  SaveAutoencoder(spec, net, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  AutoencoderSpec out;
  EXPECT_THROW(LoadAutoencoder(cut, out), std::runtime_error);
}

TEST(SerializeTest, ChecksumDetectsEveryByteFlip) {
  Rng rng(25);
  AutoencoderSpec spec;
  spec.input_dim = 3;
  spec.encoder_dims = {4, 2};
  spec.batch_norm = false;
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  std::stringstream ss;
  SaveAutoencoder(spec, net, ss);
  const std::string clean = ss.str();
  // Flip one bit at a spread of positions across the file; every one
  // must be caught (bad magic, bad size, or checksum mismatch) — never
  // silently loaded.
  for (std::size_t pos = 0; pos < clean.size(); pos += 7) {
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    std::stringstream in(corrupt);
    AutoencoderSpec out;
    EXPECT_THROW(LoadAutoencoder(in, out), std::runtime_error)
        << "byte " << pos;
  }
}

TEST(SerializeTest, LegacyV1PayloadStillLoads) {
  // A v1 file is the v1 magic followed by the raw payload; synthesize
  // one from a v2 save (v2 = magic + size + crc + same payload).
  Rng rng(26);
  AutoencoderSpec spec;
  spec.input_dim = 5;
  spec.encoder_dims = {6, 3};
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  std::stringstream ss;
  SaveAutoencoder(spec, net, ss);
  const std::string v2 = ss.str();
  const std::uint32_t v1_magic = 0xAC0BE001;
  std::string v1(reinterpret_cast<const char*>(&v1_magic), 4);
  v1 += v2.substr(12);  // skip v2 magic + size + crc
  std::stringstream in(v1);
  AutoencoderSpec out;
  Sequential loaded = LoadAutoencoder(in, out);
  EXPECT_EQ(out.input_dim, spec.input_dim);
  EXPECT_EQ(out.encoder_dims, spec.encoder_dims);
}

TEST(SerializeTest, HostileHeaderRejectedBeforeAllocation) {
  // input_dim = 0xFFFFFFFF must throw "implausible", not attempt a
  // multi-gigabyte BuildAutoencoder.
  const std::uint32_t v1_magic = 0xAC0BE001;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::string bytes(reinterpret_cast<const char*>(&v1_magic), 4);
  bytes.append(reinterpret_cast<const char*>(&huge), 4);
  bytes.append(64, '\0');
  std::stringstream in(bytes);
  AutoencoderSpec out;
  EXPECT_THROW(LoadAutoencoder(in, out), std::runtime_error);
}

TEST(TrainerTest, NonFiniteLossThrowsTrainingDiverged) {
  Rng rng(27);
  AutoencoderSpec spec;
  spec.input_dim = 4;
  spec.encoder_dims = {4, 2};
  spec.batch_norm = false;
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Tensor data = RandomTensor(16, 4, rng);
  data.data()[5] = std::numeric_limits<float>::quiet_NaN();
  Adam opt(0.01f);
  TrainConfig cfg;
  cfg.epochs = 3;
  EXPECT_THROW(TrainReconstruction(net, opt, data, cfg), TrainingDiverged);
}

TEST(TrainerTest, NonFiniteGuardCanBeDisabled) {
  Rng rng(27);
  AutoencoderSpec spec;
  spec.input_dim = 4;
  spec.encoder_dims = {4, 2};
  spec.batch_norm = false;
  Sequential net = BuildAutoencoder(spec);
  net.InitParams(rng);
  Tensor data = RandomTensor(16, 4, rng);
  data.data()[5] = std::numeric_limits<float>::quiet_NaN();
  Adam opt(0.01f);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.abort_on_nonfinite = false;
  const auto history = TrainReconstruction(net, opt, data, cfg);
  EXPECT_EQ(history.size(), 3u);
  EXPECT_TRUE(std::isnan(history.back().loss));
}

}  // namespace
}  // namespace acobe::nn
