#!/usr/bin/env python3
"""End-to-end check that the health plane is purely observational.

Generates a small dataset, then runs acobe_detect twice on it — once
with --health-out/--prom-out, once without — and asserts:

  - stdout is byte-identical between the two runs,
  - the --explain-out reports are byte-identical,
  - the --ledger-out ledgers are byte-identical after stripping the
    run_complete fields that are wall-clock-dependent by design
    (peak_rss_bytes, stages) — those differ between ANY two runs, with
    or without the health plane, so they are normalized, not ignored
    silently: the script still checks both ledgers carry them,
  - the heartbeat file validates under tools/check_health.py
    (--require-final), and acobe_top --once renders it,
  - the Prometheus exposition contains acobe_-prefixed samples and,
    when --check-prom is given, passes the full format 0.0.4 validator
    (tools/check_prom.py).

Usage:
    health_identity_test.py --gen GEN --detect DETECT --top TOP \
        --check-health CHECK_HEALTH_PY [--check-prom CHECK_PROM_PY]

Exit status 0 on pass, 1 on any mismatch or tool failure.
"""

import argparse
import json
import subprocess
import sys
import tempfile
import os


def run(cmd, stdout_path=None):
    if stdout_path is None:
        proc = subprocess.run(cmd, capture_output=True)
    else:
        with open(stdout_path, "wb") as out:
            proc = subprocess.run(cmd, stdout=out, stderr=subprocess.PIPE)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        raise RuntimeError(f"{' '.join(cmd)} exited {proc.returncode}")
    return proc


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def normalized_ledger(path):
    """Ledger lines with the run_complete wall-clock fields stripped.

    Returns (normalized_text, had_health_fields)."""
    lines = []
    had_fields = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("event") == "run_complete":
                had_fields = ("peak_rss_bytes" in event and "stages" in event)
                event.pop("peak_rss_bytes", None)
                event.pop("stages", None)
            lines.append(json.dumps(event, sort_keys=True))
    return "\n".join(lines), had_fields


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--gen", required=True)
    ap.add_argument("--detect", required=True)
    ap.add_argument("--top", required=True)
    ap.add_argument("--check-health", required=True)
    ap.add_argument("--check-prom", default=None)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="acobe-health-id-") as tmp:
        data = os.path.join(tmp, "data")
        os.makedirs(data)
        run([args.gen, f"--out={data}", "--users=12", "--departments=2",
             "--seed=11", "--rate=0.3", "--start=2010-01-02",
             "--end=2010-03-17"])

        def detect(tag, extra):
            out = os.path.join(tmp, f"{tag}.out")
            run([args.detect, f"--in={data}", "--train-end=2010-02-16",
                 "--epochs=2", "--threads=2",
                 f"--explain-out={os.path.join(tmp, tag + '.explain.json')}",
                 f"--ledger-out={os.path.join(tmp, tag + '.ledger.jsonl')}"]
                + extra, stdout_path=out)
            return out

        health = os.path.join(tmp, "health.jsonl")
        prom = os.path.join(tmp, "metrics.prom")
        plain_out = detect("plain", [])
        health_out = detect("health", [f"--health-out={health}",
                                       "--health-interval-ms=50",
                                       f"--prom-out={prom}"])

        if read_bytes(plain_out) != read_bytes(health_out):
            print("FAIL: stdout differs with the health plane on",
                  file=sys.stderr)
            return 1

        # The streaming path exercises the stage-re-entry logic (the
        # shard loop alternates replay <-> detect); check it too.
        stream_health = os.path.join(tmp, "stream.health.jsonl")
        stream_plain = detect("stream_plain", ["--stream", "--shards=3"])
        stream_on = detect("stream_health",
                           ["--stream", "--shards=3",
                            f"--health-out={stream_health}",
                            "--health-interval-ms=50"])
        if read_bytes(stream_plain) != read_bytes(stream_on):
            print("FAIL: streamed stdout differs with the health plane on",
                  file=sys.stderr)
            return 1
        run([sys.executable, args.check_health, stream_health,
             "--require-final"])
        if read_bytes(os.path.join(tmp, "plain.explain.json")) != \
                read_bytes(os.path.join(tmp, "health.explain.json")):
            print("FAIL: explain report differs with the health plane on",
                  file=sys.stderr)
            return 1
        plain_ledger, plain_has = normalized_ledger(
            os.path.join(tmp, "plain.ledger.jsonl"))
        health_ledger, health_has = normalized_ledger(
            os.path.join(tmp, "health.ledger.jsonl"))
        if not plain_has or not health_has:
            print("FAIL: run_complete lacks peak_rss_bytes/stages",
                  file=sys.stderr)
            return 1
        if plain_ledger != health_ledger:
            print("FAIL: normalized ledger differs with the health plane on",
                  file=sys.stderr)
            return 1

        run([sys.executable, args.check_health, health, "--require-final"])
        top = run([args.top, health, "--once"])
        rendered = top.stdout.decode(errors="replace")
        if "acobe-detect" not in rendered or "stage" not in rendered:
            print(f"FAIL: acobe_top render looks wrong:\n{rendered}",
                  file=sys.stderr)
            return 1
        prom_text = read_bytes(prom).decode(errors="replace")
        if "# TYPE acobe_" not in prom_text:
            print("FAIL: Prometheus exposition has no acobe_ samples",
                  file=sys.stderr)
            return 1
        if args.check_prom:
            run([sys.executable, args.check_prom, prom,
                 "--require-prefix=acobe_", "--min-samples=10"])

    print("health_identity_test: OK — output byte-identical with the "
          "health plane on; heartbeats, top render and prom export valid")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except RuntimeError as e:
        print(f"health_identity_test: {e}", file=sys.stderr)
        sys.exit(1)
