// Persistent-alert edge cases in the monitor: alert re-opening after a
// cooloff, a firing streak exactly at persistence_days, and a user
// still firing on the final grid day (the end-of-range flush).

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/monitor.h"

using namespace acobe;

namespace {

/// Single-aspect grid where `hot` tops the daily list exactly on
/// `hot_days` (user 0 tops it on every other day).
ScoreGrid GridWithHotDays(int users, int days, int hot,
                          const std::vector<int>& hot_days) {
  ScoreGrid grid({"a"}, users, 0, days);
  for (int d = 0; d < days; ++d) {
    grid.At(0, 0, d) = 0.30f;
    for (int u = 1; u < users; ++u) grid.At(0, u, d) = 0.10f - 0.01f * u;
  }
  for (int d : hot_days) grid.At(0, hot, d) = 1.0f;
  return grid;
}

std::vector<Alert> AlertsFor(const std::vector<Alert>& alerts, int user) {
  std::vector<Alert> mine;
  for (const Alert& a : alerts) {
    if (a.user_idx == user) mine.push_back(a);
  }
  return mine;
}

TEST(MonitorTest, AlertReopensAfterCooloff) {
  // User 1 fires on days 2..5, goes quiet for 6 days (past the 2-day
  // cooloff, closing the alert), then fires again on days 12..15: two
  // separate alerts, not one merged span.
  const ScoreGrid grid =
      GridWithHotDays(3, 20, 1, {2, 3, 4, 5, 12, 13, 14, 15});
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  cfg.cooloff_days = 2;
  const auto mine = AlertsFor(FindPersistentAlerts(grid, cfg), 1);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].first_day, 2);
  EXPECT_EQ(mine[0].last_day, 5);
  EXPECT_EQ(mine[0].firing_days, 4);
  EXPECT_EQ(mine[1].first_day, 12);
  EXPECT_EQ(mine[1].last_day, 15);
  EXPECT_EQ(mine[1].firing_days, 4);
}

TEST(MonitorTest, StreakExactlyAtPersistenceOpensAlert) {
  // persistence_days = 3: a 3-day streak opens (backdated to the
  // streak's first day), a 2-day streak does not.
  const ScoreGrid grid = GridWithHotDays(3, 16, 1, {4, 5, 6, 10, 11});
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 3;
  cfg.cooloff_days = 2;
  const auto mine = AlertsFor(FindPersistentAlerts(grid, cfg), 1);
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0].first_day, 4);
  EXPECT_EQ(mine[0].last_day, 6);
  EXPECT_EQ(mine[0].firing_days, 3);
}

TEST(MonitorTest, AlertOpenOnFinalDayIsStillEmitted) {
  // User 1's streak runs through the last grid day, so the alert never
  // sees a cooloff; the end-of-range flush must still emit it.
  const ScoreGrid grid = GridWithHotDays(3, 10, 1, {7, 8, 9});
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  cfg.cooloff_days = 2;
  const auto mine = AlertsFor(FindPersistentAlerts(grid, cfg), 1);
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0].first_day, 7);
  EXPECT_EQ(mine[0].last_day, 9);  // == day_end() - 1
  EXPECT_EQ(mine[0].firing_days, 3);
}

TEST(MonitorTest, QuietGapShorterThanCooloffKeepsAlertOpen) {
  // A 1-day dip inside a 2-day cooloff must not split the alert; the
  // dip day is not counted as a firing day.
  const ScoreGrid grid = GridWithHotDays(3, 14, 1, {3, 4, 5, 7, 8});
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  cfg.cooloff_days = 2;
  const auto mine = AlertsFor(FindPersistentAlerts(grid, cfg), 1);
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0].first_day, 3);
  EXPECT_EQ(mine[0].last_day, 8);
  EXPECT_EQ(mine[0].firing_days, 5);
}

TEST(MonitorTest, CooloffSpanningSaveLoadClosesIdentically) {
  // Regression for the resident service's restart path: an alert whose
  // cooloff straddles a Save/Load boundary must close on the same day
  // with the same span as an uninterrupted tracker. User 0 fires days
  // 2..4; the process "restarts" after day 5 (one quiet day into a
  // 2-day cooloff); day 6 is quiet and completes the cooloff.
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  cfg.cooloff_days = 2;
  auto fired_on = [](int day) {
    return std::vector<bool>{day >= 2 && day <= 4, false};
  };

  MonitorState uninterrupted(cfg);
  std::vector<Alert> expect;
  for (int d = 0; d <= 6; ++d) {
    uninterrupted.AdvanceDay(d, fired_on(d), nullptr, &expect);
  }

  MonitorState before(cfg);
  std::vector<Alert> got;
  for (int d = 0; d <= 5; ++d) before.AdvanceDay(d, fired_on(d), nullptr, &got);
  EXPECT_TRUE(got.empty());  // still cooling off at the save point
  ASSERT_EQ(before.OpenAlerts().size(), 1u);

  std::stringstream snapshot;
  before.Save(snapshot);
  MonitorState after = MonitorState::Load(snapshot);
  EXPECT_EQ(after.last_day(), 5);
  ASSERT_EQ(after.OpenAlerts().size(), 1u);
  after.AdvanceDay(6, fired_on(6), nullptr, &got);

  ASSERT_EQ(expect.size(), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].user_idx, expect[0].user_idx);
  EXPECT_EQ(got[0].first_day, expect[0].first_day);
  EXPECT_EQ(got[0].last_day, expect[0].last_day);
  EXPECT_EQ(got[0].firing_days, expect[0].firing_days);
  EXPECT_EQ(got[0].first_day, 2);
  EXPECT_EQ(got[0].last_day, 4);
  EXPECT_EQ(got[0].firing_days, 3);
  EXPECT_TRUE(after.OpenAlerts().empty());
}

}  // namespace
