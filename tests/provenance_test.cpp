// Tests for the detection-provenance layer: sample-cell decoding
// (DescribeCell), per-detection attribution (core/attribution.h),
// score-drift telemetry (core/drift.h), the run ledger
// (common/ledger.h) and the JSON reader that round-trips it
// (common/json.h). The headline contracts pinned here:
//   - attribution names the planted cell in a golden scenario;
//   - enabling attribution/drift leaves scores bit-identical;
//   - a ledger written by LedgerEvent parses back field-for-field.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "behavior/compound_matrix.h"
#include "behavior/deviation.h"
#include "common/json.h"
#include "common/ledger.h"
#include "common/rng.h"
#include "core/attribution.h"
#include "core/critic.h"
#include "core/detector.h"
#include "core/drift.h"
#include "core/ensemble.h"
#include "eval/report.h"

namespace acobe {
namespace {

const Date kStart(2010, 1, 4);

// --- DescribeCell -----------------------------------------------------------

// A compound builder over 2 features, 2 frames, 3 enclosed days, with a
// group half: DescribeCell must invert Build's
// [component][feature][day][frame] flattening for every flat index.
TEST(DescribeCellTest, InvertsCompoundLayout) {
  const int kFeatures = 2, kFrames = 2, kDays = 3;
  MeasurementCube cube(kStart, 30, kFeatures, kFrames);
  const int a = cube.RegisterUser(1);
  const int b = cube.RegisterUser(2);
  Rng rng(17);
  for (int u : {a, b}) {
    for (int f = 0; f < kFeatures; ++f) {
      for (int d = 0; d < 30; ++d) {
        for (int t = 0; t < kFrames; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(4.0));
        }
      }
    }
  }
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.matrix_days = kDays;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  const std::vector<int> member_indices = {a, b};
  const auto mean = GroupMeanSeries(cube, member_indices);
  std::vector<DeviationSeries> groups;
  groups.push_back(
      DeviationSeries::ComputeFromSeries(mean, kFeatures, 30, kFrames, cfg));
  const CompoundMatrixBuilder builder(&dev, std::move(groups), {0, 0});

  const std::size_t flat = builder.FlatSize(kFeatures);
  ASSERT_EQ(flat, static_cast<std::size_t>(2 * kFeatures * kDays * kFrames));
  EXPECT_EQ(builder.SampleWindowDays(), kDays);
  std::size_t i = 0;
  for (int component = 0; component < 2; ++component) {
    for (int f = 0; f < kFeatures; ++f) {
      for (int d = 0; d < kDays; ++d) {
        for (int t = 0; t < kFrames; ++t, ++i) {
          const SampleCellRef ref = builder.DescribeCell(i, kFeatures);
          EXPECT_EQ(ref.component, component) << "flat " << i;
          EXPECT_EQ(ref.feature_pos, f) << "flat " << i;
          EXPECT_EQ(ref.day_offset, d) << "flat " << i;
          EXPECT_EQ(ref.frame, t) << "flat " << i;
        }
      }
    }
  }
  EXPECT_EQ(i, flat);
}

TEST(DescribeCellTest, DefaultIsFlatFeatureAxis) {
  // The base-class default (used by NormalizedDayBuilder) treats the
  // sample as one flat feature axis over a single day.
  class Flat : public SampleBuilder {
   public:
    std::vector<float> BuildSample(int, std::span<const int>,
                                   int) const override {
      return {};
    }
    std::size_t SampleSize(std::size_t n) const override { return n; }
    int FirstValidDay() const override { return 0; }
    int EndDay() const override { return 1; }
  } flat;
  const SampleCellRef ref = flat.DescribeCell(3, 8);
  EXPECT_EQ(ref.component, 0);
  EXPECT_EQ(ref.feature_pos, 3);
  EXPECT_EQ(ref.day_offset, 0);
  EXPECT_EQ(ref.frame, 0);
  EXPECT_EQ(flat.SampleWindowDays(), 1);
}

// --- Attribution ------------------------------------------------------------

EnsembleConfig TinyEnsembleConfig() {
  EnsembleConfig cfg;
  cfg.encoder_dims = {8, 4};
  cfg.train.epochs = 8;
  cfg.train.batch_size = 16;
  cfg.seed = 7;
  cfg.threads = 1;
  return cfg;
}

// Golden scenario: every user repeats the same deterministic weekly
// ripple, so deviations hover near zero — except user 0, who goes wild
// on feature 1 for a few test-window days. Attribution of the
// top-ranked user must name that feature on those days.
TEST(AttributionTest, NamesThePlantedCell) {
  const int kUsers = 4, kDaysTotal = 40;
  MeasurementCube cube(kStart, kDaysTotal, 2, 1);
  for (int u = 0; u < kUsers; ++u) {
    cube.RegisterUser(100 + u);
    for (int d = 0; d < kDaysTotal; ++d) {
      cube.At(u, 0, d, 0) = static_cast<float>(5 + d % 3);
      cube.At(u, 1, d, 0) = static_cast<float>(2 + d % 2);
    }
  }
  for (int d = 32; d <= 36; ++d) cube.At(0, 1, d, 0) = 80.0f;  // the plant

  DeviationConfig dcfg;
  dcfg.omega = 10;
  dcfg.matrix_days = 5;
  dcfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, dcfg);
  const CompoundMatrixBuilder builder(&dev, {}, {});

  // One aspect over both features.
  const FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "x", 1.0}});
  AspectEnsemble ensemble(catalog.aspects(), TinyEnsembleConfig());
  ensemble.Train(builder, kUsers, builder.FirstValidDay(), 30);
  const ScoreGrid grid = ensemble.Score(builder, kUsers, 30, kDaysTotal);
  const auto list = RankUsers(grid, 1);
  ASSERT_FALSE(list.empty());
  ASSERT_EQ(list[0].user_idx, 0);  // the planted user ranks first

  AttributionConfig acfg;
  acfg.enabled = true;
  acfg.top_users = 1;
  acfg.top_cells = 3;
  const auto attr = AttributeDetections(ensemble, builder, grid, list, acfg);
  ASSERT_EQ(attr.size(), 1u);
  EXPECT_EQ(attr[0].user_idx, 0);
  EXPECT_DOUBLE_EQ(attr[0].priority, list[0].priority);
  ASSERT_EQ(attr[0].aspects.size(), 1u);
  const AspectAttribution& aa = attr[0].aspects[0];
  EXPECT_EQ(aa.aspect_name, "x");
  EXPECT_GT(aa.total_error, 0.0f);
  // Peak day is the grid argmax for (aspect 0, user 0).
  float best = -1.0f;
  int best_day = -1;
  for (int d = grid.day_begin(); d < grid.day_end(); ++d) {
    if (grid.At(0, 0, d) > best) best = grid.At(0, 0, d), best_day = d;
  }
  EXPECT_EQ(aa.peak_day, best_day);
  EXPECT_FLOAT_EQ(aa.peak_score, best);
  ASSERT_EQ(aa.cells.size(), 3u);
  // Descending error, shares normalized against the sample total.
  for (std::size_t i = 1; i < aa.cells.size(); ++i) {
    EXPECT_GE(aa.cells[i - 1].error, aa.cells[i].error);
  }
  const AttributedCell& top = aa.cells[0];
  EXPECT_EQ(top.feature_pos, 1);  // the planted feature
  EXPECT_GE(top.day, 32);         // inside the planted day range
  EXPECT_LE(top.day, 36);
  EXPECT_FALSE(top.group);  // no group half in this builder
  EXPECT_FALSE(top.has_group_input);
  EXPECT_GT(top.share, 0.0f);
  EXPECT_LE(top.share, 1.0f);
  // day = peak_day - window + 1 + day_offset.
  EXPECT_EQ(top.day, aa.peak_day - builder.SampleWindowDays() + 1 +
                         top.day_offset);
  EXPECT_EQ(aa.group_error_fraction, 0.0f);
}

TEST(AttributionTest, DisabledOrEmptyListYieldsNothing) {
  ScoreGrid grid({"x"}, 2, 0, 3);
  MeasurementCube cube(kStart, 20, 1, 1);
  cube.RegisterUser(1);
  DeviationConfig dcfg;
  dcfg.omega = 5;
  dcfg.matrix_days = 3;
  dcfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, dcfg);
  const CompoundMatrixBuilder builder(&dev, {}, {});
  const FeatureCatalog catalog({{"f0", "x", 1.0}});
  AspectEnsemble ensemble(catalog.aspects(), TinyEnsembleConfig());
  AttributionConfig off;  // enabled = false
  EXPECT_TRUE(
      AttributeDetections(ensemble, builder, grid, {{0, 1.0}}, off).empty());
  AttributionConfig on;
  on.enabled = true;
  EXPECT_TRUE(AttributeDetections(ensemble, builder, grid, {}, on).empty());
}

// The core provenance contract: turning attribution + drift on changes
// neither the score grid nor the investigation list.
TEST(AttributionTest, EnablingProvenanceKeepsScoresBitIdentical) {
  MeasurementCube cube(kStart, 50, 2, 1);
  Rng rng(77);
  std::vector<UserId> members;
  for (int u = 0; u < 5; ++u) {
    members.push_back(200 + u);
    cube.RegisterUser(members.back());
    for (int d = 0; d < 50; ++d) {
      cube.At(u, 0, d, 0) = static_cast<float>(rng.NextPoisson(5.0));
      cube.At(u, 1, d, 0) = static_cast<float>(rng.NextPoisson(3.0));
    }
  }
  const FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});

  DetectorSpec spec;
  spec.deviation.omega = 10;
  spec.deviation.matrix_days = 5;
  spec.ensemble = TinyEnsembleConfig();
  spec.ensemble.train.epochs = 4;
  spec.critic_votes = 2;
  spec.score_top_k_days = 3;

  const auto run = [&](bool provenance) {
    DetectorSpec s = spec;
    s.attribution.enabled = provenance;
    s.drift.enabled = provenance;
    return Detector(s).Run(cube, catalog, members, 0, 40, 40, 50);
  };
  const DetectionOutput off = run(false);
  const DetectionOutput on = run(true);

  EXPECT_EQ(off.grid.Digest(), on.grid.Digest());
  ASSERT_EQ(off.list.size(), on.list.size());
  for (std::size_t i = 0; i < off.list.size(); ++i) {
    EXPECT_EQ(off.list[i].user_idx, on.list[i].user_idx);
    EXPECT_DOUBLE_EQ(off.list[i].priority, on.list[i].priority);
  }
  // Off: no provenance products. On: both filled.
  EXPECT_TRUE(off.attributions.empty());
  EXPECT_TRUE(off.drift.empty());
  EXPECT_FALSE(on.attributions.empty());
  EXPECT_FALSE(on.drift.empty());
  // Train summaries are always recorded.
  ASSERT_EQ(off.train_summaries.size(), 2u);
  EXPECT_TRUE(off.train_summaries[0].ok);
  EXPECT_EQ(off.train_summaries[0].name, "x");
  EXPECT_GT(off.train_summaries[0].epochs, 0);
  EXPECT_EQ(off.train_summaries[0].epoch_losses.size(),
            static_cast<std::size_t>(off.train_summaries[0].epochs));
}

// --- Drift ------------------------------------------------------------------

TEST(DriftTest, NearestRankQuantile) {
  std::vector<double> v;
  for (int i = 10; i >= 1; --i) v.push_back(i);  // 10..1, unsorted input
  EXPECT_DOUBLE_EQ(NearestRankQuantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(NearestRankQuantile(v, 0.9), 9.0);
  EXPECT_DOUBLE_EQ(NearestRankQuantile(v, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(NearestRankQuantile(v, 0.0), 1.0);   // clamped to min
  EXPECT_DOUBLE_EQ(NearestRankQuantile(v, 1.0), 10.0);  // max
  EXPECT_DOUBLE_EQ(NearestRankQuantile({}, 0.5), 0.0);  // empty
  EXPECT_DOUBLE_EQ(NearestRankQuantile({3.5}, 0.25), 3.5);
}

TEST(DriftTest, NearZeroReferenceNeedsAbsoluteShiftToAlert) {
  // Sparse aspects commonly have a reference median of ~0; any tiny
  // numeric wobble then explodes the *relative* shift. The absolute
  // floor keeps those from becoming a false-alert storm.
  ScoreGrid reference({"sparse"}, 4, 0, 10);
  ScoreGrid current({"sparse"}, 4, 10, 20);
  for (int u = 0; u < 4; ++u) {
    for (int d = 0; d < 10; ++d) {
      reference.At(0, u, d) = 1e-9f;
      current.At(0, u, 10 + d) = 5e-8f;  // 50x relative, ~5e-8 absolute
    }
  }
  DriftConfig cfg;
  cfg.enabled = true;
  const auto drift = ComputeScoreDrift(reference, current, cfg);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_FALSE(drift[0].alert);
  for (const QuantileShift& s : drift[0].shifts) EXPECT_FALSE(s.alert);

  // Dropping the floor restores the storm, proving the floor is what
  // suppressed it.
  cfg.min_abs_shift = 0.0;
  const auto noisy = ComputeScoreDrift(reference, current, cfg);
  ASSERT_EQ(noisy.size(), 1u);
  EXPECT_TRUE(noisy[0].alert);
}

TEST(DriftTest, GaugeNamesAreCompact) {
  EXPECT_EQ(DriftGaugeName("device", 0.5), "drift.device.q50");
  EXPECT_EQ(DriftGaugeName("device", 0.9), "drift.device.q90");
  EXPECT_EQ(DriftGaugeName("device", 0.99), "drift.device.q99");
  EXPECT_EQ(DriftGaugeName("device", 0.995), "drift.device.q99.5");
  // 0.29 * 100 is 28.999... in binary floating point; the name must
  // round to the integer, not trail a spurious ".0".
  EXPECT_EQ(DriftGaugeName("device", 0.29), "drift.device.q29");
  EXPECT_EQ(DriftGaugeName("http", 0.999), "drift.http.q99.9");
}

TEST(DriftTest, ShiftedDistributionRaisesAlert) {
  // Reference scores ~1.0; current scores doubled: every quantile
  // shifts by +100%, far past the 25% threshold.
  ScoreGrid reference({"device", "http"}, 3, 0, 10);
  ScoreGrid current({"device", "http"}, 3, 10, 20);
  Rng rng(5);
  for (int a = 0; a < 2; ++a) {
    for (int u = 0; u < 3; ++u) {
      for (int d = 0; d < 10; ++d) {
        const float v = 0.9f + 0.02f * static_cast<float>(rng.NextPoisson(5));
        reference.At(a, u, d) = v;
        current.At(a, u, 10 + d) = a == 0 ? 2.0f * v : v;  // only device moves
      }
    }
  }
  DriftConfig cfg;
  cfg.enabled = true;
  const auto drift = ComputeScoreDrift(reference, current, cfg);
  ASSERT_EQ(drift.size(), 2u);
  EXPECT_EQ(drift[0].aspect_name, "device");
  EXPECT_TRUE(drift[0].alert);
  ASSERT_EQ(drift[0].shifts.size(), 3u);
  for (const QuantileShift& s : drift[0].shifts) {
    EXPECT_NEAR(s.rel_shift, 1.0, 0.05);
    EXPECT_TRUE(s.alert);
    EXPECT_GT(s.current, s.reference);
  }
  EXPECT_EQ(drift[1].aspect_name, "http");
  EXPECT_FALSE(drift[1].alert);  // unmoved aspect stays quiet
  for (const QuantileShift& s : drift[1].shifts) {
    EXPECT_NEAR(s.rel_shift, 0.0, 0.05);
  }
}

TEST(DriftTest, DisabledAndUnmatchedAspects) {
  ScoreGrid reference({"a"}, 2, 0, 5);
  ScoreGrid current({"a", "b"}, 2, 5, 10);
  DriftConfig off;  // enabled = false
  EXPECT_TRUE(ComputeScoreDrift(reference, current, off).empty());
  DriftConfig on;
  on.enabled = true;
  // Aspect "b" has no reference counterpart and is skipped.
  const auto drift = ComputeScoreDrift(reference, current, on);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_EQ(drift[0].aspect_name, "a");
}

// --- Ledger -----------------------------------------------------------------

TEST(LedgerTest, EventsRoundTripThroughJson) {
  RunLedger ledger;
  {
    LedgerEvent manifest = MakeManifestEvent("unit-test", GetBuildInfo());
    manifest.Str("in", "/tmp/data \"quoted\"\npath");  // exercises escaping
    manifest.Int("seed", 42);
    manifest.Bool("resume", false);
    ledger.Append(manifest);
  }
  {
    LedgerEvent trained("aspect_trained");
    trained.Str("aspect", "http");
    trained.Int("attempts", 2);
    trained.Num("final_loss", 0.125);
    const std::vector<float> losses = {1.0f, 0.5f, 0.125f};
    trained.NumList("epoch_losses", losses);
    const std::vector<std::string> degraded = {"ldap", "file"};
    trained.StrList("degraded", degraded);
    trained.Raw("extra", "{\"k\":[1,2]}");
    ledger.Append(trained);
  }
  ledger.Append(LedgerEvent("run_complete").Int("events", 3));
  EXPECT_EQ(ledger.event_count(), 3u);

  std::ostringstream out;
  ledger.WriteTo(out);
  const auto events = json::ParseLines(out.str());
  ASSERT_EQ(events.size(), 3u);

  const json::Value& manifest = events[0];
  EXPECT_EQ(manifest.GetString("schema", ""), "acobe.ledger.v1");
  EXPECT_EQ(manifest.GetString("event", ""), "manifest");
  EXPECT_EQ(manifest.GetString("tool", ""), "unit-test");
  EXPECT_EQ(manifest.GetString("in", ""), "/tmp/data \"quoted\"\npath");
  EXPECT_DOUBLE_EQ(manifest.GetNumber("seed", -1), 42.0);
  EXPECT_FALSE(manifest.GetBool("resume", true));
  const json::Value* build = manifest.Get("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->GetString("version", ""), kAcobeVersion);

  const json::Value& trained = events[1];
  EXPECT_EQ(trained.GetString("event", ""), "aspect_trained");
  EXPECT_DOUBLE_EQ(trained.GetNumber("final_loss", 0), 0.125);
  const json::Value* losses = trained.Get("epoch_losses");
  ASSERT_NE(losses, nullptr);
  ASSERT_EQ(losses->size(), 3u);
  EXPECT_DOUBLE_EQ((*losses)[2].AsNumber(), 0.125);
  const json::Value* degraded = trained.Get("degraded");
  ASSERT_NE(degraded, nullptr);
  ASSERT_EQ(degraded->size(), 2u);
  EXPECT_EQ((*degraded)[0].AsString(), "ldap");
  const json::Value* extra = trained.Get("extra");
  ASSERT_NE(extra, nullptr);
  ASSERT_TRUE(extra->is_object());
  EXPECT_DOUBLE_EQ((*extra->Get("k"))[1].AsNumber(), 2.0);

  EXPECT_EQ(events[2].GetString("event", ""), "run_complete");
}

TEST(LedgerTest, WriteFileIsWholeAndReparsable) {
  const std::string path = ::testing::TempDir() + "/acobe_ledger_test.jsonl";
  RunLedger ledger;
  ledger.Append(MakeManifestEvent("unit-test", GetBuildInfo()));
  ledger.Append(LedgerEvent("run_complete").Int("events", 2));
  ASSERT_TRUE(ledger.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto events = json::ParseLines(buf.str());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].GetString("schema", ""), "acobe.ledger.v1");
  std::remove(path.c_str());
}

// --- JSON reader ------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  const auto doc = json::Value::Parse(
      "{\"a\": [1, 2.5, -3e2], \"s\": \"h\\u0041\\n\", \"o\": {\"b\": true},"
      " \"n\": null}");
  ASSERT_TRUE(doc.is_object());
  const json::Value* a = doc.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ((*a)[2].AsNumber(), -300.0);
  EXPECT_EQ(doc.GetString("s", ""), "hA\n");
  EXPECT_TRUE(doc.Get("o")->GetBool("b", false));
  EXPECT_TRUE(doc.Get("n")->is_null());
  EXPECT_EQ(doc.Get("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::Parse("{\"a\": }"), json::ParseError);
  EXPECT_THROW(json::Value::Parse("[1, 2"), json::ParseError);
  EXPECT_THROW(json::Value::Parse("{} trailing"), json::ParseError);
  EXPECT_THROW(json::Value::Parse(""), json::ParseError);
  EXPECT_THROW(json::Value::Parse("nul"), json::ParseError);
  // Type mismatches throw logic errors, not silent coercions.
  const auto doc = json::Value::Parse("{\"x\": 1}");
  EXPECT_THROW(doc.Get("x")->AsString(), std::logic_error);
  EXPECT_THROW(doc.AsNumber(), std::logic_error);
}

TEST(JsonTest, ParseLinesSkipsBlanksAndReportsBadLine) {
  const auto events = json::ParseLines("{\"a\":1}\n\n{\"b\":2}\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[1].GetNumber("b", 0), 2.0);
  EXPECT_THROW(json::ParseLines("{\"a\":1}\n{oops\n"), json::ParseError);
}

}  // namespace
}  // namespace acobe
