// Telemetry registry unit tests plus the key regression the
// observability layer must never break: enabling metrics and tracing
// does not perturb detection results — the ScoreGrid and investigation
// list are bit-identical with telemetry on or off, serial or parallel.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "behavior/normalized_day.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/critic.h"
#include "core/ensemble.h"
#include "features/measurement_cube.h"

using namespace acobe;

namespace {

/// Every test leaves the process-wide flags off and the registry clean.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::ResetTelemetry();
    telemetry::EnableMetrics(false);
    telemetry::EnableTracing(false);
  }
  void TearDown() override {
    telemetry::EnableMetrics(false);
    telemetry::EnableTracing(false);
    telemetry::ResetTelemetry();
  }
};

TEST_F(TelemetryTest, CounterGaugeBasics) {
  telemetry::Counter& c = telemetry::GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same object.
  EXPECT_EQ(&c, &telemetry::GetCounter("test.counter"));

  telemetry::Gauge& g = telemetry::GetGauge("test.gauge");
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(7.0);  // higher: wins
  EXPECT_DOUBLE_EQ(g.value(), 7.0);

  telemetry::ResetTelemetry();
  // References stay valid after reset; values are zeroed in place.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(TelemetryTest, HistogramNearestRankPercentiles) {
  telemetry::Histogram& h = telemetry::GetHistogram("test.hist");
  for (int v = 1; v <= 100; ++v) h.Record(v);
  const auto stats = h.Snapshot();
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean, 50.5);
  // Nearest-rank: index ceil(p/100 * 100) over the sorted samples.
  EXPECT_DOUBLE_EQ(stats.p50, 50.0);
  EXPECT_DOUBLE_EQ(stats.p95, 95.0);
  EXPECT_DOUBLE_EQ(stats.p99, 99.0);

  telemetry::Histogram& single = telemetry::GetHistogram("test.hist1");
  single.Record(7.0);
  const auto one = single.Snapshot();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.p50, 7.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);
}

TEST_F(TelemetryTest, MacrosAreInertWhenDisabled) {
  ASSERT_FALSE(telemetry::MetricsEnabled());
  ACOBE_COUNT("test.disabled_counter", 5);
  ACOBE_HISTOGRAM("test.disabled_hist", 1.0);
  EXPECT_EQ(telemetry::GetCounter("test.disabled_counter").value(), 0u);
  EXPECT_EQ(telemetry::GetHistogram("test.disabled_hist").Snapshot().count,
            0u);
}

TEST_F(TelemetryTest, MacrosRecordWhenEnabled) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  ACOBE_COUNT("test.macro_counter", 2);
  ACOBE_COUNT("test.macro_counter", 3);
  ACOBE_GAUGE_MAX("test.macro_gauge", 9);
  ACOBE_HISTOGRAM("test.macro_hist", 1.25);
  EXPECT_EQ(telemetry::GetCounter("test.macro_counter").value(), 5u);
  EXPECT_DOUBLE_EQ(telemetry::GetGauge("test.macro_gauge").value(), 9.0);
  EXPECT_EQ(telemetry::GetHistogram("test.macro_hist").Snapshot().count, 1u);
}

TEST_F(TelemetryTest, ConcurrentRecordingFromParallelFor) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  ParallelFor(0, 1000, 4, [](int i) {
    ACOBE_COUNT("test.parallel_counter", 1);
    telemetry::GetHistogram("test.parallel_hist").Record(i);
  });
  EXPECT_EQ(telemetry::GetCounter("test.parallel_counter").value(), 1000u);
  const auto stats = telemetry::GetHistogram("test.parallel_hist").Snapshot();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 999.0);
}

TEST_F(TelemetryTest, MetricsJsonShape) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  ACOBE_COUNT("test.json_counter", 3);
  telemetry::GetSeries("test.json_series").Append(0.5);
  telemetry::GetSeries("test.json_series").Append(0.25);
  std::ostringstream out;
  telemetry::WriteMetricsJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"acobe.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_series\": [0.5, 0.25]"),
            std::string::npos);
  // Balanced braces as a cheap well-formedness proxy (a real parse is
  // exercised end-to-end by the CLI acceptance run).
  long depth = 0;
  for (char ch : json) depth += (ch == '{') - (ch == '}');
  EXPECT_EQ(depth, 0);
}

TEST_F(TelemetryTest, TraceSpansCarryWorkerThreadAttribution) {
  telemetry::EnableTracing(true);
  if (!telemetry::TracingEnabled()) GTEST_SKIP() << "telemetry compiled out";
  {
    telemetry::TraceSpan outer("test.outer");
    ParallelFor(0, 8, 4, [](int) {
      telemetry::TraceSpan inner("test.inner");
    });
  }
  std::ostringstream out;
  telemetry::WriteTraceJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // The ParallelFor workers are fresh threads, so inner spans must land
  // on at least two distinct tids alongside the caller's.
  std::vector<int> tids;
  for (std::size_t pos = json.find("\"tid\": "); pos != std::string::npos;
       pos = json.find("\"tid\": ", pos + 1)) {
    const int tid = std::atoi(json.c_str() + pos + 7);
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  }
  EXPECT_GE(tids.size(), 2u);
}

// --- Determinism regression -----------------------------------------------

MeasurementCube SyntheticCube(int users, int days, int features, int frames) {
  MeasurementCube cube(Date(2010, 1, 2), days, features, frames);
  Rng rng(17);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(u);
    for (int f = 0; f < features; ++f) {
      for (int d = 0; d < days; ++d) {
        for (int t = 0; t < frames; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(3.0));
        }
      }
    }
  }
  return cube;
}

ScoreGrid TrainAndScore(const SampleBuilder& builder, int users,
                        int threads) {
  EnsembleConfig cfg;
  cfg.encoder_dims = {16, 8};
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 1e-3f;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 16;
  cfg.threads = threads;
  AspectEnsemble ensemble({{"a0", {0, 1, 2}}, {"a1", {3, 4, 5}}}, cfg);
  ensemble.Train(builder, users, 0, 30);
  return ensemble.Score(builder, users, 30, 50);
}

void ExpectIdentical(const ScoreGrid& a, const ScoreGrid& b) {
  ASSERT_EQ(a.aspects(), b.aspects());
  ASSERT_EQ(a.users(), b.users());
  ASSERT_EQ(a.day_begin(), b.day_begin());
  ASSERT_EQ(a.day_end(), b.day_end());
  for (int s = 0; s < a.aspects(); ++s) {
    for (int u = 0; u < a.users(); ++u) {
      for (int d = a.day_begin(); d < a.day_end(); ++d) {
        ASSERT_EQ(a.At(s, u, d), b.At(s, u, d))
            << "aspect " << s << " user " << u << " day " << d;
      }
    }
  }
  const auto list_a = RankUsers(a, 2);
  const auto list_b = RankUsers(b, 2);
  ASSERT_EQ(list_a.size(), list_b.size());
  for (std::size_t i = 0; i < list_a.size(); ++i) {
    EXPECT_EQ(list_a[i].user_idx, list_b[i].user_idx);
    EXPECT_EQ(list_a[i].priority, list_b[i].priority);
  }
}

TEST_F(TelemetryTest, ResultsBitIdenticalWithTelemetryOnOrOff) {
  const int users = 8;
  const MeasurementCube cube = SyntheticCube(users, 50, 6, 2);
  NormalizedDayBuilder builder(&cube, 0, 30);

  for (int threads : {1, 4}) {
    telemetry::EnableMetrics(false);
    telemetry::EnableTracing(false);
    const ScoreGrid off = TrainAndScore(builder, users, threads);

    telemetry::EnableMetrics(true);
    telemetry::EnableTracing(true);
    const ScoreGrid on = TrainAndScore(builder, users, threads);

    ExpectIdentical(off, on);
  }
}

}  // namespace
