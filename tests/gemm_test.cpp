// Determinism and performance-contract tests for the blocked NN math
// core (src/nn/gemm.cpp):
//   - the blocked/vectorized kernels must be BIT-identical to the scalar
//     reference kernels for every shape class (interior tiles, row/col
//     edges, k = 1, vector widths straddling the 4x16 micro-tile);
//   - Tensor::ResizeUninit semantics (capacity-reusing, no zero-fill);
//   - golden-value regressions pinning the training loop and the full
//     ensemble train/score pipeline to the pre-refactor seed outputs, at
//     1 and 4 threads, with telemetry off and on;
//   - the zero-allocation guarantee of the training epoch loop.

#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <new>

#include "behavior/normalized_day.h"
#include "common/parallel.h"
#include "nn/backend.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/critic.h"
#include "core/ensemble.h"
#include "features/measurement_cube.h"
#include "nn/autoencoder.h"
#include "nn/gemm.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "nn/tensor.h"
#include "nn/trainer.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing operator new program-wide lets the
// allocation test observe every heap allocation the epoch loop performs.
// ---------------------------------------------------------------------------

static std::atomic<std::uint64_t> g_alloc_calls{0};

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1)) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace acobe::nn {
namespace {

std::uint32_t Bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

Tensor RandomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

// Roughly half-zero data: exercises the reference kernels' zero-skip
// branch, whose bit-equivalence to the always-accumulate blocked path
// rests on signed-zero reasoning (see gemm.h) and so deserves a test.
Tensor SparseTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.NextBernoulli(0.5)
                      ? 0.0f
                      : static_cast<float>(rng.NextGaussian());
  }
  return t;
}

void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const char* what, std::size_t m, std::size_t k,
                        std::size_t n) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(Bits(got.data()[i]), Bits(want.data()[i]))
        << what << " m=" << m << " k=" << k << " n=" << n << " elem " << i;
  }
}

// Bitwise parity and the golden regressions only hold for bit-exact
// backends ("default", "reference"). Under an opt-in throughput family
// (CI runs this binary with ACOBE_NN_BACKEND=fma) those cases skip;
// backend_test.cpp holds the tolerance contract for that path.
#define SKIP_UNLESS_BIT_EXACT_BACKEND()                                  \
  do {                                                                   \
    if (!ActiveBackend().bit_exact()) {                                  \
      GTEST_SKIP() << "backend '" << ActiveBackendName()                 \
                   << "' is not bit-exact; parity holds to tolerance "   \
                      "only (see backend_test.cpp)";                     \
    }                                                                    \
  } while (0)

// --- Blocked vs reference parity -------------------------------------------

// The shape set straddles every micro-tile boundary: 1..3 (degenerate),
// 7..9 (around two 4-row tiles / half an n-panel), 31..33 (around the
// 16-wide panel and the 32-element unroll).
const std::size_t kDims[] = {1, 2, 3, 7, 8, 9, 31, 32, 33};

TEST(GemmParityTest, BlockedMatchesReferenceBitwise) {
  SKIP_UNLESS_BIT_EXACT_BACKEND();
  for (std::size_t m : kDims) {
    for (std::size_t k : kDims) {
      for (std::size_t n : kDims) {
        Rng rng(m * 131071 + k * 8191 + n);
        const Tensor a = RandomTensor(m, k, rng);
        const Tensor b = RandomTensor(k, n, rng);
        Tensor c, cref;
        Gemm(a, b, c);
        reference::Gemm(a, b, cref);
        ExpectBitIdentical(c, cref, "Gemm", m, k, n);

        const Tensor at = RandomTensor(k, m, rng);
        GemmTransA(at, b, c);
        reference::GemmTransA(at, b, cref);
        ExpectBitIdentical(c, cref, "GemmTransA", m, k, n);

        const Tensor bt = RandomTensor(n, k, rng);
        GemmTransB(a, bt, c);
        reference::GemmTransB(a, bt, cref);
        ExpectBitIdentical(c, cref, "GemmTransB", m, k, n);
      }
    }
  }
}

TEST(GemmParityTest, SparseInputsMatchReferenceBitwise) {
  SKIP_UNLESS_BIT_EXACT_BACKEND();
  // Zero entries make the reference kernels skip accumulator updates the
  // blocked kernels perform; the results must still agree bit-for-bit.
  for (std::size_t m : {1u, 5u, 9u, 33u}) {
    for (std::size_t k : {1u, 8u, 31u}) {
      for (std::size_t n : {1u, 16u, 33u}) {
        Rng rng(m * 977 + k * 53 + n * 7);
        const Tensor a = SparseTensor(m, k, rng);
        const Tensor b = SparseTensor(k, n, rng);
        Tensor c, cref;
        Gemm(a, b, c);
        reference::Gemm(a, b, cref);
        ExpectBitIdentical(c, cref, "Gemm/sparse", m, k, n);

        const Tensor bt = SparseTensor(n, k, rng);
        GemmTransB(a, bt, c);
        reference::GemmTransB(a, bt, cref);
        ExpectBitIdentical(c, cref, "GemmTransB/sparse", m, k, n);
      }
    }
  }
}

TEST(GemmParityTest, FusedBiasMatchesSeparateEpilogue) {
  SKIP_UNLESS_BIT_EXACT_BACKEND();
  for (std::size_t m : {1u, 4u, 9u, 32u}) {
    for (std::size_t n : {1u, 15u, 16u, 33u}) {
      const std::size_t k = 17;
      Rng rng(m * 19 + n);
      const Tensor a = RandomTensor(m, k, rng);
      const Tensor b = RandomTensor(k, n, rng);
      const Tensor bias = RandomTensor(1, n, rng);
      Tensor fused, cref;
      Gemm(a, b, fused, bias.data());
      // The seed computed the k-sum first, then added the bias in a
      // second pass; reference::Gemm preserves that order.
      reference::Gemm(a, b, cref, bias.data());
      ExpectBitIdentical(fused, cref, "Gemm+bias", m, k, n);
    }
  }
}

TEST(GemmParityTest, ShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 5), c;
  EXPECT_THROW(Gemm(a, b, c), std::invalid_argument);
  EXPECT_THROW(GemmTransA(a, b, c), std::invalid_argument);
  EXPECT_THROW(GemmTransB(a, b, c), std::invalid_argument);
}

// --- Telemetry accounting ---------------------------------------------------

TEST(GemmTelemetryTest, CountsCallsAndFlops) {
  telemetry::EnableMetrics(true);
  telemetry::ResetTelemetry();
  Rng rng(5);
  const Tensor a = RandomTensor(8, 16, rng);
  const Tensor b = RandomTensor(16, 4, rng);
  Tensor c, d;
  Gemm(a, b, c);        // 2*8*16*4 = 1024 flops
  GemmTransB(c, b, d);  // second call for the call counter
  const std::uint64_t calls = telemetry::GetCounter("nn.gemm.calls").value();
  const std::uint64_t flops = telemetry::GetCounter("nn.gemm.flops").value();
  telemetry::EnableMetrics(false);
  telemetry::ResetTelemetry();
  EXPECT_GE(calls, 2u);
  // First call alone contributes 2*8*16*4 = 1024 flops.
  EXPECT_GE(flops, 1024u);
}

// --- Tensor::ResizeUninit ----------------------------------------------------

TEST(TensorResizeTest, ResizeZeroFillsAndResizeUninitDoesNotShrink) {
  Tensor t(4, 8, 3.0f);
  const float* before = t.data();
  // Shrinking keeps the buffer: no reallocation, prefix data intact.
  t.ResizeUninit(2, 8);
  EXPECT_EQ(t.data(), before);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.size(), 16u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.data()[i], 3.0f);
  }
  // Growing back within capacity: still no reallocation, and the
  // previously-written elements reappear untouched (ResizeUninit never
  // clears memory).
  t.ResizeUninit(4, 8);
  EXPECT_EQ(t.data(), before);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.data()[i], 3.0f);
  }
  // Resize, by contrast, zero-fills the full logical extent.
  t.Resize(4, 8);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.data()[i], 0.0f);
  }
}

TEST(TensorResizeTest, LogicalSizeTracksShape) {
  Tensor t(8, 8);
  t.ResizeUninit(2, 3);
  EXPECT_EQ(t.size(), 6u);
  t.Fill(1.0f);
  t.ResizeUninit(8, 8);  // within original capacity
  // Fill above must have touched only the 2x3 logical extent.
  std::size_t ones = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.data()[i] == 1.0f) ++ones;
  }
  EXPECT_EQ(ones, 6u);
}

TEST(TensorResizeTest, RowBlockViewsShareStorage) {
  Tensor t = Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6});
  const MatSpan block = RowBlock(t, 1, 2);
  EXPECT_EQ(block.rows, 2u);
  EXPECT_EQ(block.cols, 2u);
  EXPECT_EQ(block.data, t.data() + 2);
  EXPECT_EQ(block.RowPtr(1), t.data() + 4);
  EXPECT_THROW(RowBlock(t, 2, 2), std::out_of_range);
}

// --- Golden regressions vs the pre-refactor seed ----------------------------
//
// These bit patterns were captured from the seed build (commit d419b18)
// with the exact configurations below. The refactored math core promises
// bit-identical results, so equality here is exact, not approximate.

constexpr std::uint32_t kGoldenHistory[] = {0x3dc77862u, 0x3db9b06au,
                                            0x3db5016cu, 0x3da5e1aeu,
                                            0x3da0c360u, 0x3d9a284fu};
constexpr std::uint32_t kGoldenProbeErrors[] = {0x3cede5f5u, 0x3d4827ceu,
                                                0x3d702838u};

struct GoldenRun {
  std::vector<std::uint32_t> history;
  std::vector<std::uint32_t> probe_errors;
};

GoldenRun RunGoldenTraining() {
  Rng rng(97);
  Tensor data(40, 12);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = 0.5f + 0.25f * static_cast<float>(rng.NextGaussian());
  }
  AutoencoderSpec spec;
  spec.input_dim = 12;
  spec.encoder_dims = {16, 8};
  spec.batch_norm = true;
  spec.sigmoid_output = true;
  Sequential net = BuildAutoencoder(spec);
  Rng init_rng(1234);
  net.InitParams(init_rng);
  Adadelta opt(1.0f);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.seed = 42;
  GoldenRun out;
  for (const auto& s : TrainReconstruction(net, opt, data, cfg)) {
    out.history.push_back(Bits(s.loss));
  }
  Tensor probe(3, 12);
  Rng prng(55);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe.data()[i] = 0.5f + 0.25f * static_cast<float>(prng.NextGaussian());
  }
  for (float e : ReconstructionErrors(net, probe, 2)) {
    out.probe_errors.push_back(Bits(e));
  }
  return out;
}

void ExpectGolden(const GoldenRun& run) {
  ASSERT_EQ(run.history.size(), std::size(kGoldenHistory));
  for (std::size_t i = 0; i < run.history.size(); ++i) {
    EXPECT_EQ(run.history[i], kGoldenHistory[i]) << "epoch " << i;
  }
  ASSERT_EQ(run.probe_errors.size(), std::size(kGoldenProbeErrors));
  for (std::size_t i = 0; i < run.probe_errors.size(); ++i) {
    EXPECT_EQ(run.probe_errors[i], kGoldenProbeErrors[i]) << "probe " << i;
  }
}

TEST(GoldenTest, TrainingHistoryMatchesSeedBitwise) {
  SKIP_UNLESS_BIT_EXACT_BACKEND();
  ExpectGolden(RunGoldenTraining());
}

TEST(GoldenTest, ConcurrentTrainingsMatchSeedBitwise) {
  SKIP_UNLESS_BIT_EXACT_BACKEND();
  // Four independent trainings on four threads: per-thread scratch state
  // must not leak across models, and results must not depend on
  // scheduling.
  GoldenRun runs[4];
  acobe::ParallelFor(0, 4, 4, [&](int i) { runs[i] = RunGoldenTraining(); });
  for (const GoldenRun& run : runs) ExpectGolden(run);
}

// --- Ensemble pipeline golden (ScoreGrid + investigation list) --------------

constexpr std::uint64_t kGoldenGridHash = 0xa6980a77aecafc3cull;
constexpr std::pair<int, std::uint32_t> kGoldenRanked[] = {
    {5, 0x40400000u}, {1, 0x40800000u}, {6, 0x40a00000u}, {7, 0x40c00000u},
    {0, 0x40e00000u}, {4, 0x40e00000u}, {2, 0x41000000u}, {3, 0x41000000u}};

void RunEnsembleGolden(int threads) {
  const int users = 8, days = 50, features = 6, frames = 2;
  MeasurementCube cube(Date(2010, 1, 2), days, features, frames);
  Rng rng(17);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(u);
    for (int f = 0; f < features; ++f) {
      for (int d = 0; d < days; ++d) {
        for (int t = 0; t < frames; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(3.0));
        }
      }
    }
  }
  NormalizedDayBuilder builder(&cube, 0, 30);
  EnsembleConfig cfg;
  cfg.encoder_dims = {16, 8};
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 1e-3f;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 16;
  cfg.threads = threads;
  AspectEnsemble ensemble({{"a0", {0, 1, 2}}, {"a1", {3, 4, 5}}}, cfg);
  ensemble.Train(builder, users, 0, 30);
  const ScoreGrid grid = ensemble.Score(builder, users, 30, 50);

  std::uint64_t h = 1469598103934665603ull;
  for (int a = 0; a < grid.aspects(); ++a) {
    for (int u = 0; u < grid.users(); ++u) {
      for (int d = grid.day_begin(); d < grid.day_end(); ++d) {
        const std::uint32_t b = Bits(grid.At(a, u, d));
        for (int byte = 0; byte < 4; ++byte) {
          h ^= (b >> (8 * byte)) & 0xff;
          h *= 1099511628211ull;
        }
      }
    }
  }
  EXPECT_EQ(h, kGoldenGridHash) << "threads=" << threads;

  const auto list = acobe::RankUsers(grid, 2);
  ASSERT_EQ(list.size(), std::size(kGoldenRanked));
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i].user_idx, kGoldenRanked[i].first) << "rank " << i;
    EXPECT_EQ(Bits(static_cast<float>(list[i].priority)),
              kGoldenRanked[i].second)
        << "rank " << i;
  }
}

TEST(GoldenTest, EnsembleMatchesSeedSingleThread) {
  SKIP_UNLESS_BIT_EXACT_BACKEND(); RunEnsembleGolden(1); }

TEST(GoldenTest, EnsembleMatchesSeedFourThreads) {
  SKIP_UNLESS_BIT_EXACT_BACKEND(); RunEnsembleGolden(4); }

TEST(GoldenTest, EnsembleMatchesSeedWithTelemetryEnabled) {
  SKIP_UNLESS_BIT_EXACT_BACKEND();
  telemetry::EnableMetrics(true);
  telemetry::ResetTelemetry();
  RunEnsembleGolden(4);
  EXPECT_GT(telemetry::GetCounter("nn.gemm.calls").value(), 0u);
  telemetry::EnableMetrics(false);
  telemetry::ResetTelemetry();
}

// --- Zero-allocation training loop ------------------------------------------

TEST(AllocationTest, EpochLoopIsAllocationFreeAfterWarmup) {
  Rng rng(97);
  Tensor data(40, 12);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = 0.5f + 0.25f * static_cast<float>(rng.NextGaussian());
  }
  AutoencoderSpec spec;
  spec.input_dim = 12;
  spec.encoder_dims = {16, 8};
  spec.batch_norm = true;
  spec.sigmoid_output = true;
  Sequential net = BuildAutoencoder(spec);
  Rng init_rng(1234);
  net.InitParams(init_rng);
  Adadelta opt(1.0f);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.seed = 42;

  std::vector<std::uint64_t> marks;
  marks.reserve(static_cast<std::size_t>(cfg.epochs));
  TrainReconstruction(net, opt, data, cfg, [&](const EpochStats&) {
    marks.push_back(g_alloc_calls.load(std::memory_order_relaxed));
  });
  ASSERT_EQ(marks.size(), 6u);
  // Epoch 0 warms every buffer up to steady-state capacity; epoch 1 is
  // slack for one-time lazy initialization. From then on the loop must
  // not touch the heap at all.
  for (std::size_t e = 2; e < marks.size(); ++e) {
    EXPECT_EQ(marks[e] - marks[e - 1], 0u)
        << "epoch " << e << " allocated on the heap";
  }
}

}  // namespace
}  // namespace acobe::nn
