// Unit tests for src/behavior: deviation math, weights, compound matrix
// assembly, normalized single-day vectors.

#include <gtest/gtest.h>

#include <cmath>

#include "behavior/compound_matrix.h"
#include "behavior/deviation.h"
#include "behavior/normalized_day.h"
#include "common/rng.h"
#include "common/stats.h"

namespace acobe {
namespace {

const Date kStart(2010, 1, 4);

// Builds a 1-feature 1-frame cube for one user with the given series.
MeasurementCube CubeFromSeries(const std::vector<float>& values) {
  MeasurementCube cube(kStart, static_cast<int>(values.size()), 1, 1);
  const int u = cube.RegisterUser(1);
  for (std::size_t d = 0; d < values.size(); ++d) {
    cube.At(u, 0, static_cast<int>(d), 0) = values[d];
  }
  return cube;
}

// Reference deviation per the paper's equations, computed naively.
double NaiveSigma(const std::vector<float>& series, int d, int omega,
                  double delta, double epsilon) {
  std::vector<double> h;
  for (int i = d - omega + 1; i < d; ++i) h.push_back(series[i]);
  const double mean = Mean(h);
  double sd = StdDev(h);
  if (sd < epsilon) sd = epsilon;
  return ClampSymmetric((series[d] - mean) / sd, delta);
}

TEST(DeviationTest, MatchesNaiveComputation) {
  std::vector<float> series;
  Rng rng(31);
  for (int i = 0; i < 60; ++i) {
    series.push_back(static_cast<float>(5.0 + 2.0 * rng.NextGaussian()));
  }
  MeasurementCube cube = CubeFromSeries(series);
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.apply_weights = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  for (int d = cfg.FirstDeviationDay(); d < 60; ++d) {
    const double expected =
        NaiveSigma(series, d, cfg.omega, cfg.delta, cfg.epsilon);
    EXPECT_NEAR(dev.Sigma(0, 0, d, 0), expected, 1e-3) << "day " << d;
  }
}

TEST(DeviationTest, ClampsAtDelta) {
  // Constant history then a massive spike.
  std::vector<float> series(20, 4.0f);
  series[15] = 1000.0f;
  series[16] = -1000.0f;
  MeasurementCube cube = CubeFromSeries(series);
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.apply_weights = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  EXPECT_FLOAT_EQ(dev.Sigma(0, 0, 15, 0), 3.0f);
  EXPECT_FLOAT_EQ(dev.Sigma(0, 0, 16, 0), -3.0f);
}

TEST(DeviationTest, ZeroStdUsesEpsilonFloor) {
  std::vector<float> series(20, 7.0f);
  MeasurementCube cube = CubeFromSeries(series);
  DeviationConfig cfg;
  cfg.omega = 5;
  cfg.apply_weights = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  // No change from a constant history: sigma is exactly 0, not NaN.
  EXPECT_FLOAT_EQ(dev.Sigma(0, 0, 10, 0), 0.0f);
  EXPECT_TRUE(std::isfinite(dev.Sigma(0, 0, 10, 0)));
}

TEST(DeviationTest, WeightFormula) {
  // History std = 0 -> w = 1/log2(max(0,2)) = 1.
  std::vector<float> constant(20, 3.0f);
  {
    MeasurementCube cube = CubeFromSeries(constant);
    DeviationConfig cfg;
    cfg.omega = 5;
    const auto dev = DeviationSeries::Compute(cube, cfg);
    EXPECT_FLOAT_EQ(dev.Weight(0, 0, 10, 0), 1.0f);
  }
  // Alternating 0/8 history: population std = 4 -> w = 1/log2(4) = 0.5.
  std::vector<float> alternating;
  for (int i = 0; i < 20; ++i) alternating.push_back(i % 2 ? 8.0f : 0.0f);
  {
    MeasurementCube cube = CubeFromSeries(alternating);
    DeviationConfig cfg;
    cfg.omega = 5;  // history of 4 days: {0,8,0,8} or {8,0,8,0}, std 4
    const auto dev = DeviationSeries::Compute(cube, cfg);
    EXPECT_NEAR(dev.Weight(0, 0, 10, 0), 0.5f, 1e-5);
    // Sigma carries the weight multiplicatively.
    const float raw = dev.Sigma(0, 0, 10, 0) / dev.Weight(0, 0, 10, 0);
    EXPECT_NEAR(std::fabs(raw), 1.0f, 1e-4);  // (m - 4) / 4 = +-1
  }
}

TEST(DeviationTest, SlidingWindowAbsorbsShift) {
  // A permanent level shift: deviation spikes then fades as the history
  // window slides over the new level (the "white tail" of Figure 4).
  std::vector<float> series(60, 2.0f);
  for (int i = 30; i < 60; ++i) series[i] = 10.0f;
  // Add mild noise so std is non-degenerate.
  Rng rng(5);
  for (auto& v : series) v += 0.3f * static_cast<float>(rng.NextGaussian());
  MeasurementCube cube = CubeFromSeries(series);
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.apply_weights = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  EXPECT_GT(dev.Sigma(0, 0, 30, 0), 2.5f);   // spike on the shift day
  EXPECT_LT(std::fabs(dev.Sigma(0, 0, 55, 0)), 1.5f);  // absorbed
}

TEST(DeviationTest, OmegaTooSmallThrows) {
  MeasurementCube cube = CubeFromSeries({1, 2, 3});
  DeviationConfig cfg;
  cfg.omega = 1;
  EXPECT_THROW(DeviationSeries::Compute(cube, cfg), std::invalid_argument);
}

TEST(DeviationTest, ComputeFromSeriesMatchesCubePath) {
  std::vector<float> series;
  Rng rng(32);
  for (int i = 0; i < 40; ++i) {
    series.push_back(static_cast<float>(rng.NextPoisson(6.0)));
  }
  MeasurementCube cube = CubeFromSeries(series);
  DeviationConfig cfg;
  cfg.omega = 8;
  const auto a = DeviationSeries::Compute(cube, cfg);
  const auto b = DeviationSeries::ComputeFromSeries(series, 1, 40, 1, cfg);
  for (int d = cfg.FirstDeviationDay(); d < 40; ++d) {
    EXPECT_FLOAT_EQ(a.Sigma(0, 0, d, 0), b.Sigma(0, 0, d, 0));
  }
}

TEST(DeviationTest, ConfigDayHelpers) {
  DeviationConfig cfg;
  cfg.omega = 30;
  EXPECT_EQ(cfg.EffectiveMatrixDays(), 30);
  EXPECT_EQ(cfg.FirstDeviationDay(), 29);
  EXPECT_EQ(cfg.FirstAnchorDay(), 58);
  cfg.matrix_days = 7;
  EXPECT_EQ(cfg.EffectiveMatrixDays(), 7);
  EXPECT_EQ(cfg.FirstAnchorDay(), 35);
}

// --- CompoundMatrixBuilder -----------------------------------------------------

TEST(CompoundMatrixTest, LayoutAndScaling) {
  // Two features, two frames, deterministic series.
  MeasurementCube cube(kStart, 30, 2, 2);
  const int u = cube.RegisterUser(1);
  Rng rng(33);
  for (int f = 0; f < 2; ++f) {
    for (int d = 0; d < 30; ++d) {
      for (int t = 0; t < 2; ++t) {
        cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(5.0));
      }
    }
  }
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.matrix_days = 5;
  cfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  CompoundMatrixBuilder builder(&dev, {}, {});

  const std::vector<int> features = {0, 1};
  EXPECT_EQ(builder.FlatSize(2), 2u * 5 * 2);
  const auto matrix = builder.Build(0, features, 20);
  ASSERT_EQ(matrix.size(), 20u);
  for (float v : matrix) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Element [f=0][day offset 0][frame 0] corresponds to day 16.
  const float expected =
      static_cast<float>(ToUnitInterval(dev.Sigma(0, 0, 16, 0), cfg.delta));
  EXPECT_FLOAT_EQ(matrix[0], expected);
  // Element [f=1][day offset 4][frame 1] -> index 1*10 + 4*2 + 1.
  const float expected_last =
      static_cast<float>(ToUnitInterval(dev.Sigma(0, 1, 20, 1), cfg.delta));
  EXPECT_FLOAT_EQ(matrix[10 + 9], expected_last);
}

TEST(CompoundMatrixTest, GroupBlockDoublesSize) {
  MeasurementCube cube(kStart, 30, 1, 1);
  const int a = cube.RegisterUser(1);
  const int b = cube.RegisterUser(2);
  Rng rng(34);
  for (int d = 0; d < 30; ++d) {
    cube.At(a, 0, d, 0) = static_cast<float>(rng.NextPoisson(4.0));
    cube.At(b, 0, d, 0) = static_cast<float>(rng.NextPoisson(4.0));
  }
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.matrix_days = 5;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  const std::vector<int> members = {a, b};
  const auto mean = GroupMeanSeries(cube, members);
  auto group = DeviationSeries::ComputeFromSeries(mean, 1, 30, 1, cfg);
  std::vector<DeviationSeries> groups;
  groups.push_back(std::move(group));
  CompoundMatrixBuilder builder(&dev, std::move(groups),
                                std::vector<int>(2, 0));
  EXPECT_TRUE(builder.has_groups());
  EXPECT_EQ(builder.FlatSize(1), 2u * 5);
  const std::vector<int> features = {0};
  const auto m0 = builder.Build(0, features, 20);
  const auto m1 = builder.Build(1, features, 20);
  ASSERT_EQ(m0.size(), 10u);
  // The group half (last 5 values) is identical for both users.
  for (int i = 5; i < 10; ++i) EXPECT_FLOAT_EQ(m0[i], m1[i]);
  // The individual halves differ (independent random series).
  bool any_diff = false;
  for (int i = 0; i < 5; ++i) any_diff |= m0[i] != m1[i];
  EXPECT_TRUE(any_diff);
}

TEST(CompoundMatrixTest, NoGroupConfigClearsGroups) {
  MeasurementCube cube(kStart, 30, 1, 1);
  cube.RegisterUser(1);
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  auto group = DeviationSeries::ComputeFromSeries(
      std::vector<float>(30, 0.0f), 1, 30, 1, cfg);
  std::vector<DeviationSeries> groups;
  groups.push_back(std::move(group));
  CompoundMatrixBuilder builder(&dev, std::move(groups),
                                std::vector<int>(1, 0));
  EXPECT_FALSE(builder.has_groups());
  EXPECT_EQ(builder.FlatSize(1), static_cast<std::size_t>(10 * 1));
}

TEST(CompoundMatrixTest, BadAnchorDayThrows) {
  MeasurementCube cube(kStart, 30, 1, 1);
  cube.RegisterUser(1);
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.matrix_days = 5;
  cfg.include_group = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  CompoundMatrixBuilder builder(&dev, {}, {});
  const std::vector<int> features = {0};
  EXPECT_THROW(builder.Build(0, features, builder.FirstAnchorDay() - 1),
               std::out_of_range);
  EXPECT_THROW(builder.Build(0, features, 30), std::out_of_range);
  EXPECT_NO_THROW(builder.Build(0, features, builder.FirstAnchorDay()));
}

// --- NormalizedDayBuilder ---------------------------------------------------------

TEST(NormalizedDayTest, MinMaxScalesFromTrainingRange) {
  MeasurementCube cube(kStart, 10, 1, 1);
  const int u = cube.RegisterUser(1);
  for (int d = 0; d < 10; ++d) {
    cube.At(u, 0, d, 0) = static_cast<float>(d);  // 0..9
  }
  // Normalize from days [0,5): min 0, max 4.
  NormalizedDayBuilder builder(&cube, 0, 5);
  const std::vector<int> features = {0};
  EXPECT_FLOAT_EQ(builder.Build(0, features, 0)[0], 0.0f);
  EXPECT_FLOAT_EQ(builder.Build(0, features, 2)[0], 0.5f);
  EXPECT_FLOAT_EQ(builder.Build(0, features, 4)[0], 1.0f);
  // Test days beyond the training max clamp to 1.
  EXPECT_FLOAT_EQ(builder.Build(0, features, 9)[0], 1.0f);
}

TEST(NormalizedDayTest, ConstantFeatureMapsToZero) {
  MeasurementCube cube(kStart, 5, 1, 1);
  const int u = cube.RegisterUser(1);
  for (int d = 0; d < 5; ++d) cube.At(u, 0, d, 0) = 3.0f;
  NormalizedDayBuilder builder(&cube, 0, 5);
  const std::vector<int> features = {0};
  EXPECT_FLOAT_EQ(builder.Build(0, features, 2)[0], 0.0f);
}

TEST(NormalizedDayTest, ValidationThrows) {
  MeasurementCube cube(kStart, 5, 1, 1);
  cube.RegisterUser(1);
  EXPECT_THROW(NormalizedDayBuilder(nullptr, 0, 5), std::invalid_argument);
  EXPECT_THROW(NormalizedDayBuilder(&cube, 3, 3), std::invalid_argument);
  EXPECT_THROW(NormalizedDayBuilder(&cube, 0, 6), std::invalid_argument);
}

TEST(NormalizedDayTest, SampleBuilderInterface) {
  MeasurementCube cube(kStart, 5, 2, 2);
  cube.RegisterUser(1);
  NormalizedDayBuilder builder(&cube, 0, 5);
  const SampleBuilder& sb = builder;
  EXPECT_EQ(sb.SampleSize(2), 4u);
  EXPECT_EQ(sb.FirstValidDay(), 0);
  EXPECT_EQ(sb.EndDay(), 5);
}

}  // namespace
}  // namespace acobe
