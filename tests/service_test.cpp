// The resident service's building blocks: seeded backoff, bounded
// admission queues (incl. producer/consumer threading), the CRC'd
// cycle journal with its truncate-to-committed append logs, and the
// incremental MonitorState drive matching the batch monitor.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "core/critic.h"
#include "core/monitor.h"
#include "core/score_grid.h"
#include "service/cycle_stats.h"
#include "service/journal.h"
#include "service/queue.h"
#include "service/retry.h"

using namespace acobe;

namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("acobe_service_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
  static int counter_;
};
int TempDir::counter_ = 0;

PackedEvent Ev(std::int64_t ts, std::uint32_t user) {
  PackedEvent p;
  p.ts = ts;
  p.user = user;
  return p;
}

// --- BackoffPolicy ---------------------------------------------------------

TEST(BackoffPolicyTest, DelaysAreDeterministicFromSeed) {
  BackoffConfig cfg;
  cfg.max_retries = 5;
  cfg.seed = 42;
  BackoffPolicy a(cfg), b(cfg);
  for (int i = 0; i < 5; ++i) {
    const auto da = a.OnFailure();
    const auto db = b.OnFailure();
    ASSERT_TRUE(da.has_value());
    ASSERT_TRUE(db.has_value());
    EXPECT_DOUBLE_EQ(*da, *db) << "attempt " << i;
  }
  // A different seed jitters differently (same exponential skeleton).
  BackoffConfig other = cfg;
  other.seed = 43;
  BackoffPolicy c(other), e(cfg);
  bool any_differ = false;
  for (int i = 0; i < 5; ++i) {
    if (*c.OnFailure() != *e.OnFailure()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(BackoffPolicyTest, GrowsExponentiallyUpToCap) {
  BackoffConfig cfg;
  cfg.max_retries = 10;
  cfg.base_ms = 100.0;
  cfg.multiplier = 2.0;
  cfg.cap_ms = 400.0;
  cfg.jitter = 0.0;  // exact delays
  BackoffPolicy p(cfg);
  EXPECT_DOUBLE_EQ(*p.OnFailure(), 100.0);
  EXPECT_DOUBLE_EQ(*p.OnFailure(), 200.0);
  EXPECT_DOUBLE_EQ(*p.OnFailure(), 400.0);
  EXPECT_DOUBLE_EQ(*p.OnFailure(), 400.0);  // capped from here on
  EXPECT_DOUBLE_EQ(*p.OnFailure(), 400.0);
}

TEST(BackoffPolicyTest, JitterStaysWithinBand) {
  BackoffConfig cfg;
  cfg.max_retries = 1;
  cfg.base_ms = 1000.0;
  cfg.jitter = 0.25;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    cfg.seed = seed;
    BackoffPolicy p(cfg);
    const auto d = p.OnFailure();
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 750.0);
    EXPECT_LE(*d, 1250.0);
  }
}

TEST(BackoffPolicyTest, SuccessResetsBothCounterAndJitterStream) {
  BackoffConfig cfg;
  cfg.max_retries = 3;
  cfg.seed = 7;
  BackoffPolicy p(cfg);
  std::vector<double> first;
  for (int i = 0; i < 3; ++i) first.push_back(*p.OnFailure());
  EXPECT_EQ(p.failures(), 3);
  p.OnSuccess();
  EXPECT_EQ(p.failures(), 0);
  // The post-success sequence replays the fresh-policy sequence
  // exactly: retry behavior is a pure function of failures since the
  // last success.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(*p.OnFailure(), first[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(p.OnFailure().has_value());  // retries exhausted
}

TEST(BackoffPolicyTest, ZeroRetriesQuarantinesImmediately) {
  BackoffConfig cfg;
  cfg.max_retries = 0;
  BackoffPolicy p(cfg);
  EXPECT_FALSE(p.OnFailure().has_value());
  EXPECT_EQ(p.failures(), 1);
}

// --- BoundedEventQueue -----------------------------------------------------

TEST(BoundedEventQueueTest, ByteCapTightensRowCap) {
  // 10 rows but only 4 events' worth of bytes: bytes bind.
  BoundedEventQueue q(10, 4 * sizeof(PackedEvent), AdmissionPolicy::kShed);
  EXPECT_EQ(q.max_rows(), 4u);
  // Degenerate caps clamp to one event rather than zero.
  BoundedEventQueue tiny(10, 1, AdmissionPolicy::kShed);
  EXPECT_EQ(tiny.max_rows(), 1u);
}

TEST(BoundedEventQueueTest, ShedPolicyDropsAtCapAndCounts) {
  BoundedEventQueue q(2, 1 << 20, AdmissionPolicy::kShed);
  EXPECT_TRUE(q.Push(Ev(1, 0)));
  EXPECT_TRUE(q.Push(Ev(2, 0)));
  EXPECT_FALSE(q.Push(Ev(3, 0)));  // at cap: shed
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.rows(), 2u);
}

TEST(BoundedEventQueueTest, BatchBoundariesArriveInOrder) {
  BoundedEventQueue q(100, 1 << 20, AdmissionPolicy::kBlock);
  q.Push(Ev(1, 0));
  q.Push(Ev(2, 0));
  q.CloseBatch();
  q.Push(Ev(3, 0));
  q.CloseBatch();
  q.CloseBatch();  // empty batch
  q.CloseAll();

  std::vector<PackedEvent> out;
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kEvents);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].ts, 2);
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kBatchEnd);
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kEvents);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].ts, 3);
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kBatchEnd);
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kBatchEnd);
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kClosed);
}

TEST(BoundedEventQueueTest, NeverHandsEventsPastABoundary) {
  BoundedEventQueue q(100, 1 << 20, AdmissionPolicy::kBlock);
  q.Push(Ev(1, 0));
  q.CloseBatch();
  q.Push(Ev(2, 0));  // next batch, already admitted
  std::vector<PackedEvent> out;
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kEvents);
  EXPECT_EQ(out.size(), 1u);  // stopped at the boundary
  EXPECT_EQ(q.Pop(out, 100), BoundedEventQueue::PopResult::kBatchEnd);
}

TEST(BoundedEventQueueTest, PushAfterCloseAllThrows) {
  BoundedEventQueue q(4, 1 << 20, AdmissionPolicy::kBlock);
  q.CloseAll();
  EXPECT_THROW(q.Push(Ev(1, 0)), std::logic_error);
}

TEST(BoundedEventQueueTest, BlockingProducerDrainsInFifoOrderAcrossThreads) {
  // A tiny cap forces the producer to block repeatedly; the consumer
  // must still observe every event exactly once, in admission order.
  // (This test is part of the ThreadSanitizer CI job.)
  constexpr int kEvents = 20000;
  BoundedEventQueue q(8, 1 << 20, AdmissionPolicy::kBlock);
  std::thread producer([&] {
    for (int i = 0; i < kEvents; ++i) {
      ASSERT_TRUE(q.Push(Ev(i, static_cast<std::uint32_t>(i % 7))));
    }
    q.CloseBatch();
    q.CloseAll();
  });
  std::vector<PackedEvent> got;
  bool saw_boundary = false;
  for (;;) {
    const auto r = q.Pop(got, 64);
    if (r == BoundedEventQueue::PopResult::kBatchEnd) {
      saw_boundary = true;
      continue;
    }
    if (r == BoundedEventQueue::PopResult::kClosed) break;
  }
  producer.join();
  EXPECT_TRUE(saw_boundary);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].ts, i) << "out of order";
  }
  EXPECT_EQ(q.admitted(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(q.shed(), 0u);
}

// --- Journal ---------------------------------------------------------------

JournalState SampleState() {
  JournalState s;
  s.config_fingerprint = 0xfeedface;
  s.cycle = 7;
  s.alerts_bytes = 123;
  s.alerts_count = 3;
  s.ledger_bytes = 4567;
  s.last_scored_day = 14975;
  s.batches.push_back(BatchRecord{"b001", 0xabcd, 14950, 14960});
  s.batches.push_back(BatchRecord{"b002-empty", 0x1234, 0, -1});
  s.shards.push_back(ShardRecord{false, 0});
  s.shards.push_back(ShardRecord{true, 4});
  s.monitors.emplace_back("Engineering", std::string("\x00\x01monitor", 9));
  s.monitors.emplace_back("Sales", "");
  return s;
}

TEST(JournalTest, RoundTripsEveryField) {
  TempDir dir;
  const std::string path = dir.file("service.journal");
  const JournalState in = SampleState();
  SaveJournal(path, in);
  const auto out = LoadJournal(path);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->config_fingerprint, in.config_fingerprint);
  EXPECT_EQ(out->cycle, in.cycle);
  EXPECT_EQ(out->alerts_bytes, in.alerts_bytes);
  EXPECT_EQ(out->alerts_count, in.alerts_count);
  EXPECT_EQ(out->ledger_bytes, in.ledger_bytes);
  EXPECT_EQ(out->last_scored_day, in.last_scored_day);
  ASSERT_EQ(out->batches.size(), 2u);
  EXPECT_EQ(out->batches[0].name, "b001");
  EXPECT_EQ(out->batches[0].digest, 0xabcdu);
  EXPECT_EQ(out->batches[0].day_lo, 14950);
  EXPECT_EQ(out->batches[0].day_hi, 14960);
  EXPECT_EQ(out->batches[1].day_hi, -1);
  ASSERT_EQ(out->shards.size(), 2u);
  EXPECT_FALSE(out->shards[0].quarantined);
  EXPECT_TRUE(out->shards[1].quarantined);
  EXPECT_EQ(out->shards[1].failures, 4u);
  ASSERT_EQ(out->monitors.size(), 2u);
  EXPECT_EQ(out->monitors[0].first, "Engineering");
  EXPECT_EQ(out->monitors[0].second.size(), 9u);  // embedded NULs survive
  EXPECT_EQ(out->monitors[1].second, "");
}

TEST(JournalTest, MissingFileIsAFreshStart) {
  TempDir dir;
  EXPECT_FALSE(LoadJournal(dir.file("nope.journal")).has_value());
}

TEST(JournalTest, CorruptionIsDetectedNotTrusted) {
  TempDir dir;
  const std::string path = dir.file("service.journal");
  SaveJournal(path, SampleState());

  // Flip one payload byte: CRC mismatch.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0x40));
  }
  EXPECT_THROW(LoadJournal(path), JournalError);

  // Truncation.
  SaveJournal(path, SampleState());
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(LoadJournal(path), JournalError);

  // Bad magic.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "not a journal at all";
  }
  EXPECT_THROW(LoadJournal(path), JournalError);
}

// --- AppendLog -------------------------------------------------------------

TEST(AppendLogTest, TruncatesTornTailBackToCommittedPrefix) {
  TempDir dir;
  const std::string path = dir.file("alerts.jsonl");
  std::uint64_t committed = 0;
  {
    AppendLog log(path, 0);
    log.Append("{\"seq\":1}");
    log.Sync();
    committed = log.bytes();
    // Torn tail: appended but the "journal" (us) never recorded it.
    log.Append("{\"seq\":2,\"torn\":true}");
  }
  ASSERT_GT(fs::file_size(path), committed);

  // Reopen at the committed prefix: the tail is gone, appends resume.
  AppendLog log(path, committed);
  EXPECT_EQ(log.bytes(), committed);
  EXPECT_EQ(fs::file_size(path), committed);
  log.Append("{\"seq\":2}");
  log.Sync();
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "{\"seq\":1}");
  EXPECT_EQ(l2, "{\"seq\":2}");
  EXPECT_FALSE(std::getline(in, l3));
}

TEST(AppendLogTest, FileShorterThanCommittedIsCorruption) {
  TempDir dir;
  const std::string path = dir.file("ledger.jsonl");
  {
    std::ofstream f(path);
    f << "short\n";
  }
  EXPECT_THROW(AppendLog(path, 1000), JournalError);
}

// --- MonitorState driven incrementally vs the batch scan -------------------

// A small grid with distinct scores everywhere (no rank or peak ties),
// so the incremental peak tracking must agree with the batch
// aspect-major scan exactly.
ScoreGrid DistinctGrid(int users, int days) {
  ScoreGrid grid({"logon", "device"}, users, 0, days);
  float v = 0.0f;
  for (int a = 0; a < 2; ++a) {
    for (int u = 0; u < users; ++u) {
      for (int d = 0; d < days; ++d) {
        grid.At(a, u, d) = v;
        v += 0.0017f;
      }
    }
  }
  // Make user 1 clearly hot on days 3..6 and user 3 on days 10..12.
  for (int d = 3; d <= 6; ++d) grid.At(0, 1, d) = 10.0f + d;
  for (int d = 10; d <= 12; ++d) grid.At(1, 3, d) = 20.0f + d;
  return grid;
}

std::vector<bool> FiredOnDay(const ScoreGrid& grid, const MonitorConfig& cfg,
                             int day) {
  const auto daily = RankUsersOnDay(grid, cfg.n_votes, day);
  std::vector<bool> fired(static_cast<std::size_t>(grid.users()), false);
  const std::size_t top = std::min<std::size_t>(
      daily.size(), static_cast<std::size_t>(cfg.top_positions));
  for (std::size_t i = 0; i < top; ++i) {
    fired[static_cast<std::size_t>(daily[i].user_idx)] = true;
  }
  return fired;
}

std::vector<DayPeak> PeaksOnDay(const ScoreGrid& grid, int day) {
  std::vector<DayPeak> peaks(static_cast<std::size_t>(grid.users()));
  for (int u = 0; u < grid.users(); ++u) {
    DayPeak best;
    for (int a = 0; a < grid.aspects(); ++a) {
      const float s = grid.At(a, u, day);
      if (s > best.score) {
        best.score = s;
        best.aspect = grid.aspect_name(a);
      }
    }
    peaks[static_cast<std::size_t>(u)] = best;
  }
  return peaks;
}

TEST(MonitorStateTest, IncrementalDriveMatchesBatchScan) {
  const ScoreGrid grid = DistinctGrid(5, 16);
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  cfg.cooloff_days = 2;
  const std::vector<Alert> batch = FindPersistentAlerts(grid, cfg);
  ASSERT_FALSE(batch.empty());

  MonitorState state(cfg);
  std::vector<Alert> mine;
  for (int d = 0; d < 16; ++d) {
    const auto peaks = PeaksOnDay(grid, d);
    state.AdvanceDay(d, FiredOnDay(grid, cfg, d), &peaks, &mine);
  }
  for (const Alert& a : state.OpenAlerts()) mine.push_back(a);
  std::sort(mine.begin(), mine.end(),
            [](const Alert& a, const Alert& b) {
              return a.first_day < b.first_day;
            });

  ASSERT_EQ(mine.size(), batch.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].user_idx, batch[i].user_idx);
    EXPECT_EQ(mine[i].first_day, batch[i].first_day);
    EXPECT_EQ(mine[i].last_day, batch[i].last_day);
    EXPECT_EQ(mine[i].firing_days, batch[i].firing_days);
    EXPECT_EQ(mine[i].peak_day, batch[i].peak_day);
    EXPECT_EQ(mine[i].peak_aspect_name, batch[i].peak_aspect_name);
    EXPECT_FLOAT_EQ(mine[i].peak_score, batch[i].peak_score);
  }
}

TEST(MonitorStateTest, ChunkedFeedWithSaveLoadMatchesOneShot) {
  const ScoreGrid grid = DistinctGrid(5, 16);
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  cfg.cooloff_days = 2;

  auto drive = [&](MonitorState& st, int from, int to,
                   std::vector<Alert>* closed) {
    for (int d = from; d < to; ++d) {
      const auto peaks = PeaksOnDay(grid, d);
      st.AdvanceDay(d, FiredOnDay(grid, cfg, d), &peaks, closed);
    }
  };

  MonitorState oneshot(cfg);
  std::vector<Alert> expect;
  drive(oneshot, 0, 16, &expect);

  // Same observations in three chunks, serialized between chunks (the
  // daemon's restart path).
  MonitorState st(cfg);
  std::vector<Alert> got;
  drive(st, 0, 5, &got);
  std::stringstream s1;
  st.Save(s1);
  MonitorState st2 = MonitorState::Load(s1);
  EXPECT_EQ(st2.last_day(), 4);
  drive(st2, 5, 11, &got);
  std::stringstream s2;
  st2.Save(s2);
  MonitorState st3 = MonitorState::Load(s2);
  drive(st3, 11, 16, &got);

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].user_idx, expect[i].user_idx);
    EXPECT_EQ(got[i].first_day, expect[i].first_day);
    EXPECT_EQ(got[i].last_day, expect[i].last_day);
    EXPECT_EQ(got[i].firing_days, expect[i].firing_days);
    EXPECT_EQ(got[i].peak_day, expect[i].peak_day);
    EXPECT_FLOAT_EQ(got[i].peak_score, expect[i].peak_score);
  }
  const auto open1 = oneshot.OpenAlerts();
  const auto open2 = st3.OpenAlerts();
  ASSERT_EQ(open1.size(), open2.size());
}

// --- CycleStatsRing ---------------------------------------------------

service::CycleStat MakeStat(std::uint64_t cycle, double total_s,
                            double latency_s) {
  service::CycleStat s;
  s.cycle = cycle;
  s.batch = "batch-" + std::to_string(cycle);
  s.total_s = total_s;
  s.alert_latency_s = latency_s;
  return s;
}

TEST(CycleStatsTest, NearestRankMatchesDefinition) {
  // rank = ceil(q * N) over the sorted samples, 1-based.
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(service::NearestRank(v, 0.50), 3.0);
  EXPECT_DOUBLE_EQ(service::NearestRank(v, 0.95), 5.0);
  EXPECT_DOUBLE_EQ(service::NearestRank(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(service::NearestRank(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(service::NearestRank({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(service::NearestRank({}, 0.5), 0.0);
}

TEST(CycleStatsTest, EmptyRingRollsUpToZero) {
  service::CycleStatsRing ring;
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.Recent(10).empty());
  const auto lat = ring.AlertLatency();
  EXPECT_EQ(lat.count, 0u);
  EXPECT_DOUBLE_EQ(lat.p50, 0.0);
  EXPECT_DOUBLE_EQ(lat.max, 0.0);
  const auto wall = ring.CycleWall();
  EXPECT_EQ(wall.count, 0u);
}

TEST(CycleStatsTest, WraparoundKeepsTheMostRecentInOrder) {
  service::CycleStatsRing ring(4);
  for (std::uint64_t c = 1; c <= 10; ++c) {
    ring.Record(MakeStat(c, 0.1 * static_cast<double>(c), -1.0));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  // Oldest-first: cycles 7,8,9,10 survive.
  const auto recent = ring.Recent(100);
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[i].cycle, 7 + i);
    EXPECT_EQ(recent[i].batch, "batch-" + std::to_string(7 + i));
  }
  // Recent(n < size) returns the newest n, still oldest-first.
  const auto tail = ring.Recent(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].cycle, 9u);
  EXPECT_EQ(tail[1].cycle, 10u);
}

TEST(CycleStatsTest, RollupsExcludeCyclesWithoutAlerts) {
  service::CycleStatsRing ring;
  // Latencies 10..50 on alerting cycles; -1 marks alertless cycles
  // that must not drag the percentiles toward zero.
  for (int i = 1; i <= 5; ++i) {
    ring.Record(MakeStat(static_cast<std::uint64_t>(i),
                         /*total_s=*/static_cast<double>(i),
                         /*latency_s=*/10.0 * i));
    ring.Record(MakeStat(static_cast<std::uint64_t>(100 + i),
                         /*total_s=*/100.0, /*latency_s=*/-1.0));
  }
  const auto lat = ring.AlertLatency();
  EXPECT_EQ(lat.count, 5u);
  EXPECT_DOUBLE_EQ(lat.p50, 30.0);
  EXPECT_DOUBLE_EQ(lat.p95, 50.0);
  EXPECT_DOUBLE_EQ(lat.max, 50.0);
  // CycleWall covers every retained record, alertless ones included.
  const auto wall = ring.CycleWall();
  EXPECT_EQ(wall.count, 10u);
  EXPECT_DOUBLE_EQ(wall.max, 100.0);
}

TEST(CycleStatsTest, ExportSloGaugesPublishesWhenMetricsOn) {
  telemetry::ResetTelemetry();
  telemetry::EnableMetrics(true);
  service::CycleStatsRing ring;
  ring.Record(MakeStat(1, 2.0, 40.0));
  ring.Record(MakeStat(2, 4.0, 20.0));
  ring.ExportSloGauges();
  EXPECT_DOUBLE_EQ(
      telemetry::GetGauge("service.slo.alert_latency_p50_s").value(), 20.0);
  EXPECT_DOUBLE_EQ(
      telemetry::GetGauge("service.slo.alert_latency_p95_s").value(), 40.0);
  EXPECT_DOUBLE_EQ(
      telemetry::GetGauge("service.slo.cycle_wall_p50_s").value(), 2.0);
  EXPECT_DOUBLE_EQ(
      telemetry::GetGauge("service.slo.cycle_wall_p95_s").value(), 4.0);
  EXPECT_DOUBLE_EQ(
      telemetry::GetGauge("service.slo.cycles_observed").value(), 2.0);
  telemetry::EnableMetrics(false);
  telemetry::ResetTelemetry();
}

TEST(CycleStatsTest, ConcurrentRecordAndSnapshotStayConsistent) {
  service::CycleStatsRing ring(64);
  std::thread writer([&ring] {
    for (std::uint64_t c = 1; c <= 2000; ++c) {
      ring.Record(MakeStat(c, 0.001, -1.0));
    }
  });
  // Readers must always see a contiguous, ordered suffix of cycles.
  for (int r = 0; r < 200; ++r) {
    const auto snap = ring.Recent(64);
    for (std::size_t i = 1; i < snap.size(); ++i) {
      ASSERT_EQ(snap[i].cycle, snap[i - 1].cycle + 1);
    }
  }
  writer.join();
  EXPECT_EQ(ring.total_recorded(), 2000u);
  EXPECT_EQ(ring.size(), 64u);
}

TEST(MonitorStateTest, CorruptSnapshotThrows) {
  MonitorState st;
  std::vector<Alert> closed;
  st.AdvanceDay(3, {true, false}, nullptr, &closed);
  std::stringstream s;
  st.Save(s);
  std::string bytes = s.str();
  bytes[bytes.size() / 2] ^= 0x10;
  std::istringstream in(bytes);
  EXPECT_THROW(MonitorState::Load(in), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(MonitorState::Load(empty), std::runtime_error);
}

}  // namespace
