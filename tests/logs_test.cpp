// Unit tests for src/logs: entity tables, records, store, CSV I/O, tee.

#include <gtest/gtest.h>

#include <sstream>

#include "logs/entity_table.h"
#include "logs/log_io.h"
#include "logs/log_store.h"
#include "logs/tee_sink.h"

namespace acobe {
namespace {

TEST(EntityTableTest, InternIsIdempotent) {
  EntityTable t;
  const auto a = t.Intern("alice");
  const auto b = t.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("alice"), a);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.NameOf(a), "alice");
  EXPECT_EQ(t.NameOf(b), "bob");
}

TEST(EntityTableTest, LookupMissingReturnsInvalid) {
  EntityTable t;
  EXPECT_EQ(t.Lookup("ghost"), kInvalidId);
  t.Intern("real");
  EXPECT_NE(t.Lookup("real"), kInvalidId);
}

TEST(EntityTableTest, NameOfBadIdThrows) {
  EntityTable t;
  EXPECT_THROW(t.NameOf(0), std::out_of_range);
}

TEST(RecordsTest, EnumStringRoundTrips) {
  for (auto a : {LogonActivity::kLogon, LogonActivity::kLogoff}) {
    EXPECT_EQ(LogonActivityFromString(ToString(a)), a);
  }
  for (auto a : {DeviceActivity::kConnect, DeviceActivity::kDisconnect}) {
    EXPECT_EQ(DeviceActivityFromString(ToString(a)), a);
  }
  for (auto a : {FileActivity::kOpen, FileActivity::kWrite,
                 FileActivity::kCopy, FileActivity::kDelete}) {
    EXPECT_EQ(FileActivityFromString(ToString(a)), a);
  }
  for (auto a : {HttpActivity::kVisit, HttpActivity::kDownload,
                 HttpActivity::kUpload}) {
    EXPECT_EQ(HttpActivityFromString(ToString(a)), a);
  }
  for (auto t : {HttpFileType::kNone, HttpFileType::kDoc, HttpFileType::kExe,
                 HttpFileType::kJpg, HttpFileType::kPdf, HttpFileType::kTxt,
                 HttpFileType::kZip}) {
    EXPECT_EQ(HttpFileTypeFromString(ToString(t)), t);
  }
  for (auto a : {EnterpriseAspect::kFile, EnterpriseAspect::kCommand,
                 EnterpriseAspect::kConfig, EnterpriseAspect::kResource}) {
    EXPECT_EQ(EnterpriseAspectFromString(ToString(a)), a);
  }
  EXPECT_THROW(LogonActivityFromString("nope"), std::invalid_argument);
  EXPECT_THROW(HttpFileTypeFromString(""), std::invalid_argument);
}

LogStore MakeSampleStore() {
  LogStore store;
  const UserId u = store.users().Intern("JPH1910");
  const PcId pc = store.pcs().Intern("PC-1");
  const FileId f = store.files().Intern("doc,with comma");
  const DomainId d = store.domains().Intern("wikileaks.org");

  store.Add(DeviceEvent{200, u, pc, DeviceActivity::kConnect});
  store.Add(DeviceEvent{100, u, pc, DeviceActivity::kDisconnect});
  store.Add(FileEvent{150, u, pc, FileActivity::kCopy, f, FileLocation::kLocal,
                      FileLocation::kRemote});
  store.Add(HttpEvent{120, u, pc, HttpActivity::kUpload, d, HttpFileType::kDoc});
  store.Add(LogonEvent{90, u, pc, LogonActivity::kLogon});

  LdapRecord ldap;
  ldap.user = u;
  ldap.user_name = "JPH1910";
  ldap.department = "Dept-A";
  ldap.team = "T1";
  ldap.role = "Employee";
  store.AddLdap(std::move(ldap));
  return store;
}

TEST(LogStoreTest, TotalAndSort) {
  LogStore store = MakeSampleStore();
  EXPECT_EQ(store.TotalEvents(), 5u);
  store.SortChronologically();
  EXPECT_EQ(store.devices()[0].activity, DeviceActivity::kDisconnect);
  EXPECT_EQ(store.devices()[1].activity, DeviceActivity::kConnect);
}

TEST(LogStoreTest, DepartmentsAndMembers) {
  LogStore store = MakeSampleStore();
  const auto depts = store.Departments();
  ASSERT_EQ(depts.size(), 1u);
  EXPECT_EQ(depts[0], "Dept-A");
  EXPECT_EQ(store.UsersInDepartment("Dept-A").size(), 1u);
  EXPECT_TRUE(store.UsersInDepartment("Dept-Z").empty());
}

TEST(LogIoTest, DeviceCsvRoundTrip) {
  LogStore store = MakeSampleStore();
  std::stringstream ss;
  WriteDeviceCsv(store, ss);
  LogStore loaded;
  ReadDeviceCsv(ss, loaded);
  ASSERT_EQ(loaded.devices().size(), 2u);
  EXPECT_EQ(loaded.devices()[0].ts, 200);
  EXPECT_EQ(loaded.users().NameOf(loaded.devices()[0].user), "JPH1910");
  EXPECT_EQ(loaded.devices()[0].activity, DeviceActivity::kConnect);
}

TEST(LogIoTest, FileCsvRoundTripWithQuoting) {
  LogStore store = MakeSampleStore();
  std::stringstream ss;
  WriteFileCsv(store, ss);
  LogStore loaded;
  ReadFileCsv(ss, loaded);
  ASSERT_EQ(loaded.file_events().size(), 1u);
  const FileEvent& e = loaded.file_events()[0];
  EXPECT_EQ(loaded.files().NameOf(e.file), "doc,with comma");
  EXPECT_EQ(e.from, FileLocation::kLocal);
  EXPECT_EQ(e.to, FileLocation::kRemote);
}

TEST(LogIoTest, HttpLogonLdapRoundTrips) {
  LogStore store = MakeSampleStore();
  std::stringstream http, logon, ldap;
  WriteHttpCsv(store, http);
  WriteLogonCsv(store, logon);
  WriteLdapCsv(store, ldap);

  LogStore loaded;
  ReadHttpCsv(http, loaded);
  ReadLogonCsv(logon, loaded);
  ReadLdapCsv(ldap, loaded);
  ASSERT_EQ(loaded.http_events().size(), 1u);
  EXPECT_EQ(loaded.http_events()[0].filetype, HttpFileType::kDoc);
  ASSERT_EQ(loaded.logons().size(), 1u);
  ASSERT_EQ(loaded.ldap().size(), 1u);
  EXPECT_EQ(loaded.ldap()[0].department, "Dept-A");
}

TEST(LogIoTest, MalformedRowThrows) {
  std::stringstream ss("ts,user,pc,activity\n1,alice\n");
  LogStore store;
  EXPECT_THROW(ReadDeviceCsv(ss, store), std::invalid_argument);
}

TEST(LogIoTest, EmptyStreamYieldsNothing) {
  std::stringstream ss;
  LogStore store;
  ReadDeviceCsv(ss, store);
  EXPECT_TRUE(store.devices().empty());
}

// --- Ingestion policies ------------------------------------------------

// Six data rows: three malformed (bad timestamp, missing field, unknown
// enum), one exact consecutive duplicate, two more good rows.
constexpr const char* kMixedDeviceCsv =
    "ts,user,pc,activity\n"
    "100,alice,pc1,connect\n"
    "bad!ts,bob,pc1,connect\n"
    "200,alice,pc1\n"
    "300,bob,pc2,disconnect\n"
    "300,bob,pc2,disconnect\n"
    "400,carol,pc3,teleport\n"
    "500,dave,pc1,connect\n";

TEST(IngestPolicyTest, StrictThrowsWithFileLineContext) {
  std::stringstream ss(kMixedDeviceCsv);
  LogStore store;
  IngestOptions opts;  // strict by default
  try {
    ReadDeviceCsv(ss, store, opts, "device.csv");
    FAIL() << "expected IngestError";
  } catch (const IngestError& e) {
    EXPECT_EQ(e.file(), "device.csv");
    EXPECT_EQ(e.line(), 3u);  // header is line 1
    EXPECT_NE(std::string(e.what()).find("device.csv:3:"), std::string::npos)
        << e.what();
  }
}

TEST(IngestPolicyTest, PermissiveSkipsBadRowsAndCounts) {
  std::stringstream ss(kMixedDeviceCsv);
  LogStore store;
  IngestOptions opts;
  opts.policy = IngestPolicy::kPermissive;
  opts.error_budget = 1.0;
  const IngestStats stats = ReadDeviceCsv(ss, store, opts, "device.csv");
  EXPECT_EQ(stats.rows_read, 7u);
  EXPECT_EQ(stats.rows_rejected, 3u);
  EXPECT_EQ(stats.rows_quarantined, 0u);
  EXPECT_EQ(stats.rows_deduped, 0u);  // dedupe off: duplicate accepted
  EXPECT_EQ(store.devices().size(), 4u);
  EXPECT_NE(stats.first_error.find("device.csv:3:"), std::string::npos);
  // Entity tables hold only users from accepted rows: validation runs
  // before interning, so a rejected row pollutes nothing.
  EXPECT_EQ(store.users().Lookup("carol"), kInvalidId);
  EXPECT_NE(store.users().Lookup("dave"), kInvalidId);
}

TEST(IngestPolicyTest, DedupeDropsConsecutiveDuplicates) {
  std::stringstream ss(kMixedDeviceCsv);
  LogStore store;
  IngestOptions opts;
  opts.policy = IngestPolicy::kPermissive;
  opts.error_budget = 1.0;
  opts.drop_consecutive_duplicates = true;
  const IngestStats stats = ReadDeviceCsv(ss, store, opts, "device.csv");
  EXPECT_EQ(stats.rows_deduped, 1u);
  EXPECT_EQ(store.devices().size(), 3u);
}

TEST(IngestPolicyTest, QuarantineCapturesRawRows) {
  std::stringstream ss(kMixedDeviceCsv);
  std::ostringstream sink;
  LogStore store;
  IngestOptions opts;
  opts.policy = IngestPolicy::kQuarantine;
  opts.error_budget = 1.0;
  opts.quarantine = &sink;
  const IngestStats stats = ReadDeviceCsv(ss, store, opts, "device.csv");
  EXPECT_EQ(stats.rows_rejected, 3u);
  EXPECT_EQ(stats.rows_quarantined, 3u);
  EXPECT_EQ(sink.str(),
            "bad!ts,bob,pc1,connect\n"
            "200,alice,pc1\n"
            "400,carol,pc3,teleport\n");
}

TEST(IngestPolicyTest, ErrorBudgetAborts) {
  std::stringstream ss(kMixedDeviceCsv);
  LogStore store;
  IngestOptions opts;
  opts.policy = IngestPolicy::kPermissive;
  opts.error_budget = 0.1;
  opts.budget_min_rows = 1;
  try {
    ReadDeviceCsv(ss, store, opts, "device.csv");
    FAIL() << "expected budget abort";
  } catch (const IngestError& e) {
    EXPECT_NE(std::string(e.what()).find("error budget exceeded"),
              std::string::npos)
        << e.what();
  }
}

TEST(IngestPolicyTest, TimestampPlausibilityWindow) {
  std::stringstream ss(
      "ts,user,pc,activity\n"
      "100,alice,pc1,connect\n"
      "99999999999,alice,pc1,connect\n");
  LogStore store;
  IngestOptions opts;
  opts.policy = IngestPolicy::kPermissive;
  opts.error_budget = 1.0;
  opts.ts_min = 0;
  opts.ts_max = 1000;
  const IngestStats stats = ReadDeviceCsv(ss, store, opts, "device.csv");
  EXPECT_EQ(stats.rows_rejected, 1u);
  ASSERT_EQ(store.devices().size(), 1u);
  EXPECT_EQ(store.devices()[0].ts, 100);
  EXPECT_NE(stats.first_error.find("plausibility"), std::string::npos);
}

TEST(IngestPolicyTest, StrayQuoteDamagesOneRowOnly) {
  // A corrupted byte that happens to be '"' must not swallow the rest
  // of the file into one unterminated "row".
  std::stringstream ss(
      "ts,user,pc,activity\n"
      "100,al\"ice,pc1,connect\n"
      "200,bob,pc1,connect\n"
      "300,carol,pc1,disconnect\n");
  LogStore store;
  IngestOptions opts;
  opts.policy = IngestPolicy::kPermissive;
  opts.error_budget = 1.0;
  const IngestStats stats = ReadDeviceCsv(ss, store, opts, "device.csv");
  EXPECT_EQ(stats.rows_read, 3u);
  EXPECT_EQ(stats.rows_rejected, 1u);
  EXPECT_EQ(store.devices().size(), 2u);
}

TEST(LogIoTest, EnterpriseAndProxyCsvRoundTrips) {
  LogStore store;
  const UserId u = store.users().Intern("emp1");
  const auto obj = store.objects().Intern("registry/HKCU-Run");
  const DomainId d = store.domains().Intern("cnc.example.net");
  store.Add(EnterpriseEvent{500, u, EnterpriseAspect::kConfig, 13, obj});
  store.Add(ProxyEvent{600, u, d, false, 0});

  std::stringstream ent, proxy;
  WriteEnterpriseCsv(store, ent);
  WriteProxyCsv(store, proxy);

  LogStore loaded;
  ReadEnterpriseCsv(ent, loaded);
  ReadProxyCsv(proxy, loaded);
  ASSERT_EQ(loaded.enterprise_events().size(), 1u);
  const EnterpriseEvent& e = loaded.enterprise_events()[0];
  EXPECT_EQ(e.ts, 500);
  EXPECT_EQ(e.aspect, EnterpriseAspect::kConfig);
  EXPECT_EQ(e.event_id, 13);
  EXPECT_EQ(loaded.objects().NameOf(e.object), "registry/HKCU-Run");
  ASSERT_EQ(loaded.proxy_events().size(), 1u);
  EXPECT_FALSE(loaded.proxy_events()[0].success);
  EXPECT_EQ(loaded.domains().NameOf(loaded.proxy_events()[0].domain),
            "cnc.example.net");
}

TEST(TeeSinkTest, FansOutToAllSinks) {
  LogStore a, b;
  TeeSink tee({&a, &b});
  tee.Consume(LogonEvent{1, 0, 0, LogonActivity::kLogon});
  tee.Consume(ProxyEvent{2, 0, 0, true, 10});
  EXPECT_EQ(a.logons().size(), 1u);
  EXPECT_EQ(b.logons().size(), 1u);
  EXPECT_EQ(a.proxy_events().size(), 1u);
  EXPECT_EQ(b.proxy_events().size(), 1u);
}

}  // namespace
}  // namespace acobe
