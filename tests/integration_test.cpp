// End-to-end integration tests: synthesize a small organization with an
// injected insider, run the full ACOBE pipeline (extraction ->
// deviation matrices -> autoencoder ensemble -> critic) and check that
// the insider surfaces near the top of the investigation list; same for
// the enterprise case study with a detonated attack.

#include <gtest/gtest.h>

#include "baselines/experiment.h"
#include "baselines/variants.h"
#include "eval/metrics.h"

namespace acobe::baselines {
namespace {

ScaleProfile TinyScale() {
  ScaleProfile scale;
  scale.encoder_dims = {32, 16, 8};
  scale.epochs = 18;
  scale.train_stride = 2;
  scale.omega = 10;
  scale.matrix_days = 10;
  scale.seed = 17;
  return scale;
}

CertExperimentConfig TinyExperiment() {
  CertExperimentConfig cfg;
  cfg.sim.org.departments = 1;
  cfg.sim.org.users_per_department = 20;
  cfg.sim.org.extra_users = 0;
  cfg.sim.start = Date(2010, 1, 2);
  cfg.sim.end = Date(2010, 12, 15);
  cfg.sim.profiles.rate_scale = 0.4;
  cfg.sim.seed = 23;
  cfg.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario1, 0, Date(2010, 11, 1), 14});
  cfg.train_gap_days = 20;
  cfg.test_tail_days = 15;
  return cfg;
}

TEST(IntegrationTest, AcobeRanksInsiderFirst) {
  const CertData data = BuildCertData(TinyExperiment());
  const DetectionOutput out =
      RunVariantOnScenario(data, VariantKind::kAcobe, TinyScale(),
                           data.scenarios[0], 20, 15);
  const auto ranked = MakeRankedUsers(out, data.truth);
  ASSERT_EQ(ranked.size(), 20u);
  // The insider must surface in the top quarter of the department
  // (this tiny 20-user configuration guards the pipeline end to end;
  // the decisive paper-shape checks run at fig6 scale).
  int position = -1;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].positive) position = static_cast<int>(i);
  }
  ASSERT_GE(position, 0);
  EXPECT_LT(position, 5);
}

TEST(IntegrationTest, AcobeBeatsBaselineOnAuc) {
  const CertData data = BuildCertData(TinyExperiment());
  auto auc_of = [&](VariantKind kind) {
    const DetectionOutput out = RunVariantOnScenario(
        data, kind, TinyScale(), data.scenarios[0], 20, 15);
    return eval::RocAuc(eval::PositiveFlags(MakeRankedUsers(out, data.truth)));
  };
  const double acobe = auc_of(VariantKind::kAcobe);
  const double baseline = auc_of(VariantKind::kBaseline);
  // At this tiny scale (1 positive, 20 users) each rank step is 1/19 of
  // AUC; require ACOBE to be strong and within two rank steps of the
  // baseline (the decisive comparison runs at fig6 scale).
  EXPECT_GT(acobe, 0.75);
  EXPECT_GE(acobe, baseline - 3.0 / 19.0 - 1e-9);
}

TEST(IntegrationTest, EnterpriseVictimSurfacesAfterAttack) {
  EnterpriseExperimentConfig cfg;
  cfg.sim.employees = 20;
  cfg.sim.start = Date(2020, 11, 1);
  cfg.sim.end = Date(2021, 2, 20);
  cfg.sim.rate_scale = 0.4;
  cfg.sim.seed = 29;
  cfg.attacks = {{sim::AttackKind::kRansomware, Date(2021, 2, 2)}};
  cfg.victim_index = 5;
  const EnterpriseData data = BuildEnterpriseData(cfg);

  DetectorSpec spec;
  spec.deviation.omega = 14;
  spec.deviation.matrix_days = 14;
  spec.ensemble.encoder_dims = {32, 16, 8};
  spec.ensemble.train.epochs = 10;
  spec.ensemble.train_stride = 3;
  spec.ensemble.seed = 31;
  spec.critic_votes = 3;

  spec.ensemble.optimizer = OptimizerKind::kAdam;
  spec.ensemble.learning_rate = 1e-3f;
  spec.ensemble.train.epochs = 25;
  spec.ensemble.train_stride = 2;

  const int train_end = static_cast<int>(
      DaysBetween(data.start, Date(2021, 1, 20)));
  const Detector detector(spec);
  const DetectionOutput out = detector.Run(
      data.extractor->cube(), data.extractor->catalog(), data.employees, 0,
      train_end, train_end, data.days);

  // The paper's claim: the victim tops the *daily* investigation list
  // for roughly two weeks after the attack. Require top-3 on most of
  // the ten days following the attack.
  const UserId victim = data.attacks[0].victim;
  int vidx = -1;
  for (std::size_t i = 0; i < out.members.size(); ++i) {
    if (out.members[i] == victim) vidx = static_cast<int>(i);
  }
  ASSERT_GE(vidx, 0);
  const int attack_day = static_cast<int>(
      DaysBetween(data.start, data.attacks[0].attack_date));
  int days_in_top3 = 0, days_checked = 0;
  for (int d = attack_day + 1;
       d <= attack_day + 10 && d < out.grid.day_end(); ++d) {
    const auto daily = RankUsersOnDay(out.grid, spec.critic_votes, d);
    for (int i = 0; i < 3 && i < static_cast<int>(daily.size()); ++i) {
      if (daily[i].user_idx == vidx) {
        ++days_in_top3;
        break;
      }
    }
    ++days_checked;
  }
  EXPECT_GE(days_checked, 8);
  EXPECT_GE(days_in_top3, days_checked * 6 / 10)
      << "victim in top-3 on only " << days_in_top3 << "/" << days_checked
      << " days";
}

}  // namespace
}  // namespace acobe::baselines
