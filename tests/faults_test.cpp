// Robustness tests: the deterministic fault injector, fuzz-style
// round-trips of corrupted CSVs through every log reader, redelivery
// recovery (the property the end-to-end smoke leans on), ensemble
// checkpoint/resume crash-safety, and graceful degradation when an
// aspect's training diverges irrecoverably.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "behavior/normalized_day.h"
#include "common/faults.h"
#include "common/rng.h"
#include "core/ensemble.h"
#include "core/ensemble_io.h"
#include "logs/log_io.h"
#include "simdata/fault_injector.h"

namespace acobe {
namespace {

using sim::FaultInjector;
using sim::FaultInjectorConfig;
using sim::FaultReport;

// --- Shared fixtures -----------------------------------------------------

/// A store exercising every stream with unique rows (strictly increasing
/// timestamps), so consecutive-duplicate suppression never touches
/// legitimate data and redelivery recovery can demand exact equality.
LogStore MakeRichStore() {
  LogStore store;
  std::vector<UserId> users;
  for (int i = 0; i < 6; ++i) {
    users.push_back(store.users().Intern("user" + std::to_string(i)));
  }
  std::vector<PcId> pcs;
  for (int i = 0; i < 4; ++i) {
    pcs.push_back(store.pcs().Intern("PC-" + std::to_string(i)));
  }
  const FileId plain = store.files().Intern("report.doc");
  const FileId tricky = store.files().Intern("doc,with comma");
  const DomainId dom = store.domains().Intern("example.org");
  const DomainId dom2 = store.domains().Intern("files.example.net");
  const auto obj = store.objects().Intern("registry/HKCU-Run");

  for (int k = 0; k < 60; ++k) {
    const Timestamp ts = 100000 + 37 * k;
    const UserId u = users[k % users.size()];
    const PcId pc = pcs[k % pcs.size()];
    store.Add(DeviceEvent{ts, u, pc,
                          k % 2 ? DeviceActivity::kConnect
                                : DeviceActivity::kDisconnect});
    store.Add(FileEvent{ts + 1, u, pc,
                        static_cast<FileActivity>(k % 4),
                        k % 3 ? plain : tricky, FileLocation::kLocal,
                        k % 5 ? FileLocation::kLocal : FileLocation::kRemote});
    store.Add(HttpEvent{ts + 2, u, pc, static_cast<HttpActivity>(k % 3),
                        k % 2 ? dom : dom2, static_cast<HttpFileType>(k % 4)});
    store.Add(LogonEvent{ts + 3, u, pc,
                         k % 2 ? LogonActivity::kLogon
                               : LogonActivity::kLogoff});
    store.Add(EnterpriseEvent{ts + 4, u, static_cast<EnterpriseAspect>(k % 4),
                              static_cast<std::uint16_t>(4600 + k % 100),
                              obj});
    store.Add(ProxyEvent{ts + 5, u, k % 2 ? dom : dom2, k % 7 != 0,
                         static_cast<std::uint32_t>(512 + 13 * k)});
  }
  for (int i = 0; i < 6; ++i) {
    LdapRecord rec;
    rec.user = users[static_cast<std::size_t>(i)];
    rec.user_name = "user" + std::to_string(i);
    rec.department = i < 3 ? "Dept-A" : "Dept-B";
    rec.team = "T" + std::to_string(i % 2);
    rec.role = "Employee";
    store.AddLdap(std::move(rec));
  }
  return store;
}

struct Stream {
  const char* name;
  std::function<void(const LogStore&, std::ostream&)> write;
  std::function<IngestStats(std::istream&, LogStore&, const IngestOptions&)>
      read;
};

std::vector<Stream> AllStreams() {
  return {
      {"device.csv", WriteDeviceCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadDeviceCsv(in, s, o, "device.csv");
       }},
      {"file.csv", WriteFileCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadFileCsv(in, s, o, "file.csv");
       }},
      {"http.csv", WriteHttpCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadHttpCsv(in, s, o, "http.csv");
       }},
      {"logon.csv", WriteLogonCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadLogonCsv(in, s, o, "logon.csv");
       }},
      {"ldap.csv", WriteLdapCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadLdapCsv(in, s, o, "ldap.csv");
       }},
      {"enterprise.csv", WriteEnterpriseCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadEnterpriseCsv(in, s, o, "enterprise.csv");
       }},
      {"proxy.csv", WriteProxyCsv,
       [](std::istream& in, LogStore& s, const IngestOptions& o) {
         return ReadProxyCsv(in, s, o, "proxy.csv");
       }},
  };
}

std::string Render(const Stream& stream, const LogStore& store) {
  std::ostringstream out;
  stream.write(store, out);
  return out.str();
}

// --- Fault injector ------------------------------------------------------

TEST(FaultInjectorTest, DeterministicAcrossRuns) {
  const LogStore store = MakeRichStore();
  const std::string clean = Render(AllStreams()[0], store);
  FaultInjectorConfig cfg;
  cfg.rate = 0.5;
  cfg.seed = 7;
  const FaultInjector inj(cfg);

  std::string a = clean;
  std::string b = clean;
  const FaultReport ra = inj.Corrupt(a, /*key=*/11);
  const FaultReport rb = inj.Corrupt(b, /*key=*/11);
  EXPECT_GT(ra.rows_corrupted, 0u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.rows_corrupted, rb.rows_corrupted);
  EXPECT_EQ(ra.bytes_flipped, rb.bytes_flipped);

  // A different file key draws an independent fault stream.
  std::string c = clean;
  inj.Corrupt(c, /*key=*/12);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, HeaderLineIsNeverTouched) {
  const LogStore store = MakeRichStore();
  const std::string clean = Render(AllStreams()[0], store);
  const std::string header = clean.substr(0, clean.find('\n'));
  FaultInjectorConfig cfg;
  cfg.rate = 1.0;
  const std::string corrupted = FaultInjector(cfg).Corrupted(clean, 1);
  EXPECT_EQ(corrupted.substr(0, corrupted.find('\n')), header);
}

TEST(FaultInjectorTest, RedeliverKeepsEveryOriginalRow) {
  const LogStore store = MakeRichStore();
  const std::string clean = Render(AllStreams()[1], store);
  FaultInjectorConfig cfg;
  cfg.rate = 0.6;
  cfg.redeliver = true;
  const std::string corrupted = FaultInjector(cfg).Corrupted(clean, 3);

  // Every clean line must survive somewhere in the corrupted text: a
  // garbled emission is always followed by a retransmission.
  std::istringstream corrupt_lines(corrupted);
  std::multiset<std::string> have;
  for (std::string line; std::getline(corrupt_lines, line);) {
    have.insert(line);
  }
  std::istringstream clean_lines(clean);
  for (std::string line; std::getline(clean_lines, line);) {
    const auto it = have.find(line);
    ASSERT_NE(it, have.end()) << "lost row: " << line;
    have.erase(it);
  }
}

// --- Fuzz-style round-trips ----------------------------------------------

IngestOptions PermissiveOptions() {
  IngestOptions options;
  options.policy = IngestPolicy::kPermissive;
  options.error_budget = 1.0;
  options.drop_consecutive_duplicates = true;
  return options;
}

/// Corrupted input must never crash a permissive reader, and both the
/// ingest counters and the accepted dataset must be reproducible.
TEST(FuzzRoundTripTest, CorruptedStreamsParseDeterministically) {
  const LogStore store = MakeRichStore();
  struct Variant {
    double rate;
    std::uint64_t seed;
    bool truncate_file;
  };
  const Variant variants[] = {
      {0.05, 1, false}, {0.35, 7, true}, {0.9, 13, false}};

  for (const Stream& stream : AllStreams()) {
    const std::string clean = Render(stream, store);
    for (const Variant& v : variants) {
      FaultInjectorConfig cfg;
      cfg.rate = v.rate;
      cfg.seed = v.seed;
      cfg.truncate_file = v.truncate_file;
      const std::string corrupted =
          FaultInjector(cfg).Corrupted(clean, /*key=*/5);

      auto ingest = [&](IngestStats& stats) {
        LogStore fresh;
        std::istringstream in(corrupted);
        stats = stream.read(in, fresh, PermissiveOptions());
        return Render(stream, fresh);
      };
      IngestStats s1, s2;
      const std::string out1 = ingest(s1);
      const std::string out2 = ingest(s2);
      SCOPED_TRACE(std::string(stream.name) + " rate=" +
                   std::to_string(v.rate));
      EXPECT_EQ(out1, out2);
      EXPECT_EQ(s1.rows_read, s2.rows_read);
      EXPECT_EQ(s1.rows_rejected, s2.rows_rejected);
      EXPECT_EQ(s1.rows_deduped, s2.rows_deduped);
      EXPECT_EQ(s1.first_error, s2.first_error);
    }
  }
}

/// The property the end-to-end corruption test stands on: with
/// redelivery (an at-least-once shipper), permissive ingestion plus
/// consecutive-duplicate suppression recovers the clean stream exactly.
TEST(FuzzRoundTripTest, RedeliveryRecoversCleanStreamExactly) {
  const LogStore store = MakeRichStore();
  FaultInjectorConfig cfg;
  cfg.rate = 0.4;
  cfg.seed = 21;
  cfg.redeliver = true;
  const FaultInjector inj(cfg);

  for (const Stream& stream : AllStreams()) {
    const std::string clean = Render(stream, store);
    const std::string corrupted = inj.Corrupted(clean, /*key=*/9);
    LogStore fresh;
    std::istringstream in(corrupted);
    const IngestStats stats = stream.read(in, fresh, PermissiveOptions());
    SCOPED_TRACE(stream.name);
    EXPECT_GT(stats.rows_rejected + stats.rows_deduped, 0u);
    EXPECT_EQ(Render(stream, fresh), clean);
  }
}

// --- WriteFileAtomic durability -------------------------------------------

TEST(WriteFileAtomicTest, SyncsParentDirectoryAfterRename) {
  // The rename itself is only durable once the parent directory's entry
  // is fsync'd; assert the directory sync actually runs (per write)
  // rather than being silently skipped.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "acobe_dirsync";
  std::filesystem::create_directories(dir);
  const std::uint64_t before = DirFsyncCount();
  WriteFileAtomic((dir / "artifact.bin").string(),
                  [](std::ostream& out) { out << "payload"; });
  WriteFileAtomic((dir / "artifact.bin").string(),
                  [](std::ostream& out) { out << "payload2"; });
  EXPECT_GE(DirFsyncCount(), before + 2);
  // And no temporary litter survives a successful replace.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string(), "artifact.bin");
  }
  std::filesystem::remove_all(dir);
}

// --- Ensemble checkpoint / resume ----------------------------------------

const Date kStart(2010, 1, 4);

MeasurementCube ToyCube(int users, int days) {
  MeasurementCube cube(kStart, days, 2, 1);
  Rng rng(51);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(100 + u);
    for (int d = 0; d < days; ++d) {
      cube.At(u, 0, d, 0) = static_cast<float>(rng.NextPoisson(5.0));
      cube.At(u, 1, d, 0) = static_cast<float>(rng.NextPoisson(2.0));
    }
  }
  return cube;
}

EnsembleConfig SmallConfig() {
  EnsembleConfig cfg;
  cfg.encoder_dims = {8, 4};
  cfg.train.epochs = 4;
  cfg.seed = 3;
  cfg.threads = 1;
  return cfg;
}

void ExpectGridsBitIdentical(const ScoreGrid& a, const ScoreGrid& b) {
  ASSERT_EQ(a.aspects(), b.aspects());
  ASSERT_EQ(a.users(), b.users());
  ASSERT_EQ(a.day_begin(), b.day_begin());
  ASSERT_EQ(a.day_end(), b.day_end());
  for (int s = 0; s < a.aspects(); ++s) {
    for (int u = 0; u < a.users(); ++u) {
      for (int d = a.day_begin(); d < a.day_end(); ++d) {
        // EXPECT_EQ, not FLOAT_EQ: resume promises bit-identical output.
        EXPECT_EQ(a.At(s, u, d), b.At(s, u, d));
      }
    }
  }
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("acobe_ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ScoreGrid TrainAndScore(const EnsembleConfig& cfg) {
    const MeasurementCube cube = ToyCube(5, 30);
    const NormalizedDayBuilder builder(&cube, 0, 20);
    const FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});
    AspectEnsemble ensemble(catalog.aspects(), cfg);
    ensemble.Train(builder, 5, 0, 20);
    return ensemble.Score(builder, 5, 20, 30);
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointResumeTest, ResumeReproducesUninterruptedRunBitExactly) {
  EnsembleConfig cfg = SmallConfig();
  cfg.checkpoint_dir = dir_.string();
  const ScoreGrid first = TrainAndScore(cfg);
  ASSERT_TRUE(std::filesystem::exists(dir_ / "aspect_x.ae"));
  ASSERT_TRUE(std::filesystem::exists(dir_ / "aspect_y.ae"));

  cfg.resume = true;
  const ScoreGrid resumed = TrainAndScore(cfg);
  ExpectGridsBitIdentical(first, resumed);
}

TEST_F(CheckpointResumeTest, MissingCheckpointRetrainsToSameResult) {
  EnsembleConfig cfg = SmallConfig();
  cfg.checkpoint_dir = dir_.string();
  const ScoreGrid first = TrainAndScore(cfg);

  // A run killed before aspect "y" finished leaves only aspect "x".
  std::filesystem::remove(dir_ / "aspect_y.ae");
  cfg.resume = true;
  ExpectGridsBitIdentical(first, TrainAndScore(cfg));
}

TEST_F(CheckpointResumeTest, CorruptCheckpointIsDiscardedAndRetrained) {
  EnsembleConfig cfg = SmallConfig();
  cfg.checkpoint_dir = dir_.string();
  const ScoreGrid first = TrainAndScore(cfg);

  // Flip one payload byte; the CRC rejects the file and the aspect is
  // retrained from scratch instead of scoring with silently-wrong
  // weights.
  const std::filesystem::path victim = dir_ / "aspect_x.ae";
  std::string bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 40u);
  bytes[20] ^= 0x20;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  cfg.resume = true;
  ExpectGridsBitIdentical(first, TrainAndScore(cfg));
}

TEST_F(CheckpointResumeTest, ArchitectureMismatchThrows) {
  EnsembleConfig cfg = SmallConfig();
  cfg.checkpoint_dir = dir_.string();
  TrainAndScore(cfg);

  // The directory belongs to an {8,4} run; resuming a {6,3} run must
  // refuse loudly instead of mixing architectures.
  cfg.encoder_dims = {6, 3};
  cfg.resume = true;
  EXPECT_THROW(TrainAndScore(cfg), CheckpointMismatch);
}

// --- Graceful degradation -------------------------------------------------

/// Feeds NaN for one feature's samples so that aspect's training loss is
/// non-finite on every attempt, while other aspects stay healthy.
class PoisonFeatureBuilder : public SampleBuilder {
 public:
  PoisonFeatureBuilder(const SampleBuilder* inner, int poisoned_feature)
      : inner_(inner), poisoned_feature_(poisoned_feature) {}

  std::vector<float> BuildSample(int user_idx, std::span<const int> features,
                                 int day) const override {
    std::vector<float> sample = inner_->BuildSample(user_idx, features, day);
    for (int f : features) {
      if (f == poisoned_feature_) {
        sample.assign(sample.size(),
                      std::numeric_limits<float>::quiet_NaN());
      }
    }
    return sample;
  }
  std::size_t SampleSize(std::size_t n_features) const override {
    return inner_->SampleSize(n_features);
  }
  int FirstValidDay() const override { return inner_->FirstValidDay(); }
  int EndDay() const override { return inner_->EndDay(); }

 private:
  const SampleBuilder* inner_;
  int poisoned_feature_;
};

TEST(DegradationTest, PoisonedAspectIsDroppedAndRestStillScore) {
  const MeasurementCube cube = ToyCube(5, 30);
  const NormalizedDayBuilder inner(&cube, 0, 20);
  const PoisonFeatureBuilder builder(&inner, /*poisoned_feature=*/1);
  const FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});

  EnsembleConfig cfg = SmallConfig();
  AspectEnsemble ensemble(catalog.aspects(), cfg);
  ensemble.Train(builder, 5, 0, 20);

  EXPECT_TRUE(ensemble.trained());
  EXPECT_TRUE(ensemble.degraded());
  EXPECT_TRUE(ensemble.aspect_ok(0));
  EXPECT_FALSE(ensemble.aspect_ok(1));
  EXPECT_EQ(ensemble.healthy_aspect_count(), 1);
  EXPECT_EQ(ensemble.failed_aspects(), std::vector<std::string>{"y"});

  const ScoreGrid grid = ensemble.Score(builder, 5, 20, 30);
  ASSERT_EQ(grid.aspects(), 1);
  EXPECT_EQ(grid.aspect_name(0), "x");
  for (int u = 0; u < 5; ++u) {
    for (int d = 20; d < 30; ++d) {
      EXPECT_TRUE(std::isfinite(grid.At(0, u, d)));
    }
  }

  // A partial model must not be persisted as if it were whole.
  std::stringstream ss;
  EXPECT_THROW(SaveEnsemble(ensemble, ss), std::logic_error);
}

TEST(DegradationTest, StrictModeRethrowsDivergence) {
  const MeasurementCube cube = ToyCube(5, 30);
  const NormalizedDayBuilder inner(&cube, 0, 20);
  const PoisonFeatureBuilder builder(&inner, /*poisoned_feature=*/0);
  const FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});

  EnsembleConfig cfg = SmallConfig();
  cfg.allow_degraded = false;
  AspectEnsemble ensemble(catalog.aspects(), cfg);
  EXPECT_THROW(ensemble.Train(builder, 5, 0, 20), nn::TrainingDiverged);
}

TEST(DegradationTest, DegradedScoringIsThreadCountInvariant) {
  const MeasurementCube cube = ToyCube(5, 30);
  const NormalizedDayBuilder inner(&cube, 0, 20);
  const PoisonFeatureBuilder builder(&inner, /*poisoned_feature=*/1);
  const FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});

  auto run = [&](int threads) {
    EnsembleConfig cfg = SmallConfig();
    cfg.threads = threads;
    AspectEnsemble ensemble(catalog.aspects(), cfg);
    ensemble.Train(builder, 5, 0, 20);
    return ensemble.Score(builder, 5, 20, 30);
  };
  ExpectGridsBitIdentical(run(1), run(4));
}

}  // namespace
}  // namespace acobe
