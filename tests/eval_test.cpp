// Unit tests for src/eval: confusion counts, ROC/AUC, PR/AP, tie
// handling and FP-before-TP accounting.

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace acobe::eval {
namespace {

std::vector<bool> Flags(std::initializer_list<int> xs) {
  std::vector<bool> out;
  for (int x : xs) out.push_back(x != 0);
  return out;
}

TEST(MetricsTest, PerfectRankingAucIsOne) {
  // 2 positives on top of 4 negatives.
  const auto flags = Flags({1, 1, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(RocAuc(flags), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(flags), 1.0);
}

TEST(MetricsTest, WorstRankingAucIsZero) {
  const auto flags = Flags({0, 0, 0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(RocAuc(flags), 0.0);
}

TEST(MetricsTest, RandomishRankingAucMid) {
  const auto flags = Flags({1, 0, 1, 0});
  // TPs at positions 0 and 2: AUC = 0.75 for this arrangement.
  EXPECT_DOUBLE_EQ(RocAuc(flags), 0.75);
}

TEST(MetricsTest, ConfusionAtCutoff) {
  const auto flags = Flags({1, 0, 1, 0, 0});
  const ConfusionCounts c = AtCutoff(flags, 3);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 0);
  EXPECT_EQ(c.tn, 2);
  EXPECT_DOUBLE_EQ(c.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_NEAR(c.F1(), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(c.FpRate(), 1.0 / 3.0);
}

TEST(MetricsTest, ConfusionEdgeCases) {
  const ConfusionCounts empty = AtCutoff({}, 0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
}

TEST(MetricsTest, RocCurveShape) {
  const auto curve = RocCurve(Flags({1, 0, 1}));
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve[0].tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].tpr, 0.5);
  EXPECT_DOUBLE_EQ(curve[3].fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].tpr, 1.0);
}

TEST(MetricsTest, PrCurveAndAp) {
  // TP, FP, TP -> PR points: (0.5, 1.0), (1.0, 2/3).
  const auto curve = PrCurve(Flags({1, 0, 1}));
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(Flags({1, 0, 1})),
                   0.5 * 1.0 + 0.5 * (2.0 / 3.0));
}

TEST(MetricsTest, FalsePositivesBeforeEachTp) {
  const auto fps = FalsePositivesBeforeEachTp(Flags({0, 1, 0, 0, 1, 1}));
  EXPECT_EQ(fps, (std::vector<int>{1, 3, 3}));
}

TEST(MetricsTest, WorstCaseTieOrderingPutsFpFirst) {
  std::vector<RankedUser> list = {
      {1, 2.0, true},   // TP at priority 2
      {2, 2.0, false},  // FP at the same priority
      {3, 1.0, true},
  };
  SortWorstCase(list);
  EXPECT_EQ(list[0].user, 3u);
  EXPECT_EQ(list[1].user, 2u);  // FP listed before the tied TP
  EXPECT_EQ(list[2].user, 1u);
  const auto flags = PositiveFlags(list);
  EXPECT_EQ(FalsePositivesBeforeEachTp(flags), (std::vector<int>{0, 1}));
}

TEST(MetricsTest, AucMatchesPaperStyleCounts) {
  // 925 negatives, 4 positives with 0,0,0,1 FPs before each TP: AUC
  // must be extremely close to 1 (the paper reports 99.99%).
  std::vector<bool> flags;
  flags.assign(3, true);
  flags.push_back(false);
  flags.push_back(true);
  flags.insert(flags.end(), 924, false);
  EXPECT_GT(RocAuc(flags), 0.9995);
}

}  // namespace
}  // namespace acobe::eval
