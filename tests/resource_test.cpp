// Tests for common/resource.h: the pure /proc parsers (exercised with
// synthetic text) and the live probes (sanity-checked against the
// running test process).

#include <gtest/gtest.h>

#include <vector>

#include "common/resource.h"

using namespace acobe;

namespace {

TEST(ResourceParseTest, PeakRssFromStatusFindsVmHwm) {
  const char* status =
      "Name:\tacobe_test\n"
      "Umask:\t0022\n"
      "VmPeak:\t  123456 kB\n"
      "VmSize:\t  100000 kB\n"
      "VmHWM:\t    2048 kB\n"
      "VmRSS:\t    1024 kB\n";
  EXPECT_EQ(ParsePeakRssFromStatus(status), 2048ull * 1024);
}

TEST(ResourceParseTest, PeakRssFromStatusWithoutVmHwmIsZero) {
  EXPECT_EQ(ParsePeakRssFromStatus("Name:\tx\nVmRSS:\t 1 kB\n"), 0u);
  EXPECT_EQ(ParsePeakRssFromStatus(""), 0u);
  // A VmHWM line with no number parses to nothing, not garbage.
  EXPECT_EQ(ParsePeakRssFromStatus("VmHWM:\t kB\n"), 0u);
}

TEST(ResourceParseTest, PeakRssIgnoresLookalikePrefixMidLine) {
  // Only a line that *starts* with VmHWM: counts.
  const char* status = "NotVmHWM: 7 kB\nVmHWM:\t 3 kB\n";
  EXPECT_EQ(ParsePeakRssFromStatus(status), 3ull * 1024);
}

TEST(ResourceParseTest, CurrentRssFromStatmUsesResidentPages) {
  // statm: size resident shared text lib data dt (pages).
  EXPECT_EQ(ParseCurrentRssFromStatm("5000 300 120 50 0 900 0\n", 4096),
            300ull * 4096);
  EXPECT_EQ(ParseCurrentRssFromStatm("5000 300", 16384), 300ull * 16384);
  EXPECT_EQ(ParseCurrentRssFromStatm("garbage", 4096), 0u);
  EXPECT_EQ(ParseCurrentRssFromStatm("", 4096), 0u);
}

TEST(ResourceLiveTest, ProbesReturnPlausibleValues) {
  const std::uint64_t current = CurrentRssBytes();
  const std::uint64_t peak = PeakRssBytes();
  // A running gtest binary is comfortably over 1 MiB resident, and the
  // kernel's high-water mark can never trail the current value.
  EXPECT_GT(current, 1u << 20);
  EXPECT_GE(peak, current);
}

TEST(ResourceLiveTest, PeakRssTracksGrowth) {
  const std::uint64_t before = PeakRssBytes();
  // Touch ~32 MiB so the high-water mark must move above any plausible
  // pre-test baseline of this small binary.
  std::vector<char> block(32u << 20, 1);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 2;
  const std::uint64_t after = PeakRssBytes();
  EXPECT_GE(after, before);
  EXPECT_GT(after, block.size() / 2);
}

TEST(ResourceLiveTest, CpuSecondsIsMonotonic) {
  const double before = CpuSeconds();
  EXPECT_GE(before, 0.0);
  // Burn a little CPU; rusage must not go backwards.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  const double after = CpuSeconds();
  EXPECT_GE(after, before);
}

}  // namespace
