// Unit tests for src/common: dates, time frames, RNG, CSV, stats.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/csv.h"
#include "common/date.h"
#include "common/faults.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timeframe.h"

namespace acobe {
namespace {

// --- Date ------------------------------------------------------------------

TEST(DateTest, EpochIsDayZero) {
  EXPECT_EQ(Date(1970, 1, 1).DayNumber(), 0);
  EXPECT_EQ(Date(1970, 1, 2).DayNumber(), 1);
  EXPECT_EQ(Date(1969, 12, 31).DayNumber(), -1);
}

TEST(DateTest, KnownDayNumbers) {
  EXPECT_EQ(Date(2010, 1, 2).DayNumber(), 14611);
  EXPECT_EQ(Date(2000, 3, 1).DayNumber(), 11017);
}

TEST(DateTest, RoundTripThroughDayNumber) {
  for (std::int64_t day = -1000; day <= 40000; day += 37) {
    const Date d = Date::FromDayNumber(day);
    EXPECT_EQ(d.DayNumber(), day) << d.ToString();
  }
}

TEST(DateTest, WeekdayKnownValues) {
  EXPECT_EQ(Date(1970, 1, 1).weekday(), Weekday::kThursday);
  EXPECT_EQ(Date(2010, 1, 2).weekday(), Weekday::kSaturday);
  EXPECT_EQ(Date(2011, 5, 31).weekday(), Weekday::kTuesday);
  EXPECT_EQ(Date(2021, 1, 26).weekday(), Weekday::kTuesday);
}

TEST(DateTest, WeekendDetection) {
  EXPECT_TRUE(Date(2010, 1, 2).IsWeekend());   // Saturday
  EXPECT_TRUE(Date(2010, 1, 3).IsWeekend());   // Sunday
  EXPECT_FALSE(Date(2010, 1, 4).IsWeekend());  // Monday
}

TEST(DateTest, LeapYearValidity) {
  EXPECT_TRUE(Date(2000, 2, 29).IsValid());
  EXPECT_TRUE(Date(2020, 2, 29).IsValid());
  EXPECT_FALSE(Date(1900, 2, 29).IsValid());
  EXPECT_FALSE(Date(2021, 2, 29).IsValid());
  EXPECT_FALSE(Date(2021, 4, 31).IsValid());
  EXPECT_FALSE(Date(2021, 13, 1).IsValid());
  EXPECT_FALSE(Date(2021, 0, 1).IsValid());
}

TEST(DateTest, AddDaysCrossesMonthAndYear) {
  EXPECT_EQ(Date(2010, 12, 31).AddDays(1), Date(2011, 1, 1));
  EXPECT_EQ(Date(2010, 3, 1).AddDays(-1), Date(2010, 2, 28));
  EXPECT_EQ(Date(2012, 3, 1).AddDays(-1), Date(2012, 2, 29));
}

TEST(DateTest, ParseAndFormat) {
  EXPECT_EQ(Date::FromString("2010-01-02"), Date(2010, 1, 2));
  EXPECT_EQ(Date(2010, 1, 2).ToString(), "2010-01-02");
  EXPECT_THROW(Date::FromString("not-a-date"), std::invalid_argument);
  EXPECT_THROW(Date::FromString("2021-02-30"), std::invalid_argument);
}

TEST(DateTest, Ordering) {
  EXPECT_LT(Date(2010, 1, 2), Date(2010, 1, 3));
  EXPECT_LT(Date(2010, 1, 31), Date(2010, 2, 1));
  EXPECT_LT(Date(2009, 12, 31), Date(2010, 1, 1));
}

TEST(DateTest, DaysBetween) {
  EXPECT_EQ(DaysBetween(Date(2010, 1, 2), Date(2011, 5, 31)), 514);
  EXPECT_EQ(DaysBetween(Date(2010, 5, 1), Date(2010, 4, 30)), -1);
}

// --- Timeframe ---------------------------------------------------------------

TEST(TimeframeTest, MakeTimestampAndBack) {
  const Date d(2010, 6, 15);
  const Timestamp ts = MakeTimestamp(d, 14, 30, 5);
  EXPECT_EQ(DateOf(ts), d);
  EXPECT_EQ(HourOf(ts), 14);
}

TEST(TimeframeTest, WorkOffPartition) {
  const auto p = TimeFramePartition::WorkOff();
  EXPECT_EQ(p.frame_count(), 2);
  EXPECT_EQ(p.FrameOfHour(6), 0);
  EXPECT_EQ(p.FrameOfHour(12), 0);
  EXPECT_EQ(p.FrameOfHour(17), 0);
  EXPECT_EQ(p.FrameOfHour(18), 1);
  EXPECT_EQ(p.FrameOfHour(23), 1);
  EXPECT_EQ(p.FrameOfHour(0), 1);  // wraps past midnight
  EXPECT_EQ(p.FrameOfHour(5), 1);
  EXPECT_EQ(p.FrameLabel(0), "06-18");
  EXPECT_EQ(p.FrameLabel(1), "18-06");
}

TEST(TimeframeTest, HourlyPartition) {
  const auto p = TimeFramePartition::Hourly();
  EXPECT_EQ(p.frame_count(), 24);
  for (int h = 0; h < 24; ++h) EXPECT_EQ(p.FrameOfHour(h), h);
}

TEST(TimeframeTest, InvalidPartitionsThrow) {
  EXPECT_THROW(TimeFramePartition({}), std::invalid_argument);
  EXPECT_THROW(TimeFramePartition({5, 5}), std::invalid_argument);
  EXPECT_THROW(TimeFramePartition({18, 6}), std::invalid_argument);
  EXPECT_THROW(TimeFramePartition({0, 24}), std::invalid_argument);
}

TEST(TimeframeTest, FrameOfHourRangeChecked) {
  const auto p = TimeFramePartition::WorkOff();
  EXPECT_THROW(p.FrameOfHour(-1), std::out_of_range);
  EXPECT_THROW(p.FrameOfHour(24), std::out_of_range);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng base(7);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  Rng f1_again = Rng(7).Fork(1);
  EXPECT_EQ(f1.NextU64(), f1_again.NextU64());
  EXPECT_NE(f1.NextU64(), f2.NextU64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW(rng.NextBounded(0), std::invalid_argument);
  EXPECT_THROW(rng.NextInt(3, 1), std::invalid_argument);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(6);
  for (double mean : {0.5, 3.0, 12.0, 80.0}) {
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.NextExponential(0.0), std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  rng.Shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_NE(v[0] * 1000 + v[1], 0 * 1000 + 1);  // astronomically unlikely
}

TEST(RngTest, PickThrowsOnEmpty) {
  Rng rng(10);
  std::vector<int> empty;
  EXPECT_THROW(rng.Pick(empty), std::invalid_argument);
}

// --- CSV ---------------------------------------------------------------------

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvTest, EscapeQuotesAndCommas) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, SplitSimple) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, SplitQuoted) {
  const auto fields = SplitCsvLine("\"a,b\",\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
  EXPECT_EQ(fields[2], "x");
}

TEST(CsvTest, WriterReaderRoundTrip) {
  std::stringstream ss;
  CsvWriter writer(ss);
  writer.WriteRow({"plain", "with,comma", "with\"quote", ""});
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], "plain");
  EXPECT_EQ(row[1], "with,comma");
  EXPECT_EQ(row[2], "with\"quote");
  EXPECT_EQ(row[3], "");
  EXPECT_FALSE(reader.ReadRow(row));
}

// Property sweep: escape/parse round-trips arbitrary content.
class CsvRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CsvRoundTrip, Holds) {
  const std::string original = GetParam();
  const auto fields = SplitCsvLine(CsvEscape(original) + "," + "tail");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], original);
  EXPECT_EQ(fields[1], "tail");
}

INSTANTIATE_TEST_SUITE_P(Cases, CsvRoundTrip,
                         ::testing::Values("", "plain", "a,b", "\"", "\"\"",
                                           "a\"b,c\"d", ",,,", "trailing,"));

// Table-driven structural cases: line ending and damage handling.
struct SplitCase {
  const char* name;
  const char* line;
  std::vector<std::string> fields;
  CsvRowStatus status;
};

class CsvSplitChecked : public ::testing::TestWithParam<SplitCase> {};

TEST_P(CsvSplitChecked, Holds) {
  const SplitCase& c = GetParam();
  std::vector<std::string> fields;
  EXPECT_EQ(SplitCsvLineChecked(c.line, fields), c.status) << c.name;
  EXPECT_EQ(fields, c.fields) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvSplitChecked,
    ::testing::Values(
        SplitCase{"crlf", "a,b\r", {"a", "b"}, CsvRowStatus::kOk},
        SplitCase{"crlf_empty_last", "a,\r", {"a", ""}, CsvRowStatus::kOk},
        SplitCase{"bare_cr_is_terminator", "\r", {""}, CsvRowStatus::kOk},
        SplitCase{"interior_cr_is_content", "a\rb,c", {"a\rb", "c"},
                  CsvRowStatus::kOk},
        SplitCase{"quoted_cr_kept", "\"a\r\",b\r", {"a\r", "b"},
                  CsvRowStatus::kOk},
        SplitCase{"trailing_empty_field", "a,b,", {"a", "b", ""},
                  CsvRowStatus::kOk},
        SplitCase{"only_commas", ",,", {"", "", ""}, CsvRowStatus::kOk},
        SplitCase{"quote_at_eof", "a,\"b", {"a", "b"},
                  CsvRowStatus::kUnterminatedQuote},
        SplitCase{"lone_quote", "\"", {""}, CsvRowStatus::kUnterminatedQuote},
        SplitCase{"quote_reopened", "\"a\"b\"", {"ab"},
                  CsvRowStatus::kUnterminatedQuote},
        SplitCase{"escaped_quote_ok", "\"a\"\"b\"", {"a\"b"},
                  CsvRowStatus::kOk}),
    [](const ::testing::TestParamInfo<SplitCase>& info) {
      return info.param.name;
    });

TEST(CsvTest, ReaderMultilineQuotedField) {
  std::stringstream ss("\"line1\nline2\",x\nnext,row\n");
  CsvReader reader(ss);  // multiline (default)
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(reader.status(), CsvRowStatus::kOk);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "line1\nline2");
  EXPECT_EQ(reader.row_line(), 1u);
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row[0], "next");
  EXPECT_EQ(reader.row_line(), 3u);
}

TEST(CsvTest, ReaderLineModeResyncsAfterStrayQuote) {
  // One corrupted quote must damage one row, not swallow the rest of
  // the file (which is what multiline accumulation would do).
  std::stringstream ss("a,\"broken\nok1,x\nok2,y\n");
  CsvReader reader(ss, /*multiline=*/false);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(reader.status(), CsvRowStatus::kUnterminatedQuote);
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(reader.status(), CsvRowStatus::kOk);
  EXPECT_EQ(row[0], "ok1");
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row[0], "ok2");
  EXPECT_FALSE(reader.ReadRow(row));
}

TEST(CsvTest, ReaderCrlfAcrossRows) {
  std::stringstream ss("h1,h2\r\nv1,v2\r\n");
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (std::vector<std::string>{"h1", "h2"}));
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (std::vector<std::string>{"v1", "v2"}));
  EXPECT_FALSE(reader.ReadRow(row));
}

// --- Crc32 ------------------------------------------------------------------

TEST(Crc32Test, KnownAnswers) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0x00000000u);
  EXPECT_EQ(Crc32(std::string("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string a = "hello, ";
  const std::string b = "world";
  EXPECT_EQ(Crc32(b, Crc32(a)), Crc32(a + b));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  Rng rng(7);
  for (char& c : data) c = static_cast<char>(rng.NextBounded(256));
  const std::uint32_t clean = Crc32(data);
  data[100] = static_cast<char>(data[100] ^ 0x10);
  EXPECT_NE(Crc32(data), clean);
}

// --- WriteFileAtomic --------------------------------------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(WriteFileAtomicTest, WritesPayload) {
  const std::string path = ::testing::TempDir() + "wfa_payload.txt";
  WriteFileAtomic(path, [](std::ostream& out) { out << "payload\n"; });
  EXPECT_EQ(ReadAll(path), "payload\n");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, FailedWriteLeavesOldContent) {
  const std::string path = ::testing::TempDir() + "wfa_keep.txt";
  WriteFileAtomic(path, [](std::ostream& out) { out << "original"; });
  EXPECT_THROW(WriteFileAtomic(path,
                               [](std::ostream& out) {
                                 out << "partial garbage";
                                 throw std::runtime_error("writer died");
                               }),
               std::runtime_error);
  EXPECT_EQ(ReadAll(path), "original");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      WriteFileAtomic("/nonexistent-dir-xyz/file",
                      [](std::ostream& out) { out << "x"; }),
      std::runtime_error);
}

// --- stats -------------------------------------------------------------------

TEST(StatsTest, MeanAndStd) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);  // classic population-std example
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(StatsTest, ClampSymmetric) {
  EXPECT_DOUBLE_EQ(ClampSymmetric(5.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(ClampSymmetric(-5.0, 3.0), -3.0);
  EXPECT_DOUBLE_EQ(ClampSymmetric(1.5, 3.0), 1.5);
}

TEST(StatsTest, ToUnitInterval) {
  EXPECT_DOUBLE_EQ(ToUnitInterval(-3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ToUnitInterval(3.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(ToUnitInterval(0.0, 3.0), 0.5);
}

}  // namespace
}  // namespace acobe
