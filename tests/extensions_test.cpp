// Tests for the extension modules: ensemble persistence, the
// waveform-aware advanced critic (the paper's Section VII.B future
// work), the operational monitor, and the discrete-event sequence
// model (Section VI.B.1).

#include <gtest/gtest.h>

#include <sstream>

#include "behavior/normalized_day.h"
#include "core/ensemble_io.h"
#include "core/monitor.h"
#include "core/waveform_critic.h"
#include "features/sequence_model.h"

namespace acobe {
namespace {

const Date kStart(2010, 1, 4);

// --- Ensemble persistence ------------------------------------------------

MeasurementCube ToyCube(int users, int days) {
  MeasurementCube cube(kStart, days, 2, 1);
  Rng rng(51);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(100 + u);
    for (int d = 0; d < days; ++d) {
      cube.At(u, 0, d, 0) = static_cast<float>(rng.NextPoisson(5.0));
      cube.At(u, 1, d, 0) = static_cast<float>(rng.NextPoisson(2.0));
    }
  }
  return cube;
}

TEST(EnsembleIoTest, RoundTripReproducesScores) {
  MeasurementCube cube = ToyCube(5, 30);
  NormalizedDayBuilder builder(&cube, 0, 20);
  FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});
  EnsembleConfig cfg;
  cfg.encoder_dims = {8, 4};
  cfg.train.epochs = 5;
  cfg.seed = 3;
  AspectEnsemble ensemble(catalog.aspects(), cfg);
  ensemble.Train(builder, 5, 0, 20);
  const ScoreGrid before = ensemble.Score(builder, 5, 20, 30);

  std::stringstream ss;
  SaveEnsemble(ensemble, ss);
  AspectEnsemble loaded = LoadEnsemble(ss);
  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.aspect_count(), 2);
  EXPECT_EQ(loaded.aspect(0).name, "x");
  const ScoreGrid after = loaded.Score(builder, 5, 20, 30);
  for (int a = 0; a < 2; ++a) {
    for (int u = 0; u < 5; ++u) {
      for (int d = 20; d < 30; ++d) {
        EXPECT_FLOAT_EQ(before.At(a, u, d), after.At(a, u, d));
      }
    }
  }
}

TEST(EnsembleIoTest, UntrainedSaveThrows) {
  FeatureCatalog catalog({{"f0", "x", 1.0}});
  AspectEnsemble ensemble(catalog.aspects(), EnsembleConfig{});
  std::stringstream ss;
  EXPECT_THROW(SaveEnsemble(ensemble, ss), std::logic_error);
}

TEST(EnsembleIoTest, BadStreamThrows) {
  std::stringstream ss("definitely not an ensemble");
  EXPECT_THROW(LoadEnsemble(ss), std::runtime_error);
}

// --- Waveform critic --------------------------------------------------------

ScoreGrid GridFromSeries(const std::vector<std::vector<float>>& users) {
  ScoreGrid grid({"a"}, static_cast<int>(users.size()), 0,
                 static_cast<int>(users[0].size()));
  for (std::size_t u = 0; u < users.size(); ++u) {
    for (std::size_t d = 0; d < users[u].size(); ++d) {
      grid.At(0, static_cast<int>(u), static_cast<int>(d)) = users[u][d];
    }
  }
  return grid;
}

std::vector<float> Flat(int n, float v) { return std::vector<float>(n, v); }

TEST(WaveformCriticTest, ClassifiesFlat) {
  const auto grid = GridFromSeries({Flat(30, 0.1f)});
  const auto f = AnalyzeWaveform(grid, 0, 0, WaveformCriticConfig{});
  EXPECT_EQ(f.kind, WaveformKind::kFlat);
}

TEST(WaveformCriticTest, ClassifiesBurstDecay) {
  // Quiet baseline, burst, then a long smooth decay.
  std::vector<float> s = Flat(12, 0.1f);
  float level = 1.0f;
  for (int i = 0; i < 18; ++i) {
    s.push_back(level);
    level *= 0.85f;
  }
  const auto grid = GridFromSeries({s});
  const auto f = AnalyzeWaveform(grid, 0, 0, WaveformCriticConfig{});
  EXPECT_EQ(f.kind, WaveformKind::kBurstDecay);
  EXPECT_GT(f.peak_z, 2.5);
  EXPECT_GT(f.decay_fraction, 0.9);
}

TEST(WaveformCriticTest, ClassifiesRecentSpike) {
  std::vector<float> s = Flat(28, 0.1f);
  s.push_back(1.0f);
  s.push_back(1.1f);
  const auto grid = GridFromSeries({s});
  const auto f = AnalyzeWaveform(grid, 0, 0, WaveformCriticConfig{});
  EXPECT_EQ(f.kind, WaveformKind::kRecentSpike);
  EXPECT_TRUE(f.recent);
}

TEST(WaveformCriticTest, ClassifiesChaoticOldRaise) {
  // Long quiet baseline, then rough oscillation (never a smooth decay)
  // that ends well before the window does.
  std::vector<float> s = Flat(34, 0.1f);
  for (int i = 0; i < 10; ++i) s.push_back(i % 2 ? 1.2f : 0.4f);
  for (int i = 0; i < 6; ++i) s.push_back(0.12f);
  WaveformCriticConfig cfg;
  cfg.recent_days = 3;
  const auto grid = GridFromSeries({s});
  const auto f = AnalyzeWaveform(grid, 0, 0, cfg);
  EXPECT_EQ(f.kind, WaveformKind::kChaotic);
  EXPECT_GT(f.roughness, 0.5);
}

TEST(WaveformCriticTest, BenignBurstRankedBelowAttack) {
  // User 0: burst-decay (new project). User 1: recent chaotic raise
  // (attack-like) with the *same* magnitude. User 2: flat.
  std::vector<float> benign = Flat(12, 0.1f);
  float level = 1.2f;
  for (int i = 0; i < 18; ++i) {
    benign.push_back(level);
    level *= 0.85f;
  }
  std::vector<float> attack = Flat(22, 0.1f);
  for (int i = 0; i < 8; ++i) attack.push_back(i % 2 ? 0.9f : 0.5f);
  const auto grid = GridFromSeries({benign, attack, Flat(30, 0.1f)});

  WaveformCriticConfig cfg;
  cfg.n_votes = 1;
  const auto list = WaveformRankUsers(grid, cfg);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].user_idx, 1);  // the attack-like user leads
  // The plain critic would rank them by magnitude alone (benign first).
  const auto plain = RankUsers(grid, 1, cfg.top_k_days);
  EXPECT_EQ(plain[0].user_idx, 0);
}

// --- Monitor ---------------------------------------------------------------

TEST(MonitorTest, PersistentAlertOpensAndCloses) {
  // 3 users with deterministic baselines; user 1 tops the list only on
  // days 5..12 (user 0 tops it otherwise).
  ScoreGrid grid({"a"}, 3, 0, 20);
  for (int d = 0; d < 20; ++d) {
    grid.At(0, 0, d) = 0.30f;
    grid.At(0, 1, d) = (d >= 5 && d <= 12) ? 1.0f : 0.10f;
    grid.At(0, 2, d) = 0.20f;
  }
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 3;
  cfg.cooloff_days = 2;
  const auto alerts = FindPersistentAlerts(grid, cfg);
  const Alert* user1 = nullptr;
  for (const Alert& a : alerts) {
    if (a.user_idx == 1) user1 = &a;
  }
  ASSERT_NE(user1, nullptr);
  EXPECT_EQ(user1->first_day, 5);
  EXPECT_EQ(user1->last_day, 12);
  EXPECT_GE(user1->firing_days, 6);
}

TEST(MonitorTest, NoAlertWithoutPersistence) {
  ScoreGrid grid({"a"}, 2, 0, 10);
  for (int d = 0; d < 10; ++d) {
    grid.At(0, 0, d) = 0.1f;
    grid.At(0, 1, d) = 0.5f;  // user 1 leads every ordinary day
  }
  grid.At(0, 0, 4) = 1.0f;  // user 0: a single-day spike only
  MonitorConfig cfg;
  cfg.top_positions = 1;
  cfg.persistence_days = 2;
  const auto alerts = FindPersistentAlerts(grid, cfg);
  for (const Alert& a : alerts) EXPECT_NE(a.user_idx, 0);
}

// --- SequenceModel -----------------------------------------------------------

TEST(SequenceModelTest, LearnsDeterministicPattern) {
  SequenceModel model(2, 4);
  std::vector<std::uint32_t> pattern;
  for (int i = 0; i < 50; ++i) {
    pattern.push_back(1);
    pattern.push_back(2);
    pattern.push_back(3);
  }
  model.Train(pattern);
  // In-pattern continuation is likely; out-of-pattern is surprising.
  const std::vector<std::uint32_t> ctx = {1, 2};
  EXPECT_GT(model.Probability(ctx, 3), 0.8);
  EXPECT_LT(model.Probability(ctx, 1), 0.1);
  const std::vector<std::uint32_t> normal = {1, 2, 3, 1, 2, 3};
  const std::vector<std::uint32_t> abnormal = {1, 2, 1, 2, 1, 1};
  EXPECT_LT(model.MeanSurprise(normal), model.MeanSurprise(abnormal));
}

TEST(SequenceModelTest, UnseenContextFallsBackToUniform) {
  SequenceModel model(2, 10);
  const std::vector<std::uint32_t> ctx = {42, 43};
  EXPECT_DOUBLE_EQ(model.Probability(ctx, 7), 1.0 / 10.0);
}

TEST(SequenceModelTest, OrderValidation) {
  EXPECT_THROW(SequenceModel(0), std::invalid_argument);
  SequenceModel model(1);
  EXPECT_EQ(model.order(), 1);
  EXPECT_DOUBLE_EQ(model.MeanSurprise(std::vector<std::uint32_t>{1}), 0.0);
}

TEST(DailySurpriseTrackerTest, FlagsBehaviorChange) {
  DailySurpriseTracker tracker(2);
  // 10 days of habitual pattern, then one day of chaos.
  Rng rng(53);
  for (std::int32_t day = 0; day < 10; ++day) {
    for (int i = 0; i < 30; ++i) {
      tracker.Observe(1, day, static_cast<std::uint32_t>(i % 3 + 1));
    }
  }
  for (int i = 0; i < 30; ++i) {
    tracker.Observe(1, 10, static_cast<std::uint32_t>(rng.NextInt(10, 30)));
  }
  tracker.Flush();
  const double habitual = tracker.DaySurprise(1, 9);
  const double chaotic = tracker.DaySurprise(1, 10);
  EXPECT_LT(habitual, chaotic);
  EXPECT_GT(chaotic, 2.0);
  // Unknown user/day yields 0.
  EXPECT_DOUBLE_EQ(tracker.DaySurprise(2, 0), 0.0);
}

}  // namespace
}  // namespace acobe
