// Unit tests for src/features: catalog, cube, first-seen tracking, the
// CERT extractors (fine + coarse) and the enterprise extractor.

#include <gtest/gtest.h>

#include "features/cert_features.h"
#include "features/enterprise_features.h"
#include "features/feature_catalog.h"
#include "features/first_seen.h"
#include "features/measurement_cube.h"

namespace acobe {
namespace {

const Date kStart(2010, 1, 4);  // a Monday

Timestamp At(int day_offset, int hour) {
  return MakeTimestamp(kStart.AddDays(day_offset), hour);
}

// --- FeatureCatalog -----------------------------------------------------------

TEST(FeatureCatalogTest, GroupsByAspectInOrder) {
  FeatureCatalog catalog({{"a1", "x", 1.0},
                          {"a2", "x", 1.0},
                          {"b1", "y", 1.0},
                          {"a3", "x", 1.0}});
  EXPECT_EQ(catalog.feature_count(), 4);
  ASSERT_EQ(catalog.aspects().size(), 2u);
  EXPECT_EQ(catalog.aspects()[0].name, "x");
  EXPECT_EQ(catalog.aspects()[0].feature_indices,
            (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(catalog.aspects()[1].feature_indices, (std::vector<int>{2}));
  EXPECT_EQ(catalog.AspectIndex("y"), 1);
  EXPECT_EQ(catalog.AspectIndex("z"), -1);
  EXPECT_EQ(catalog.FeatureIndex("x", "a3"), 3);
  EXPECT_EQ(catalog.FeatureIndex("x", "b1"), -1);
}

// --- MeasurementCube ------------------------------------------------------------

TEST(MeasurementCubeTest, RegisterAndAccumulate) {
  MeasurementCube cube(kStart, 10, 3, 2);
  EXPECT_EQ(cube.users(), 0);
  cube.Accumulate(42, 1, kStart.AddDays(2), 1, 2.0f);
  cube.Accumulate(42, 1, kStart.AddDays(2), 1);
  EXPECT_EQ(cube.users(), 1);
  const int idx = cube.UserIndex(42);
  ASSERT_GE(idx, 0);
  EXPECT_FLOAT_EQ(cube.At(idx, 1, 2, 1), 3.0f);
  EXPECT_FLOAT_EQ(cube.At(idx, 1, 2, 0), 0.0f);
}

TEST(MeasurementCubeTest, RejectedAccumulateDoesNotRegisterUser) {
  // The bounds check must fire before the user is registered: a single
  // malformed row rejected under the permissive-ingest error budget
  // must not leave a phantom all-zero user behind in the cube.
  MeasurementCube cube(kStart, 5, 2, 2);
  EXPECT_THROW(cube.Accumulate(7, 2, kStart, 0), std::out_of_range);
  EXPECT_THROW(cube.Accumulate(7, -1, kStart, 0), std::out_of_range);
  EXPECT_THROW(cube.Accumulate(7, 0, kStart, 2), std::out_of_range);
  EXPECT_THROW(cube.Accumulate(7, 0, kStart, -1), std::out_of_range);
  EXPECT_EQ(cube.users(), 0);
  EXPECT_EQ(cube.UserIndex(7), -1);
}

TEST(MeasurementCubeTest, OutOfRangeDaysIgnored) {
  MeasurementCube cube(kStart, 5, 1, 1);
  cube.Accumulate(1, 0, kStart.AddDays(-1), 0);
  cube.Accumulate(1, 0, kStart.AddDays(5), 0);
  EXPECT_EQ(cube.users(), 0);  // nothing registered
  EXPECT_EQ(cube.DayIndex(kStart.AddDays(4)), 4);
  EXPECT_EQ(cube.DayIndex(kStart.AddDays(5)), -1);
}

TEST(MeasurementCubeTest, IndexingIsBoundsChecked) {
  MeasurementCube cube(kStart, 5, 2, 2);
  cube.RegisterUser(7);
  EXPECT_THROW(cube.At(1, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(cube.At(0, 2, 0, 0), std::out_of_range);
  EXPECT_THROW(cube.At(0, 0, 5, 0), std::out_of_range);
  EXPECT_THROW(cube.At(0, 0, 0, 2), std::out_of_range);
  EXPECT_THROW(MeasurementCube(kStart, 0, 1, 1), std::invalid_argument);
}

TEST(MeasurementCubeTest, SeriesLayout) {
  MeasurementCube cube(kStart, 3, 2, 2);
  const int u = cube.RegisterUser(1);
  cube.At(u, 1, 2, 1) = 9.0f;
  const auto series = cube.Series(u, 1);
  ASSERT_EQ(series.size(), 6u);
  EXPECT_FLOAT_EQ(series[2 * 2 + 1], 9.0f);
}

TEST(MeasurementCubeTest, GroupMeanSeries) {
  MeasurementCube cube(kStart, 2, 1, 1);
  const int a = cube.RegisterUser(1);
  const int b = cube.RegisterUser(2);
  cube.At(a, 0, 0, 0) = 4.0f;
  cube.At(b, 0, 0, 0) = 8.0f;
  cube.At(a, 0, 1, 0) = 2.0f;
  const std::vector<int> members = {a, b};
  const auto mean = GroupMeanSeries(cube, members);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_FLOAT_EQ(mean[0], 6.0f);
  EXPECT_FLOAT_EQ(mean[1], 1.0f);
  EXPECT_TRUE(GroupMeanSeries(cube, std::span<const int>{}).size() == 2u);
}

TEST(MeasurementCubeTest, TrimmedGroupMeanDropsOutlier) {
  MeasurementCube cube(kStart, 1, 1, 1);
  std::vector<int> members;
  // Nine quiet users and one screaming outlier.
  for (int i = 0; i < 10; ++i) {
    members.push_back(cube.RegisterUser(i));
    cube.At(members.back(), 0, 0, 0) = i == 9 ? 500.0f : 1.0f;
  }
  const auto plain = GroupMeanSeries(cube, members);
  const auto trimmed = TrimmedGroupMeanSeries(cube, members, 0.1);
  EXPECT_NEAR(plain[0], 50.9f, 1e-3);
  EXPECT_FLOAT_EQ(trimmed[0], 1.0f);  // outlier (and one low value) dropped
}

TEST(MeasurementCubeTest, TrimmedGroupMeanKeepsCommonBurst) {
  // When *most* members burst (an org-wide change), trimming keeps it.
  MeasurementCube cube(kStart, 1, 1, 1);
  std::vector<int> members;
  for (int i = 0; i < 10; ++i) {
    members.push_back(cube.RegisterUser(i));
    cube.At(members.back(), 0, 0, 0) = 8.0f + i * 0.1f;
  }
  const auto trimmed = TrimmedGroupMeanSeries(cube, members, 0.1);
  EXPECT_GT(trimmed[0], 7.5f);
}

TEST(MeasurementCubeTest, TrimmedGroupMeanValidation) {
  MeasurementCube cube(kStart, 1, 1, 1);
  const std::vector<int> members = {cube.RegisterUser(1)};
  EXPECT_THROW(TrimmedGroupMeanSeries(cube, members, -0.1),
               std::invalid_argument);
  EXPECT_THROW(TrimmedGroupMeanSeries(cube, members, 0.5),
               std::invalid_argument);
  // Zero trim (or too few members to trim) falls back to the plain mean.
  const auto a = TrimmedGroupMeanSeries(cube, members, 0.0);
  const auto b = GroupMeanSeries(cube, members);
  EXPECT_EQ(a, b);
}

// --- FirstSeenTracker -------------------------------------------------------------

TEST(FirstSeenTrackerTest, NewOnFirstDayOnly) {
  FirstSeenTracker tracker;
  const auto key = FirstSeenTracker::Key(1, 2, 3);
  EXPECT_TRUE(tracker.SeenNewOnDay(key, 5));
  EXPECT_TRUE(tracker.SeenNewOnDay(key, 5));   // same day still "new"
  EXPECT_FALSE(tracker.SeenNewOnDay(key, 6));  // later day: not new
  EXPECT_TRUE(tracker.SeenBefore(key, 6));
  EXPECT_FALSE(tracker.SeenBefore(key, 5));
}

TEST(FirstSeenTrackerTest, KeysAreDistinct) {
  FirstSeenTracker tracker;
  EXPECT_TRUE(tracker.SeenNewOnDay(FirstSeenTracker::Key(1, 1, 1), 0));
  EXPECT_TRUE(tracker.SeenNewOnDay(FirstSeenTracker::Key(2, 1, 1), 0));
  EXPECT_TRUE(tracker.SeenNewOnDay(FirstSeenTracker::Key(1, 2, 1), 0));
  EXPECT_TRUE(tracker.SeenNewOnDay(FirstSeenTracker::Key(1, 1, 2), 0));
  EXPECT_EQ(tracker.size(), 4u);
}

// --- CertAcobeExtractor -------------------------------------------------------------

TEST(CertAcobeExtractorTest, CatalogHasPaperLayout) {
  CertAcobeExtractor ex(kStart, 30);
  const FeatureCatalog& c = ex.catalog();
  EXPECT_EQ(c.feature_count(), CertAcobeExtractor::kFeatureCount);
  ASSERT_EQ(c.aspects().size(), 3u);
  EXPECT_EQ(c.aspects()[0].name, "device");
  EXPECT_EQ(c.aspects()[0].feature_indices.size(), 2u);
  EXPECT_EQ(c.aspects()[1].name, "file");
  EXPECT_EQ(c.aspects()[1].feature_indices.size(), 7u);
  EXPECT_EQ(c.aspects()[2].name, "http");
  EXPECT_EQ(c.aspects()[2].feature_indices.size(), 7u);
}

TEST(CertAcobeExtractorTest, DeviceConnectionAndNewHost) {
  CertAcobeExtractor ex(kStart, 30);
  // Day 0: two connects to pc 1 (both "new" - first day), one to pc 2.
  ex.Consume(DeviceEvent{At(0, 9), 1, 1, DeviceActivity::kConnect});
  ex.Consume(DeviceEvent{At(0, 10), 1, 1, DeviceActivity::kConnect});
  ex.Consume(DeviceEvent{At(0, 11), 1, 2, DeviceActivity::kConnect});
  ex.Consume(DeviceEvent{At(0, 12), 1, 1, DeviceActivity::kDisconnect});
  // Day 1: connect to pc 1 again (not new) and pc 3 (new).
  ex.Consume(DeviceEvent{At(1, 9), 1, 1, DeviceActivity::kConnect});
  ex.Consume(DeviceEvent{At(1, 23), 1, 3, DeviceActivity::kConnect});

  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  ASSERT_GE(u, 0);
  using F = CertAcobeExtractor;
  EXPECT_FLOAT_EQ(cube.At(u, F::kDevConnection, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kDevNewHost, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kDevConnection, 1, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kDevNewHost, 1, 0), 0.0f);
  // 23:00 lands in the off-hours frame.
  EXPECT_FLOAT_EQ(cube.At(u, F::kDevConnection, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kDevNewHost, 1, 1), 1.0f);
}

TEST(CertAcobeExtractorTest, FileOpsMapToDataflowFeatures) {
  CertAcobeExtractor ex(kStart, 30);
  ex.Consume(FileEvent{At(0, 9), 1, 1, FileActivity::kOpen, 10,
                       FileLocation::kLocal, FileLocation::kLocal});
  ex.Consume(FileEvent{At(0, 9), 1, 1, FileActivity::kOpen, 10,
                       FileLocation::kRemote, FileLocation::kRemote});
  ex.Consume(FileEvent{At(0, 9), 1, 1, FileActivity::kWrite, 11,
                       FileLocation::kRemote, FileLocation::kRemote});
  ex.Consume(FileEvent{At(0, 9), 1, 1, FileActivity::kCopy, 12,
                       FileLocation::kLocal, FileLocation::kRemote});
  ex.Consume(FileEvent{At(0, 9), 1, 1, FileActivity::kCopy, 12,
                       FileLocation::kRemote, FileLocation::kLocal});

  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  using F = CertAcobeExtractor;
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileOpenFromLocal, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileOpenFromRemote, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileWriteToRemote, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileCopyL2R, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileCopyR2L, 0, 0), 1.0f);
  // All five (op, file) pairs are new on day 0.
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileNewOp, 0, 0), 5.0f);
}

TEST(CertAcobeExtractorTest, NewOpCountsPerOpFilePair) {
  CertAcobeExtractor ex(kStart, 30);
  // Day 0: open file 5.
  ex.Consume(FileEvent{At(0, 9), 1, 1, FileActivity::kOpen, 5,
                       FileLocation::kLocal, FileLocation::kLocal});
  // Day 1: open file 5 again (not new) but write file 5 (new pair).
  ex.Consume(FileEvent{At(1, 9), 1, 1, FileActivity::kOpen, 5,
                       FileLocation::kLocal, FileLocation::kLocal});
  ex.Consume(FileEvent{At(1, 9), 1, 1, FileActivity::kWrite, 5,
                       FileLocation::kLocal, FileLocation::kLocal});
  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  using F = CertAcobeExtractor;
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileNewOp, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kFileNewOp, 1, 0), 1.0f);
}

TEST(CertAcobeExtractorTest, HttpOnlyUploadsCount) {
  CertAcobeExtractor ex(kStart, 30);
  ex.Consume(HttpEvent{At(0, 9), 1, 1, HttpActivity::kVisit, 1,
                       HttpFileType::kNone});
  ex.Consume(HttpEvent{At(0, 9), 1, 1, HttpActivity::kDownload, 1,
                       HttpFileType::kExe});
  ex.Consume(HttpEvent{At(0, 9), 1, 1, HttpActivity::kUpload, 1,
                       HttpFileType::kDoc});
  ex.Consume(HttpEvent{At(0, 21), 1, 1, HttpActivity::kUpload, 2,
                       HttpFileType::kZip});
  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  using F = CertAcobeExtractor;
  EXPECT_FLOAT_EQ(cube.At(u, F::kHttpUploadDoc, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kHttpUploadZip, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kHttpNewOp, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kHttpNewOp, 0, 1), 1.0f);
  // Visits/downloads contribute to no feature.
  float total = 0;
  for (int f = 0; f < CertAcobeExtractor::kFeatureCount; ++f) {
    for (int t = 0; t < 2; ++t) total += cube.At(u, f, 0, t);
  }
  EXPECT_FLOAT_EQ(total, 4.0f);
}

TEST(CertAcobeExtractorTest, PerUserFirstSeenIsolation) {
  CertAcobeExtractor ex(kStart, 30);
  ex.Consume(HttpEvent{At(0, 9), 1, 1, HttpActivity::kUpload, 7,
                       HttpFileType::kDoc});
  ex.Consume(HttpEvent{At(1, 9), 2, 1, HttpActivity::kUpload, 7,
                       HttpFileType::kDoc});
  const auto& cube = ex.cube();
  using F = CertAcobeExtractor;
  // User 2's first touch of domain 7 is new even though user 1 saw it.
  EXPECT_FLOAT_EQ(cube.At(cube.UserIndex(2), F::kHttpNewOp, 1, 0), 1.0f);
}

// --- CertCoarseExtractor -------------------------------------------------------------

TEST(CertCoarseExtractorTest, HourlyFramesAndActivityCounts) {
  CertCoarseExtractor ex(kStart, 30);
  EXPECT_EQ(ex.partition().frame_count(), 24);
  ex.Consume(LogonEvent{At(0, 8), 1, 1, LogonActivity::kLogon});
  ex.Consume(LogonEvent{At(0, 17), 1, 1, LogonActivity::kLogoff});
  ex.Consume(HttpEvent{At(0, 8), 1, 1, HttpActivity::kVisit, 1,
                       HttpFileType::kNone});
  ex.Consume(DeviceEvent{At(0, 8), 1, 1, DeviceActivity::kConnect});
  ex.Consume(FileEvent{At(0, 13), 1, 1, FileActivity::kDelete, 2,
                       FileLocation::kLocal, FileLocation::kLocal});

  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  using F = CertCoarseExtractor;
  EXPECT_FLOAT_EQ(cube.At(u, F::kLogon, 0, 8), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kLogoff, 0, 17), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kVisit, 0, 8), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kConnect, 0, 8), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kDelete, 0, 13), 1.0f);
  EXPECT_EQ(ex.catalog().aspects().size(), 4u);  // device/file/http/logon
}

// --- ReplayStore -------------------------------------------------------------------

TEST(ReplayStoreTest, ReplaysEverythingInDayOrder) {
  LogStore store;
  store.Add(HttpEvent{At(1, 9), 1, 1, HttpActivity::kUpload, 3,
                      HttpFileType::kDoc});
  store.Add(HttpEvent{At(0, 9), 1, 1, HttpActivity::kUpload, 3,
                      HttpFileType::kDoc});
  store.SortChronologically();

  CertAcobeExtractor ex(kStart, 30);
  ReplayStore(store, ex);
  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  using F = CertAcobeExtractor;
  // The day-0 upload is the first-seen one; day 1 is not new.
  EXPECT_FLOAT_EQ(cube.At(u, F::kHttpNewOp, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, F::kHttpNewOp, 1, 0), 0.0f);
}

// --- EnterpriseExtractor -------------------------------------------------------------

TEST(EnterpriseExtractorTest, CatalogHas27Features) {
  EnterpriseExtractor ex(kStart, 30);
  EXPECT_EQ(ex.catalog().feature_count(), 27);
  ASSERT_EQ(ex.catalog().aspects().size(), 6u);
  EXPECT_EQ(ex.catalog().aspects()[0].name, "file");
  EXPECT_EQ(ex.catalog().aspects()[4].name, "http");
  EXPECT_EQ(ex.catalog().aspects()[5].name, "logon");
  EXPECT_EQ(ex.catalog().aspects()[5].feature_indices.size(), 7u);
}

TEST(EnterpriseExtractorTest, CountUniqueNewDistinct) {
  EnterpriseExtractor ex(kStart, 30);
  using E = EnterpriseExtractor;
  // Day 0: same (event,object) twice + one other event id.
  ex.Consume(EnterpriseEvent{At(0, 9), 1, EnterpriseAspect::kCommand, 4688, 5});
  ex.Consume(EnterpriseEvent{At(0, 10), 1, EnterpriseAspect::kCommand, 4688, 5});
  ex.Consume(EnterpriseEvent{At(0, 11), 1, EnterpriseAspect::kCommand, 4104, 6});
  // Day 1: the first pair repeats (not new), one fresh object.
  ex.Consume(EnterpriseEvent{At(1, 9), 1, EnterpriseAspect::kCommand, 4688, 5});
  ex.Consume(EnterpriseEvent{At(1, 9), 1, EnterpriseAspect::kCommand, 4688, 77});

  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  const auto idx = [](E::AspectFeature f) {
    return E::AspectFeatureIndex(EnterpriseAspect::kCommand, f);
  };
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kEventCount), 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kUniqueEvents), 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kNewEvents), 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kDistinctEventIds), 0, 0), 2.0f);

  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kEventCount), 1, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kUniqueEvents), 1, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kNewEvents), 1, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, idx(E::kDistinctEventIds), 1, 0), 1.0f);
}

TEST(EnterpriseExtractorTest, ProxyFeatures) {
  EnterpriseExtractor ex(kStart, 30);
  using E = EnterpriseExtractor;
  ex.Consume(ProxyEvent{At(0, 9), 1, 3, true, 100});
  ex.Consume(ProxyEvent{At(0, 9), 1, 3, true, 100});
  ex.Consume(ProxyEvent{At(0, 9), 1, 4, false, 0});
  ex.Consume(ProxyEvent{At(1, 9), 1, 3, true, 100});
  ex.Consume(ProxyEvent{At(1, 9), 1, 9, false, 0});

  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  EXPECT_FLOAT_EQ(cube.At(u, E::kHttpSuccess, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kHttpSuccessNewDomain, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kHttpFailure, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kHttpFailureNewDomain, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kHttpSuccessNewDomain, 1, 0), 0.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kHttpFailureNewDomain, 1, 0), 1.0f);
}

TEST(EnterpriseExtractorTest, SessionStatistics) {
  EnterpriseExtractor ex(kStart, 30);
  using E = EnterpriseExtractor;
  // A 2-hour session and a 2-minute session, both in working hours.
  ex.Consume(LogonEvent{At(0, 9), 1, 0, LogonActivity::kLogon});
  ex.Consume(LogonEvent{At(0, 11), 1, 0, LogonActivity::kLogoff});
  ex.Consume(LogonEvent{At(0, 13), 1, 0, LogonActivity::kLogon});
  ex.Consume(LogonEvent{At(0, 13) + 120, 1, 0, LogonActivity::kLogoff});
  ex.Finalize();

  const auto& cube = ex.cube();
  const int u = cube.UserIndex(1);
  EXPECT_FLOAT_EQ(cube.At(u, E::kLogonCount, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kLogoffCount, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kSessionCount, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kTotalSessionSeconds, 0, 0), 7200.0f + 120.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kMeanSessionSeconds, 0, 0), 3660.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kMaxSessionSeconds, 0, 0), 7200.0f);
  EXPECT_FLOAT_EQ(cube.At(u, E::kShortSessions, 0, 0), 1.0f);
}

}  // namespace
}  // namespace acobe
