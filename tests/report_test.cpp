// Tests for eval/report (CSV + table exporters) and behavior/render
// (the library form of Figure 4's shade maps).

#include <gtest/gtest.h>

#include <sstream>

#include "behavior/render.h"
#include "common/json.h"
#include "eval/report.h"

namespace acobe {
namespace {

std::vector<bool> Flags(std::initializer_list<int> xs) {
  std::vector<bool> out;
  for (int x : xs) out.push_back(x != 0);
  return out;
}

TEST(ReportTest, RocCsvShape) {
  std::stringstream ss;
  eval::WriteRocCsv(Flags({1, 0, 1}), ss);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "fpr,tpr");
  int rows = 0;
  while (std::getline(ss, line)) ++rows;
  EXPECT_EQ(rows, 4);  // origin + one point per list entry
}

TEST(ReportTest, PrCsvShape) {
  std::stringstream ss;
  eval::WritePrCsv(Flags({1, 0, 1}), ss);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "recall,precision");
  std::getline(ss, line);
  EXPECT_EQ(line, "0.5,1");
}

TEST(ReportTest, RankingCsv) {
  std::vector<eval::RankedUser> ranked = {{7, 1.0, true}, {9, 2.0, false}};
  std::stringstream ss;
  eval::WriteRankingCsv(ranked, ss);
  std::string line;
  std::getline(ss, line);
  std::getline(ss, line);
  EXPECT_EQ(line, "1,7,1,1");
  std::getline(ss, line);
  EXPECT_EQ(line, "2,9,2,0");
}

TEST(ReportTest, SummaryAndComparisonTable) {
  const auto ranked = std::vector<eval::RankedUser>{
      {1, 1.0, true}, {2, 2.0, false}, {3, 3.0, true}, {4, 4.0, false}};
  const auto summary = eval::Summarize("ACOBE", ranked);
  EXPECT_EQ(summary.name, "ACOBE");
  EXPECT_DOUBLE_EQ(summary.auc, 0.75);
  EXPECT_EQ(summary.fps_before_tp, (std::vector<int>{0, 1}));

  std::stringstream ss;
  eval::WriteComparisonTable({summary}, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("ACOBE"), std::string::npos);
  EXPECT_NE(text.find("75.0000"), std::string::npos);
  EXPECT_NE(text.find("0,1"), std::string::npos);
}

TEST(ReportTest, PrecisionAtK) {
  const auto flags = Flags({1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(flags, 1), 1.0);
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(flags, 2), 0.5);
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(flags, 4), 0.5);
  // k beyond the list: the denominator stays k. Both insiders found,
  // but 6 of 10 budgeted investigation slots go unfilled.
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(flags, 10), 0.2);
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(flags, 0), 0.0);
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK({}, 3), 0.0);
}

// Regression for the precision@k inflation bug: a department with fewer
// flagged users than the cutoff used to divide by the list length,
// reporting a 1-insider-in-1-entry list as precision@10 == 1.0.
TEST(ReportTest, PrecisionAtKBeyondListIsNotInflated) {
  const auto one_hit = Flags({1});
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(one_hit, 10), 0.1);
  const auto all_hits = Flags({1, 1, 1});
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(all_hits, 5), 0.6);
  // k within the list is unaffected.
  EXPECT_DOUBLE_EQ(eval::PrecisionAtK(all_hits, 3), 1.0);
}

TEST(ReportTest, QualityEventCarriesMetrics) {
  const std::vector<eval::RankedUser> ranked = {
      {1, 1.0, true}, {2, 2.0, false}, {3, 3.0, true}, {4, 4.0, false}};
  const std::vector<std::size_t> ks = {1, 2};
  const std::string line =
      eval::MakeQualityEvent("ACOBE", ranked, ks).Finish();
  const auto event = json::Value::Parse(line);
  EXPECT_EQ(event.GetString("event", ""), "quality");
  EXPECT_EQ(event.GetString("model", ""), "ACOBE");
  EXPECT_DOUBLE_EQ(event.GetNumber("list_size", 0), 4.0);
  EXPECT_DOUBLE_EQ(event.GetNumber("positives", 0), 2.0);
  EXPECT_DOUBLE_EQ(event.GetNumber("auc", 0), 0.75);
  const json::Value* p_at = event.Get("precision_at");
  ASSERT_NE(p_at, nullptr);
  EXPECT_DOUBLE_EQ(p_at->GetNumber("1", 0), 1.0);
  EXPECT_DOUBLE_EQ(p_at->GetNumber("2", 0), 0.5);
}

TEST(ReportTest, CutoffSweepCsv) {
  std::stringstream ss;
  eval::WriteCutoffSweepCsv(Flags({1, 0, 1, 0}), {1, 2, 4}, ss);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "cutoff,tp,fp,fn,tn,precision,recall,f1");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 8), "1,1,0,1,");
  int rows = 1;
  while (std::getline(ss, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

// --- render -----------------------------------------------------------------

TEST(RenderTest, ShadeRampEndsAndMidpoint) {
  EXPECT_EQ(SigmaShade(-3.0, 3.0), ' ');
  EXPECT_EQ(SigmaShade(3.0, 3.0), '@');
  EXPECT_EQ(SigmaShade(0.0, 3.0), '=');
  EXPECT_EQ(SigmaShade(-99.0, 3.0), ' ');  // clamped
  EXPECT_EQ(SigmaShade(99.0, 3.0), '@');
}

TEST(RenderTest, RendersRowsAndMarks) {
  MeasurementCube cube(Date(2010, 1, 4), 20, 2, 1);
  const int u = cube.RegisterUser(1);
  for (int d = 0; d < 20; ++d) cube.At(u, 0, d, 0) = 2.0f;
  cube.At(u, 0, 15, 0) = 100.0f;  // a spike
  DeviationConfig cfg;
  cfg.omega = 5;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  FeatureCatalog catalog({{"spiky", "x", 1.0}, {"other", "x", 1.0}});

  RenderOptions options;
  options.day_begin = 5;
  options.marked_days = {15};
  std::stringstream ss;
  RenderAspect(dev, catalog, 0, "x", options, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("spiky"), std::string::npos);
  EXPECT_NE(text.find('@'), std::string::npos);  // the spike renders dark
  EXPECT_NE(text.find('*'), std::string::npos);  // the mark row
  // Unknown aspect renders nothing.
  std::stringstream empty;
  RenderAspect(dev, catalog, 0, "nope", options, empty);
  EXPECT_TRUE(empty.str().empty());
}

}  // namespace
}  // namespace acobe
