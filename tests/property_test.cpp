// Property-based suites: invariants that must hold across parameter
// sweeps and randomized inputs — the deviation pipeline against naive
// reference implementations, critic ordering properties, metric
// invariants, and group-mean robustness.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "behavior/compound_matrix.h"
#include "behavior/deviation.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/critic.h"
#include "eval/metrics.h"
#include "features/measurement_cube.h"

namespace acobe {
namespace {

const Date kStart(2010, 1, 4);

// --- Deviation vs naive reference, swept over omega --------------------------

class DeviationSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeviationSweep, RollingMatchesNaiveForAllOmegas) {
  const int omega = GetParam();
  const int days = 90;
  Rng rng(1000 + omega);
  MeasurementCube cube(kStart, days, 1, 2);
  const int u = cube.RegisterUser(1);
  for (int d = 0; d < days; ++d) {
    for (int t = 0; t < 2; ++t) {
      cube.At(u, 0, d, t) = static_cast<float>(rng.NextPoisson(4.0));
    }
  }
  DeviationConfig cfg;
  cfg.omega = omega;
  cfg.apply_weights = false;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  for (int t = 0; t < 2; ++t) {
    for (int d = cfg.FirstDeviationDay(); d < days; ++d) {
      std::vector<double> h;
      for (int i = d - omega + 1; i < d; ++i) h.push_back(cube.At(u, 0, i, t));
      double sd = StdDev(h);
      if (sd < cfg.epsilon) sd = cfg.epsilon;
      const double expected =
          ClampSymmetric((cube.At(u, 0, d, t) - Mean(h)) / sd, cfg.delta);
      EXPECT_NEAR(dev.Sigma(0, 0, d, t), expected, 2e-3)
          << "omega=" << omega << " d=" << d << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Omegas, DeviationSweep,
                         ::testing::Values(2, 3, 5, 7, 14, 30, 60));

// Sigma is always within [-Delta, Delta] and finite, whatever the data.
class DeviationBounds : public ::testing::TestWithParam<double> {};

TEST_P(DeviationBounds, SigmaAlwaysBounded) {
  const double delta = GetParam();
  Rng rng(77);
  MeasurementCube cube(kStart, 60, 2, 1);
  const int u = cube.RegisterUser(1);
  for (int d = 0; d < 60; ++d) {
    // Pathological mixture: zeros, huge spikes, negatives.
    float v = 0.0f;
    const int kind = rng.NextInt(0, 3);
    if (kind == 1) v = static_cast<float>(rng.NextUniform(0, 1e6));
    if (kind == 2) v = static_cast<float>(-rng.NextUniform(0, 100));
    if (kind == 3) v = static_cast<float>(rng.NextGaussian());
    cube.At(u, 0, d, 0) = v;
    cube.At(u, 1, d, 0) = 3.0f;  // constant
  }
  DeviationConfig cfg;
  cfg.omega = 10;
  cfg.delta = delta;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  for (int f = 0; f < 2; ++f) {
    for (int d = cfg.FirstDeviationDay(); d < 60; ++d) {
      const float s = dev.Sigma(0, f, d, 0);
      EXPECT_TRUE(std::isfinite(s));
      // Weighted sigma can only shrink (weights <= 1).
      EXPECT_LE(std::fabs(s), delta + 1e-4);
      const float w = dev.Weight(0, f, d, 0);
      EXPECT_GT(w, 0.0f);
      EXPECT_LE(w, 1.0f + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeviationBounds,
                         ::testing::Values(1.0, 3.0, 6.0, 10.0));

// Compound matrices are always in [0,1], any configuration.
class MatrixRange : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
};

TEST_P(MatrixRange, FlattenedValuesInUnitInterval) {
  const auto [omega, matrix_days, group] = GetParam();
  Rng rng(31 + omega * 7 + matrix_days);
  MeasurementCube cube(kStart, 80, 3, 2);
  for (int u = 0; u < 4; ++u) {
    cube.RegisterUser(10 + u);
    for (int f = 0; f < 3; ++f) {
      for (int d = 0; d < 80; ++d) {
        for (int t = 0; t < 2; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(3.0));
        }
      }
    }
  }
  DeviationConfig cfg;
  cfg.omega = omega;
  cfg.matrix_days = matrix_days;
  cfg.include_group = group;
  const auto dev = DeviationSeries::Compute(cube, cfg);
  std::vector<DeviationSeries> groups;
  std::vector<int> group_of_user;
  if (group) {
    const std::vector<int> members = {0, 1, 2, 3};
    groups.push_back(DeviationSeries::ComputeFromSeries(
        GroupMeanSeries(cube, members), 3, 80, 2, cfg));
    group_of_user.assign(4, 0);
  }
  CompoundMatrixBuilder builder(&dev, std::move(groups),
                                std::move(group_of_user));
  const std::vector<int> features = {0, 1, 2};
  for (int day = builder.FirstAnchorDay(); day < 80; day += 5) {
    for (int u = 0; u < 4; ++u) {
      const auto m = builder.BuildSample(u, features, day);
      EXPECT_EQ(m.size(), builder.SampleSize(3));
      for (float v : m) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MatrixRange,
    ::testing::Values(std::make_tuple(7, 7, false),
                      std::make_tuple(7, 7, true),
                      std::make_tuple(14, 7, true),
                      std::make_tuple(10, 3, false),
                      std::make_tuple(21, 21, true)));

// --- Critic properties -----------------------------------------------------------

TEST(CriticProperties, PriorityIsPermutationEquivariant) {
  // Relabeling users must relabel the list, not change its structure.
  Rng rng(91);
  const int users = 12, aspects = 3;
  std::vector<std::vector<int>> ranks(users, std::vector<int>(aspects));
  std::vector<int> perm(users);
  std::iota(perm.begin(), perm.end(), 0);
  for (int u = 0; u < users; ++u) {
    for (int a = 0; a < aspects; ++a) ranks[u][a] = rng.NextInt(1, users);
  }
  rng.Shuffle(perm);
  std::vector<std::vector<int>> permuted(users);
  for (int u = 0; u < users; ++u) permuted[perm[u]] = ranks[u];

  const auto base = RankFromRanks(ranks, 2);
  const auto shuffled = RankFromRanks(permuted, 2);
  // Same multiset of priorities.
  std::vector<double> p1, p2;
  for (const auto& e : base) p1.push_back(e.priority);
  for (const auto& e : shuffled) p2.push_back(e.priority);
  EXPECT_EQ(p1, p2);  // both sorted ascending by construction
  // Each user keeps their priority under the relabeling.
  std::vector<double> by_user1(users), by_user2(users);
  for (const auto& e : base) by_user1[e.user_idx] = e.priority;
  for (const auto& e : shuffled) by_user2[e.user_idx] = e.priority;
  for (int u = 0; u < users; ++u) {
    EXPECT_DOUBLE_EQ(by_user1[u], by_user2[perm[u]]);
  }
}

TEST(CriticProperties, MonotoneInVotes) {
  // A user's priority never improves as N grows (the N-th best rank is
  // non-decreasing in N).
  Rng rng(92);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> user_ranks = {rng.NextInt(1, 20), rng.NextInt(1, 20),
                                   rng.NextInt(1, 20)};
    const std::vector<std::vector<int>> ranks = {user_ranks};
    double prev = 0;
    for (int n = 1; n <= 3; ++n) {
      const double p = RankFromRanks(ranks, n)[0].priority;
      EXPECT_GE(p, prev);
      prev = p;
    }
  }
}

TEST(CriticProperties, TopKMeanBetweenMeanAndMax) {
  Rng rng(93);
  ScoreGrid grid({"a"}, 1, 0, 30);
  double sum = 0, mx = 0;
  for (int d = 0; d < 30; ++d) {
    const double v = rng.NextDouble();
    grid.At(0, 0, d) = static_cast<float>(v);
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / 30;
  double prev = mx + 1e-9;
  for (int k = 1; k <= 30; ++k) {
    const double v = grid.TopKMean(0, 0, k);
    EXPECT_LE(v, prev + 1e-6);  // non-increasing in k
    EXPECT_GE(v, mean - 1e-6);
    EXPECT_LE(v, mx + 1e-6);
    prev = v;
  }
  EXPECT_NEAR(grid.TopKMean(0, 0, 1), mx, 1e-6);
  EXPECT_NEAR(grid.TopKMean(0, 0, 30), mean, 1e-6);
}

// --- Metric invariants -------------------------------------------------------------

TEST(MetricProperties, AucImprovesWhenTpMovesUp) {
  // Swapping an adjacent (FP, TP) pair so the TP comes first can only
  // increase AUC.
  Rng rng(94);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> flags;
    for (int i = 0; i < 40; ++i) flags.push_back(rng.NextBernoulli(0.15));
    if (std::none_of(flags.begin(), flags.end(), [](bool b) { return b; })) {
      flags[17] = true;
    }
    for (std::size_t i = 0; i + 1 < flags.size(); ++i) {
      if (!flags[i] && flags[i + 1]) {
        std::vector<bool> better = flags;
        better[i] = true;
        better[i + 1] = false;
        EXPECT_GE(eval::RocAuc(better), eval::RocAuc(flags));
        EXPECT_GE(eval::AveragePrecision(better),
                  eval::AveragePrecision(flags));
      }
    }
  }
}

TEST(MetricProperties, ConfusionCountsAlwaysConsistent) {
  Rng rng(95);
  std::vector<bool> flags;
  for (int i = 0; i < 60; ++i) flags.push_back(rng.NextBernoulli(0.2));
  int total_pos = 0;
  for (bool f : flags) total_pos += f;
  for (std::size_t cutoff = 0; cutoff <= flags.size(); cutoff += 7) {
    const auto c = eval::AtCutoff(flags, cutoff);
    EXPECT_EQ(c.tp + c.fp, static_cast<int>(cutoff));
    EXPECT_EQ(c.tp + c.fn, total_pos);
    EXPECT_EQ(c.tp + c.fp + c.tn + c.fn, static_cast<int>(flags.size()));
    EXPECT_GE(c.Precision(), 0.0);
    EXPECT_LE(c.Precision(), 1.0);
    EXPECT_GE(c.F1(), 0.0);
    EXPECT_LE(c.F1(), 1.0);
  }
}

// --- Trimmed group mean robustness -----------------------------------------------

TEST(GroupMeanProperties, TrimmedMeanBoundedByExtremes) {
  Rng rng(96);
  MeasurementCube cube(kStart, 3, 1, 1);
  std::vector<int> members;
  for (int i = 0; i < 20; ++i) {
    members.push_back(cube.RegisterUser(i));
    for (int d = 0; d < 3; ++d) {
      cube.At(members.back(), 0, d, 0) =
          static_cast<float>(rng.NextUniform(0, 50));
    }
  }
  for (double trim : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const auto mean = TrimmedGroupMeanSeries(cube, members, trim);
    for (int d = 0; d < 3; ++d) {
      float lo = 1e9, hi = -1e9;
      for (int m : members) {
        lo = std::min(lo, cube.At(m, 0, d, 0));
        hi = std::max(hi, cube.At(m, 0, d, 0));
      }
      EXPECT_GE(mean[d], lo);
      EXPECT_LE(mean[d], hi);
    }
  }
}

TEST(GroupMeanProperties, SingleOutlierInfluenceVanishesWithTrim) {
  MeasurementCube cube(kStart, 1, 1, 1);
  std::vector<int> members;
  for (int i = 0; i < 20; ++i) {
    members.push_back(cube.RegisterUser(i));
    cube.At(members.back(), 0, 0, 0) = 2.0f;
  }
  cube.At(members[7], 0, 0, 0) = 1e6f;
  const auto plain = TrimmedGroupMeanSeries(cube, members, 0.0);
  const auto trimmed = TrimmedGroupMeanSeries(cube, members, 0.1);
  EXPECT_GT(plain[0], 1e4);
  EXPECT_FLOAT_EQ(trimmed[0], 2.0f);
}

}  // namespace
}  // namespace acobe
