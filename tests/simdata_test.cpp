// Unit tests for src/simdata: org model, calendar, profiles, the CERT
// simulator (incl. scenario injection), the DGA, and the enterprise
// simulator (incl. attack injection).

#include <gtest/gtest.h>

#include <set>

#include "simdata/calendar.h"
#include "simdata/cert_simulator.h"
#include "simdata/dga.h"
#include "simdata/enterprise_simulator.h"
#include "simdata/org_model.h"
#include "simdata/user_profile.h"

namespace acobe::sim {
namespace {

OrgConfig SmallOrg() {
  OrgConfig org;
  org.departments = 3;
  org.users_per_department = 10;
  org.extra_users = 1;
  return org;
}

TEST(OrgModelTest, BuildsRequestedShape) {
  LogStore store;
  OrgModel org(SmallOrg(), store);
  EXPECT_EQ(org.user_count(), 31);
  EXPECT_EQ(org.department_names().size(), 3u);
  EXPECT_EQ(org.DepartmentMembers(0).size(), 11u);
  EXPECT_EQ(org.DepartmentMembers(1).size(), 10u);
  EXPECT_EQ(store.ldap().size(), 31u);
  EXPECT_EQ(store.users().size(), 31u);
}

TEST(OrgModelTest, UserNamesAreCertStyleAndUnique) {
  LogStore store;
  OrgModel org(SmallOrg(), store);
  std::set<std::string> names;
  for (const OrgUser& u : org.org_users()) {
    ASSERT_EQ(u.name.size(), 7u);
    EXPECT_TRUE(isupper(u.name[0]) && isupper(u.name[1]) && isupper(u.name[2]));
    EXPECT_TRUE(isdigit(u.name[3]));
    names.insert(u.name);
  }
  EXPECT_EQ(names.size(), 31u);
}

TEST(OrgModelTest, InvalidConfigThrows) {
  LogStore store;
  OrgConfig bad;
  bad.departments = 0;
  EXPECT_THROW(OrgModel(bad, store), std::invalid_argument);
}

TEST(OrgModelTest, LdapDepartmentsMatchModel) {
  LogStore store;
  OrgModel org(SmallOrg(), store);
  const auto depts = store.Departments();
  ASSERT_EQ(depts.size(), 3u);
  EXPECT_EQ(store.UsersInDepartment(depts[0]).size(), 11u);
}

// --- Calendar ---------------------------------------------------------------

TEST(CalendarTest, HolidaysAndWorkdays) {
  const auto cal = OrgCalendar::WithDefaultHolidays(2010, 2011);
  EXPECT_TRUE(cal.IsHoliday(Date(2010, 1, 1)));
  EXPECT_TRUE(cal.IsHoliday(Date(2011, 12, 25)));
  EXPECT_FALSE(cal.IsHoliday(Date(2010, 3, 15)));
  EXPECT_FALSE(cal.IsWorkday(Date(2010, 1, 2)));  // Saturday
  EXPECT_TRUE(cal.IsWorkday(Date(2010, 1, 4)));   // Monday
}

TEST(CalendarTest, MondaysAreBusy) {
  const auto cal = OrgCalendar::WithDefaultHolidays(2010, 2010);
  EXPECT_GT(cal.BusyFactor(Date(2010, 3, 15)), 1.0);   // Monday
  EXPECT_DOUBLE_EQ(cal.BusyFactor(Date(2010, 3, 16)), 1.0);  // Tuesday
}

TEST(CalendarTest, MakeUpDayAfterHolidayIsBusiest) {
  const auto cal = OrgCalendar::WithDefaultHolidays(2010, 2010);
  // July 4 2010 is a Sunday; Monday July 5 is the make-up day.
  EXPECT_GE(cal.BusyFactor(Date(2010, 7, 5)), 1.7);
  // Jan 1 2010 is a Friday; Monday Jan 4 follows the weekend+holiday.
  EXPECT_GE(cal.BusyFactor(Date(2010, 1, 4)), 1.4);
}

TEST(CalendarTest, WeekendBusyFactorIsNeutral) {
  const auto cal = OrgCalendar::WithDefaultHolidays(2010, 2010);
  EXPECT_DOUBLE_EQ(cal.BusyFactor(Date(2010, 3, 13)), 1.0);
}

// --- Profiles ----------------------------------------------------------------

TEST(ProfileTest, DeviceFractionRoughlyRespected) {
  ProfileSamplerConfig cfg;
  cfg.device_user_fraction = 0.25;
  const auto base = DefaultWorkRates();
  std::vector<DomainId> domains(50);
  std::vector<FileId> files(50);
  for (std::uint32_t i = 0; i < 50; ++i) domains[i] = files[i] = i;
  int device_users = 0;
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    Rng user_rng = rng.Fork(i);
    const UserProfile p = SampleProfile(cfg, base, domains, files, 0, user_rng);
    device_users += p.uses_devices ? 1 : 0;
    if (!p.uses_devices) {
      EXPECT_EQ(p.rates[Index(ActivityKind::kDeviceConnect)][0], 0.0);
    }
    for (const auto& r : p.rates) {
      EXPECT_GE(r[0], 0.0);
      EXPECT_GE(r[1], 0.0);
    }
    EXPECT_FALSE(p.domains.empty());
    EXPECT_FALSE(p.files.empty());
  }
  EXPECT_NEAR(device_users / 400.0, 0.25, 0.08);
}

TEST(ProfileTest, HumanActivityDropsOffHours) {
  ProfileSamplerConfig cfg;
  const auto base = DefaultWorkRates();
  std::vector<DomainId> domains = {1, 2, 3};
  std::vector<FileId> files = {1, 2, 3};
  double work_sum = 0, off_sum = 0;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    Rng user_rng = rng.Fork(i);
    const UserProfile p = SampleProfile(cfg, base, domains, files, 0, user_rng);
    work_sum += p.rates[Index(ActivityKind::kHttpVisit)][0];
    off_sum += p.rates[Index(ActivityKind::kHttpVisit)][1];
  }
  EXPECT_LT(off_sum, work_sum * 0.3);
}

// --- CERT simulator ------------------------------------------------------------

CertSimConfig SmallSim() {
  CertSimConfig cfg;
  cfg.org = SmallOrg();
  cfg.start = Date(2010, 1, 2);
  cfg.end = Date(2010, 4, 30);
  cfg.profiles.rate_scale = 0.3;
  cfg.seed = 11;
  return cfg;
}

TEST(CertSimulatorTest, DeterministicGivenSeed) {
  auto run = [] {
    LogStore store;
    CertSimulator simulator(SmallSim(), store);
    LogStore sink;
    simulator.Run(sink);
    return sink.TotalEvents();
  };
  const std::size_t a = run();
  EXPECT_GT(a, 1000u);
  EXPECT_EQ(a, run());
}

TEST(CertSimulatorTest, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    CertSimConfig cfg = SmallSim();
    cfg.seed = seed;
    LogStore store;
    CertSimulator simulator(cfg, store);
    LogStore sink;
    simulator.Run(sink);
    return sink.TotalEvents();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(CertSimulatorTest, WeekendsAreQuieter) {
  LogStore store;
  CertSimConfig cfg = SmallSim();
  cfg.default_env_changes = false;  // keep org-wide bursts out of the way
  CertSimulator simulator(cfg, store);
  LogStore sink;
  simulator.Run(sink);
  // Compare HTTP events on a Wednesday vs the following Saturday.
  const Date wed(2010, 3, 10), sat(2010, 3, 13);
  std::size_t wed_count = 0, sat_count = 0;
  for (const HttpEvent& e : sink.http_events()) {
    const Date d = DateOf(e.ts);
    if (d == wed) ++wed_count;
    if (d == sat) ++sat_count;
  }
  EXPECT_GT(wed_count, sat_count * 2);
}

TEST(CertSimulatorTest, Scenario1InjectsOffHourAndDeviceAndWikileaks) {
  LogStore store;
  CertSimConfig cfg = SmallSim();
  CertSimulator simulator(cfg, store);
  const InsiderScenario& s = simulator.InjectScenario(
      InsiderScenarioKind::kScenario1, 1, Date(2010, 3, 1), 14);
  EXPECT_EQ(s.kind, InsiderScenarioKind::kScenario1);
  EXPECT_EQ(s.department, 1);
  // Scenario-1 victims never used devices before.
  EXPECT_FALSE(simulator.profile(s.user).uses_devices);

  LogStore sink;
  simulator.Run(sink);

  const DomainId wikileaks = store.domains().Lookup("wikileaks.org");
  ASSERT_NE(wikileaks, kInvalidId);
  int uploads_in_span = 0, device_in_span = 0, device_before = 0;
  for (const HttpEvent& e : sink.http_events()) {
    if (e.user == s.user && e.domain == wikileaks &&
        e.activity == HttpActivity::kUpload) {
      ++uploads_in_span;
      const Date d = DateOf(e.ts);
      EXPECT_GE(d, s.anomaly_start);
      EXPECT_LE(d, s.anomaly_end);
    }
  }
  for (const DeviceEvent& e : sink.devices()) {
    if (e.user != s.user) continue;
    if (DateOf(e.ts) < s.anomaly_start) {
      ++device_before;
    } else {
      ++device_in_span;
    }
  }
  EXPECT_GT(uploads_in_span, 5);
  EXPECT_EQ(device_before, 0);
  EXPECT_GT(device_in_span, 10);

  // The insider leaves: no activity after the leave date.
  for (const LogonEvent& e : sink.logons()) {
    if (e.user == s.user) {
      EXPECT_LE(DateOf(e.ts), s.leave_date);
    }
  }
  EXPECT_TRUE(simulator.truth().IsAbnormalUser(s.user));
  EXPECT_TRUE(simulator.truth().IsLabeledDay(s.user, Date(2010, 3, 5)));
  EXPECT_FALSE(simulator.truth().IsLabeledDay(s.user, Date(2010, 2, 1)));
}

TEST(CertSimulatorTest, Scenario2HasJobPhaseThenExfilPhase) {
  LogStore store;
  CertSimConfig cfg = SmallSim();
  CertSimulator simulator(cfg, store);
  const InsiderScenario& s = simulator.InjectScenario(
      InsiderScenarioKind::kScenario2, 0, Date(2010, 2, 15), 30);
  EXPECT_TRUE(simulator.profile(s.user).uses_devices);

  LogStore sink;
  simulator.Run(sink);

  // Resume uploads to job sites in the early phase.
  int job_uploads = 0;
  for (const HttpEvent& e : sink.http_events()) {
    if (e.user == s.user && e.activity == HttpActivity::kUpload &&
        e.filetype == HttpFileType::kDoc) {
      const std::string domain = store.domains().NameOf(e.domain);
      if (domain.starts_with("jobs-site-")) ++job_uploads;
    }
  }
  EXPECT_GT(job_uploads, 10);

  // Device usage in the exfil phase markedly exceeds the habit.
  const Date exfil_start = s.anomaly_start.AddDays(30 * 7 / 10);
  int device_exfil = 0, device_habit = 0;
  for (const DeviceEvent& e : sink.devices()) {
    if (e.user != s.user || e.activity != DeviceActivity::kConnect) continue;
    const Date d = DateOf(e.ts);
    if (d >= exfil_start && d <= s.anomaly_end) {
      ++device_exfil;
    } else if (d < s.anomaly_start) {
      ++device_habit;
    }
  }
  const double exfil_days = DaysBetween(exfil_start, s.anomaly_end) + 1;
  const double habit_days = DaysBetween(cfg.start, s.anomaly_start);
  EXPECT_GT(device_exfil / exfil_days, 3 * (device_habit + 1) / habit_days);
}

TEST(CertSimulatorTest, ScenarioValidation) {
  LogStore store;
  CertSimulator simulator(SmallSim(), store);
  EXPECT_THROW(simulator.InjectScenario(InsiderScenarioKind::kScenario1, 0,
                                        Date(2009, 1, 1), 14),
               std::invalid_argument);
  EXPECT_THROW(simulator.InjectScenario(InsiderScenarioKind::kScenario1, 0,
                                        Date(2010, 4, 25), 30),
               std::invalid_argument);
}

TEST(CertSimulatorTest, EnvChangeCausesGroupWideBurst) {
  LogStore store;
  CertSimConfig cfg = SmallSim();
  cfg.env_changes.clear();
  cfg.default_env_changes = false;
  EnvChange change;
  change.kind = EnvChangeKind::kNewService;
  change.start = Date(2010, 3, 17);  // a Wednesday
  change.duration_days = 2;
  change.intensity = 3.0;
  cfg.env_changes = {change};
  CertSimulator simulator(cfg, store);
  LogStore sink;
  simulator.Run(sink);

  const DomainId svc = store.domains().Lookup("new-internal-service.corp");
  ASSERT_NE(svc, kInvalidId);
  std::set<UserId> burst_users;
  for (const HttpEvent& e : sink.http_events()) {
    if (e.domain == svc) {
      burst_users.insert(e.user);
      const Date d = DateOf(e.ts);
      EXPECT_GE(d, change.start);
      EXPECT_LT(d, change.start.AddDays(2));
    }
  }
  // Nearly every user participates in the correlated burst.
  EXPECT_GT(burst_users.size(), 25u);
}

// --- DGA ------------------------------------------------------------------------

TEST(DgaTest, DeterministicAndUnique) {
  EXPECT_EQ(NewGozDomain(1, 0), NewGozDomain(1, 0));
  std::set<std::string> domains;
  for (std::uint32_t i = 0; i < 500; ++i) domains.insert(NewGozDomain(42, i));
  EXPECT_EQ(domains.size(), 500u);
  EXPECT_NE(NewGozDomain(1, 0), NewGozDomain(2, 0));
}

TEST(DgaTest, DomainShape) {
  for (std::uint32_t i = 0; i < 50; ++i) {
    const std::string d = NewGozDomain(7, i);
    const auto dot = d.rfind('.');
    ASSERT_NE(dot, std::string::npos);
    const std::string label = d.substr(0, dot);
    EXPECT_GE(label.size(), 12u);
    EXPECT_LE(label.size(), 23u);
    for (char c : label) EXPECT_TRUE(c >= 'a' && c <= 'z');
    const std::string tld = d.substr(dot);
    EXPECT_TRUE(tld == ".com" || tld == ".net" || tld == ".org" ||
                tld == ".biz");
  }
}

// --- Enterprise simulator ---------------------------------------------------------

EnterpriseSimConfig SmallEnterprise() {
  EnterpriseSimConfig cfg;
  cfg.employees = 30;
  cfg.start = Date(2020, 11, 1);
  cfg.end = Date(2021, 2, 20);
  cfg.rate_scale = 0.3;
  cfg.seed = 5;
  return cfg;
}

TEST(EnterpriseSimulatorTest, DeterministicAndNonEmpty) {
  auto run = [] {
    LogStore store;
    EnterpriseSimulator simulator(SmallEnterprise(), store);
    LogStore sink;
    simulator.Run(sink);
    return sink.TotalEvents();
  };
  const auto a = run();
  EXPECT_GT(a, 1000u);
  EXPECT_EQ(a, run());
}

TEST(EnterpriseSimulatorTest, ZeusAttackFootprint) {
  LogStore store;
  EnterpriseSimulator simulator(SmallEnterprise(), store);
  const EnterpriseAttack& attack =
      simulator.InjectAttack(AttackKind::kZeusBot, 3, Date(2021, 2, 2));
  LogStore sink;
  simulator.Run(sink);

  // Registry modifications on the attack day.
  int config_events_attack_day = 0;
  for (const EnterpriseEvent& e : sink.enterprise_events()) {
    if (e.user == attack.victim && e.aspect == EnterpriseAspect::kConfig &&
        DateOf(e.ts) == attack.attack_date) {
      ++config_events_attack_day;
    }
  }
  EXPECT_GE(config_events_attack_day, 4);

  // DGA failures on later days, none before the attack.
  int dga_failures = 0, failures_before = 0;
  for (const ProxyEvent& e : sink.proxy_events()) {
    if (e.user != attack.victim || e.success) continue;
    const Date d = DateOf(e.ts);
    if (d >= attack.attack_date.AddDays(2) &&
        d <= attack.attack_date.AddDays(attack.tail_days)) {
      ++dga_failures;
    }
  }
  EXPECT_GT(dga_failures, 100);
  (void)failures_before;
  EXPECT_TRUE(simulator.truth().IsAbnormalUser(attack.victim));
}

TEST(EnterpriseSimulatorTest, RansomwareMassFileFootprint) {
  LogStore store;
  EnterpriseSimulator simulator(SmallEnterprise(), store);
  const EnterpriseAttack& attack =
      simulator.InjectAttack(AttackKind::kRansomware, 4, Date(2021, 2, 2));
  LogStore sink;
  simulator.Run(sink);

  int file_events_attack_day = 0;
  for (const EnterpriseEvent& e : sink.enterprise_events()) {
    if (e.user == attack.victim && e.aspect == EnterpriseAspect::kFile &&
        DateOf(e.ts) == attack.attack_date) {
      ++file_events_attack_day;
    }
  }
  // ~150 files x 2 events on day 0 (plus habitual activity), and the
  // encryption tail must persist on following days.
  EXPECT_GT(file_events_attack_day, 200);
  int file_events_tail = 0;
  for (const EnterpriseEvent& e : sink.enterprise_events()) {
    if (e.user == attack.victim && e.aspect == EnterpriseAspect::kFile &&
        DateOf(e.ts) == attack.attack_date.AddDays(2)) {
      ++file_events_tail;
    }
  }
  EXPECT_GT(file_events_tail, 60);
}

TEST(EnterpriseSimulatorTest, EnvChangeMovesCommandAndHttp) {
  LogStore store;
  EnterpriseSimConfig cfg = SmallEnterprise();
  cfg.env_change = Date(2021, 1, 26);
  EnterpriseSimulator simulator(cfg, store);
  LogStore sink;
  simulator.Run(sink);

  // Compare the env-change Tuesday with the previous Tuesday.
  const Date env_day(2021, 1, 26), normal_day(2021, 1, 19);
  std::size_t cmd_env = 0, cmd_normal = 0, http_env = 0, http_normal = 0;
  for (const EnterpriseEvent& e : sink.enterprise_events()) {
    if (e.aspect != EnterpriseAspect::kCommand) continue;
    const Date d = DateOf(e.ts);
    if (d == env_day) ++cmd_env;
    if (d == normal_day) ++cmd_normal;
  }
  for (const ProxyEvent& e : sink.proxy_events()) {
    const Date d = DateOf(e.ts);
    if (d == env_day) ++http_env;
    if (d == normal_day) ++http_normal;
  }
  EXPECT_GT(cmd_env, cmd_normal * 2);
  EXPECT_LT(http_env, http_normal);
}

TEST(EnterpriseSimulatorTest, AttackValidation) {
  LogStore store;
  EnterpriseSimulator simulator(SmallEnterprise(), store);
  EXPECT_THROW(simulator.InjectAttack(AttackKind::kZeusBot, -1,
                                      Date(2021, 2, 2)),
               std::invalid_argument);
  EXPECT_THROW(simulator.InjectAttack(AttackKind::kZeusBot, 3,
                                      Date(2022, 1, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace acobe::sim
