// Unit tests for src/core: score grid, critic (Algorithm 1), ensemble
// training/scoring, detector plumbing.

#include <gtest/gtest.h>

#include "behavior/normalized_day.h"
#include "core/critic.h"
#include "core/detector.h"
#include "core/ensemble.h"
#include "core/score_grid.h"

namespace acobe {
namespace {

const Date kStart(2010, 1, 4);

// --- ScoreGrid ----------------------------------------------------------------

TEST(ScoreGridTest, IndexingAndMax) {
  ScoreGrid grid({"a", "b"}, 3, 10, 15);
  EXPECT_EQ(grid.aspects(), 2);
  EXPECT_EQ(grid.users(), 3);
  EXPECT_EQ(grid.day_count(), 5);
  grid.At(1, 2, 12) = 0.7f;
  grid.At(1, 2, 14) = 0.3f;
  EXPECT_FLOAT_EQ(grid.MaxOverDays(1, 2), 0.7f);
  EXPECT_FLOAT_EQ(grid.MaxOverDays(0, 0), 0.0f);
  EXPECT_THROW(grid.At(0, 0, 9), std::out_of_range);
  EXPECT_THROW(grid.At(0, 0, 15), std::out_of_range);
  EXPECT_THROW(grid.At(2, 0, 10), std::out_of_range);
  EXPECT_THROW(ScoreGrid({"a"}, 0, 0, 1), std::invalid_argument);
}

// --- Critic -------------------------------------------------------------------

TEST(CriticTest, PaperExampleFromSectionIVC) {
  // "say N=2 and a user is ranked at 3rd, 5th, 4th ... this user has an
  // investigation priority of 4."
  const std::vector<std::vector<int>> ranks = {{3, 5, 4}};
  const auto list = RankFromRanks(ranks, 2);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_DOUBLE_EQ(list[0].priority, 4.0);
}

TEST(CriticTest, SortsByPriority) {
  // User 0: ranks {1,9,9} -> N=2 priority 9.
  // User 1: ranks {2,2,7} -> N=2 priority 2.
  // User 2: ranks {5,3,1} -> N=2 priority 3.
  const std::vector<std::vector<int>> ranks = {{1, 9, 9}, {2, 2, 7}, {5, 3, 1}};
  const auto list = RankFromRanks(ranks, 2);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].user_idx, 1);
  EXPECT_EQ(list[1].user_idx, 2);
  EXPECT_EQ(list[2].user_idx, 0);
}

TEST(CriticTest, VotesClampedToAspectCount) {
  const std::vector<std::vector<int>> ranks = {{4, 2}};
  EXPECT_DOUBLE_EQ(RankFromRanks(ranks, 99)[0].priority, 4.0);
  EXPECT_DOUBLE_EQ(RankFromRanks(ranks, 0)[0].priority, 2.0);
}

TEST(CriticTest, RaggedRanksThrow) {
  const std::vector<std::vector<int>> ranks = {{1, 2}, {1}};
  EXPECT_THROW(RankFromRanks(ranks, 1), std::invalid_argument);
}

TEST(CriticTest, AspectRanksWithTies) {
  ScoreGrid grid({"a"}, 4, 0, 1);
  grid.At(0, 0, 0) = 0.9f;
  grid.At(0, 1, 0) = 0.5f;
  grid.At(0, 2, 0) = 0.5f;
  grid.At(0, 3, 0) = 0.1f;
  const auto ranks = AspectRanks(grid, 0);
  EXPECT_EQ(ranks[0], 1);
  EXPECT_EQ(ranks[1], 2);
  EXPECT_EQ(ranks[2], 2);  // tie shares rank 2
  EXPECT_EQ(ranks[3], 4);  // competition ranking skips 3
}

TEST(CriticTest, RankUsersOnDayUsesOnlyThatDay) {
  ScoreGrid grid({"a"}, 2, 0, 2);
  grid.At(0, 0, 0) = 0.9f;  // user 0 leads on day 0
  grid.At(0, 1, 0) = 0.1f;
  grid.At(0, 0, 1) = 0.1f;
  grid.At(0, 1, 1) = 0.9f;  // user 1 leads on day 1
  EXPECT_EQ(RankUsersOnDay(grid, 1, 0)[0].user_idx, 0);
  EXPECT_EQ(RankUsersOnDay(grid, 1, 1)[0].user_idx, 1);
  // Whole-window ranking ties (same max): competition rank 1 for both.
  const auto ranks = AspectRanks(grid, 0);
  EXPECT_EQ(ranks[0], ranks[1]);
}

TEST(CriticTest, RankUsersEndToEnd) {
  // Two aspects; user 1 is top in both, user 0 top in only one.
  ScoreGrid grid({"a", "b"}, 3, 0, 1);
  grid.At(0, 0, 0) = 0.9f;  // user 0 leads aspect a
  grid.At(0, 1, 0) = 0.8f;
  grid.At(0, 2, 0) = 0.1f;
  grid.At(1, 0, 0) = 0.1f;
  grid.At(1, 1, 0) = 0.9f;  // user 1 leads aspect b
  grid.At(1, 2, 0) = 0.5f;
  const auto list = RankUsers(grid, 2);
  EXPECT_EQ(list[0].user_idx, 1);  // priority 2 (ranks 2,1)
  EXPECT_DOUBLE_EQ(list[0].priority, 2.0);
}

// --- Ensemble -----------------------------------------------------------------

// A tiny synthetic cube: 6 users with stable behavior in the train
// range; user 0 deviates wildly in the test range.
MeasurementCube MakeToyCube(int users, int days) {
  MeasurementCube cube(kStart, days, 2, 1);
  Rng rng(41);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(100 + u);
    for (int d = 0; d < days; ++d) {
      cube.At(u, 0, d, 0) = static_cast<float>(rng.NextPoisson(5.0));
      cube.At(u, 1, d, 0) = static_cast<float>(rng.NextPoisson(2.0));
    }
  }
  return cube;
}

EnsembleConfig TinyEnsembleConfig() {
  EnsembleConfig cfg;
  cfg.encoder_dims = {8, 4};
  cfg.train.epochs = 8;
  cfg.train.batch_size = 16;
  cfg.train_stride = 1;
  cfg.seed = 7;
  return cfg;
}

TEST(EnsembleTest, TrainsAndScoresShape) {
  MeasurementCube cube = MakeToyCube(6, 40);
  NormalizedDayBuilder builder(&cube, 0, 30);
  FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "y", 1.0}});
  AspectEnsemble ensemble(catalog.aspects(), TinyEnsembleConfig());
  ensemble.Train(builder, 6, 0, 30);
  const ScoreGrid grid = ensemble.Score(builder, 6, 30, 40);
  EXPECT_EQ(grid.aspects(), 2);
  EXPECT_EQ(grid.users(), 6);
  EXPECT_EQ(grid.day_begin(), 30);
  EXPECT_EQ(grid.day_end(), 40);
}

TEST(EnsembleTest, ScoreBeforeTrainThrows) {
  MeasurementCube cube = MakeToyCube(2, 10);
  NormalizedDayBuilder builder(&cube, 0, 10);
  FeatureCatalog catalog({{"f0", "x", 1.0}});
  AspectEnsemble ensemble(catalog.aspects(), TinyEnsembleConfig());
  EXPECT_THROW(ensemble.Score(builder, 2, 0, 10), std::logic_error);
}

TEST(EnsembleTest, EmptyAspectThrows) {
  EXPECT_THROW(AspectEnsemble({}, TinyEnsembleConfig()), std::invalid_argument);
  AspectGroup empty{"e", {}};
  EXPECT_THROW(AspectEnsemble({empty}, TinyEnsembleConfig()),
               std::invalid_argument);
}

TEST(EnsembleTest, DeterministicGivenSeed) {
  auto run = [] {
    MeasurementCube cube = MakeToyCube(4, 30);
    NormalizedDayBuilder builder(&cube, 0, 20);
    FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "x", 1.0}});
    AspectEnsemble ensemble(catalog.aspects(), TinyEnsembleConfig());
    ensemble.Train(builder, 4, 0, 20);
    return ensemble.Score(builder, 4, 20, 30).At(0, 0, 25);
  };
  EXPECT_FLOAT_EQ(run(), run());
}

// --- SubsetBuilder ---------------------------------------------------------------

TEST(SubsetBuilderTest, RemapsUsers) {
  MeasurementCube cube = MakeToyCube(5, 10);
  cube.At(3, 0, 2, 0) = 42.0f;
  NormalizedDayBuilder inner(&cube, 0, 10);
  SubsetBuilder subset(&inner, {3, 1});
  const std::vector<int> features = {0};
  EXPECT_EQ(subset.BuildSample(0, features, 2),
            inner.BuildSample(3, features, 2));
  EXPECT_EQ(subset.BuildSample(1, features, 2),
            inner.BuildSample(1, features, 2));
  EXPECT_EQ(subset.SampleSize(1), inner.SampleSize(1));
}

// --- Detector (compound path, smallest possible) ----------------------------------

TEST(DetectorTest, FlagsInjectedDeviator) {
  // 8 users with Poisson(5) behavior; user id 103 triples its rate in
  // the scoring window.
  const int days = 60;
  MeasurementCube cube(kStart, days, 2, 1);
  Rng rng(43);
  for (int u = 0; u < 8; ++u) {
    cube.RegisterUser(100 + u);
    for (int d = 0; d < days; ++d) {
      double rate0 = 5.0, rate1 = 2.0;
      if (u == 3 && d >= 45) {
        rate0 = 25.0;
        rate1 = 10.0;
      }
      cube.At(u, 0, d, 0) = static_cast<float>(rng.NextPoisson(rate0));
      cube.At(u, 1, d, 0) = static_cast<float>(rng.NextPoisson(rate1));
    }
  }
  FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "x", 1.0}});

  DetectorSpec spec;
  spec.deviation.omega = 10;
  spec.deviation.matrix_days = 7;
  spec.ensemble.encoder_dims = {16, 8};
  spec.ensemble.train.epochs = 12;
  spec.ensemble.seed = 3;
  spec.critic_votes = 1;

  std::vector<UserId> members;
  for (int u = 0; u < 8; ++u) members.push_back(100 + u);
  const Detector detector(spec);
  const DetectionOutput out =
      detector.Run(cube, catalog, members, 0, 42, 42, days);
  ASSERT_EQ(out.members.size(), 8u);
  ASSERT_FALSE(out.list.empty());
  EXPECT_EQ(out.members[out.list[0].user_idx], 103u);
}

TEST(DetectorTest, CalibrationTogglesChangeScoresNotValidity) {
  MeasurementCube cube = MakeToyCube(6, 50);
  FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "x", 1.0}});
  std::vector<UserId> members;
  for (int u = 0; u < 6; ++u) members.push_back(100 + u);

  DetectorSpec spec;
  spec.deviation.omega = 10;
  spec.deviation.matrix_days = 7;
  spec.ensemble.encoder_dims = {8, 4};
  spec.ensemble.train.epochs = 4;
  spec.critic_votes = 1;
  spec.per_user_calibration = false;
  const DetectionOutput raw =
      Detector(spec).Run(cube, catalog, members, 0, 40, 40, 50);
  spec.per_user_calibration = true;
  const DetectionOutput calibrated =
      Detector(spec).Run(cube, catalog, members, 0, 40, 40, 50);
  ASSERT_EQ(raw.members.size(), calibrated.members.size());
  // Calibrated scores are ratios (~1 for in-distribution data); raw
  // scores are small MSEs — they must differ.
  EXPECT_NE(raw.grid.At(0, 0, 45), calibrated.grid.At(0, 0, 45));
  for (const auto& entry : calibrated.list) {
    EXPECT_GE(entry.user_idx, 0);
    EXPECT_LT(entry.user_idx, 6);
  }
}

TEST(DetectorTest, UnknownMembersRejected) {
  MeasurementCube cube = MakeToyCube(2, 30);
  FeatureCatalog catalog({{"f0", "x", 1.0}, {"f1", "x", 1.0}});
  const Detector detector(DetectorSpec{});
  EXPECT_THROW(detector.Run(cube, catalog, {}, 0, 10, 10, 20),
               std::invalid_argument);
  EXPECT_THROW(detector.Run(cube, catalog, {999}, 0, 10, 10, 20),
               std::invalid_argument);
}

}  // namespace
}  // namespace acobe
