// Thread-pool / ParallelFor unit tests, plus the determinism guarantee
// the parallel runtime is built on: training and scoring an ensemble
// with N workers is bit-identical to the ACOBE_THREADS=1 serial run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "behavior/normalized_day.h"
#include "common/parallel.h"
#include "core/critic.h"
#include "core/ensemble.h"
#include "features/measurement_cube.h"

using namespace acobe;

namespace {

TEST(ParallelTest, ResolveThreadCountPrefersConfigured) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-2), 1);
}

TEST(ParallelTest, ResolveThreadCountHonorsEnv) {
  setenv("ACOBE_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(0), 5);
  EXPECT_EQ(ResolveThreadCount(2), 2);  // explicit config wins
  setenv("ACOBE_THREADS", "0", 1);      // non-positive values are ignored
  EXPECT_GE(ResolveThreadCount(0), 1);
  unsetenv("ACOBE_THREADS");
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter(0);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FutureCarriesException) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool waits for all queued work
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(0, 257, [&](int i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexOnceAtAnyThreadCount) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(3, 103, threads, [&](int i) { ++hits[i - 3]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(5, 5, 4, [](int) { FAIL() << "must not be called"; });
  ParallelFor(7, 2, 4, [](int) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, RethrowsIterationException) {
  EXPECT_THROW(
      ParallelFor(0, 64, 4,
                  [](int i) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

// --- Determinism of the parallel pipeline ---------------------------------

MeasurementCube SyntheticCube(int users, int days, int features, int frames) {
  MeasurementCube cube(Date(2010, 1, 2), days, features, frames);
  Rng rng(17);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(u);
    for (int f = 0; f < features; ++f) {
      for (int d = 0; d < days; ++d) {
        for (int t = 0; t < frames; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(3.0));
        }
      }
    }
  }
  return cube;
}

std::vector<AspectGroup> TwoAspects() {
  return {{"a0", {0, 1, 2}}, {"a1", {3, 4, 5}}};
}

ScoreGrid TrainAndScore(const SampleBuilder& builder, int users,
                        int threads) {
  EnsembleConfig cfg;
  cfg.encoder_dims = {16, 8};
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 1e-3f;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 16;
  cfg.threads = threads;
  AspectEnsemble ensemble(TwoAspects(), cfg);
  ensemble.Train(builder, users, 0, 30);
  return ensemble.Score(builder, users, 30, 50);
}

TEST(ParallelDeterminismTest, TrainScoreBitIdenticalToSerial) {
  const int users = 8;
  const MeasurementCube cube = SyntheticCube(users, 50, 6, 2);
  NormalizedDayBuilder builder(&cube, 0, 30);

  // Serial reference through the environment knob, as a user would pin it.
  setenv("ACOBE_THREADS", "1", 1);
  const ScoreGrid serial = TrainAndScore(builder, users, /*threads=*/0);
  unsetenv("ACOBE_THREADS");
  const ScoreGrid parallel = TrainAndScore(builder, users, /*threads=*/4);

  ASSERT_EQ(serial.aspects(), parallel.aspects());
  ASSERT_EQ(serial.users(), parallel.users());
  ASSERT_EQ(serial.day_begin(), parallel.day_begin());
  ASSERT_EQ(serial.day_end(), parallel.day_end());
  for (int a = 0; a < serial.aspects(); ++a) {
    for (int u = 0; u < serial.users(); ++u) {
      for (int d = serial.day_begin(); d < serial.day_end(); ++d) {
        // Bit-identical, not merely close.
        ASSERT_EQ(serial.At(a, u, d), parallel.At(a, u, d))
            << "aspect " << a << " user " << u << " day " << d;
      }
    }
  }

  // And the critic's investigation list (the user-facing artifact).
  const auto serial_list = RankUsers(serial, 2);
  const auto parallel_list = RankUsers(parallel, 2);
  ASSERT_EQ(serial_list.size(), parallel_list.size());
  for (std::size_t i = 0; i < serial_list.size(); ++i) {
    EXPECT_EQ(serial_list[i].user_idx, parallel_list[i].user_idx);
    EXPECT_EQ(serial_list[i].priority, parallel_list[i].priority);
  }
}

}  // namespace
