// Contract tests for the pluggable NN compute backend (src/nn/backend.h):
//   - registry contents, selection semantics, and fallback behavior for
//     unknown backends;
//   - the determinism anchor: the "default" backend must be bit-identical
//     to "reference" at 1/2/4/8 GEMM threads, across re-selection, for
//     every GEMM form — including shapes heavy enough to take the
//     panel-parallel path;
//   - the opt-in fma/avx512 families: within 1e-5 relative tolerance of
//     reference, and bit-identical run-to-run (internally deterministic);
//   - pack-arena accounting: PackBytesInUse grows with GemmTransB
//     staging, ReleaseThreadScratch returns it, oversized retained
//     capacity shrinks back on the next small request;
//   - TrainStream: serial (fused round-robin) and parallel job fan-out
//     both produce histories bit-identical to TrainReconstruction, and
//     a diverging job is captured per-job without poisoning the rest.
//
// These tests run under any ACOBE_NN_BACKEND (the CI matrix sets =fma):
// every case selects the backend it needs explicitly and restores the
// entry state afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "nn/autoencoder.h"
#include "nn/backend.h"
#include "nn/gemm.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "nn/tensor.h"
#include "nn/trainer.h"

namespace acobe::nn {
namespace {

std::uint32_t Bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

Tensor RandomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(Bits(got.data()[i]), Bits(want.data()[i]))
        << what << " elem " << i;
  }
}

void ExpectClose(const Tensor& got, const Tensor& want,
                 const std::string& what, double rel_tol) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = got.data()[i], w = want.data()[i];
    const double scale = std::max({std::abs(g), std::abs(w), 1.0});
    ASSERT_LE(std::abs(g - w), rel_tol * scale) << what << " elem " << i;
  }
}

/// Restores the active backend and thread count on scope exit, so tests
/// compose regardless of the ACOBE_NN_BACKEND the binary started under.
struct BackendGuard {
  std::string saved_backend = ActiveBackendName();
  int saved_threads = NnThreads();
  ~BackendGuard() {
    SelectBackend(saved_backend);
    SetNnThreads(saved_threads);
  }
};

// The shape set: small edge-heavy shapes plus one heavy shape
// (2*128*64*256 = 4 Mi flops, 16 j-panels) that crosses the
// panel-parallel floor, so multi-thread runs actually take the threaded
// path.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {{1, 1, 1},    {3, 5, 7},    {9, 17, 33},
                         {33, 31, 47}, {64, 48, 80}, {128, 64, 256}};

/// All three GEMM forms of the active backend vs nn::reference, bitwise.
void ExpectActiveMatchesReferenceBitwise(const std::string& label) {
  for (const Shape& s : kShapes) {
    Rng rng(s.m * 131071 + s.k * 8191 + s.n);
    const Tensor a = RandomTensor(s.m, s.k, rng);
    const Tensor b = RandomTensor(s.k, s.n, rng);
    const Tensor bias = RandomTensor(1, s.n, rng);
    Tensor c, cref;
    Gemm(a, b, c, bias.data());
    reference::Gemm(a, b, cref, bias.data());
    ExpectBitIdentical(c, cref, label + "/Gemm+bias");

    const Tensor at = RandomTensor(s.k, s.m, rng);
    GemmTransA(at, b, c);
    reference::GemmTransA(at, b, cref);
    ExpectBitIdentical(c, cref, label + "/GemmTransA");

    const Tensor bt = RandomTensor(s.n, s.k, rng);
    GemmTransB(a, bt, c);
    reference::GemmTransB(a, bt, cref);
    ExpectBitIdentical(c, cref, label + "/GemmTransB");
  }
}

// --- Registry and selection --------------------------------------------------

TEST(BackendRegistryTest, BuiltinsRegisteredAndClassified) {
  const std::vector<std::string> names = BackendNames();
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("default"));
  EXPECT_TRUE(has("reference"));

  const Backend* def = FindBackend("default");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->bit_exact());
  EXPECT_TRUE(def->available());
  EXPECT_NE(def->kernels().relu, nullptr);
  EXPECT_NE(def->kernels().sigmoid, nullptr);

  const Backend* ref = FindBackend("reference");
  ASSERT_NE(ref, nullptr);
  EXPECT_TRUE(ref->bit_exact());
  EXPECT_TRUE(ref->available());

  // The throughput families are never bit-exact: they fuse (and avx512
  // splits) the accumulator chain the contract pins down.
  for (const char* name : {"fma", "avx512"}) {
    if (const Backend* b = FindBackend(name)) {
      EXPECT_FALSE(b->bit_exact()) << name;
    }
  }
  EXPECT_EQ(FindBackend("bogus"), nullptr);
}

TEST(BackendRegistryTest, SelectionRoundTripsAndEmptyMeansDefault) {
  BackendGuard guard;
  EXPECT_EQ(SelectBackend("reference"), "reference");
  EXPECT_EQ(ActiveBackendName(), "reference");
  EXPECT_EQ(ActiveBackend().name(), "reference");
  EXPECT_EQ(SelectBackend(""), "default");
  EXPECT_EQ(ActiveBackendName(), "default");
}

TEST(BackendRegistryTest, UnknownBackendFallsBackToDefaultAndCounts) {
  BackendGuard guard;
  telemetry::EnableMetrics(true);
  telemetry::ResetTelemetry();
  EXPECT_EQ(SelectBackend("no-such-backend"), "default");
  EXPECT_EQ(ActiveBackendName(), "default");
  const std::uint64_t fallbacks =
      telemetry::GetCounter("nn.backend.fallbacks").value();
  telemetry::EnableMetrics(false);
  telemetry::ResetTelemetry();
  EXPECT_GE(fallbacks, 1u);
}

TEST(BackendThreadsTest, SetAndResolve) {
  BackendGuard guard;
  SetNnThreads(4);
  EXPECT_EQ(NnThreads(), 4);
  SetNnThreads(1);
  EXPECT_EQ(NnThreads(), 1);
}

// --- Determinism anchor: default == reference at every thread count ----------

TEST(BackendParityTest, DefaultMatchesReferenceAcrossThreadCounts) {
  BackendGuard guard;
  SelectBackend("default");
  for (int threads : {1, 2, 4, 8}) {
    SetNnThreads(threads);
    ExpectActiveMatchesReferenceBitwise("default@t" +
                                        std::to_string(threads));
  }
}

TEST(BackendParityTest, ReselectionPreservesBitExactness) {
  BackendGuard guard;
  // default -> reference -> default: both ends of each hop agree.
  SetNnThreads(2);
  SelectBackend("default");
  ExpectActiveMatchesReferenceBitwise("default/pre");
  SelectBackend("reference");
  ExpectActiveMatchesReferenceBitwise("reference");
  SelectBackend("default");
  ExpectActiveMatchesReferenceBitwise("default/post");
}

// --- Opt-in throughput families ---------------------------------------------

void RunToleranceFamily(const char* name) {
  const Backend* backend = FindBackend(name);
  if (backend == nullptr || !backend->available()) {
    GTEST_SKIP() << "backend '" << name
                 << "' not supported by this build/CPU";
  }
  BackendGuard guard;
  ASSERT_EQ(SelectBackend(name), name);
  for (int threads : {1, 4}) {
    SetNnThreads(threads);
    const std::string label =
        std::string(name) + "@t" + std::to_string(threads);
    for (const Shape& s : kShapes) {
      Rng rng(s.m * 977 + s.k * 53 + s.n * 7);
      const Tensor a = RandomTensor(s.m, s.k, rng);
      const Tensor b = RandomTensor(s.k, s.n, rng);
      const Tensor bias = RandomTensor(1, s.n, rng);
      Tensor c1, c2, cref;
      Gemm(a, b, c1, bias.data());
      reference::Gemm(a, b, cref, bias.data());
      ExpectClose(c1, cref, label + "/Gemm+bias", 1e-5);
      // Run-to-run determinism: same inputs, same bits, even threaded.
      Gemm(a, b, c2, bias.data());
      ExpectBitIdentical(c2, c1, label + "/Gemm rerun");

      const Tensor bt = RandomTensor(s.n, s.k, rng);
      GemmTransB(a, bt, c1);
      reference::GemmTransB(a, bt, cref);
      ExpectClose(c1, cref, label + "/GemmTransB", 1e-5);
      GemmTransB(a, bt, c2);
      ExpectBitIdentical(c2, c1, label + "/GemmTransB rerun");
    }
  }
}

TEST(BackendToleranceTest, FmaWithinToleranceAndRunToRunDeterministic) {
  RunToleranceFamily("fma");
}

TEST(BackendToleranceTest, Avx512WithinToleranceAndRunToRunDeterministic) {
  RunToleranceFamily("avx512");
}

// --- Pack-arena accounting ---------------------------------------------------

TEST(PackArenaTest, GemmTransBStagingIsAccountedAndReleasable) {
  BackendGuard guard;
  SelectBackend("default");
  SetNnThreads(1);
  ReleaseThreadScratch();
  const std::size_t base = PackBytesInUse();

  Rng rng(11);
  const std::size_t k = 96, n = 128;  // 48 KiB of B^T staging
  const Tensor a = RandomTensor(8, k, rng);
  const Tensor bt = RandomTensor(n, k, rng);
  Tensor c;
  GemmTransB(a, bt, c);
  EXPECT_GE(PackBytesInUse(), base + k * n * sizeof(float));

  ReleaseThreadScratch();
  EXPECT_EQ(PackBytesInUse(), base);
}

TEST(PackArenaTest, OversizedArenaShrinksOnSmallRequest) {
  BackendGuard guard;
  SelectBackend("default");
  SetNnThreads(1);
  ReleaseThreadScratch();
  const std::size_t base = PackBytesInUse();

  Rng rng(13);
  // Grow the arena past the shrink floor (> 1 MiB retained)...
  const std::size_t big_k = 600, big_n = 600;
  const Tensor a_big = RandomTensor(4, big_k, rng);
  const Tensor bt_big = RandomTensor(big_n, big_k, rng);
  Tensor c;
  GemmTransB(a_big, bt_big, c);
  EXPECT_GE(PackBytesInUse(), base + big_k * big_n * sizeof(float));

  // ...then a tiny request must shed the retained capacity rather than
  // pinning ~1.4 MiB for the rest of the thread's life.
  const Tensor a_small = RandomTensor(2, 8, rng);
  const Tensor bt_small = RandomTensor(8, 8, rng);
  GemmTransB(a_small, bt_small, c);
  EXPECT_LT(PackBytesInUse(), base + (1u << 20));

  ReleaseThreadScratch();
  EXPECT_EQ(PackBytesInUse(), base);
}

// --- TrainStream -------------------------------------------------------------

Tensor TrainingData(std::uint64_t seed) {
  Rng rng(seed);
  Tensor data(40, 12);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = 0.5f + 0.25f * static_cast<float>(rng.NextGaussian());
  }
  return data;
}

Sequential MakeNet(std::uint64_t init_seed) {
  AutoencoderSpec spec;
  spec.input_dim = 12;
  spec.encoder_dims = {16, 8};
  spec.batch_norm = true;
  spec.sigmoid_output = true;
  Sequential net = BuildAutoencoder(spec);
  Rng init_rng(init_seed);
  net.InitParams(init_rng);
  return net;
}

TrainConfig StreamConfig(std::uint64_t seed) {
  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 16;
  cfg.seed = seed;
  return cfg;
}

void RunStreamParityAt(int threads) {
  BackendGuard guard;
  SelectBackend("default");
  SetNnThreads(1);
  const int kJobs = 3;

  // Baseline: each model trained alone through the original API.
  std::vector<std::vector<EpochStats>> solo(kJobs);
  std::vector<std::vector<float>> solo_params(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    Sequential net = MakeNet(100 + j);
    Adadelta opt(1.0f);
    const Tensor data = TrainingData(200 + j);
    solo[j] = TrainReconstruction(net, opt, data, StreamConfig(300 + j));
    for (const Param* p : net.Params()) {
      solo_params[j].insert(solo_params[j].end(), p->value.data(),
                            p->value.data() + p->value.size());
    }
  }

  // The same three models as one stream.
  std::vector<Sequential> nets;
  std::vector<Adadelta> opts;
  std::vector<Tensor> datas;
  nets.reserve(kJobs);
  opts.reserve(kJobs);
  datas.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    nets.push_back(MakeNet(100 + j));
    opts.emplace_back(1.0f);
    datas.push_back(TrainingData(200 + j));
  }
  std::vector<TrainJob> jobs(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    jobs[j].net = &nets[j];
    jobs[j].optimizer = &opts[j];
    jobs[j].data = &datas[j];
    jobs[j].config = StreamConfig(300 + j);
  }
  TrainStream(jobs, threads);

  for (int j = 0; j < kJobs; ++j) {
    EXPECT_FALSE(jobs[j].diverged) << "job " << j;
    ASSERT_EQ(jobs[j].history.size(), solo[j].size()) << "job " << j;
    for (std::size_t e = 0; e < solo[j].size(); ++e) {
      EXPECT_EQ(Bits(jobs[j].history[e].loss), Bits(solo[j][e].loss))
          << "threads=" << threads << " job " << j << " epoch " << e;
    }
    std::vector<float> params;
    for (const Param* p : nets[j].Params()) {
      params.insert(params.end(), p->value.data(),
                    p->value.data() + p->value.size());
    }
    ASSERT_EQ(params.size(), solo_params[j].size()) << "job " << j;
    for (std::size_t i = 0; i < params.size(); ++i) {
      ASSERT_EQ(Bits(params[i]), Bits(solo_params[j][i]))
          << "threads=" << threads << " job " << j << " param " << i;
    }
  }
}

TEST(TrainStreamTest, SerialRoundRobinMatchesSoloTrainingBitwise) {
  RunStreamParityAt(1);
}

TEST(TrainStreamTest, ParallelFanOutMatchesSoloTrainingBitwise) {
  RunStreamParityAt(4);
}

TEST(TrainStreamTest, DivergedJobIsCapturedWithoutPoisoningTheStream) {
  BackendGuard guard;
  SelectBackend("default");
  SetNnThreads(1);

  Sequential good_net = MakeNet(100);
  Sequential bad_net = MakeNet(101);
  Adadelta good_opt(1.0f), bad_opt(1.0f);
  const Tensor good_data = TrainingData(200);
  Tensor bad_data = TrainingData(201);
  bad_data.data()[0] = std::nanf("");  // poisons the first epoch's loss

  std::vector<TrainJob> jobs(2);
  jobs[0].net = &bad_net;
  jobs[0].optimizer = &bad_opt;
  jobs[0].data = &bad_data;
  jobs[0].config = StreamConfig(300);
  jobs[1].net = &good_net;
  jobs[1].optimizer = &good_opt;
  jobs[1].data = &good_data;
  jobs[1].config = StreamConfig(301);
  TrainStream(jobs, 1);

  EXPECT_TRUE(jobs[0].diverged);
  EXPECT_FALSE(jobs[0].error.empty());
  EXPECT_FALSE(jobs[1].diverged);
  ASSERT_EQ(jobs[1].history.size(), 5u);
  for (const EpochStats& s : jobs[1].history) {
    EXPECT_TRUE(std::isfinite(s.loss));
  }
}

// --- Activations route through the backend -----------------------------------

TEST(BackendActivationTest, ActivationKernelsAgreeAcrossBackends) {
  BackendGuard guard;
  Rng rng(7);
  Tensor x = RandomTensor(4, 33, rng);
  Tensor relu_ref(x.rows(), x.cols()), sig_ref(x.rows(), x.cols());
  {
    const Backend* ref = FindBackend("reference");
    ASSERT_NE(ref, nullptr);
    ref->kernels().relu(x.data(), relu_ref.data(), x.size());
    ref->kernels().sigmoid(x.data(), sig_ref.data(), x.size());
  }
  for (const std::string& name : BackendNames()) {
    const Backend* b = FindBackend(name);
    ASSERT_NE(b, nullptr) << name;
    Tensor relu_got(x.rows(), x.cols()), sig_got(x.rows(), x.cols());
    b->kernels().relu(x.data(), relu_got.data(), x.size());
    b->kernels().sigmoid(x.data(), sig_got.data(), x.size());
    ExpectBitIdentical(relu_got, relu_ref, name + "/relu");
    ExpectBitIdentical(sig_got, sig_ref, name + "/sigmoid");
  }
}

}  // namespace
}  // namespace acobe::nn
