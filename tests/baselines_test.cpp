// Unit tests for src/baselines: variant specifications and experiment
// plumbing (dataset build, windows, ranked-user conversion).

#include <gtest/gtest.h>

#include "baselines/experiment.h"
#include "baselines/variants.h"

namespace acobe::baselines {
namespace {

TEST(VariantsTest, NamesAreStable) {
  EXPECT_STREQ(ToString(VariantKind::kAcobe), "ACOBE");
  EXPECT_STREQ(ToString(VariantKind::kNoGroup), "No-Group");
  EXPECT_STREQ(ToString(VariantKind::kOneDay), "1-Day");
  EXPECT_STREQ(ToString(VariantKind::kAllInOne), "All-in-1");
  EXPECT_STREQ(ToString(VariantKind::kBaseline), "Baseline");
  EXPECT_STREQ(ToString(VariantKind::kBaseFF), "Base-FF");
}

TEST(VariantsTest, CubeAssignments) {
  EXPECT_EQ(VariantCube(VariantKind::kAcobe), CubeKind::kFine);
  EXPECT_EQ(VariantCube(VariantKind::kNoGroup), CubeKind::kFine);
  EXPECT_EQ(VariantCube(VariantKind::kOneDay), CubeKind::kFine);
  EXPECT_EQ(VariantCube(VariantKind::kAllInOne), CubeKind::kFine);
  EXPECT_EQ(VariantCube(VariantKind::kBaseline), CubeKind::kCoarse);
  EXPECT_EQ(VariantCube(VariantKind::kBaseFF), CubeKind::kFineHourly);
}

TEST(VariantsTest, SpecsEncodePaperDifferences) {
  const ScaleProfile scale = ScaleProfile::Bench();
  const auto acobe = MakeVariantSpec(VariantKind::kAcobe, scale);
  EXPECT_EQ(acobe.representation, Representation::kCompound);
  EXPECT_TRUE(acobe.deviation.include_group);
  EXPECT_TRUE(acobe.deviation.apply_weights);
  EXPECT_TRUE(acobe.split_aspects);
  // Reduced scale votes 2-of-3; paper scale restores the unanimous N=3.
  EXPECT_EQ(acobe.critic_votes, 2);
  EXPECT_EQ(MakeVariantSpec(VariantKind::kAcobe, ScaleProfile::Paper())
                .critic_votes,
            3);

  const auto no_group = MakeVariantSpec(VariantKind::kNoGroup, scale);
  EXPECT_FALSE(no_group.deviation.include_group);
  EXPECT_EQ(no_group.representation, Representation::kCompound);

  const auto one_day = MakeVariantSpec(VariantKind::kOneDay, scale);
  EXPECT_EQ(one_day.representation, Representation::kNormalizedDay);

  const auto all_in_one = MakeVariantSpec(VariantKind::kAllInOne, scale);
  EXPECT_FALSE(all_in_one.split_aspects);

  const auto baseline = MakeVariantSpec(VariantKind::kBaseline, scale);
  EXPECT_EQ(baseline.representation, Representation::kNormalizedDay);
}

TEST(VariantsTest, PaperScaleUsesPaperArchitecture) {
  const ScaleProfile paper = ScaleProfile::Paper();
  EXPECT_EQ(paper.encoder_dims,
            (std::vector<std::size_t>{512, 256, 128, 64}));
  EXPECT_EQ(paper.omega, 30);
  EXPECT_EQ(paper.matrix_days, 30);
  EXPECT_EQ(paper.train_stride, 1);
}

// --- Experiment plumbing ---------------------------------------------------------

CertExperimentConfig TinyExperiment() {
  CertExperimentConfig cfg;
  cfg.sim.org.departments = 2;
  cfg.sim.org.users_per_department = 8;
  cfg.sim.org.extra_users = 0;
  cfg.sim.start = Date(2010, 1, 2);
  cfg.sim.end = Date(2010, 4, 30);
  cfg.sim.profiles.rate_scale = 0.25;
  cfg.sim.seed = 3;
  cfg.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario1, 0, Date(2010, 3, 20), 14});
  cfg.train_gap_days = 20;
  cfg.test_tail_days = 10;
  return cfg;
}

TEST(ExperimentTest, BuildCertDataProducesAllCubes) {
  const CertData data = BuildCertData(TinyExperiment());
  EXPECT_EQ(data.days, 119);
  EXPECT_EQ(data.department_users.size(), 2u);
  EXPECT_EQ(data.department_users[0].size(), 8u);
  ASSERT_EQ(data.scenarios.size(), 1u);
  EXPECT_TRUE(data.truth.IsAbnormalUser(data.scenarios[0].user));

  EXPECT_EQ(data.fine->cube().users(), 16);
  EXPECT_EQ(data.fine->cube().frames(), 2);
  EXPECT_EQ(data.fine_hourly->cube().frames(), 24);
  EXPECT_EQ(data.coarse->cube().frames(), 24);
  EXPECT_EQ(&data.CubeFor(CubeKind::kFine), &data.fine->cube());
  EXPECT_EQ(&data.CubeFor(CubeKind::kCoarse), &data.coarse->cube());
  EXPECT_EQ(data.CatalogFor(CubeKind::kFineHourly).feature_count(), 16);
}

TEST(ExperimentTest, WindowsRespectGapAndTail) {
  const CertData data = BuildCertData(TinyExperiment());
  const auto w = data.WindowsFor(data.scenarios[0], 20, 10);
  const int anomaly_begin = static_cast<int>(
      DaysBetween(data.start, data.scenarios[0].anomaly_start));
  EXPECT_EQ(w.train_begin, 0);
  EXPECT_EQ(w.train_end, anomaly_begin - 20);
  EXPECT_EQ(w.test_begin, w.train_end);
  const int anomaly_end = static_cast<int>(
      DaysBetween(data.start, data.scenarios[0].anomaly_end));
  EXPECT_EQ(w.test_end, std::min(data.days, anomaly_end + 11));
}

TEST(ExperimentTest, MakeRankedUsersAppliesTruthAndOrder) {
  DetectionOutput output;
  output.members = {10, 20, 30};
  output.list = {{2, 1.0}, {0, 2.0}, {1, 2.0}};
  sim::GroundTruth truth;
  truth.AddAbnormalUser(10, Date(2010, 3, 1), Date(2010, 3, 10));
  const auto ranked = MakeRankedUsers(output, truth);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].user, 30u);
  // Priority tie between users 10 (TP) and 20 (FP): FP listed first.
  EXPECT_EQ(ranked[1].user, 20u);
  EXPECT_EQ(ranked[2].user, 10u);
  EXPECT_TRUE(ranked[2].positive);
}

TEST(ExperimentTest, EnterpriseDataBuilds) {
  EnterpriseExperimentConfig cfg;
  cfg.sim.employees = 12;
  cfg.sim.start = Date(2020, 12, 1);
  cfg.sim.end = Date(2021, 2, 15);
  cfg.sim.rate_scale = 0.25;
  cfg.attacks = {{sim::AttackKind::kZeusBot, Date(2021, 2, 2)}};
  cfg.victim_index = 2;
  const EnterpriseData data = BuildEnterpriseData(cfg);
  EXPECT_EQ(data.employees.size(), 12u);
  ASSERT_EQ(data.attacks.size(), 1u);
  EXPECT_TRUE(data.truth.IsAbnormalUser(data.attacks[0].victim));
  EXPECT_EQ(data.extractor->cube().users(), 12);
  EXPECT_EQ(data.extractor->catalog().feature_count(), 27);
}

}  // namespace
}  // namespace acobe::baselines
