// Embedded HTTP server + client tests: the protocol surface the
// observability endpoints rely on (status codes, keep-alive,
// pipelining, oversized-request rejection), robustness against torn
// and concurrent clients, the clean-shutdown contract, and the
// --listen / --url spec parsers.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "net/http_server.h"

using namespace acobe;

namespace {

/// Blocking raw TCP client for wire-level tests the high-level client
/// cannot express (non-GET methods, torn requests, pipelining).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      throw std::runtime_error("connect() failed");
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    const char* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send() failed";
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  /// Reads until EOF (server closed) and returns everything.
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Reads until `marker` is seen (for keep-alive connections where
  /// EOF never comes) or 5s pass.
  std::string ReadUntil(const std::string& marker) {
    std::string out;
    char buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (out.find(marker) == std::string::npos &&
           std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        out.append(buf, static_cast<std::size_t>(n));
      } else if (n == 0) {
        break;  // closed
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    return out;
  }

 private:
  int fd_ = -1;
};

int CountOccurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// A server with a small known handler set on an ephemeral port.
class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.Handle("/hello", [](const net::HttpRequest&) {
      net::HttpResponse res;
      res.body = "hi\n";
      return res;
    });
    server_.Handle("/echo", [](const net::HttpRequest& req) {
      net::HttpResponse res;
      res.content_type = "application/json";
      res.body = "n=" + req.QueryParam("n", "<unset>") +
                 " agent=" + req.Header("user-agent");
      return res;
    });
    server_.Handle("/boom", [](const net::HttpRequest&) -> net::HttpResponse {
      throw std::runtime_error("handler exploded");
    });
    server_.Handle("/slow", [this](const net::HttpRequest&) {
      ++slow_entered_;
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      net::HttpResponse res;
      res.body = "eventually\n";
      return res;
    });
    net::HttpServerConfig cfg;
    cfg.port = 0;  // kernel-assigned
    server_.Start(cfg);
    ASSERT_TRUE(server_.running());
    ASSERT_GT(server_.port(), 0);
  }

  net::HttpServer server_;
  std::atomic<int> slow_entered_{0};
};

TEST_F(HttpServerTest, GetRoundtripThroughClient) {
  const net::HttpResult res =
      net::HttpGet("127.0.0.1", server_.port(), "/hello");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "hi\n");
  EXPECT_EQ(res.content_type, "text/plain; charset=utf-8");
  EXPECT_GE(server_.requests_served(), 1u);
}

TEST_F(HttpServerTest, QueryParamsAndHeadersReachTheHandler) {
  const net::HttpResult res =
      net::HttpGet("127.0.0.1", server_.port(), "/echo?n=12&m=4");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  // The client sends a user-agent; the handler sees lowercased names.
  EXPECT_EQ(res.body.find("n=12 agent="), 0u) << res.body;
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  const net::HttpResult res =
      net::HttpGet("127.0.0.1", server_.port(), "/nope");
  EXPECT_EQ(res.status, 404);
}

TEST_F(HttpServerTest, NonGetIs405WithAllowHeader) {
  RawClient c(server_.port());
  c.Send(
      "POST /hello HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n"
      "Connection: close\r\n\r\n");
  const std::string res = c.ReadAll();
  EXPECT_NE(res.find("HTTP/1.1 405 "), std::string::npos) << res;
  EXPECT_NE(res.find("Allow: GET"), std::string::npos) << res;
}

TEST_F(HttpServerTest, OversizedRequestLineIs431) {
  RawClient c(server_.port());
  c.Send("GET /" + std::string(8192, 'a') + " HTTP/1.1\r\n\r\n");
  const std::string res = c.ReadAll();
  EXPECT_NE(res.find("HTTP/1.1 431 "), std::string::npos) << res;
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  RawClient c(server_.port());
  c.Send("BANANAS\r\n\r\n");
  const std::string res = c.ReadAll();
  EXPECT_NE(res.find("HTTP/1.1 400 "), std::string::npos) << res;
}

TEST_F(HttpServerTest, ThrowingHandlerIs500) {
  const net::HttpResult res =
      net::HttpGet("127.0.0.1", server_.port(), "/boom");
  EXPECT_EQ(res.status, 500);
  EXPECT_NE(res.body.find("handler exploded"), std::string::npos);
}

TEST_F(HttpServerTest, TornRequestCompletesWhenTheRestArrives) {
  RawClient c(server_.port());
  // A request torn across three sends with pauses: the server must
  // keep reading, not 400 on the first fragment.
  c.Send("GET /hel");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.Send("lo HTTP/1.1\r\nHost: ");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.Send("x\r\nConnection: close\r\n\r\n");
  const std::string res = c.ReadAll();
  EXPECT_NE(res.find("HTTP/1.1 200 "), std::string::npos) << res;
  EXPECT_NE(res.find("hi\n"), std::string::npos) << res;
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  RawClient c(server_.port());
  c.Send(
      "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /echo?n=2 HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /hello HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string res = c.ReadAll();
  EXPECT_EQ(CountOccurrences(res, "HTTP/1.1 200 "), 3) << res;
  // In-order: the /echo body sits between the two /hello bodies.
  const std::size_t first = res.find("hi\n");
  const std::size_t echo = res.find("n=2");
  const std::size_t last = res.rfind("hi\n");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(echo, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, echo);
  EXPECT_LT(echo, last);
}

TEST_F(HttpServerTest, KeepAliveServesSequentialRequests) {
  RawClient c(server_.port());
  c.Send("GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string first = c.ReadUntil("hi\n");
  EXPECT_NE(first.find("HTTP/1.1 200 "), std::string::npos);
  // Same connection, second request after the first completed.
  c.Send("GET /echo?n=7 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string second = c.ReadAll();
  EXPECT_NE(second.find("n=7"), std::string::npos) << second;
}

TEST_F(HttpServerTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &ok] {
      const std::string path = i % 2 == 0 ? "/hello" : "/slow";
      try {
        const net::HttpResult res =
            net::HttpGet("127.0.0.1", server_.port(), path);
        if (res.status == 200) ++ok;
      } catch (const std::exception&) {
        // counted as failure below
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GT(slow_entered_.load(), 0);
}

TEST_F(HttpServerTest, StopUnblocksAHalfSentRequest) {
  // A client that sends half a request and then stalls would pin a
  // handler thread forever without the shutdown() wakeup.
  RawClient c(server_.port());
  c.Send("GET /hello HTTP/1.1\r\nHost: ");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  server_.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(server_.running());
  EXPECT_LT(elapsed, std::chrono::seconds(3));
  server_.Stop();  // idempotent
}

TEST_F(HttpServerTest, HandleAfterStartThrows) {
  EXPECT_THROW(
      server_.Handle("/late", [](const net::HttpRequest&) {
        return net::HttpResponse{};
      }),
      std::logic_error);
}

TEST(HttpServerLifecycle, PortReusedAcrossRestart) {
  net::HttpServer a;
  a.Handle("/x", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  net::HttpServerConfig cfg;
  a.Start(cfg);
  const std::uint16_t port = a.port();
  EXPECT_FALSE(a.bound_address().empty());
  a.Stop();
  // The listener really closed: a second server can take the port.
  net::HttpServer b;
  b.Handle("/x", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  cfg.port = port;
  ASSERT_NO_THROW(b.Start(cfg));
  EXPECT_EQ(b.port(), port);
}

TEST(HttpClient, ConnectFailureThrows) {
  // Port 1 on loopback: nothing listens there in the test container.
  EXPECT_THROW(net::HttpGet("127.0.0.1", 1, "/"), std::runtime_error);
}

TEST(ParseListenSpec, AcceptsTheThreeShapes) {
  std::string addr;
  std::uint16_t port = 0;
  net::ParseListenSpec("0.0.0.0:9090", &addr, &port);
  EXPECT_EQ(addr, "0.0.0.0");
  EXPECT_EQ(port, 9090);
  net::ParseListenSpec(":8080", &addr, &port);
  EXPECT_EQ(addr, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  net::ParseListenSpec("7070", &addr, &port);
  EXPECT_EQ(addr, "127.0.0.1");
  EXPECT_EQ(port, 7070);
  net::ParseListenSpec("127.0.0.1:0", &addr, &port);
  EXPECT_EQ(port, 0);  // ephemeral is legal
}

TEST(ParseListenSpec, RejectsGarbage) {
  std::string addr;
  std::uint16_t port = 0;
  for (const char* bad :
       {"", ":", "abc", "1.2.3.4:", "1.2.3.4:x", "1.2.3.4:70000",
        "1.2.3.4:-1", "9 9"}) {
    EXPECT_THROW(net::ParseListenSpec(bad, &addr, &port),
                 std::invalid_argument)
        << "accepted: " << bad;
  }
}

TEST(ParseHttpUrl, AcceptsHostPortPath) {
  net::ParsedUrl u = net::ParseHttpUrl("http://example.com:8080/statusz");
  EXPECT_EQ(u.host, "example.com");
  EXPECT_EQ(u.port, 8080);
  EXPECT_EQ(u.path, "/statusz");
  u = net::ParseHttpUrl("http://10.0.0.1");
  EXPECT_EQ(u.host, "10.0.0.1");
  EXPECT_EQ(u.port, 80);
  EXPECT_EQ(u.path, "/");
}

TEST(ParseHttpUrl, RejectsNonHttp) {
  for (const char* bad :
       {"", "https://x", "ftp://x", "example.com", "http://",
        "http://h:notaport"}) {
    EXPECT_THROW(net::ParseHttpUrl(bad), std::invalid_argument)
        << "accepted: " << bad;
  }
}

TEST(StatusReason, KnownAndUnknown) {
  EXPECT_STREQ(net::StatusReason(200), "OK");
  EXPECT_STREQ(net::StatusReason(404), "Not Found");
  EXPECT_STREQ(net::StatusReason(405), "Method Not Allowed");
  EXPECT_STREQ(net::StatusReason(431), "Request Header Fields Too Large");
  EXPECT_STREQ(net::StatusReason(503), "Service Unavailable");
  EXPECT_STREQ(net::StatusReason(299), "Unknown");
}

}  // namespace
