// Health-plane unit tests: the stage/progress API, the span
// self-profile, the Prometheus writer, the heartbeat sampler's file
// format, and the two contracts the plane must never break — detection
// results bit-identical with the monitor on or off, and a crash dump
// that parses and names the active spans.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "behavior/normalized_day.h"
#include "common/health.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/critic.h"
#include "core/ensemble.h"
#include "features/measurement_cube.h"

using namespace acobe;

namespace {

std::string TempPath(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem + "." +
         std::to_string(static_cast<long>(::getpid()));
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every test starts and ends with a clean health plane and disabled
/// telemetry, like TelemetryTest.
class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    health::StopHealth();
    health::ResetStages();
    health::ResetSpanProfile();
    telemetry::ResetTelemetry();
    telemetry::EnableMetrics(false);
    telemetry::EnableTracing(false);
  }
  void TearDown() override {
    health::StopHealth();
    health::ResetStages();
    health::ResetSpanProfile();
    telemetry::EnableMetrics(false);
    telemetry::EnableTracing(false);
    telemetry::ResetTelemetry();
  }
};

// --- Stage / progress -------------------------------------------------

TEST_F(HealthTest, StageAdvanceBeforeAnyStageIsANoOp) {
  health::StageAdvance(5);  // must not crash, must not invent a stage
  const health::StageSnapshot snap = health::CurrentStage();
  EXPECT_STREQ(snap.name, "idle");
  EXPECT_EQ(snap.done, 0u);
  EXPECT_TRUE(health::StageTimes().empty());
}

TEST_F(HealthTest, StageProgressAndEta) {
  health::SetStage("ingest", 10);
  health::StageAdvance(4);
  health::SetStageDetail("logon.csv");
  const health::StageSnapshot snap = health::CurrentStage();
  EXPECT_STREQ(snap.name, "ingest");
  EXPECT_EQ(snap.detail, "logon.csv");
  EXPECT_EQ(snap.done, 4u);
  EXPECT_EQ(snap.total, 10u);
  EXPECT_GE(snap.elapsed_s, 0.0);
  // 4/10 done: an ETA exists and extrapolates the remaining 6 units.
  EXPECT_GE(snap.eta_s, 0.0);

  health::StageAdvance(6);
  EXPECT_DOUBLE_EQ(health::CurrentStage().eta_s, 0.0);  // complete
}

TEST_F(HealthTest, IndeterminateStageHasNoEta) {
  health::SetStage("spool");  // no total
  health::StageAdvance(3);
  const health::StageSnapshot snap = health::CurrentStage();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.eta_s, -1.0);
}

TEST_F(HealthTest, ReenteringAStageResumesItsProgressAndGrowsTotal) {
  // The streaming shard loop alternates replay/detect; each re-entry
  // must accumulate, not reset.
  health::SetStage("replay", 2);
  health::StageAdvance();
  health::SetStage("detect", 3);
  health::StageAdvance(3);
  health::SetStage("replay");  // back: progress 1/2 kept
  health::StageAdvance();
  const health::StageSnapshot snap = health::CurrentStage();
  EXPECT_STREQ(snap.name, "replay");
  EXPECT_EQ(snap.done, 2u);
  EXPECT_EQ(snap.total, 2u);

  health::SetStage("detect", 3);  // re-entry adds to the unit target
  const health::StageSnapshot detect = health::CurrentStage();
  EXPECT_EQ(detect.done, 3u);
  EXPECT_EQ(detect.total, 6u);

  // StageTimes keeps first-use order and every stage's cumulative wall.
  const std::vector<health::StageTime> times = health::StageTimes();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_STREQ(times[0].name, "replay");
  EXPECT_STREQ(times[1].name, "detect");
  for (const health::StageTime& t : times) EXPECT_GE(t.seconds, 0.0);
}

TEST_F(HealthTest, StageTimesJsonParses) {
  health::SetStage("ingest", 5);
  health::StageAdvance(5);
  health::SetStage("detect", 2);
  const json::Value doc = json::Value::Parse(health::StageTimesJson());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc[0].GetString("stage", ""), "ingest");
  EXPECT_DOUBLE_EQ(doc[0].GetNumber("done", -1), 5.0);
  EXPECT_DOUBLE_EQ(doc[0].GetNumber("total", -1), 5.0);
  EXPECT_EQ(doc[1].GetString("stage", ""), "detect");
  EXPECT_GE(doc[0].GetNumber("seconds", -1), 0.0);
}

// --- Span self-profile ------------------------------------------------

TEST_F(HealthTest, SpanProfileRecordsParentChildEdges) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  for (int i = 0; i < 3; ++i) {
    telemetry::TraceSpan outer("test.profile_outer");
    {
      telemetry::TraceSpan inner("test.profile_inner");
    }
    {
      telemetry::TraceSpan inner("test.profile_inner");
    }
  }
  const std::vector<health::SpanEdge> profile = health::SpanProfile();
  const health::SpanEdge* outer = nullptr;
  const health::SpanEdge* inner = nullptr;
  for (const health::SpanEdge& e : profile) {
    if (e.name == "test.profile_outer") outer = &e;
    if (e.name == "test.profile_inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, "");  // root span
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->parent, "test.profile_outer");
  EXPECT_EQ(inner->count, 6u);
  // The outer span's self time excludes its children; the leaf keeps
  // everything.
  EXPECT_LE(outer->self_ms, outer->total_ms);
  EXPECT_DOUBLE_EQ(inner->self_ms, inner->total_ms);
  // Profile is sorted by total wall descending.
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GE(profile[i - 1].total_ms, profile[i].total_ms);
  }

  health::ResetSpanProfile();
  EXPECT_TRUE(health::SpanProfile().empty());
}

TEST_F(HealthTest, SpanProfileSurvivesParallelWorkers) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  // Fresh worker threads claim and release span-stack slots; edges from
  // every thread merge into one profile.
  for (int round = 0; round < 3; ++round) {
    ParallelFor(0, 16, 4, [](int) {
      telemetry::TraceSpan span("test.profile_worker");
    });
  }
  const std::vector<health::SpanEdge> profile = health::SpanProfile();
  std::uint64_t count = 0;
  for (const health::SpanEdge& e : profile) {
    if (e.name == "test.profile_worker") count += e.count;
  }
  EXPECT_EQ(count, 48u);
}

// --- Prometheus text writer -------------------------------------------

TEST_F(HealthTest, PrometheusExpositionShape) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  ACOBE_COUNT("test.prom-counter", 7);
  ACOBE_GAUGE_SET("test.prom_gauge", 2.5);
  ACOBE_HISTOGRAM("test.prom_hist", 1.0);
  ACOBE_HISTOGRAM("test.prom_hist", 3.0);
  std::ostringstream out;
  telemetry::WriteMetricsProm(out);
  const std::string text = out.str();
  // Names are prefixed and sanitized ('.', '-' -> '_').
  EXPECT_NE(text.find("# TYPE acobe_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("acobe_test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE acobe_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("acobe_test_prom_gauge 2.5"), std::string::npos);
  // Histograms land as summaries with quantile labels + sum/count.
  EXPECT_NE(text.find("# TYPE acobe_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("acobe_test_prom_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("acobe_test_prom_hist_sum 4"), std::string::npos);
  EXPECT_NE(text.find("acobe_test_prom_hist_count 2"), std::string::npos);
  // The original dotted name survives in the HELP line.
  EXPECT_NE(text.find("test.prom_gauge"), std::string::npos);
}

TEST_F(HealthTest, PrometheusEscapesHelpAndDedupesCollidingNames) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  // Both sanitize to acobe_test_collide_x: the second must not emit a
  // duplicate family (scrapers reject those) but a suffixed one.
  ACOBE_COUNT("test.collide-x", 1);
  ACOBE_COUNT("test.collide.x", 2);
  // A backslash in the source name must be escaped in the HELP text
  // (it is only legal there as \\ or \n).
  ACOBE_GAUGE_SET("test.weird\\name", 1.0);
  std::ostringstream out;
  telemetry::WriteMetricsProm(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE acobe_test_collide_x counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE acobe_test_collide_x_2 counter"),
            std::string::npos);
  EXPECT_NE(text.find("acobe_test_collide_x_2 "), std::string::npos);
  EXPECT_NE(text.find("\\\\"), std::string::npos)
      << "backslash in HELP not escaped";
  // No bare duplicate sample of the base name.
  const std::size_t first = text.find("\nacobe_test_collide_x 1");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("\nacobe_test_collide_x 2"), std::string::npos);
}

TEST_F(HealthTest, SnapshotCountersAndGaugesIsSortedAndCurrent) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  ACOBE_COUNT("test.snap_b", 2);
  ACOBE_COUNT("test.snap_a", 1);
  ACOBE_GAUGE_SET("test.snap_g", 9.0);
  const telemetry::MetricsSnapshot snap =
      telemetry::SnapshotCountersAndGauges();
  std::uint64_t a = 0, b = 0;
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snap_a") a = value;
    if (name == "test.snap_b") b = value;
  }
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  bool gauge_seen = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.snap_g") {
      gauge_seen = true;
      EXPECT_DOUBLE_EQ(value, 9.0);
    }
  }
  EXPECT_TRUE(gauge_seen);
}

// --- Heartbeat sampler ------------------------------------------------

TEST_F(HealthTest, HeartbeatFileIsValidSequencedJsonl) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  const std::string path = TempPath("acobe-health-test");
  health::HealthOptions opts;
  opts.path = path;
  opts.interval_ms = 20;
  opts.tool = "health-test";
  opts.crash_recorder = false;  // don't hook gtest's signal handling
  ASSERT_TRUE(health::StartHealth(opts));
  EXPECT_TRUE(health::HealthRunning());
  // A second monitor must be refused.
  EXPECT_FALSE(health::StartHealth(opts));

  health::SetStage("work", 4);
  for (int i = 0; i < 4; ++i) {
    ACOBE_COUNT("test.heartbeat_counter", 10);
    health::StageAdvance();
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  health::SetStage("done");
  health::StopHealth();
  EXPECT_FALSE(health::HealthRunning());
  health::StopHealth();  // idempotent

  const std::string text = ReadFileText(path);
  std::remove(path.c_str());
  const std::vector<json::Value> beats = json::ParseLines(text);
  ASSERT_GE(beats.size(), 3u);  // startup + >=1 periodic + final
  for (std::size_t i = 0; i < beats.size(); ++i) {
    const json::Value& b = beats[i];
    EXPECT_EQ(b.GetString("schema", ""), "acobe.health.v1");
    EXPECT_EQ(b.GetString("tool", ""), "health-test");
    EXPECT_DOUBLE_EQ(b.GetNumber("seq", 0),
                     static_cast<double>(i + 1));  // 1-based, no gaps
    if (i > 0) {
      EXPECT_GE(b.GetNumber("uptime_ms", 0),
                beats[i - 1].GetNumber("uptime_ms", 1e18));
    }
    EXPECT_GT(b.GetNumber("rss_bytes", 0), 0.0);
    EXPECT_GE(b.GetNumber("peak_rss_bytes", 0), b.GetNumber("rss_bytes", 0));
    EXPECT_EQ(b.GetBool("final", true), i + 1 == beats.size());
  }
  const json::Value& last = beats.back();
  ASSERT_NE(last.Get("stage"), nullptr);
  EXPECT_EQ(last.Get("stage")->GetString("name", ""), "done");
  // The worked stage appears in the final per-stage table, complete.
  bool worked = false;
  const json::Value* stages = last.Get("stages");
  ASSERT_NE(stages, nullptr);
  for (std::size_t i = 0; i < stages->size(); ++i) {
    if ((*stages)[i].GetString("stage", "") == "work") {
      worked = true;
      EXPECT_DOUBLE_EQ((*stages)[i].GetNumber("done", 0), 4.0);
      EXPECT_DOUBLE_EQ((*stages)[i].GetNumber("total", 0), 4.0);
    }
  }
  EXPECT_TRUE(worked);
  // Counters carry totals and per-second rates.
  const json::Value* counters = last.Get("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* counted = counters->Get("test.heartbeat_counter");
  ASSERT_NE(counted, nullptr);
  EXPECT_DOUBLE_EQ(counted->GetNumber("total", 0), 40.0);
  EXPECT_GE(counted->GetNumber("rate", -1), 0.0);
}

// --- The observational contract ---------------------------------------

MeasurementCube SyntheticCube(int users, int days, int features, int frames) {
  MeasurementCube cube(Date(2010, 1, 2), days, features, frames);
  Rng rng(17);
  for (int u = 0; u < users; ++u) {
    cube.RegisterUser(u);
    for (int f = 0; f < features; ++f) {
      for (int d = 0; d < days; ++d) {
        for (int t = 0; t < frames; ++t) {
          cube.At(u, f, d, t) = static_cast<float>(rng.NextPoisson(3.0));
        }
      }
    }
  }
  return cube;
}

ScoreGrid TrainAndScore(const SampleBuilder& builder, int users) {
  EnsembleConfig cfg;
  cfg.encoder_dims = {16, 8};
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 1e-3f;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 16;
  cfg.threads = 4;
  AspectEnsemble ensemble({{"a0", {0, 1, 2}}, {"a1", {3, 4, 5}}}, cfg);
  ensemble.Train(builder, users, 0, 30);
  return ensemble.Score(builder, users, 30, 50);
}

TEST_F(HealthTest, ResultsBitIdenticalWithHealthMonitorRunning) {
  telemetry::EnableMetrics(true);
  if (!telemetry::MetricsEnabled()) GTEST_SKIP() << "telemetry compiled out";
  const int users = 8;
  const MeasurementCube cube = SyntheticCube(users, 50, 6, 2);
  NormalizedDayBuilder builder(&cube, 0, 30);

  const ScoreGrid off = TrainAndScore(builder, users);

  const std::string path = TempPath("acobe-health-identity");
  health::HealthOptions opts;
  opts.path = path;
  opts.interval_ms = 10;  // hammer the sampler while training runs
  opts.tool = "health-test";
  opts.crash_recorder = false;
  health::SetStage("detect", 3);
  ASSERT_TRUE(health::StartHealth(opts));
  const ScoreGrid on = TrainAndScore(builder, users);
  health::StopHealth();
  std::remove(path.c_str());

  ASSERT_EQ(off.aspects(), on.aspects());
  ASSERT_EQ(off.users(), on.users());
  for (int s = 0; s < off.aspects(); ++s) {
    for (int u = 0; u < off.users(); ++u) {
      for (int d = off.day_begin(); d < off.day_end(); ++d) {
        ASSERT_EQ(off.At(s, u, d), on.At(s, u, d))
            << "aspect " << s << " user " << u << " day " << d;
      }
    }
  }
  const auto list_off = RankUsers(off, 2);
  const auto list_on = RankUsers(on, 2);
  ASSERT_EQ(list_off.size(), list_on.size());
  for (std::size_t i = 0; i < list_off.size(); ++i) {
    EXPECT_EQ(list_off[i].user_idx, list_on[i].user_idx);
    EXPECT_EQ(list_off[i].priority, list_on[i].priority);
  }
}

// --- Crash flight recorder --------------------------------------------

TEST_F(HealthTest, CrashDumpNamesTheActiveSpanStack) {
  const std::string path = TempPath("acobe-health-crash") + ".crash.json";
  std::remove(path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: a thread mid-pipeline with two open spans, then a segfault.
    // Only signal-safe-ish calls from here on.
    health::SpanStackPush("test.crash_outer");
    health::SpanStackPush("test.crash_inner");
    health::InstallCrashRecorder(path);
    ::raise(SIGSEGV);
    ::_exit(97);  // unreachable: the re-raised signal kills the child
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string text = ReadFileText(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty()) << "no crash dump written";
  const json::Value dump = json::Value::Parse(text);
  EXPECT_EQ(dump.GetString("schema", ""), "acobe.crash.v1");
  EXPECT_DOUBLE_EQ(dump.GetNumber("signal", 0),
                   static_cast<double>(SIGSEGV));
  EXPECT_EQ(dump.GetString("signame", ""), "SIGSEGV");
  const json::Value* threads = dump.Get("threads");
  ASSERT_NE(threads, nullptr);
  bool found = false;
  for (std::size_t t = 0; t < threads->size(); ++t) {
    const json::Value* spans = (*threads)[t].Get("spans");
    if (spans == nullptr || spans->size() < 2) continue;
    std::vector<std::string> names;
    for (std::size_t s = 0; s < spans->size(); ++s) {
      names.push_back((*spans)[s].AsString());
    }
    if (names[names.size() - 2] == "test.crash_outer" &&
        names.back() == "test.crash_inner") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no thread carried the open span stack";
}

}  // namespace
