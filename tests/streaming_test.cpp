// Streaming data plane: the external-sort spool, the per-department
// demux, and the contract the whole PR rests on — the out-of-core path
// produces bit-identical measurement cubes and detection scores to the
// in-memory path on the same dataset.

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "features/cert_features.h"
#include "features/shard_extract.h"
#include "common/timeframe.h"
#include "logs/log_store.h"
#include "logs/spool.h"
#include "simdata/cert_simulator.h"

namespace acobe {
namespace {

std::string SpoolDir(const char* name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Records everything replayed into it, preserving arrival order.
struct RecordingSink : LogSink {
  std::vector<LogonEvent> logons;
  std::vector<DeviceEvent> devices;
  std::vector<FileEvent> files;
  std::vector<HttpEvent> https;
  std::vector<Timestamp> arrival;  // all events, in replay order

  void Consume(const LogonEvent& e) override {
    logons.push_back(e);
    arrival.push_back(e.ts);
  }
  void Consume(const DeviceEvent& e) override {
    devices.push_back(e);
    arrival.push_back(e.ts);
  }
  void Consume(const FileEvent& e) override {
    files.push_back(e);
    arrival.push_back(e.ts);
  }
  void Consume(const HttpEvent& e) override {
    https.push_back(e);
    arrival.push_back(e.ts);
  }
  void Consume(const EmailEvent& e) override { arrival.push_back(e.ts); }
  void Consume(const EnterpriseEvent& e) override { arrival.push_back(e.ts); }
  void Consume(const ProxyEvent& e) override { arrival.push_back(e.ts); }
};

constexpr Timestamp kDay = kSecondsPerDay;

TEST(SpoolTest, RoundTripPreservesFieldsAndRouting) {
  ShardSpooler spool(SpoolDir("spool_roundtrip"), 2, 1 << 12);
  spool.AssignUser(1, 0);
  spool.AssignUser(2, 1);
  // user 3 stays unassigned (outside the roster) and must be dropped.

  LogonEvent logon;
  logon.ts = 3 * kDay + 100;
  logon.user = 1;
  logon.pc = 7;
  logon.activity = LogonActivity::kLogon;
  spool.Consume(logon);

  DeviceEvent device;
  device.ts = 1 * kDay + 50;
  device.user = 1;
  device.pc = 7;
  device.activity = DeviceActivity::kConnect;
  spool.Consume(device);

  FileEvent file;
  file.ts = 2 * kDay + 10;
  file.user = 2;
  file.pc = 9;
  file.file = 4;
  file.activity = FileActivity::kWrite;
  file.from = FileLocation::kRemote;
  file.to = FileLocation::kLocal;
  spool.Consume(file);

  HttpEvent http;
  http.ts = 1 * kDay + 20;
  http.user = 3;  // dropped
  http.domain = 5;
  spool.Consume(http);

  spool.Finish();
  EXPECT_EQ(spool.events_spooled(), 3u);
  EXPECT_EQ(spool.events_dropped(), 1u);
  // The timestamp range covers every event seen, dropped ones included,
  // exactly like the in-memory path's scan over the raw streams.
  EXPECT_EQ(spool.ts_lo(), 1 * kDay + 20);
  EXPECT_EQ(spool.ts_hi(), 3 * kDay + 100);

  RecordingSink shard0, shard1;
  spool.Replay(0, shard0);
  spool.Replay(1, shard1);

  ASSERT_EQ(shard0.logons.size(), 1u);
  ASSERT_EQ(shard0.devices.size(), 1u);
  EXPECT_TRUE(shard0.files.empty());
  EXPECT_TRUE(shard0.https.empty());
  EXPECT_EQ(shard0.logons[0].ts, logon.ts);
  EXPECT_EQ(shard0.logons[0].user, 1u);
  EXPECT_EQ(shard0.logons[0].pc, 7u);
  EXPECT_EQ(shard0.logons[0].activity, LogonActivity::kLogon);
  EXPECT_EQ(shard0.devices[0].ts, device.ts);
  EXPECT_EQ(shard0.devices[0].activity, DeviceActivity::kConnect);
  // Day order within the shard: the device (day 1) before the logon
  // (day 3).
  ASSERT_EQ(shard0.arrival.size(), 2u);
  EXPECT_LT(shard0.arrival[0] / kDay, shard0.arrival[1] / kDay);

  ASSERT_EQ(shard1.files.size(), 1u);
  EXPECT_EQ(shard1.files[0].ts, file.ts);
  EXPECT_EQ(shard1.files[0].user, 2u);
  EXPECT_EQ(shard1.files[0].file, 4u);
  EXPECT_EQ(shard1.files[0].activity, FileActivity::kWrite);
  EXPECT_EQ(shard1.files[0].from, FileLocation::kRemote);
  EXPECT_EQ(shard1.files[0].to, FileLocation::kLocal);
}

TEST(SpoolTest, ManySpilledRunsMergeInNondecreasingDayOrder) {
  // A buffer this small forces dozens of spilled runs; the k-way merge
  // must still replay days in nondecreasing order with nothing lost.
  ShardSpooler spool(SpoolDir("spool_merge"), 1, 1 << 10);
  spool.AssignUser(0, 0);
  std::vector<Timestamp> sent;
  std::uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    LogonEvent e;
    e.ts = static_cast<Timestamp>((state >> 33) % (90 * kDay));
    e.user = 0;
    e.pc = 1;
    sent.push_back(e.ts);
    spool.Consume(e);
  }
  spool.Finish();
  RecordingSink sink;
  spool.Replay(0, sink);
  ASSERT_EQ(sink.arrival.size(), sent.size());
  for (std::size_t i = 1; i < sink.arrival.size(); ++i) {
    EXPECT_LE(sink.arrival[i - 1] / kDay, sink.arrival[i] / kDay);
  }
  // Exact multiset of timestamps survives the round trip.
  std::vector<Timestamp> got = sink.arrival;
  std::sort(got.begin(), got.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(got, sent);
}

TEST(SpoolTest, RemoveCleansUpShardFilesAndDirectory) {
  const std::string dir = SpoolDir("spool_cleanup");
  {
    ShardSpooler spool(dir, 2, 1 << 12);
    spool.AssignUser(0, 0);
    LogonEvent e;
    e.ts = kDay;
    e.user = 0;
    spool.Consume(e);
    spool.Finish();
    EXPECT_TRUE(std::filesystem::exists(dir));
  }  // destructor removes
  EXPECT_FALSE(std::filesystem::exists(dir));
}

/// Simulates a small two-department org and returns the sorted store.
LogStore* SharedCertStore() {
  static LogStore* store = [] {
    auto* s = new LogStore;
    sim::CertSimConfig cfg;
    cfg.org.departments = 2;
    cfg.org.users_per_department = 8;
    cfg.org.extra_users = 0;
    cfg.start = Date(2010, 1, 2);
    cfg.end = Date(2010, 3, 15);
    cfg.profiles.rate_scale = 0.3;
    cfg.seed = 424242;
    sim::CertSimulator simulator(cfg, *s);
    simulator.Run(*s);
    s->SortChronologically();
    return s;
  }();
  return store;
}

constexpr Date kStart{2010, 1, 2};
constexpr int kDays = 73;  // 2010-01-02 .. 2010-03-15

TEST(StreamingTest, CubesBitIdenticalToInMemory) {
  LogStore& store = *SharedCertStore();

  // In-memory path: one cube over everyone.
  CertAcobeExtractor full(kStart, kDays);
  ReplayStore(store, full);
  for (const LdapRecord& r : store.ldap()) full.cube().RegisterUser(r.user);

  // Streaming path: spool, then per-shard demux into per-dept cubes.
  ShardSpooler spool(SpoolDir("spool_identity"), 2, 1 << 14);
  const std::vector<std::string> departments = store.Departments();
  ASSERT_EQ(departments.size(), 2u);
  for (const LdapRecord& r : store.ldap()) {
    const auto it =
        std::find(departments.begin(), departments.end(), r.department);
    spool.AssignUser(r.user, static_cast<int>(it - departments.begin()) % 2);
  }
  ReplayStore(store, spool);
  spool.Finish();

  for (int s = 0; s < 2; ++s) {
    DepartmentDemux demux(kStart, kDays);
    const std::string& dept = departments[s];
    const std::vector<UserId> members = store.UsersInDepartment(dept);
    demux.AddDepartment(dept, members);
    spool.Replay(s, demux);
    const MeasurementCube& dept_cube = demux.extractor(0).cube();
    const MeasurementCube& full_cube = full.cube();
    for (UserId user : members) {
      const int di = dept_cube.UserIndex(user);
      const int fi = full_cube.UserIndex(user);
      ASSERT_GE(di, 0);
      ASSERT_GE(fi, 0);
      for (int f = 0; f < full_cube.features(); ++f) {
        for (int d = 0; d < full_cube.days(); ++d) {
          for (int fr = 0; fr < full_cube.frames(); ++fr) {
            // Exact float equality: the contract is bit-identity, not
            // tolerance.
            ASSERT_EQ(dept_cube.At(di, f, d, fr), full_cube.At(fi, f, d, fr))
                << "user " << user << " feature " << f << " day " << d
                << " frame " << fr;
          }
        }
      }
    }
  }
}

TEST(StreamingTest, ScoresBitIdenticalToInMemory) {
  LogStore& store = *SharedCertStore();

  CertAcobeExtractor full(kStart, kDays);
  ReplayStore(store, full);
  for (const LdapRecord& r : store.ldap()) full.cube().RegisterUser(r.user);

  const std::vector<std::string> departments = store.Departments();
  const std::string& dept = departments[0];
  const std::vector<UserId> members = store.UsersInDepartment(dept);

  ShardSpooler spool(SpoolDir("spool_scores"), 1, 1 << 14);
  for (UserId user : members) spool.AssignUser(user, 0);
  ReplayStore(store, spool);
  spool.Finish();
  DepartmentDemux demux(kStart, kDays);
  demux.AddDepartment(dept, members);
  spool.Replay(0, demux);

  DetectorSpec spec;
  spec.deviation.omega = 10;
  spec.deviation.matrix_days = 10;
  spec.ensemble.encoder_dims = {16, 8};
  spec.ensemble.train.epochs = 2;
  spec.ensemble.train_stride = 4;
  spec.critic_votes = 1;

  const Detector detector(spec);
  const DetectionOutput in_memory =
      detector.Run(full.cube(), full.catalog(), members, 0, 50, 50, kDays);
  const DetectionOutput streamed = detector.Run(
      demux.extractor(0).cube(), full.catalog(), members, 0, 50, 50, kDays);

  EXPECT_EQ(in_memory.grid.Digest(), streamed.grid.Digest());
  ASSERT_EQ(in_memory.members, streamed.members);
  ASSERT_EQ(in_memory.list.size(), streamed.list.size());
  for (std::size_t i = 0; i < in_memory.list.size(); ++i) {
    EXPECT_EQ(in_memory.list[i].user_idx, streamed.list[i].user_idx);
    EXPECT_EQ(in_memory.list[i].priority, streamed.list[i].priority);
  }
}

TEST(DepartmentDemuxTest, RoutesMultiDepartmentUsersToEveryMembership) {
  DepartmentDemux demux(kStart, 10);
  const int a = demux.AddDepartment("A", {1, 2});
  const int b = demux.AddDepartment("B", {2, 3});
  DeviceEvent e;
  e.ts = MakeTimestamp(kStart, 10, 0, 0);
  e.user = 2;  // member of both departments
  e.pc = 1;
  e.activity = DeviceActivity::kConnect;
  demux.Consume(e);
  EXPECT_EQ(demux.events_routed(), 1u);
  const int feature = CertAcobeExtractor::kDevConnection;
  float in_a = 0, in_b = 0;
  for (int fr = 0; fr < demux.extractor(a).cube().frames(); ++fr) {
    in_a += demux.extractor(a).cube().At(
        demux.extractor(a).cube().UserIndex(2), feature, 0, fr);
    in_b += demux.extractor(b).cube().At(
        demux.extractor(b).cube().UserIndex(2), feature, 0, fr);
  }
  EXPECT_EQ(in_a, 1.0f);
  EXPECT_EQ(in_b, 1.0f);
}

}  // namespace
}  // namespace acobe
