#!/usr/bin/env python3
"""CI validator for detection-provenance artifacts.

Validates a run ledger (`acobe_detect --ledger-out`, JSONL, schema
acobe.ledger.v1) structurally:

  - every line is a JSON object with an `event` field from the known
    vocabulary;
  - the first event is a `manifest` carrying the schema tag and the
    build-identity block;
  - a `run_complete` event is present (an interrupted run never writes
    one — the ledger lands atomically at the end); when it carries the
    health plane's `peak_rss_bytes`/`stages` fields, they are sane
    (positive peak RSS, nonnegative per-stage wall seconds);
  - every department seen in `aspect_trained` events also has a
    `detection` event, and every detection carries a score digest.

With `--explain` (an `--explain-out` report, schema acobe.explain.v1)
and `--truth` (the generator's truth.csv), additionally checks the
insider-attribution acceptance: each true insider that appears in an
investigation list must carry at least one attributed cell, and at
least one of those cells must fall inside the insider's planted
anomaly window.

Usage:
    tools/check_ledger.py LEDGER.jsonl [--explain EXPLAIN.json]
                          [--truth TRUTH.csv]

Exit status 0 on pass, 1 on any violation or malformed input.
"""

import argparse
import csv
import json
import sys

EVENT_TYPES = {
    "manifest", "aspect_trained", "detection", "quality", "drift",
    "run_complete",
}


def fail(msg):
    print(f"check_ledger: {msg}", file=sys.stderr)
    return 1


def check_ledger(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        return fail(f"{path}: empty ledger")
    events = []
    for i, line in enumerate(lines, 1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(f"{path}:{i}: bad JSON: {e}")
        if not isinstance(event, dict) or "event" not in event:
            return fail(f"{path}:{i}: not an event object")
        if event["event"] not in EVENT_TYPES:
            return fail(f"{path}:{i}: unknown event '{event['event']}'")
        events.append(event)

    manifest = events[0]
    if manifest["event"] != "manifest":
        return fail(f"{path}: first event is '{manifest['event']}', "
                    "expected 'manifest'")
    if manifest.get("schema") != "acobe.ledger.v1":
        return fail(f"{path}: manifest schema is {manifest.get('schema')!r}")
    build = manifest.get("build")
    if not isinstance(build, dict) or "version" not in build:
        return fail(f"{path}: manifest has no build-identity block")
    # acobe-detect runs score through the NN core, so their manifests
    # must attribute results to the kernel family that produced them.
    if manifest.get("tool") == "acobe-detect":
        backend = build.get("nn_backend")
        if not isinstance(backend, str) or not backend:
            return fail(f"{path}: acobe-detect manifest lacks nn_backend")
        threads = build.get("nn_threads")
        if not isinstance(threads, int) or threads < 1:
            return fail(f"{path}: acobe-detect manifest nn_threads must be "
                        f"a positive integer, got {threads!r}")

    completes = [e for e in events if e["event"] == "run_complete"]
    if not completes:
        return fail(f"{path}: no run_complete event (interrupted run?)")
    done = completes[-1]
    if "peak_rss_bytes" in done and not (
            isinstance(done["peak_rss_bytes"], int)
            and done["peak_rss_bytes"] > 0):
        return fail(f"{path}: run_complete peak_rss_bytes is not a "
                    f"positive integer: {done['peak_rss_bytes']!r}")
    if "stages" in done:
        stages = done["stages"]
        if not isinstance(stages, list):
            return fail(f"{path}: run_complete stages is not a list")
        for s in stages:
            if not isinstance(s, dict) or "stage" not in s:
                return fail(f"{path}: run_complete stages entry without "
                            f"a stage name: {s!r}")
            if s.get("seconds", 0) < 0 or s.get("done", 0) < 0:
                return fail(f"{path}: run_complete stage {s['stage']!r} "
                            "has a negative field")

    trained_depts = {e.get("department") for e in events
                     if e["event"] == "aspect_trained"}
    detections = {e.get("department"): e for e in events
                  if e["event"] == "detection"}
    for dept in sorted(trained_depts - set(detections)):
        return fail(f"{path}: department {dept!r} trained but has no "
                    "detection event")
    for dept, det in sorted(detections.items()):
        if "score_digest" not in det:
            return fail(f"{path}: detection for {dept!r} has no score_digest")

    counts = {}
    for e in events:
        counts[e["event"]] = counts.get(e["event"], 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"check_ledger: {path}: {len(events)} events ok ({summary})")
    return 0


def load_truth(path):
    """truth.csv rows -> {user: (anomaly_start, anomaly_end)} (ISO dates)."""
    insiders = {}
    with open(path, "r", encoding="utf-8", newline="") as f:
        for row in csv.reader(f):
            if len(row) != 3 or row[0] == "user":
                continue
            insiders[row[0]] = (row[1], row[2])
    return insiders


def check_explain(path, truth_path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "acobe.explain.v1":
        return fail(f"{path}: schema is {doc.get('schema')!r}")
    departments = doc.get("departments")
    if not isinstance(departments, list) or not departments:
        return fail(f"{path}: no departments")

    insiders = load_truth(truth_path) if truth_path else {}
    listed = {}       # insider -> department they ranked in
    attributed = {}   # insider -> list of attributed (aspect, day) cells
    for dept in departments:
        for entry in dept.get("list", []):
            user = entry.get("user")
            if user in insiders:
                listed[user] = dept.get("name", "?")
        for ua in dept.get("attributions", []):
            user = ua.get("user")
            cells = [(aspect.get("aspect"), cell.get("day"))
                     for aspect in ua.get("aspects", [])
                     for cell in aspect.get("cells", [])]
            if not cells:
                return fail(f"{path}: attribution for {user!r} names no cells")
            if user in insiders:
                attributed[user] = cells

    print(f"check_ledger: {path}: {len(departments)} department(s), "
          f"{len(listed)}/{len(insiders)} insider(s) listed")
    for user, dept in sorted(listed.items()):
        if user not in attributed:
            return fail(f"{path}: insider {user} listed in {dept} but has "
                        "no attribution")
        start, end = insiders[user]
        # String comparison works: ISO dates sort lexicographically.
        in_window = [(a, d) for a, d in attributed[user]
                     if d is not None and start <= d <= end]
        if not in_window:
            return fail(f"{path}: insider {user}: no attributed cell inside "
                        f"the anomaly window [{start}, {end}] "
                        f"(got {attributed[user]})")
        aspects = sorted({a for a, _ in in_window})
        print(f"check_ledger: insider {user}: {len(in_window)} attributed "
              f"cell(s) inside [{start}, {end}] via {', '.join(aspects)}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("ledger", help="run ledger JSONL (--ledger-out)")
    ap.add_argument("--explain", help="explain report JSON (--explain-out)")
    ap.add_argument("--truth", help="generator truth.csv for the insider-"
                                    "attribution check (needs --explain)")
    args = ap.parse_args()

    try:
        rc = check_ledger(args.ledger)
        if rc == 0 and args.explain:
            rc = check_explain(args.explain, args.truth)
    except OSError as e:
        return fail(str(e))
    except json.JSONDecodeError as e:
        return fail(str(e))
    return rc


if __name__ == "__main__":
    sys.exit(main())
