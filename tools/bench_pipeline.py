#!/usr/bin/env python3
"""End-to-end benchmark of the out-of-core streaming data plane.

Runs the full pipeline at a configurable scale:

    acobe_gen --stream  ->  acobe_detect --stream
                        ->  acobe_detect            (in-memory reference)

and writes an acobe.metrics.v1 JSON with throughput (users/sec,
events/sec, deviation matrices/sec) and peak-RSS gauges for each stage.
The streaming detect runs with --health-out, and the final heartbeat's
per-stage wall times land as `<prefix>.detect_stream.stage.<name>_seconds`
gauges, so the benchmark log shows where the pipeline spent its time
(ingest vs spool vs replay vs detect vs write).
Unless --skip-memory is given, the in-memory detector runs on the same
dataset and the two stdouts are compared byte-for-byte: the benchmark
FAILS if the streaming path is not bit-identical, so every perf run is
also a correctness run.

The headline transferable metric is
`pipeline.detect.stream_vs_memory_rss_ratio` — streaming peak RSS over
in-memory peak RSS on the same dataset in the same run. Like the GEMM
blocked/ref speedup, the ratio cancels machine and container effects;
absolute rates and RSS are recorded for the log but do not transfer.

Usage:
    tools/bench_pipeline.py --bin-dir build/tools --out BENCH.json \
        [--users 150 --departments 8 --days 75 --epochs 2 --shards 4] \
        [--rate 0.3] [--seed 7] [--skip-memory] [--keep-data] \
        [--data-dir DIR] [--prefix pipeline]

Exit status 0 on success, 1 on any stage failure or an identity mismatch.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time


def run_timed(cmd, stdout_path):
    start = time.monotonic()
    with open(stdout_path, "wb") as out:
        proc = subprocess.run(cmd, stdout=out, stderr=subprocess.PIPE)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        raise RuntimeError(f"{cmd[0]} exited {proc.returncode}")
    return elapsed


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "acobe.metrics.v1":
        raise ValueError(f"{path}: not an acobe.metrics.v1 file")
    return doc


def final_heartbeat(path):
    """Last acobe.health.v1 line of a heartbeat file, or None."""
    last = None
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                beat = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            if beat.get("schema") == "acobe.health.v1":
                last = beat
    return last


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bin-dir", required=True,
                    help="directory holding acobe_gen / acobe_detect")
    ap.add_argument("--out", required=True, help="output metrics JSON")
    ap.add_argument("--users", type=int, default=150,
                    help="users per department (default 150)")
    ap.add_argument("--departments", type=int, default=8)
    ap.add_argument("--days", type=int, default=75,
                    help="simulated span in days (default 75)")
    ap.add_argument("--epochs", type=int, default=2)
    ap.add_argument("--shards", type=int, default=4)
    ap.add_argument("--rate", type=float, default=0.3,
                    help="activity rate scale (default 0.3)")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--skip-memory", action="store_true",
                    help="skip the in-memory reference run (very large "
                         "datasets); no identity check, no RSS ratio")
    ap.add_argument("--keep-data", action="store_true")
    ap.add_argument("--data-dir", default=None,
                    help="where to generate the dataset (default: a "
                         "fresh temp dir)")
    ap.add_argument("--prefix", default="pipeline",
                    help="gauge-name prefix (default 'pipeline')")
    args = ap.parse_args()

    gen = os.path.join(args.bin_dir, "acobe_gen")
    detect = os.path.join(args.bin_dir, "acobe_detect")
    for tool in (gen, detect):
        if not os.access(tool, os.X_OK):
            print(f"bench_pipeline: missing tool {tool}", file=sys.stderr)
            return 1

    data_dir = args.data_dir or tempfile.mkdtemp(prefix="acobe-bench-")
    os.makedirs(data_dir, exist_ok=True)
    scratch = tempfile.mkdtemp(prefix="acobe-bench-out-")
    total_users = args.users * args.departments
    # The detector needs a training window comfortably past omega and a
    # test window after it; 60/40 over the simulated span works at every
    # scale this script targets.
    start_day = "2010-01-02"
    import datetime
    d0 = datetime.date(2010, 1, 2)
    end = (d0 + datetime.timedelta(days=args.days - 1)).isoformat()
    train_end = (d0 + datetime.timedelta(days=int(args.days * 0.6))).isoformat()

    gauges = {}
    p = args.prefix
    gauges[f"{p}.users"] = total_users
    gauges[f"{p}.departments"] = args.departments
    gauges[f"{p}.days"] = args.days
    try:
        # --- generate (streamed) -------------------------------------
        gen_metrics = os.path.join(scratch, "gen.json")
        gen_secs = run_timed(
            [gen, f"--out={data_dir}", "--stream",
             f"--shards={max(2, args.shards)}",
             f"--users={args.users}", f"--departments={args.departments}",
             f"--seed={args.seed}", f"--rate={args.rate}",
             f"--start={start_day}", f"--end={end}",
             f"--metrics-out={gen_metrics}"],
            os.path.join(scratch, "gen.out"))
        gdoc = load_metrics(gen_metrics)
        events = gdoc["counters"]["gen.events_simulated"]
        gauges[f"{p}.events"] = events
        gauges[f"{p}.gen.seconds"] = round(gen_secs, 3)
        gauges[f"{p}.gen.users_per_second"] = round(total_users / gen_secs, 2)
        gauges[f"{p}.gen.events_per_second"] = round(events / gen_secs, 1)
        gauges[f"{p}.gen.peak_rss_bytes"] = \
            gdoc["gauges"]["process.peak_rss_bytes"]

        # --- detect (streaming) --------------------------------------
        det_metrics = os.path.join(scratch, "detect_stream.json")
        det_health = os.path.join(scratch, "detect_stream.health.jsonl")
        stream_out = os.path.join(scratch, "detect_stream.out")
        det_secs = run_timed(
            [detect, f"--in={data_dir}", f"--train-end={train_end}",
             f"--epochs={args.epochs}", "--stream",
             f"--shards={args.shards}", f"--metrics-out={det_metrics}",
             f"--health-out={det_health}", "--health-interval-ms=250"],
            stream_out)
        ddoc = load_metrics(det_metrics)
        aspects = int(ddoc["gauges"].get("features.aspects", 0))
        gauges[f"{p}.detect_stream.seconds"] = round(det_secs, 3)
        gauges[f"{p}.detect_stream.users_per_second"] = \
            round(total_users / det_secs, 2)
        gauges[f"{p}.detect_stream.events_per_second"] = \
            round(events / det_secs, 1)
        # One deviation matrix per (user, aspect): the unit of ACOBE
        # scoring work.
        if aspects > 0:
            gauges[f"{p}.detect_stream.matrices_per_second"] = \
                round(total_users * aspects / det_secs, 2)
        stream_rss = ddoc["gauges"]["process.peak_rss_bytes"]
        gauges[f"{p}.detect_stream.peak_rss_bytes"] = stream_rss
        # Per-stage wall-time breakdown from the final heartbeat.
        beat = final_heartbeat(det_health)
        if beat is not None:
            for stage in beat.get("stages", []):
                name = str(stage.get("stage", "")).replace(".", "_")
                if not name:
                    continue
                gauges[f"{p}.detect_stream.stage.{name}_seconds"] = \
                    round(float(stage.get("seconds", 0.0)), 3)

        # --- detect (in-memory reference) + identity check -----------
        if not args.skip_memory:
            mem_metrics = os.path.join(scratch, "detect_mem.json")
            mem_out = os.path.join(scratch, "detect_mem.out")
            mem_secs = run_timed(
                [detect, f"--in={data_dir}", f"--train-end={train_end}",
                 f"--epochs={args.epochs}", f"--metrics-out={mem_metrics}"],
                mem_out)
            mdoc = load_metrics(mem_metrics)
            mem_rss = mdoc["gauges"]["process.peak_rss_bytes"]
            gauges[f"{p}.detect_memory.seconds"] = round(mem_secs, 3)
            gauges[f"{p}.detect_memory.peak_rss_bytes"] = mem_rss
            gauges[f"{p}.detect.stream_vs_memory_rss_ratio"] = \
                round(stream_rss / mem_rss, 4)
            with open(stream_out, "rb") as a, open(mem_out, "rb") as b:
                if a.read() != b.read():
                    print("bench_pipeline: FAIL: streaming stdout differs "
                          "from in-memory stdout", file=sys.stderr)
                    return 1
            print("identity: streaming stdout == in-memory stdout")
    except (RuntimeError, ValueError, KeyError, OSError) as e:
        print(f"bench_pipeline: {e}", file=sys.stderr)
        return 1
    finally:
        if not args.keep_data and args.data_dir is None:
            shutil.rmtree(data_dir, ignore_errors=True)
        shutil.rmtree(scratch, ignore_errors=True)

    doc = {
        "schema": "acobe.metrics.v1",
        "counters": {},
        "gauges": dict(sorted(gauges.items())),
        "histograms": {},
        "series": {},
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    for key, value in sorted(gauges.items()):
        print(f"{key} = {value}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
