// acobe-explain: renders saved detection provenance — an explain
// report ("acobe.explain.v1", from acobe-detect --explain-out) or a
// run ledger ("acobe.ledger.v1" JSONL, from --ledger-out) — as
// human-readable text, without recomputing anything. The analyst
// workflow: detect once on the analysis box, ship the two small JSON
// artifacts, and read them anywhere.
//
//   acobe-explain --in=FILE [--department=NAME]
//
// The artifact kind is auto-detected from its schema tag.
// --department restricts explain-report output to one department.
//
// Exit codes: 0 ok, 2 usage, 3 unreadable/malformed artifact.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/faults.h"
#include "common/json.h"

using namespace acobe;

namespace {

void Usage() {
  std::printf(
      "acobe-explain --in=FILE [--department=NAME] [--version]\n"
      "  FILE: an explain report (acobe-detect --explain-out) or a run\n"
      "  ledger (--ledger-out); the kind is auto-detected.\n"
      "exit codes: 0 ok, 2 usage, 3 bad artifact\n");
}

void PrintCells(const json::Value& cells, const char* indent) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const json::Value& cell = cells[c];
    const bool group = cell.GetString("component", "individual") == "group";
    std::string note;
    if (group) {
      note = " [group]";
    } else if (const json::Value* gi = cell.Get("group_input")) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " (group at %.2f)", gi->AsNumber());
      note = buf;
    }
    std::printf("%s%-18s %s %s err %.4f (%2.0f%%) val %.2f%s\n", indent,
                cell.GetString("feature", "?").c_str(),
                cell.GetString("frame", "?").c_str(),
                cell.GetString("day", "?").c_str(),
                cell.GetNumber("error", 0.0),
                100.0 * cell.GetNumber("share", 0.0),
                cell.GetNumber("input", 0.0), note.c_str());
  }
}

void PrintDrift(const json::Value& drift, const char* indent) {
  for (std::size_t i = 0; i < drift.size(); ++i) {
    const json::Value& aspect = drift[i];
    std::printf("%s%-8s %s", indent, aspect.GetString("aspect", "?").c_str(),
                aspect.GetBool("alert", false) ? "ALERT" : "ok   ");
    if (const json::Value* shifts = aspect.Get("shifts")) {
      for (std::size_t s = 0; s < shifts->size(); ++s) {
        const json::Value& shift = (*shifts)[s];
        std::printf("  q%g %+.1f%%", 100.0 * shift.GetNumber("q", 0.0),
                    100.0 * shift.GetNumber("rel_shift", 0.0));
      }
    }
    std::printf("\n");
  }
}

int RenderExplain(const json::Value& doc, const std::string& department) {
  const json::Value* build = doc.Get("build");
  const json::Value* dataset = doc.Get("dataset");
  std::printf("explain report (%s)\n", doc.GetString("schema", "?").c_str());
  if (build) {
    std::printf("  built: %s %s, simd %s\n",
                build->GetString("version", "?").c_str(),
                build->GetString("build_type", "?").c_str(),
                build->GetString("simd", "?").c_str());
  }
  if (dataset) {
    std::printf("  data:  %s (digest %.0f), %s train-end %s test-end %s\n",
                dataset->GetString("dir", "?").c_str(),
                dataset->GetNumber("digest", 0.0),
                dataset->GetString("start", "?").c_str(),
                dataset->GetString("train_end", "?").c_str(),
                dataset->GetString("test_end", "?").c_str());
  }
  const json::Value* departments = doc.Get("departments");
  if (!departments || !departments->is_array()) {
    std::fprintf(stderr, "acobe-explain: no departments array\n");
    return kExitBadInput;
  }
  for (std::size_t d = 0; d < departments->size(); ++d) {
    const json::Value& dept = (*departments)[d];
    const std::string name = dept.GetString("name", "?");
    if (!department.empty() && name != department) continue;
    std::printf("\n=== %s (%.0f users, score digest %.0f) ===\n", name.c_str(),
                dept.GetNumber("members", 0.0),
                dept.GetNumber("score_digest", 0.0));
    if (const json::Value* degraded = dept.Get("degraded_aspects")) {
      for (std::size_t i = 0; i < degraded->size(); ++i) {
        std::printf("  WARNING: aspect %s diverged; ranked without it\n",
                    (*degraded)[i].AsString().c_str());
      }
    }
    if (const json::Value* list = dept.Get("list")) {
      for (std::size_t i = 0; i < list->size(); ++i) {
        const json::Value& entry = (*list)[i];
        std::printf("%3.0f. %-10s priority %.0f\n",
                    entry.GetNumber("rank", 0.0),
                    entry.GetString("user", "?").c_str(),
                    entry.GetNumber("priority", 0.0));
      }
    }
    const json::Value* attributions = dept.Get("attributions");
    if (attributions && attributions->size() > 0) {
      std::printf("\n  why (top reconstruction-error cells):\n");
      for (std::size_t i = 0; i < attributions->size(); ++i) {
        const json::Value& ua = (*attributions)[i];
        std::printf("     %s:\n", ua.GetString("user", "?").c_str());
        if (const json::Value* aspects = ua.Get("aspects")) {
          for (std::size_t a = 0; a < aspects->size(); ++a) {
            const json::Value& aa = (*aspects)[a];
            std::printf(
                "       %-8s peak %s score %.3f (group share %.0f%%)\n",
                aa.GetString("aspect", "?").c_str(),
                aa.GetString("peak_day", "?").c_str(),
                aa.GetNumber("peak_score", 0.0),
                100.0 * aa.GetNumber("group_error_fraction", 0.0));
            if (const json::Value* cells = aa.Get("cells")) {
              PrintCells(*cells, "         ");
            }
          }
        }
      }
    }
    const json::Value* drift = dept.Get("drift");
    if (drift && drift->size() > 0) {
      std::printf("\n  score drift vs training window:\n");
      PrintDrift(*drift, "    ");
    }
  }
  return 0;
}

int RenderLedger(const std::vector<json::Value>& events) {
  bool complete = false;
  for (const json::Value& event : events) {
    const std::string type = event.GetString("event", "?");
    if (type == "manifest") {
      std::printf("ledger (%s) tool %s\n",
                  event.GetString("schema", "?").c_str(),
                  event.GetString("tool", "?").c_str());
      if (const json::Value* build = event.Get("build")) {
        std::printf("  built: %s %s, simd %s, telemetry %s",
                    build->GetString("version", "?").c_str(),
                    build->GetString("build_type", "?").c_str(),
                    build->GetString("simd", "?").c_str(),
                    build->GetBool("telemetry", false) ? "on" : "off");
        const std::string backend = build->GetString("nn_backend", "");
        if (!backend.empty()) std::printf(", nn %s", backend.c_str());
        std::printf("\n");
      }
      std::printf(
          "  run:   %s, train-end %s, test-end %s, seed %.0f, "
          "dataset digest %.0f\n",
          event.GetString("in", "?").c_str(),
          event.GetString("train_end", "?").c_str(),
          event.GetString("test_end", "?").c_str(),
          event.GetNumber("seed", 0.0), event.GetNumber("dataset_digest", 0.0));
    } else if (type == "aspect_trained") {
      std::printf(
          "  [%s] aspect %-8s %s attempts %.0f epochs %.0f final loss %.5f\n",
          event.GetString("department", "?").c_str(),
          event.GetString("aspect", "?").c_str(),
          event.GetBool("resumed", false)
              ? "resumed"
              : (event.GetBool("ok", false) ? "trained" : "FAILED "),
          event.GetNumber("attempts", 0.0), event.GetNumber("epochs", 0.0),
          event.GetNumber("final_loss", 0.0));
    } else if (type == "detection") {
      std::printf("  [%s] detection over %.0f members, score digest %.0f\n",
                  event.GetString("department", "?").c_str(),
                  event.GetNumber("members", 0.0),
                  event.GetNumber("score_digest", 0.0));
      if (const json::Value* list = event.Get("list")) {
        for (std::size_t i = 0; i < list->size(); ++i) {
          std::printf("    %2zu. %-10s priority %.0f\n", i + 1,
                      (*list)[i].GetString("user", "?").c_str(),
                      (*list)[i].GetNumber("priority", 0.0));
        }
      }
    } else if (type == "quality") {
      std::printf("  [%s] quality: AUC %.3f AP %.3f (%.0f positives of %.0f)",
                  event.GetString("model", "?").c_str(),
                  event.GetNumber("auc", 0.0),
                  event.GetNumber("average_precision", 0.0),
                  event.GetNumber("positives", 0.0),
                  event.GetNumber("list_size", 0.0));
      if (const json::Value* p_at = event.Get("precision_at")) {
        if (p_at->is_object()) {
          for (const auto& [k, v] : p_at->AsObject()) {
            std::printf("  P@%s %.2f", k.c_str(), v.AsNumber());
          }
        }
      }
      std::printf("\n");
    } else if (type == "drift") {
      std::printf("  [%s] drift:\n",
                  event.GetString("department", "?").c_str());
      if (const json::Value* aspects = event.Get("aspects")) {
        PrintDrift(*aspects, "    ");
      }
    } else if (type == "run_complete") {
      complete = true;
      std::printf("  run complete: %.0f department(s), %.0f event(s)\n",
                  event.GetNumber("departments", 0.0),
                  event.GetNumber("events", 0.0));
    }
  }
  if (!complete) {
    std::fprintf(stderr,
                 "acobe-explain: WARNING: no run_complete event — the run was "
                 "interrupted or the ledger is truncated\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, department;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in_path = arg + 5;
    } else if (std::strncmp(arg, "--department=", 13) == 0) {
      department = arg + 13;
    } else if (std::strcmp(arg, "--version") == 0) {
      cli::PrintVersion("acobe-explain");
      return 0;
    } else if (std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "acobe-explain: unknown argument '%s'\n", arg);
      Usage();
      return kExitUsage;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr, "acobe-explain: --in is required\n");
    Usage();
    return kExitUsage;
  }

  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "acobe-explain: cannot read %s\n", in_path.c_str());
    return kExitBadInput;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Auto-detect: an explain report is one JSON document tagged
  // "acobe.explain.v1"; anything else JSON-ish is treated as ledger
  // JSONL (whose first event carries "acobe.ledger.v1").
  try {
    try {
      const json::Value doc = json::Value::Parse(text);
      if (doc.GetString("schema", "") == "acobe.explain.v1") {
        return RenderExplain(doc, department);
      }
      if (doc.GetString("event", "") == "manifest") {  // 1-line ledger
        return RenderLedger({doc});
      }
      std::fprintf(stderr, "acobe-explain: %s: unrecognized schema\n",
                   in_path.c_str());
      return kExitBadInput;
    } catch (const json::ParseError&) {
      // Not a single document; try line-delimited (the ledger form).
      return RenderLedger(json::ParseLines(text));
    }
  } catch (const json::ParseError& e) {
    std::fprintf(stderr, "acobe-explain: %s: %s\n", in_path.c_str(), e.what());
    return kExitBadInput;
  } catch (const std::logic_error& e) {
    std::fprintf(stderr, "acobe-explain: %s: malformed artifact: %s\n",
                 in_path.c_str(), e.what());
    return kExitBadInput;
  }
}
