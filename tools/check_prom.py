#!/usr/bin/env python3
"""Validator for Prometheus text exposition format 0.0.4.

Checks the invariants a real Prometheus scraper enforces on the output
of telemetry::WriteMetricsProm (the /metrics endpoint and the
--prom-out file):

  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - label names match [a-zA-Z_][a-zA-Z0-9_]*; label values are quoted
    with only \\\\ , \\" and \\n escapes
  - every sample parses as NAME[{LABELS}] VALUE [TIMESTAMP] with a
    float / +Inf / -Inf / NaN value
  - a # TYPE line names a valid type, appears at most once per metric,
    and precedes every sample of that metric
  - samples of one metric family are contiguous (no interleaving)
  - no duplicate sample (same name + label set)
  - summaries/histograms only use their reserved _sum/_count/quantile
    shapes

Usage:
  check_prom.py FILE            validate a file ('-' = stdin)
  --require-prefix=acobe_       every family must carry the prefix
  --min-samples=N               fail when fewer than N samples parsed

Exit 0 when valid; exit 1 with one diagnostic per violation.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
VALUE_RE = re.compile(
    r"^(?:[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?|[+-]?Inf|NaN)$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
SUFFIXES = ("_sum", "_count", "_bucket", "_total")


def base_family(name):
    """Strips the reserved sample suffixes off a summary/histogram
    sample name so it groups with its family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw, err):
    """Parses the text between { and }, returning a sorted tuple of
    (name, value) pairs; reports violations through err()."""
    labels = []
    i = 0
    while i < len(raw):
        m = re.match(r"\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*\"", raw[i:])
        if not m:
            err(f"malformed label block at ...{raw[i:i+30]!r}")
            return tuple(labels)
        name = m.group(1)
        i += m.end()
        value = []
        while i < len(raw):
            c = raw[i]
            if c == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in ('"', "\\", "n"):
                    err(f"bad escape in label value of {name}")
                    return tuple(labels)
                value.append(raw[i:i + 2])
                i += 2
            elif c == '"':
                i += 1
                break
            elif c == "\n":
                err(f"raw newline in label value of {name}")
                return tuple(labels)
            else:
                value.append(c)
                i += 1
        else:
            err(f"unterminated label value of {name}")
            return tuple(labels)
        labels.append((name, "".join(value)))
        rest = raw[i:].lstrip()
        if rest.startswith(","):
            i = len(raw) - len(rest) + 1
        elif rest == "":
            break
        else:
            err(f"garbage after label {name}: {rest[:20]!r}")
            break
    return tuple(sorted(labels))


def validate(lines, require_prefix=None, min_samples=0):
    errors = []
    typed = {}          # family -> declared type
    helped = set()
    family_done = set()  # families whose run of samples has ended
    current_family = None
    samples_seen = set()
    n_samples = 0

    def err(lineno, msg):
        errors.append(f"line {lineno}: {msg}")

    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if line.strip() == "":
            continue
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) ([^ ]+)(?: (.*))?$", line)
            if not m:
                # Arbitrary comments are legal; only HELP/TYPE are parsed.
                if re.match(r"^#\s*(HELP|TYPE)\b", line):
                    err(lineno, f"malformed {line.split()[1]} line")
                continue
            kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
            if not NAME_RE.match(name):
                err(lineno, f"invalid metric name in {kind}: {name!r}")
                continue
            if kind == "HELP":
                if name in helped:
                    err(lineno, f"duplicate HELP for {name}")
                helped.add(name)
                bad = re.search(r"\\(?![\\n])", rest)
                if bad:
                    err(lineno, f"bad escape in HELP text for {name}")
            else:
                if rest not in TYPES:
                    err(lineno, f"invalid TYPE {rest!r} for {name}")
                if name in typed:
                    err(lineno, f"duplicate TYPE for {name}")
                if name in family_done or name == current_family:
                    err(lineno, f"TYPE for {name} after its samples")
                typed[name] = rest
            continue

        # Sample line: NAME[{LABELS}] VALUE [TIMESTAMP]
        m = re.match(r"^([^\s{]+)(\{.*\})?\s+(\S+)(?:\s+(-?\d+))?\s*$", line)
        if not m:
            err(lineno, f"unparseable sample line: {line[:60]!r}")
            continue
        name, labelblock, value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            err(lineno, f"invalid metric name: {name!r}")
        if require_prefix and not name.startswith(require_prefix):
            err(lineno, f"metric {name} lacks required prefix "
                        f"{require_prefix!r}")
        if not VALUE_RE.match(value):
            err(lineno, f"invalid sample value for {name}: {value!r}")

        labels = ()
        if labelblock:
            labels = parse_labels(labelblock[1:-1],
                                  lambda msg: err(lineno, msg))
            for lname, _ in labels:
                if not LABEL_NAME_RE.match(lname):
                    err(lineno, f"invalid label name {lname!r} on {name}")

        family = base_family(name)
        ftype = typed.get(family)
        if ftype not in ("summary", "histogram") and family != name:
            # _sum/_count only belong to summary/histogram families;
            # for anything else the full name is its own family.
            family = name
        if family != current_family:
            if family in family_done:
                err(lineno, f"samples of {family} are interleaved with "
                            f"other metrics")
            if current_family is not None:
                family_done.add(current_family)
            current_family = family

        key = (name, labels)
        if key in samples_seen:
            err(lineno, f"duplicate sample {name}{dict(labels)}")
        samples_seen.add(key)
        n_samples += 1

    if n_samples < min_samples:
        errors.append(
            f"only {n_samples} samples parsed (need >= {min_samples})")
    return errors, n_samples


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file", help="exposition file, or '-' for stdin")
    ap.add_argument("--require-prefix", default=None)
    ap.add_argument("--min-samples", type=int, default=0)
    args = ap.parse_args()

    if args.file == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            lines = fh.readlines()

    errors, n_samples = validate(lines, args.require_prefix,
                                 args.min_samples)
    if errors:
        for e in errors:
            print(f"check_prom: {e}", file=sys.stderr)
        print(f"check_prom: FAIL ({len(errors)} violation(s), "
              f"{n_samples} sample(s))", file=sys.stderr)
        return 1
    print(f"check_prom: OK ({n_samples} sample(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
