// acobe-serve: the resident ACOBE detection daemon.
//
//   acobe_serve --watch=DIR --out=DIR --roster=FILE [options]
//
// Feeders drop *batch directories* into the watch directory: a
// directory holding any of device.csv / file.csv / http.csv /
// logon.csv (CERT layout) plus an empty READY marker file, written
// last. Every READY batch becomes one detection cycle: its events are
// admitted through bounded per-shard queues into a sliding
// --window-days event window, and each newly scorable day runs the
// full ACOBE pipeline per department, feeding a persistent-alert
// monitor. Closed alerts append to OUT/alerts.jsonl; cycle and
// detection provenance appends to OUT/ledger.jsonl.
//
// Crash safety: every cycle commits through OUT/service.journal
// (src/service/journal.h). Kill the process at any instant — including
// kill -9 — and the restarted daemon resumes where the journal says,
// producing output streams byte-identical to an uninterrupted run
// (under --admission=block, the default). Batch directories must stay
// immutable after their READY marker appears; the journal stores their
// digests and refuses to resume over mutated inputs.
//
// Supervision: a shard whose detection cycle keeps throwing is retried
// under seeded exponential backoff (--retries, --backoff-*) and then
// quarantined — its departments stop reporting (a "shard_quarantined"
// ledger event records why) while the rest of the service keeps going.
//
// Exit codes: 0 success (drained, or clean signal shutdown), 1 internal
// failure, 2 usage, 3 bad input data, 4 corrupt or non-resumable
// on-disk state (journal/config mismatch, mutated batch).
//
// SIGINT/SIGTERM request a cooperative shutdown: the current cycle
// finishes its commit, a run_complete(reason=signal) event lands, the
// final heartbeat reports stage "done", and the process exits 0.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.h"
#include "common/faults.h"
#include "common/health.h"
#include "common/shutdown.h"
#include "common/telemetry.h"
#include "common/version.h"
#include "net/http_server.h"
#include "service/supervisor.h"

using namespace acobe;

namespace {

// Same event-timestamp plausibility window as acobe-detect: 1980..2100.
constexpr std::int64_t kTsMin = 315532800;
constexpr std::int64_t kTsMax = 4102444800;

void Usage() {
  std::fprintf(
      stderr,
      "usage: acobe_serve --watch=DIR --out=DIR --roster=FILE\n"
      "             [--window-days=N] [--train-days=N] [--omega=N]\n"
      "             [--epochs=N] [--votes=N] [--top=N] [--seed=N]\n"
      "             [--alert-top=N] [--persistence-days=N] [--cooloff-days=N]\n"
      "             [--min-dept-users=N] [--shards=N]\n"
      "             [--queue-rows=N] [--queue-mb=N] [--admission=block|shed]\n"
      "             [--retries=N] [--backoff-base-ms=X] [--backoff-cap-ms=X]\n"
      "             [--backoff-seed=N] [--ingest=strict|permissive]\n"
      "             [--error-budget=X] [--poll-ms=N] [--drain]\n"
      "             [--max-cycles=N] [--health-out=F] [--health-interval-ms=N]\n"
      "             [--metrics-out=F] [--listen=ADDR:PORT] [--version]\n"
      "\n"
      "  --watch=DIR         drop directory scanned for READY batches\n"
      "  --out=DIR           journal + alerts.jsonl + ledger.jsonl\n"
      "  --roster=FILE       ldap.csv naming users and departments\n"
      "  --window-days=N     sliding event window (default 28)\n"
      "  --train-days=N      training prefix of the window (default 14)\n"
      "  --omega=N           deviation window omega (default 7)\n"
      "  --epochs=N          training epochs per aspect (default 6)\n"
      "  --votes=N           critic votes N (default 2)\n"
      "  --top=N             investigation-list length in ledger (default 10)\n"
      "  --seed=N            ensemble seed (default 1234)\n"
      "  --alert-top=N       daily positions that count as firing (default 3)\n"
      "  --persistence-days=N  days of firing that open an alert (default 2)\n"
      "  --cooloff-days=N    quiet days that close an alert (default 2)\n"
      "  --min-dept-users=N  skip smaller departments (default 3)\n"
      "  --shards=N          worker shards (default 2, capped at #depts)\n"
      "  --queue-rows=N      admission queue cap in events (default 65536)\n"
      "  --queue-mb=N        admission queue cap in MiB (default 64)\n"
      "  --admission=P       block (lossless, bit-identical restarts) or\n"
      "                      shed (drop at cap; outside the identity contract)\n"
      "  --retries=N         cycle retries before quarantine (default 3)\n"
      "  --backoff-base-ms=X first retry delay (default 100)\n"
      "  --backoff-cap-ms=X  delay ceiling (default 30000)\n"
      "  --backoff-seed=N    jitter RNG seed (default 0x5eed)\n"
      "  --ingest=P          batch CSV row policy (default strict)\n"
      "  --error-budget=X    permissive-mode bad-row budget (default 0.05)\n"
      "  --poll-ms=N         watch-directory poll interval (default 500)\n"
      "  --drain             process pending batches, then exit\n"
      "  --max-cycles=N      stop after N cycles this process (testing)\n"
      "  --health-out=F      heartbeat JSONL (tools/check_health.py)\n"
      "  --metrics-out=F     write telemetry metrics JSON to F\n"
      "  --listen=[A:]P      serve GET /metrics /healthz /readyz /statusz\n"
      "                      /cycles on address A (default 127.0.0.1) port P\n"
      "                      (0 = ephemeral; the pick lands in OUT/http.addr)\n");
}

// --- Observability endpoint JSON composition. The supervisor hands out
// --- plain snapshot structs; the JSON shape (and its schema tags) is
// --- this tool's contract with scrapers and acobe-top's remote mode.

std::string JsonStr(const std::string& s) {
  std::ostringstream os;
  os << '"';
  telemetry::JsonEscape(os, s);
  os << '"';
  return std::move(os).str();
}

std::string JsonNum(double v) {
  std::ostringstream os;
  telemetry::JsonNumber(os, v);
  return std::move(os).str();
}

std::string StatuszJson(const ServiceSupervisor& sup) {
  const ServiceStatus st = sup.Status();
  const BuildInfo info = GetBuildInfo();
  const auto alert_slo = sup.cycle_stats().AlertLatency();
  const auto wall_slo = sup.cycle_stats().CycleWall();
  std::ostringstream os;
  os << "{\"schema\":\"acobe.statusz.v1\",\"tool\":\"acobe-serve\""
     << ",\"version\":" << JsonStr(info.version)
     << ",\"build_type\":" << JsonStr(info.build_type)
     << ",\"simd\":" << JsonStr(info.simd)
     << ",\"ready\":" << (st.ready ? "true" : "false")
     << ",\"recovered\":" << (st.recovered ? "true" : "false")
     << ",\"cycle\":" << st.cycle << ",\"alerts_total\":" << st.alerts_total
     << ",\"last_batch\":" << JsonStr(st.last_batch);
  if (st.window_end >= st.window_start) {
    os << ",\"window\":{\"start\":"
       << JsonStr(Date::FromDayNumber(st.window_start).ToString())
       << ",\"end\":" << JsonStr(Date::FromDayNumber(st.window_end).ToString())
       << "}";
  } else {
    os << ",\"window\":null";
  }
  if (st.last_scored_day >= 0) {
    os << ",\"last_scored_day\":"
       << JsonStr(Date::FromDayNumber(st.last_scored_day).ToString());
  } else {
    os << ",\"last_scored_day\":null";
  }
  os << ",\"shards\":[";
  for (std::size_t i = 0; i < st.shards.size(); ++i) {
    const ShardStatus& s = st.shards[i];
    if (i) os << ',';
    os << "{\"shard\":" << i << ",\"queue_rows\":" << s.queue_rows
       << ",\"queue_bytes\":" << s.queue_bytes
       << ",\"queue_peak_rows\":" << s.queue_peak_rows
       << ",\"queue_shed\":" << s.queue_shed
       << ",\"quarantined\":" << (s.quarantined ? "true" : "false")
       << ",\"failures\":" << s.failures << "}";
  }
  os << "],\"departments\":[";
  for (std::size_t i = 0; i < st.departments.size(); ++i) {
    const DepartmentStatus& d = st.departments[i];
    if (i) os << ',';
    os << "{\"name\":" << JsonStr(d.name) << ",\"members\":" << d.members
       << ",\"open_alerts\":" << d.open_alerts << "}";
  }
  os << "],\"slo\":{\"cycles_observed\":" << sup.cycle_stats().total_recorded()
     << ",\"alert_latency_samples\":" << alert_slo.count
     << ",\"alert_latency_p50_s\":" << JsonNum(alert_slo.p50)
     << ",\"alert_latency_p95_s\":" << JsonNum(alert_slo.p95)
     << ",\"cycle_wall_p50_s\":" << JsonNum(wall_slo.p50)
     << ",\"cycle_wall_p95_s\":" << JsonNum(wall_slo.p95) << "}}\n";
  return std::move(os).str();
}

std::string CyclesJson(const ServiceSupervisor& sup, std::size_t n) {
  const std::vector<service::CycleStat> recent = sup.cycle_stats().Recent(n);
  std::ostringstream os;
  os << "{\"schema\":\"acobe.cycles.v1\",\"total_recorded\":"
     << sup.cycle_stats().total_recorded() << ",\"count\":" << recent.size()
     << ",\"cycles\":[";
  for (std::size_t i = 0; i < recent.size(); ++i) {
    const service::CycleStat& c = recent[i];
    if (i) os << ',';
    os << "{\"cycle\":" << c.cycle << ",\"batch\":" << JsonStr(c.batch);
    if (c.window_end >= c.window_start) {
      os << ",\"window_start\":"
         << JsonStr(Date::FromDayNumber(c.window_start).ToString())
         << ",\"window_end\":"
         << JsonStr(Date::FromDayNumber(c.window_end).ToString());
    }
    if (c.scored_to >= c.scored_from) {
      os << ",\"scored_from\":"
         << JsonStr(Date::FromDayNumber(c.scored_from).ToString())
         << ",\"scored_to\":"
         << JsonStr(Date::FromDayNumber(c.scored_to).ToString());
    }
    os << ",\"events_admitted\":" << c.events_admitted
       << ",\"events_shed\":" << c.events_shed
       << ",\"departments_scored\":" << c.departments_scored
       << ",\"alerts\":" << c.alerts
       << ",\"queue_peak_rows\":" << c.queue_peak_rows
       << ",\"ingest_s\":" << JsonNum(c.ingest_s)
       << ",\"train_s\":" << JsonNum(c.train_s)
       << ",\"score_s\":" << JsonNum(c.score_s)
       << ",\"commit_s\":" << JsonNum(c.commit_s)
       << ",\"total_s\":" << JsonNum(c.total_s)
       << ",\"batch_age_s\":" << JsonNum(c.batch_age_s)
       << ",\"alert_latency_s\":" << JsonNum(c.alert_latency_s) << "}";
  }
  os << "]}\n";
  return std::move(os).str();
}

void RegisterEndpoints(net::HttpServer& http, ServiceSupervisor& sup) {
  http.Handle("/", [](const net::HttpRequest&) {
    net::HttpResponse r;
    r.body =
        "acobe-serve observability endpoints:\n"
        "  /metrics   Prometheus text exposition\n"
        "  /healthz   liveness (200 while the process serves)\n"
        "  /readyz    readiness (503 until journal replay completes)\n"
        "  /statusz   JSON service snapshot (acobe.statusz.v1)\n"
        "  /cycles    JSON per-cycle time-series (acobe.cycles.v1, ?n=K)\n";
    return r;
  });
  http.Handle("/metrics", [&sup](const net::HttpRequest&) {
    sup.RefreshQueueGauges();  // scrape sees live occupancy
    net::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::ostringstream os;
    telemetry::WriteMetricsProm(os);
    r.body = std::move(os).str();
    return r;
  });
  http.Handle("/healthz", [](const net::HttpRequest&) {
    net::HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  http.Handle("/readyz", [&sup](const net::HttpRequest&) {
    net::HttpResponse r;
    if (sup.Ready()) {
      r.body = "ready\n";
    } else {
      r.status = 503;
      r.body = "starting: journal replay / window rebuild in progress\n";
    }
    return r;
  });
  http.Handle("/statusz", [&sup](const net::HttpRequest&) {
    net::HttpResponse r;
    r.content_type = "application/json";
    if (!sup.Ready()) {
      r.status = 503;
      r.body = "{\"schema\":\"acobe.statusz.v1\",\"ready\":false}\n";
      return r;
    }
    r.body = StatuszJson(sup);
    return r;
  });
  http.Handle("/cycles", [&sup](const net::HttpRequest& req) {
    net::HttpResponse r;
    r.content_type = "application/json";
    std::size_t n = 64;
    const std::string raw = req.QueryParam("n", "64");
    try {
      n = static_cast<std::size_t>(cli::ParseInt("n", raw.c_str(), 1, 4096));
    } catch (const cli::FlagError&) {
      r.status = 400;
      r.content_type = "text/plain; charset=utf-8";
      r.body = "bad query parameter n (want an integer in [1, 4096])\n";
      return r;
    }
    r.body = CyclesJson(sup, n);
    return r;
  });
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig cfg;
  cfg.ingest.ts_min = kTsMin;
  cfg.ingest.ts_max = kTsMax;
  std::string health_out, metrics_out;
  int health_interval_ms = 1000;
  int poll_ms = 500;
  bool drain = false;
  long long max_cycles = 0;  // 0 = unbounded
  bool listen_enabled = false;
  std::string listen_address;
  std::uint16_t listen_port = 0;

  const long long kMaxInt = std::numeric_limits<int>::max();
  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--watch=", 8) == 0) {
        cfg.watch_dir = arg + 8;
      } else if (std::strncmp(arg, "--out=", 6) == 0) {
        cfg.out_dir = arg + 6;
      } else if (std::strncmp(arg, "--roster=", 9) == 0) {
        cfg.roster_path = arg + 9;
      } else if (std::strncmp(arg, "--window-days=", 14) == 0) {
        cfg.window_days =
            static_cast<int>(cli::ParseInt(arg, arg + 14, 3, kMaxInt));
      } else if (std::strncmp(arg, "--train-days=", 13) == 0) {
        cfg.train_days =
            static_cast<int>(cli::ParseInt(arg, arg + 13, 2, kMaxInt));
      } else if (std::strncmp(arg, "--omega=", 8) == 0) {
        cfg.omega = static_cast<int>(cli::ParseInt(arg, arg + 8, 2, kMaxInt));
      } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
        cfg.epochs = static_cast<int>(cli::ParseInt(arg, arg + 9, 1, kMaxInt));
      } else if (std::strncmp(arg, "--votes=", 8) == 0) {
        cfg.votes = static_cast<int>(cli::ParseInt(arg, arg + 8, 1, kMaxInt));
      } else if (std::strncmp(arg, "--top=", 6) == 0) {
        cfg.top = static_cast<int>(cli::ParseInt(arg, arg + 6, 1, kMaxInt));
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        cfg.seed = static_cast<std::uint64_t>(
            cli::ParseInt(arg, arg + 7, 0, std::numeric_limits<long long>::max()));
      } else if (std::strncmp(arg, "--alert-top=", 12) == 0) {
        cfg.top_positions =
            static_cast<int>(cli::ParseInt(arg, arg + 12, 1, kMaxInt));
      } else if (std::strncmp(arg, "--persistence-days=", 19) == 0) {
        cfg.persistence_days =
            static_cast<int>(cli::ParseInt(arg, arg + 19, 1, kMaxInt));
      } else if (std::strncmp(arg, "--cooloff-days=", 15) == 0) {
        cfg.cooloff_days =
            static_cast<int>(cli::ParseInt(arg, arg + 15, 1, kMaxInt));
      } else if (std::strncmp(arg, "--min-dept-users=", 17) == 0) {
        cfg.min_dept_users = static_cast<std::size_t>(
            cli::ParseInt(arg, arg + 17, 1, kMaxInt));
      } else if (std::strncmp(arg, "--shards=", 9) == 0) {
        cfg.shards = static_cast<int>(cli::ParseInt(arg, arg + 9, 1, 65536));
      } else if (std::strncmp(arg, "--queue-rows=", 13) == 0) {
        cfg.queue_rows = static_cast<std::size_t>(
            cli::ParseInt(arg, arg + 13, 1, kMaxInt));
      } else if (std::strncmp(arg, "--queue-mb=", 11) == 0) {
        cfg.queue_bytes = static_cast<std::size_t>(cli::ParseInt(
                              arg, arg + 11, 1, 1 << 20)) << 20;
      } else if (std::strncmp(arg, "--admission=", 12) == 0) {
        cfg.admission = AdmissionPolicyFromString(arg + 12);
      } else if (std::strncmp(arg, "--retries=", 10) == 0) {
        cfg.backoff.max_retries =
            static_cast<int>(cli::ParseInt(arg, arg + 10, 0, kMaxInt));
      } else if (std::strncmp(arg, "--backoff-base-ms=", 18) == 0) {
        cfg.backoff.base_ms = cli::ParseDouble(arg, arg + 18, 0.0, 1e9);
      } else if (std::strncmp(arg, "--backoff-cap-ms=", 17) == 0) {
        cfg.backoff.cap_ms = cli::ParseDouble(arg, arg + 17, 0.0, 1e9);
      } else if (std::strncmp(arg, "--backoff-seed=", 15) == 0) {
        cfg.backoff.seed = static_cast<std::uint64_t>(cli::ParseInt(
            arg, arg + 15, 0, std::numeric_limits<long long>::max()));
      } else if (std::strncmp(arg, "--ingest=", 9) == 0) {
        cfg.ingest.policy = IngestPolicyFromString(arg + 9);
      } else if (std::strncmp(arg, "--error-budget=", 15) == 0) {
        cfg.ingest.error_budget = cli::ParseDouble(arg, arg + 15, 0.0, 1.0);
      } else if (std::strncmp(arg, "--poll-ms=", 10) == 0) {
        poll_ms = static_cast<int>(cli::ParseInt(arg, arg + 10, 10, 3600000));
      } else if (std::strcmp(arg, "--drain") == 0) {
        drain = true;
      } else if (std::strncmp(arg, "--max-cycles=", 13) == 0) {
        max_cycles = cli::ParseInt(arg, arg + 13, 1, kMaxInt);
      } else if (std::strncmp(arg, "--health-out=", 13) == 0) {
        health_out = arg + 13;
      } else if (std::strncmp(arg, "--health-interval-ms=", 21) == 0) {
        health_interval_ms =
            static_cast<int>(cli::ParseInt(arg, arg + 21, 10, 3600000));
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_out = arg + 14;
      } else if (std::strncmp(arg, "--listen=", 9) == 0) {
        net::ParseListenSpec(arg + 9, &listen_address, &listen_port);
        listen_enabled = true;
      } else if (std::strcmp(arg, "--version") == 0) {
        const BuildInfo info = GetBuildInfo();
        std::printf("acobe-serve %s (%s, %s)\n", info.version.c_str(),
                    info.build_type.c_str(), info.simd.c_str());
        return 0;
      } else if (std::strcmp(arg, "--help") == 0) {
        Usage();
        return 0;
      } else {
        std::fprintf(stderr, "acobe-serve: unknown argument %s\n", arg);
        Usage();
        return kExitUsage;
      }
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "acobe-serve: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (cfg.watch_dir.empty() || cfg.out_dir.empty() ||
      cfg.roster_path.empty()) {
    std::fprintf(stderr,
                 "acobe-serve: --watch, --out and --roster are required\n");
    Usage();
    return kExitUsage;
  }

  InstallShutdownHandler();
  telemetry::EnableMetrics(true);
  if (!health_out.empty()) {
    health::HealthOptions opts;
    opts.path = health_out;
    opts.interval_ms = health_interval_ms;
    opts.tool = "acobe-serve";
    if (!health::StartHealth(opts)) return kExitFailure;
  }

  int exit_code = 0;
  try {
    ServiceSupervisor sup(cfg);
    // The server is declared after `sup` so unwinding stops it (joining
    // every handler thread that captured &sup) before `sup` dies. It
    // starts *before* sup.Start(): /healthz answers 200 and /readyz 503
    // throughout journal replay, flipping to ready only when Start()
    // returns.
    net::HttpServer http;
    if (listen_enabled) {
      RegisterEndpoints(http, sup);
      net::HttpServerConfig hcfg;
      hcfg.address = listen_address;
      hcfg.port = listen_port;
      http.Start(hcfg);
      std::filesystem::create_directories(cfg.out_dir);
      const std::string addr_path =
          (std::filesystem::path(cfg.out_dir) / "http.addr").string();
      std::ofstream addr_out(addr_path, std::ios::trunc);
      addr_out << http.bound_address() << "\n";
      addr_out.close();
      std::fprintf(stderr, "acobe-serve: listening on http://%s\n",
                   http.bound_address().c_str());
    }
    health::SetStage("start");
    sup.Start();
    if (sup.recovered()) {
      std::fprintf(stderr,
                   "acobe-serve: resumed at cycle %llu (%llu alerts so far, "
                   "%d shard(s) quarantined)\n",
                   static_cast<unsigned long long>(sup.cycles()),
                   static_cast<unsigned long long>(sup.alerts_emitted()),
                   sup.quarantined_shards());
    }

    std::uint64_t cycles_this_process = 0;
    bool stop = false;
    while (!stop) {
      health::SetStage("watch");
      const std::vector<CycleReport> reports = sup.ProcessAvailableBatches();
      for (const CycleReport& r : reports) {
        std::string window = "-";
        if (r.window_end >= r.window_start) {
          window = Date::FromDayNumber(r.window_start).ToString() + ".." +
                   Date::FromDayNumber(r.window_end).ToString();
        }
        std::string scored = "ingest-only";
        if (r.scored_to >= r.scored_from) {
          scored = Date::FromDayNumber(r.scored_from).ToString() + ".." +
                   Date::FromDayNumber(r.scored_to).ToString();
        }
        std::fprintf(stderr,
                     "cycle %llu batch=%s window=%s scored=%s depts=%zu "
                     "alerts=%zu events=%zu dropped=%zu\n",
                     static_cast<unsigned long long>(r.cycle),
                     r.batch.c_str(), window.c_str(), scored.c_str(),
                     r.departments_scored, r.alerts, r.events_admitted,
                     r.events_dropped);
      }
      cycles_this_process += reports.size();

      if (ShutdownRequested()) break;
      if (max_cycles > 0 &&
          cycles_this_process >= static_cast<std::uint64_t>(max_cycles)) {
        break;
      }
      if (drain) {
        if (sup.PendingBatches().empty()) break;
        continue;  // more arrived while we were busy
      }
      // Idle: poll for new drops, waking early on a shutdown signal.
      int slept = 0;
      while (slept < poll_ms && !ShutdownRequested()) {
        const int step = std::min(50, poll_ms - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(step));
        slept += step;
      }
      if (ShutdownRequested()) stop = true;
    }

    const char* reason = ShutdownRequested() ? "signal" : "drained";
    sup.Finish(reason);
    std::fprintf(stderr,
                 "acobe-serve: %s after %llu cycle(s), %llu alert(s) total\n",
                 reason, static_cast<unsigned long long>(sup.cycles()),
                 static_cast<unsigned long long>(sup.alerts_emitted()));
  } catch (const JournalError& e) {
    std::fprintf(stderr, "acobe-serve: %s\n", e.what());
    exit_code = kExitCorruptArtifact;
  } catch (const IngestError& e) {
    std::fprintf(stderr, "acobe-serve: %s\n", e.what());
    exit_code = kExitBadInput;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "acobe-serve: %s\n", e.what());
    exit_code = kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acobe-serve: %s\n", e.what());
    exit_code = kExitFailure;
  }

  health::SetStage("done");
  health::StopHealth();
  if (!telemetry::FlushTelemetry("acobe-serve", metrics_out, "", std::cerr)) {
    exit_code = exit_code ? exit_code : kExitFailure;
  }
  return exit_code;
}
