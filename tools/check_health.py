#!/usr/bin/env python3
"""Validate an acobe.health.v1 heartbeat file (--health-out output).

Usage: check_health.py HEALTH_FILE [--require-final] [--min-beats=N]
                       [--daemon]

Checks, per line and across the file:
  - every line parses as JSON with schema acobe.health.v1 (a torn final
    line is only tolerated when the process crashed; here it is an
    error — CI runs complete),
  - seq starts at 1 and increases by exactly 1,
  - uptime_ms is nondecreasing,
  - each counter's total is nondecreasing across beats and delta/rate
    are internally consistent (delta == total - previous total),
  - stage/stages/rss/cpu fields exist with sane types and values,
  - with --require-final: the last beat has final == true and its stage
    is "done", and at least --min-beats lines exist (default 2: the
    startup beat plus the final one),
  - with --daemon: the file came from acobe_serve, so the per-shard
    queue gauges (service.queue.rows.shardK / .bytes.shardK /
    .shed_total.shardK) must appear in at least one beat, agree on the
    shard count, keep bytes a whole multiple of the packed-event size,
    and keep each shard's shed_total nondecreasing across beats.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

import json
import re
import sys

SCHEMA = "acobe.health.v1"
PACKED_EVENT_BYTES = 24  # sizeof(acobe::PackedEvent), static_asserted
QUEUE_GAUGE_RE = re.compile(
    r"^service\.queue\.(rows|bytes|shed_total)\.shard(\d+)$")


def fail(msg):
    print(f"check_health: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_beat(i, beat):
    """Structural checks on one heartbeat."""
    if beat.get("schema") != SCHEMA:
        fail(f"line {i}: schema {beat.get('schema')!r} != {SCHEMA!r}")
    for key, kind in (
        ("tool", str),
        ("seq", int),
        ("uptime_ms", int),
        ("interval_ms", int),
        ("final", bool),
        ("stage", dict),
        ("stages", list),
        ("rss_bytes", int),
        ("peak_rss_bytes", int),
        ("cpu", dict),
        ("counters", dict),
        ("gauges", dict),
        ("spans", list),
    ):
        if not isinstance(beat.get(key), kind):
            fail(f"line {i}: field {key!r} missing or not {kind.__name__}")
    stage = beat["stage"]
    for key in ("name", "done", "total", "elapsed_s", "eta_s"):
        if key not in stage:
            fail(f"line {i}: stage.{key} missing")
    if stage["done"] < 0 or stage["total"] < 0:
        fail(f"line {i}: negative stage progress")
    if stage["total"] > 0 and stage["done"] > stage["total"]:
        fail(f"line {i}: stage done {stage['done']} > total {stage['total']}")
    if beat["rss_bytes"] < 0 or beat["peak_rss_bytes"] < beat["rss_bytes"]:
        # peak is the kernel high-water mark; it can never trail current.
        fail(f"line {i}: peak_rss_bytes < rss_bytes")
    if beat["cpu"].get("proc_seconds", 0) < 0:
        fail(f"line {i}: negative cpu.proc_seconds")
    for name, c in beat["counters"].items():
        for key in ("total", "delta", "rate"):
            if key not in c:
                fail(f"line {i}: counter {name!r} missing {key!r}")
        if c["total"] < 0 or c["delta"] < 0 or c["rate"] < 0:
            fail(f"line {i}: counter {name!r} has a negative field")
    for s in beat["stages"]:
        for key in ("stage", "seconds", "done", "total"):
            if key not in s:
                fail(f"line {i}: stages[] entry missing {key!r}")
        if s["seconds"] < 0:
            fail(f"line {i}: stage {s['stage']!r} negative wall time")
    for s in beat["spans"]:
        for key in ("name", "parent", "count", "total_ms", "self_ms"):
            if key not in s:
                fail(f"line {i}: spans[] entry missing {key!r}")
        if s["self_ms"] > s["total_ms"] + 1e-6:
            fail(f"line {i}: span {s['name']!r} self_ms > total_ms")


def check_daemon_gauges(beats):
    """Daemon-mode validation of the per-shard queue gauges."""
    shards_seen = set()
    beats_with_gauges = 0
    prev_shed = {}
    for i, beat in enumerate(beats, 1):
        queue = {}  # shard -> {kind: value}
        for name, value in beat["gauges"].items():
            m = QUEUE_GAUGE_RE.match(name)
            if not m:
                continue
            kind, shard = m.group(1), int(m.group(2))
            queue.setdefault(shard, {})[kind] = value
        if not queue:
            continue
        beats_with_gauges += 1
        shards_seen.update(queue)
        for shard, kinds in sorted(queue.items()):
            for kind in ("rows", "bytes", "shed_total"):
                if kind not in kinds:
                    fail(f"line {i}: shard {shard} lacks queue gauge "
                         f"{kind!r} (has {sorted(kinds)})")
                if kinds[kind] < 0:
                    fail(f"line {i}: shard {shard} queue {kind} negative")
            if kinds["bytes"] % PACKED_EVENT_BYTES != 0:
                fail(f"line {i}: shard {shard} queue bytes "
                     f"{kinds['bytes']} not a multiple of "
                     f"{PACKED_EVENT_BYTES}")
            if kinds["shed_total"] < prev_shed.get(shard, 0):
                fail(f"line {i}: shard {shard} shed_total decreased "
                     f"({prev_shed[shard]} -> {kinds['shed_total']})")
            prev_shed[shard] = kinds["shed_total"]
    if beats_with_gauges == 0:
        fail("--daemon: no beat carries service.queue.* gauges")
    if shards_seen != set(range(len(shards_seen))):
        fail(f"--daemon: shard ids not contiguous from 0: "
             f"{sorted(shards_seen)}")
    return beats_with_gauges, len(shards_seen)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    require_final = "--require-final" in sys.argv
    daemon = "--daemon" in sys.argv
    min_beats = 2
    for a in sys.argv[1:]:
        if a.startswith("--min-beats="):
            min_beats = int(a.split("=", 1)[1])
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(1)

    try:
        with open(args[0], encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"cannot read {args[0]}: {e}")
    if not lines:
        fail(f"{args[0]} holds no heartbeats")

    beats = []
    for i, line in enumerate(lines, 1):
        try:
            beats.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"line {i}: not JSON ({e})")

    prev = None
    prev_counters = {}
    for i, beat in enumerate(beats, 1):
        check_beat(i, beat)
        if beat["seq"] != i:
            fail(f"line {i}: seq {beat['seq']} != expected {i}")
        if prev is not None:
            if beat["uptime_ms"] < prev["uptime_ms"]:
                fail(f"line {i}: uptime_ms went backwards")
            if prev["final"]:
                fail(f"line {i}: beats after a final heartbeat")
        for name, c in beat["counters"].items():
            before = prev_counters.get(name, 0)
            if c["total"] < before:
                fail(f"line {i}: counter {name!r} decreased "
                     f"({before} -> {c['total']})")
            if c["delta"] != c["total"] - before:
                fail(f"line {i}: counter {name!r} delta {c['delta']} != "
                     f"total {c['total']} - previous {before}")
            prev_counters[name] = c["total"]
        prev = beat

    if require_final:
        if len(beats) < min_beats:
            fail(f"only {len(beats)} beats; expected >= {min_beats}")
        last = beats[-1]
        if not last["final"]:
            fail("last heartbeat is not final")
        if last["stage"]["name"] != "done":
            fail(f"final stage {last['stage']['name']!r} != 'done'")

    daemon_note = ""
    if daemon:
        gauge_beats, n_shards = check_daemon_gauges(beats)
        daemon_note = (f", queue gauges for {n_shards} shard(s) "
                       f"in {gauge_beats} beat(s)")

    tools = {b["tool"] for b in beats}
    print(f"check_health: OK: {len(beats)} beats from {'/'.join(sorted(tools))}"
          f", {len(prev_counters)} counters, "
          f"{len(beats[-1]['stages'])} stages{daemon_note}")


if __name__ == "__main__":
    main()
