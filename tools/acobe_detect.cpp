// acobe-detect: runs ACOBE over a directory of CERT-layout CSV logs
// (as produced by acobe-gen or converted from the real CERT dataset)
// and prints the ordered investigation list per department.
//
//   acobe-detect --in=DIR --train-end=YYYY-MM-DD [--test-end=YYYY-MM-DD]
//                [--omega=N] [--epochs=N] [--votes=N] [--top=N]
//                [--threads=N]
//
// --threads: worker threads for training/scoring/deviation (0 = the
// ACOBE_THREADS environment variable, else hardware concurrency).
// Results are identical for any thread count.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "core/detector.h"
#include "features/cert_features.h"
#include "logs/log_io.h"

using namespace acobe;

namespace {

void Usage() {
  std::printf(
      "acobe-detect --in=DIR --train-end=YYYY-MM-DD\n"
      "             [--test-end=YYYY-MM-DD] [--omega=N] [--epochs=N]\n"
      "             [--votes=N] [--top=N] [--threads=N]\n");
}

bool ReadInto(const std::string& path, LogStore& store,
              void (*reader)(std::istream&, LogStore&)) {
  std::ifstream in(path);
  if (!in) return false;
  reader(in, store);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_dir;
  std::string train_end_text, test_end_text;
  int omega = 14, epochs = 25, votes = 2, top = 10, threads = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in_dir = arg + 5;
    } else if (std::strncmp(arg, "--train-end=", 12) == 0) {
      train_end_text = arg + 12;
    } else if (std::strncmp(arg, "--test-end=", 11) == 0) {
      test_end_text = arg + 11;
    } else if (std::strncmp(arg, "--omega=", 8) == 0) {
      omega = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
      epochs = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--votes=", 8) == 0) {
      votes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = std::atoi(arg + 6);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else {
      Usage();
      return std::strcmp(arg, "--help") == 0 ? 0 : 2;
    }
  }
  if (in_dir.empty() || train_end_text.empty()) {
    Usage();
    return 2;
  }

  LogStore store;
  bool any = false;
  any |= ReadInto(in_dir + "/device.csv", store, ReadDeviceCsv);
  any |= ReadInto(in_dir + "/file.csv", store, ReadFileCsv);
  any |= ReadInto(in_dir + "/http.csv", store, ReadHttpCsv);
  any |= ReadInto(in_dir + "/logon.csv", store, ReadLogonCsv);
  if (!ReadInto(in_dir + "/ldap.csv", store, ReadLdapCsv) || !any) {
    std::fprintf(stderr, "no readable logs under %s\n", in_dir.c_str());
    return 1;
  }
  store.SortChronologically();
  std::fprintf(stderr, "loaded %zu events, %zu users\n", store.TotalEvents(),
               store.users().size());

  // Day range from the data itself.
  Timestamp lo = std::numeric_limits<Timestamp>::max();
  Timestamp hi = std::numeric_limits<Timestamp>::min();
  auto scan = [&](auto const& events) {
    for (const auto& e : events) {
      lo = std::min(lo, e.ts);
      hi = std::max(hi, e.ts);
    }
  };
  scan(store.devices());
  scan(store.file_events());
  scan(store.http_events());
  scan(store.logons());
  if (lo > hi) {
    std::fprintf(stderr, "no events\n");
    return 1;
  }
  const Date start = DateOf(lo);
  const Date last = DateOf(hi);
  const int days = static_cast<int>(DaysBetween(start, last)) + 1;

  CertAcobeExtractor extractor(start, days);
  ReplayStore(store, extractor);
  for (const LdapRecord& r : store.ldap()) {
    extractor.cube().RegisterUser(r.user);
  }

  const int train_end = static_cast<int>(
      DaysBetween(start, Date::FromString(train_end_text)));
  const int test_end =
      test_end_text.empty()
          ? days
          : static_cast<int>(
                DaysBetween(start, Date::FromString(test_end_text))) + 1;
  if (train_end <= 0 || train_end >= test_end) {
    std::fprintf(stderr, "bad train/test split\n");
    return 2;
  }

  DetectorSpec spec;
  spec.deviation.omega = omega;
  spec.deviation.matrix_days = omega;
  spec.ensemble.encoder_dims = {64, 32, 16, 8};
  spec.ensemble.train.epochs = epochs;
  spec.ensemble.train_stride = 2;
  spec.ensemble.optimizer = OptimizerKind::kAdam;
  spec.ensemble.learning_rate = 1e-3f;
  spec.critic_votes = votes;
  spec.ensemble.threads = threads;  // deviation inherits via Detector::Run
  const Detector detector(spec);

  for (const std::string& department : store.Departments()) {
    const auto members = store.UsersInDepartment(department);
    if (members.size() < 3) continue;
    std::printf("\n=== %s (%zu users) ===\n", department.c_str(),
                members.size());
    const DetectionOutput out =
        detector.Run(extractor.cube(), extractor.catalog(), members, 0,
                     train_end, train_end, test_end);
    for (std::size_t i = 0;
         i < out.list.size() && i < static_cast<std::size_t>(top); ++i) {
      const UserId user = out.members[out.list[i].user_idx];
      std::printf("%3zu. %-10s priority %.0f\n", i + 1,
                  store.users().NameOf(user).c_str(), out.list[i].priority);
    }
  }
  return 0;
}
