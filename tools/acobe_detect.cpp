// acobe-detect: runs ACOBE over a directory of CERT-layout CSV logs
// (as produced by acobe-gen or converted from the real CERT dataset)
// and prints the ordered investigation list per department.
//
//   acobe-detect --in=DIR --train-end=YYYY-MM-DD [--test-end=YYYY-MM-DD]
//                [--omega=N] [--epochs=N] [--votes=N] [--top=N]
//                [--threads=N] [--metrics-out=FILE] [--trace-out=FILE]
//
// --threads: worker threads for training/scoring/deviation (0 = the
// ACOBE_THREADS environment variable, else hardware concurrency).
// Results are identical for any thread count, and identical with
// telemetry on or off.
//
// Telemetry: a run report always lands on stderr; --metrics-out writes
// the metrics registry as JSON (counters, per-phase span timings,
// per-aspect per-epoch losses), --trace-out writes a chrome://tracing /
// Perfetto trace with spans attributed to worker threads.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "common/telemetry.h"
#include "common/trace.h"
#include "core/detector.h"
#include "features/cert_features.h"
#include "logs/log_io.h"

using namespace acobe;

namespace {

void Usage() {
  std::printf(
      "acobe-detect --in=DIR --train-end=YYYY-MM-DD\n"
      "             [--test-end=YYYY-MM-DD] [--omega=N] [--epochs=N]\n"
      "             [--votes=N] [--top=N] [--threads=N]\n"
      "             [--metrics-out=FILE] [--trace-out=FILE]\n"
      "  --omega=N        deviation window, days (>= 2; default 14)\n"
      "  --epochs=N       training epochs per aspect (>= 1; default 25)\n"
      "  --votes=N        critic votes (>= 1; default 2)\n"
      "  --top=N          list entries printed per department (>= 1)\n"
      "  --threads=N      worker threads (0 = ACOBE_THREADS/hardware)\n"
      "  --metrics-out=F  write telemetry metrics JSON to F\n"
      "  --trace-out=F    write chrome://tracing trace JSON to F\n");
}

[[noreturn]] void DieBadFlag(const char* arg, const std::string& why) {
  std::fprintf(stderr, "acobe-detect: bad argument '%s': %s\n", arg,
               why.c_str());
  Usage();
  std::exit(2);
}

/// Strict integer flag value: the whole value must be digits (optional
/// leading minus), parse without overflow, and land in [min, max].
/// std::atoi's silent garbage-to-0 / negative acceptance is exactly
/// what this replaces.
int ParseIntValue(const char* arg, const char* value, int min, int max) {
  if (*value == '\0') DieBadFlag(arg, "empty value");
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (*end != '\0') DieBadFlag(arg, "not an integer");
  if (errno == ERANGE || parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max()) {
    DieBadFlag(arg, "out of range");
  }
  if (parsed < min || parsed > max) {
    DieBadFlag(arg, "must be in [" + std::to_string(min) + ", " +
                        std::to_string(max) + "]");
  }
  return static_cast<int>(parsed);
}

bool ReadInto(const std::string& path, LogStore& store,
              void (*reader)(std::istream&, LogStore&)) {
  std::ifstream in(path);
  if (!in) return false;
  reader(in, store);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_dir;
  std::string train_end_text, test_end_text;
  std::string metrics_out, trace_out;
  int omega = 14, epochs = 25, votes = 2, top = 10, threads = 0;

  const int kMaxInt = std::numeric_limits<int>::max();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in_dir = arg + 5;
    } else if (std::strncmp(arg, "--train-end=", 12) == 0) {
      train_end_text = arg + 12;
    } else if (std::strncmp(arg, "--test-end=", 11) == 0) {
      test_end_text = arg + 11;
    } else if (std::strncmp(arg, "--omega=", 8) == 0) {
      omega = ParseIntValue(arg, arg + 8, 2, kMaxInt);
    } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
      epochs = ParseIntValue(arg, arg + 9, 1, kMaxInt);
    } else if (std::strncmp(arg, "--votes=", 8) == 0) {
      votes = ParseIntValue(arg, arg + 8, 1, kMaxInt);
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = ParseIntValue(arg, arg + 6, 1, kMaxInt);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ParseIntValue(arg, arg + 10, 0, kMaxInt);
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "acobe-detect: unknown argument '%s'\n", arg);
      Usage();
      return 2;
    }
  }
  if (in_dir.empty() || train_end_text.empty()) {
    std::fprintf(stderr, "acobe-detect: --in and --train-end are required\n");
    Usage();
    return 2;
  }

  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());

  LogStore store;
  bool any = false;
  any |= ReadInto(in_dir + "/device.csv", store, ReadDeviceCsv);
  any |= ReadInto(in_dir + "/file.csv", store, ReadFileCsv);
  any |= ReadInto(in_dir + "/http.csv", store, ReadHttpCsv);
  any |= ReadInto(in_dir + "/logon.csv", store, ReadLogonCsv);
  if (!ReadInto(in_dir + "/ldap.csv", store, ReadLdapCsv) || !any) {
    std::fprintf(stderr, "no readable logs under %s\n", in_dir.c_str());
    return 1;
  }
  store.SortChronologically();
  std::fprintf(stderr, "loaded %zu events, %zu users\n", store.TotalEvents(),
               store.users().size());

  // Day range from the data itself.
  Timestamp lo = std::numeric_limits<Timestamp>::max();
  Timestamp hi = std::numeric_limits<Timestamp>::min();
  auto scan = [&](auto const& events) {
    for (const auto& e : events) {
      lo = std::min(lo, e.ts);
      hi = std::max(hi, e.ts);
    }
  };
  scan(store.devices());
  scan(store.file_events());
  scan(store.http_events());
  scan(store.logons());
  if (lo > hi) {
    std::fprintf(stderr, "no events\n");
    return 1;
  }
  const Date start = DateOf(lo);
  const Date last = DateOf(hi);
  const int days = static_cast<int>(DaysBetween(start, last)) + 1;

  CertAcobeExtractor extractor(start, days);
  {
    telemetry::TraceSpan extract_span("detect.extract_features");
    ReplayStore(store, extractor);
    for (const LdapRecord& r : store.ldap()) {
      extractor.cube().RegisterUser(r.user);
    }
  }
  ACOBE_GAUGE_SET("features.days", extractor.cube().days());
  ACOBE_GAUGE_SET("features.features", extractor.cube().features());
  ACOBE_GAUGE_SET("features.frames", extractor.cube().frames());
  ACOBE_GAUGE_SET("features.aspects", extractor.catalog().aspects().size());

  int train_end = 0, test_end = 0;
  try {
    train_end = static_cast<int>(
        DaysBetween(start, Date::FromString(train_end_text)));
    test_end =
        test_end_text.empty()
            ? days
            : static_cast<int>(
                  DaysBetween(start, Date::FromString(test_end_text))) + 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return 2;
  }
  if (train_end <= 0 || train_end >= test_end) {
    std::fprintf(stderr,
                 "acobe-detect: bad train/test split (train-end must fall "
                 "after the first event and before test-end)\n");
    return 2;
  }

  DetectorSpec spec;
  spec.deviation.omega = omega;
  spec.deviation.matrix_days = omega;
  spec.ensemble.encoder_dims = {64, 32, 16, 8};
  spec.ensemble.train.epochs = epochs;
  spec.ensemble.train_stride = 2;
  spec.ensemble.optimizer = OptimizerKind::kAdam;
  spec.ensemble.learning_rate = 1e-3f;
  spec.critic_votes = votes;
  spec.ensemble.threads = threads;  // deviation inherits via Detector::Run
  const Detector detector(spec);

  for (const std::string& department : store.Departments()) {
    const auto members = store.UsersInDepartment(department);
    if (members.size() < 3) continue;
    std::printf("\n=== %s (%zu users) ===\n", department.c_str(),
                members.size());
    const DetectionOutput out =
        detector.Run(extractor.cube(), extractor.catalog(), members, 0,
                     train_end, train_end, test_end);
    for (std::size_t i = 0;
         i < out.list.size() && i < static_cast<std::size_t>(top); ++i) {
      const UserId user = out.members[out.list[i].user_idx];
      std::printf("%3zu. %-10s priority %.0f\n", i + 1,
                  store.users().NameOf(user).c_str(), out.list[i].priority);
    }
  }

  telemetry::WriteReport(std::cerr);
  if (!metrics_out.empty() && !telemetry::WriteMetricsJsonFile(metrics_out)) {
    std::fprintf(stderr, "acobe-detect: cannot write %s\n",
                 metrics_out.c_str());
    return 1;
  }
  if (!trace_out.empty() && !telemetry::WriteTraceJsonFile(trace_out)) {
    std::fprintf(stderr, "acobe-detect: cannot write %s\n", trace_out.c_str());
    return 1;
  }
  return 0;
}
