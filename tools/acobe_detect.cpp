// acobe-detect: runs ACOBE over a directory of CERT-layout CSV logs
// (as produced by acobe-gen or converted from the real CERT dataset)
// and prints the ordered investigation list per department.
//
//   acobe-detect --in=DIR --train-end=YYYY-MM-DD [--test-end=YYYY-MM-DD]
//                [--omega=N] [--epochs=N] [--votes=N] [--top=N]
//                [--threads=N] [--ingest=strict|permissive|quarantine]
//                [--error-budget=R] [--quarantine-dir=DIR]
//                [--checkpoint-dir=DIR] [--resume]
//                [--metrics-out=FILE] [--trace-out=FILE]
//
// --threads: worker threads for training/scoring/deviation (0 = the
// ACOBE_THREADS environment variable, else hardware concurrency).
// Results are identical for any thread count, and identical with
// telemetry on or off.
//
// Fault tolerance: --ingest=permissive skips malformed CSV rows under a
// bounded error budget (--error-budget, default 5%) instead of aborting
// on the first one; quarantine additionally copies each rejected raw
// row to <quarantine-dir>/<log>.rejected. Both imply
// consecutive-duplicate suppression (redelivered log rows).
// --checkpoint-dir saves each aspect's trained autoencoder as it
// completes; with --resume, a re-run after an interruption skips the
// already-trained aspects and reproduces the uninterrupted output
// bit-exactly.
//
// Exit codes: 0 ok, 1 runtime failure, 2 usage, 3 malformed input,
// 4 corrupt/mismatched artifact.
//
// Telemetry: a run report always lands on stderr; --metrics-out writes
// the metrics registry as JSON (counters, per-phase span timings,
// per-aspect per-epoch losses), --trace-out writes a chrome://tracing /
// Perfetto trace with spans attributed to worker threads.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "cli_util.h"
#include "common/faults.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/detector.h"
#include "features/cert_features.h"
#include "logs/log_io.h"

using namespace acobe;

namespace {

// Event-timestamp plausibility window: 1980-01-01 .. 2100-01-01. One
// corrupted-but-numeric timestamp outside this range would otherwise
// stretch the detected day span (and the measurement-cube allocation)
// by decades.
constexpr std::int64_t kTsMin = 315532800;
constexpr std::int64_t kTsMax = 4102444800;
// And a belt-and-braces cap on the resulting day span (the window above
// is ~43.8k days).
constexpr int kMaxDaySpan = 44000;

void Usage() {
  std::printf(
      "acobe-detect --in=DIR --train-end=YYYY-MM-DD\n"
      "             [--test-end=YYYY-MM-DD] [--omega=N] [--epochs=N]\n"
      "             [--votes=N] [--top=N] [--threads=N]\n"
      "             [--ingest=strict|permissive|quarantine]\n"
      "             [--error-budget=R] [--quarantine-dir=DIR]\n"
      "             [--checkpoint-dir=DIR] [--resume]\n"
      "             [--metrics-out=FILE] [--trace-out=FILE]\n"
      "  --omega=N           deviation window, days (>= 2; default 14)\n"
      "  --epochs=N          training epochs per aspect (>= 1; default 25)\n"
      "  --votes=N           critic votes (>= 1; default 2)\n"
      "  --top=N             list entries printed per department (>= 1)\n"
      "  --threads=N         worker threads (0 = ACOBE_THREADS/hardware)\n"
      "  --ingest=POLICY     malformed-row policy (default strict)\n"
      "  --error-budget=R    abort past this rejected-row fraction (def 0.05)\n"
      "  --quarantine-dir=D  write rejected raw rows under D\n"
      "  --checkpoint-dir=D  save per-aspect models under D as they train\n"
      "  --resume            reuse matching checkpoints from a killed run\n"
      "  --metrics-out=F     write telemetry metrics JSON to F\n"
      "  --trace-out=F       write chrome://tracing trace JSON to F\n"
      "exit codes: 0 ok, 1 failure, 2 usage, 3 bad input, 4 corrupt "
      "artifact\n");
}

using CsvReader = IngestStats (*)(std::istream&, LogStore&,
                                  const IngestOptions&, const std::string&);

/// Reads one log CSV under the run's ingest policy, wiring up the
/// per-file quarantine sink. Returns false when the file is absent.
bool ReadInto(const std::string& dir, const std::string& name, LogStore& store,
              CsvReader reader, IngestOptions options,
              const std::string& quarantine_dir, IngestStats& total) {
  std::ifstream in(dir + "/" + name);
  if (!in) return false;
  std::ofstream sink;
  if (options.policy == IngestPolicy::kQuarantine && !quarantine_dir.empty()) {
    sink.open(quarantine_dir + "/" + name + ".rejected");
    options.quarantine = &sink;
  }
  const IngestStats stats = reader(in, store, options, name);
  if (stats.rows_rejected > 0) {
    std::fprintf(stderr,
                 "acobe-detect: %s: rejected %zu/%zu rows (first: %s)\n",
                 name.c_str(), stats.rows_rejected, stats.rows_read,
                 stats.first_error.c_str());
  }
  total.Merge(stats);
  return true;
}

/// Checkpoint directories are per department; department names come
/// from the data, so squash anything path-hostile.
std::string SanitizePathComponent(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? "_" : out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_dir;
  std::string train_end_text, test_end_text;
  std::string metrics_out, trace_out;
  std::string quarantine_dir, checkpoint_dir;
  int omega = 14, epochs = 25, votes = 2, top = 10, threads = 0;
  bool resume = false;
  IngestOptions ingest;
  ingest.ts_min = kTsMin;
  ingest.ts_max = kTsMax;

  const int kMaxInt = std::numeric_limits<int>::max();
  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--in=", 5) == 0) {
        in_dir = arg + 5;
      } else if (std::strncmp(arg, "--train-end=", 12) == 0) {
        train_end_text = arg + 12;
      } else if (std::strncmp(arg, "--test-end=", 11) == 0) {
        test_end_text = arg + 11;
      } else if (std::strncmp(arg, "--omega=", 8) == 0) {
        omega = static_cast<int>(cli::ParseInt(arg, arg + 8, 2, kMaxInt));
      } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
        epochs = static_cast<int>(cli::ParseInt(arg, arg + 9, 1, kMaxInt));
      } else if (std::strncmp(arg, "--votes=", 8) == 0) {
        votes = static_cast<int>(cli::ParseInt(arg, arg + 8, 1, kMaxInt));
      } else if (std::strncmp(arg, "--top=", 6) == 0) {
        top = static_cast<int>(cli::ParseInt(arg, arg + 6, 1, kMaxInt));
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        threads = static_cast<int>(cli::ParseInt(arg, arg + 10, 0, kMaxInt));
      } else if (std::strncmp(arg, "--ingest=", 9) == 0) {
        ingest.policy = IngestPolicyFromString(arg + 9);
      } else if (std::strncmp(arg, "--error-budget=", 15) == 0) {
        ingest.error_budget = cli::ParseDouble(arg, arg + 15, 0.0, 1.0);
      } else if (std::strncmp(arg, "--quarantine-dir=", 17) == 0) {
        quarantine_dir = arg + 17;
      } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
        checkpoint_dir = arg + 17;
      } else if (std::strcmp(arg, "--resume") == 0) {
        resume = true;
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_out = arg + 14;
      } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_out = arg + 12;
      } else if (std::strcmp(arg, "--help") == 0) {
        Usage();
        return 0;
      } else {
        std::fprintf(stderr, "acobe-detect: unknown argument '%s'\n", arg);
        Usage();
        return kExitUsage;
      }
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return kExitUsage;
  } catch (const std::invalid_argument& e) {  // IngestPolicyFromString
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (in_dir.empty() || train_end_text.empty()) {
    std::fprintf(stderr, "acobe-detect: --in and --train-end are required\n");
    Usage();
    return kExitUsage;
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "acobe-detect: --resume requires --checkpoint-dir\n");
    Usage();
    return kExitUsage;
  }
  // Redelivered (duplicated) rows are a fault the permissive policies
  // recover from, so they imply consecutive-duplicate suppression.
  if (ingest.policy != IngestPolicy::kStrict) {
    ingest.drop_consecutive_duplicates = true;
  }
  if (ingest.policy == IngestPolicy::kQuarantine && !quarantine_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(quarantine_dir, ec);
    if (ec) {
      std::fprintf(stderr, "acobe-detect: cannot create %s: %s\n",
                   quarantine_dir.c_str(), ec.message().c_str());
      return kExitFailure;
    }
  }

  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());

  LogStore store;
  IngestStats ingest_stats;
  bool any = false;
  try {
    any |= ReadInto(in_dir, "device.csv", store, ReadDeviceCsv, ingest,
                    quarantine_dir, ingest_stats);
    any |= ReadInto(in_dir, "file.csv", store, ReadFileCsv, ingest,
                    quarantine_dir, ingest_stats);
    any |= ReadInto(in_dir, "http.csv", store, ReadHttpCsv, ingest,
                    quarantine_dir, ingest_stats);
    any |= ReadInto(in_dir, "logon.csv", store, ReadLogonCsv, ingest,
                    quarantine_dir, ingest_stats);
    // The population roster must be intact in every policy: a dropped
    // ldap row silently deletes a user from the study.
    IngestOptions roster = ingest;
    roster.policy = IngestPolicy::kStrict;
    if (!ReadInto(in_dir, "ldap.csv", store, ReadLdapCsv, roster,
                  quarantine_dir, ingest_stats) ||
        !any) {
      std::fprintf(stderr, "no readable logs under %s\n", in_dir.c_str());
      return kExitBadInput;
    }
  } catch (const IngestError& e) {
    std::fprintf(stderr, "acobe-detect: malformed input: %s\n", e.what());
    return kExitBadInput;
  }
  store.SortChronologically();
  std::fprintf(stderr, "loaded %zu events, %zu users\n", store.TotalEvents(),
               store.users().size());
  if (ingest_stats.rows_rejected > 0 || ingest_stats.rows_deduped > 0) {
    std::fprintf(stderr,
                 "ingest: %zu rows read, %zu rejected, %zu quarantined, "
                 "%zu duplicates dropped\n",
                 ingest_stats.rows_read, ingest_stats.rows_rejected,
                 ingest_stats.rows_quarantined, ingest_stats.rows_deduped);
  }

  // Day range from the data itself.
  Timestamp lo = std::numeric_limits<Timestamp>::max();
  Timestamp hi = std::numeric_limits<Timestamp>::min();
  auto scan = [&](auto const& events) {
    for (const auto& e : events) {
      lo = std::min(lo, e.ts);
      hi = std::max(hi, e.ts);
    }
  };
  scan(store.devices());
  scan(store.file_events());
  scan(store.http_events());
  scan(store.logons());
  if (lo > hi) {
    std::fprintf(stderr, "no events\n");
    return kExitBadInput;
  }
  const Date start = DateOf(lo);
  const Date last = DateOf(hi);
  const int days = static_cast<int>(DaysBetween(start, last)) + 1;
  if (days > kMaxDaySpan) {
    std::fprintf(stderr,
                 "acobe-detect: event timestamps span %d days (%s..%s); "
                 "refusing to allocate a cube that large\n",
                 days, start.ToString().c_str(), last.ToString().c_str());
    return kExitBadInput;
  }

  CertAcobeExtractor extractor(start, days);
  {
    telemetry::TraceSpan extract_span("detect.extract_features");
    ReplayStore(store, extractor);
    for (const LdapRecord& r : store.ldap()) {
      extractor.cube().RegisterUser(r.user);
    }
  }
  ACOBE_GAUGE_SET("features.days", extractor.cube().days());
  ACOBE_GAUGE_SET("features.features", extractor.cube().features());
  ACOBE_GAUGE_SET("features.frames", extractor.cube().frames());
  ACOBE_GAUGE_SET("features.aspects", extractor.catalog().aspects().size());

  int train_end = 0, test_end = 0;
  try {
    train_end = static_cast<int>(
        DaysBetween(start, Date::FromString(train_end_text)));
    test_end =
        test_end_text.empty()
            ? days
            : static_cast<int>(
                  DaysBetween(start, Date::FromString(test_end_text))) + 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (train_end <= 0 || train_end >= test_end) {
    std::fprintf(stderr,
                 "acobe-detect: bad train/test split (train-end must fall "
                 "after the first event and before test-end)\n");
    return kExitUsage;
  }

  DetectorSpec spec;
  spec.deviation.omega = omega;
  spec.deviation.matrix_days = omega;
  spec.ensemble.encoder_dims = {64, 32, 16, 8};
  spec.ensemble.train.epochs = epochs;
  spec.ensemble.train_stride = 2;
  spec.ensemble.optimizer = OptimizerKind::kAdam;
  spec.ensemble.learning_rate = 1e-3f;
  spec.critic_votes = votes;
  spec.ensemble.threads = threads;  // deviation inherits via Detector::Run
  spec.ensemble.resume = resume;

  for (const std::string& department : store.Departments()) {
    const auto members = store.UsersInDepartment(department);
    if (members.size() < 3) continue;
    std::printf("\n=== %s (%zu users) ===\n", department.c_str(),
                members.size());
    DetectorSpec dept_spec = spec;
    if (!checkpoint_dir.empty()) {
      dept_spec.ensemble.checkpoint_dir =
          checkpoint_dir + "/" + SanitizePathComponent(department);
    }
    const Detector detector(std::move(dept_spec));
    DetectionOutput out;
    try {
      out = detector.Run(extractor.cube(), extractor.catalog(), members, 0,
                         train_end, train_end, test_end);
    } catch (const CheckpointMismatch& e) {
      std::fprintf(stderr, "acobe-detect: corrupt artifact: %s\n", e.what());
      return kExitCorruptArtifact;
    }
    for (const std::string& aspect : out.degraded_aspects) {
      std::fprintf(stderr,
                   "acobe-detect: WARNING: %s: aspect '%s' diverged on every "
                   "attempt; ranking without it\n",
                   department.c_str(), aspect.c_str());
    }
    for (std::size_t i = 0;
         i < out.list.size() && i < static_cast<std::size_t>(top); ++i) {
      const UserId user = out.members[out.list[i].user_idx];
      std::printf("%3zu. %-10s priority %.0f\n", i + 1,
                  store.users().NameOf(user).c_str(), out.list[i].priority);
    }
  }

  telemetry::WriteReport(std::cerr);
  if (!metrics_out.empty() && !telemetry::WriteMetricsJsonFile(metrics_out)) {
    std::fprintf(stderr, "acobe-detect: cannot write %s\n",
                 metrics_out.c_str());
    return kExitFailure;
  }
  if (!trace_out.empty() && !telemetry::WriteTraceJsonFile(trace_out)) {
    std::fprintf(stderr, "acobe-detect: cannot write %s\n", trace_out.c_str());
    return kExitFailure;
  }
  return 0;
}
