// acobe-detect: runs ACOBE over a directory of CERT-layout CSV logs
// (as produced by acobe-gen or converted from the real CERT dataset)
// and prints the ordered investigation list per department.
//
//   acobe-detect --in=DIR --train-end=YYYY-MM-DD [--test-end=YYYY-MM-DD]
//                [--omega=N] [--epochs=N] [--votes=N] [--top=N]
//                [--threads=N] [--ingest=strict|permissive|quarantine]
//                [--error-budget=R] [--quarantine-dir=DIR]
//                [--stream] [--shards=N] [--spool-dir=DIR]
//                [--checkpoint-dir=DIR] [--resume]
//                [--explain-out=FILE] [--ledger-out=FILE]
//                [--metrics-out=FILE] [--trace-out=FILE]
//                [--health-out=FILE] [--health-interval-ms=N]
//                [--prom-out=FILE] [--version]
//
// --threads: worker threads for training/scoring/deviation (0 = the
// ACOBE_THREADS environment variable, else hardware concurrency).
// Results are identical for any thread count, and identical with
// telemetry on or off.
//
// Out-of-core mode: --stream replaces the in-memory LogStore with the
// streaming data plane (logs/spool.h). Pass A reads each CSV once and
// spools packed events into per-shard files (departments hash to
// shards); pass B replays one shard at a time into per-department
// measurement cubes, so peak memory is bounded by the largest shard
// instead of the whole organization. Output — stdout, --explain-out,
// --ledger-out — is byte-identical to the in-memory path on the same
// dataset: both paths share the CSV parsers (same interning, same
// recovery policy), cubes are order-free within a day, and results are
// emitted in the canonical LDAP department order either way.
// --shards (default 8) tunes the memory/seek tradeoff; --spool-dir
// (default DIR/.acobe-spool) places the spool files, which are removed
// on exit.
//
// Fault tolerance: --ingest=permissive skips malformed CSV rows under a
// bounded error budget (--error-budget, default 5%) instead of aborting
// on the first one; quarantine additionally copies each rejected raw
// row to <quarantine-dir>/<log>.rejected. Both imply
// consecutive-duplicate suppression (redelivered log rows).
// --checkpoint-dir saves each aspect's trained autoencoder as it
// completes; with --resume, a re-run after an interruption skips the
// already-trained aspects and reproduces the uninterrupted output
// bit-exactly.
//
// Provenance: --explain-out writes per-detection attribution as JSON
// ("acobe.explain.v1": for every listed user, the matrix cells —
// aspect, measurement, time-frame, enclosed day, individual vs group —
// that drove their reconstruction error) and prints the same as
// indented text under each department's list; --ledger-out writes the
// run ledger ("acobe.ledger.v1" JSONL: manifest with config/dataset
// digest/build identity, per-aspect training summaries, per-department
// detections with score digests, quality metrics when DIR/truth.csv
// exists, score drift vs the training window). Either flag enables
// attribution + drift; both off costs nothing and the scores are
// bit-identical either way. Render saved artifacts with acobe-explain.
//
// Exit codes: 0 ok, 1 runtime failure, 2 usage, 3 malformed input,
// 4 corrupt/mismatched artifact.
//
// Telemetry: a run report always lands on stderr; --metrics-out writes
// the metrics registry as JSON (counters, per-phase span timings,
// per-aspect per-epoch losses, the process peak RSS), --trace-out
// writes a chrome://tracing / Perfetto trace with spans attributed to
// worker threads.
//
// Live health: --health-out appends an "acobe.health.v1" JSON line
// every --health-interval-ms (default 1000) — pipeline stage with
// progress and ETA, RSS, CPU, counter rates, span self-profile — and
// installs the crash flight recorder (fatal signals dump the active
// span stacks and last heartbeat to <health-out>.crash.json). Watch
// live with `acobe-top <health-out>`. --prom-out writes the final
// metrics in Prometheus text format. All of it is observational:
// stdout, --explain-out and --ledger-out are byte-identical with the
// health plane on or off.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli_util.h"
#include "common/faults.h"
#include "common/health.h"
#include "common/shutdown.h"
#include "common/ledger.h"
#include "common/resource.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "common/version.h"
#include "core/detector.h"
#include "eval/report.h"
#include "features/cert_features.h"
#include "features/shard_extract.h"
#include "logs/log_io.h"
#include "logs/spool.h"
#include "nn/backend.h"

using namespace acobe;

namespace {

// Event-timestamp plausibility window: 1980-01-01 .. 2100-01-01. One
// corrupted-but-numeric timestamp outside this range would otherwise
// stretch the detected day span (and the measurement-cube allocation)
// by decades.
constexpr std::int64_t kTsMin = 315532800;
constexpr std::int64_t kTsMax = 4102444800;
// And a belt-and-braces cap on the resulting day span (the window above
// is ~43.8k days).
constexpr int kMaxDaySpan = 44000;

// Packed-event buffer budget for the spooler (pass A) and its replay
// cursors (pass B).
constexpr std::size_t kSpoolBufferBytes = 256u << 20;

void Usage() {
  std::printf(
      "acobe-detect --in=DIR --train-end=YYYY-MM-DD\n"
      "             [--test-end=YYYY-MM-DD] [--omega=N] [--epochs=N]\n"
      "             [--votes=N] [--top=N] [--threads=N]\n"
      "             [--nn-backend=NAME] [--nn-threads=N]\n"
      "             [--ingest=strict|permissive|quarantine]\n"
      "             [--error-budget=R] [--quarantine-dir=DIR]\n"
      "             [--stream] [--shards=N] [--spool-dir=DIR]\n"
      "             [--checkpoint-dir=DIR] [--resume]\n"
      "             [--explain-out=FILE] [--ledger-out=FILE]\n"
      "             [--metrics-out=FILE] [--trace-out=FILE]\n"
      "             [--health-out=FILE] [--health-interval-ms=N]\n"
      "             [--prom-out=FILE] [--version]\n"
      "  --omega=N           deviation window, days (>= 2; default 14)\n"
      "  --epochs=N          training epochs per aspect (>= 1; default 25)\n"
      "  --votes=N           critic votes (>= 1; default 2)\n"
      "  --top=N             list entries printed per department (>= 1)\n"
      "  --threads=N         worker threads (0 = ACOBE_THREADS/hardware)\n"
      "  --nn-backend=NAME   NN compute backend: default|reference|fma|avx512\n"
      "                      (0-risk 'default' is bit-reproducible; others\n"
      "                      fall back to it when the CPU lacks them)\n"
      "  --nn-threads=N      GEMM worker threads (0 = ACOBE_NN_THREADS,\n"
      "                      else 1; >1 splits large GEMMs panel-wise,\n"
      "                      results stay bit-identical)\n"
      "  --ingest=POLICY     malformed-row policy (default strict)\n"
      "  --error-budget=R    abort past this rejected-row fraction (def 0.05)\n"
      "  --quarantine-dir=D  write rejected raw rows under D\n"
      "  --stream            out-of-core mode: spool events to disk and\n"
      "                      process one department shard at a time\n"
      "  --shards=N          department shards in --stream mode (def 8)\n"
      "  --spool-dir=D       spool-file directory (def DIR/.acobe-spool)\n"
      "  --checkpoint-dir=D  save per-aspect models under D as they train\n"
      "  --resume            reuse matching checkpoints from a killed run\n"
      "  --explain-out=F     write per-detection attribution JSON to F\n"
      "  --ledger-out=F      write the run-ledger JSONL to F\n"
      "  --metrics-out=F     write telemetry metrics JSON to F\n"
      "  --trace-out=F       write chrome://tracing trace JSON to F\n"
      "  --health-out=F      append live heartbeat JSONL to F; a crash\n"
      "                      dumps flight data to F.crash.json\n"
      "  --health-interval-ms=N  heartbeat period (default 1000)\n"
      "  --prom-out=F        write final metrics as Prometheus text to F\n"
      "  --version           print build identity and exit\n"
      "exit codes: 0 ok, 1 failure, 2 usage, 3 bad input, 4 corrupt "
      "artifact\n");
}

using BufferedReader = IngestStats (*)(std::istream&, LogStore&,
                                       const IngestOptions&,
                                       const std::string&);
using StreamingReader = IngestStats (*)(std::istream&, EntityCatalog&,
                                        LogSink&, const IngestOptions&,
                                        const std::string&);

/// Wires the per-file quarantine sink into one read. Returns false when
/// the file is absent; runs `read` with the final options otherwise.
template <typename ReadFn>
bool ReadOneCsv(const std::string& dir, const std::string& name,
                IngestOptions options, const std::string& quarantine_dir,
                IngestStats& total, ReadFn&& read) {
  health::SetStageDetail(name);
  std::ifstream in(dir + "/" + name);
  if (!in) {
    health::StageAdvance();  // an absent file is trivially done
    return false;
  }
  std::ofstream sink;
  if (options.policy == IngestPolicy::kQuarantine && !quarantine_dir.empty()) {
    sink.open(quarantine_dir + "/" + name + ".rejected");
    options.quarantine = &sink;
  }
  const IngestStats stats = read(in, options);
  if (stats.rows_rejected > 0) {
    std::fprintf(stderr,
                 "acobe-detect: %s: rejected %zu/%zu rows (first: %s)\n",
                 name.c_str(), stats.rows_rejected, stats.rows_read,
                 stats.first_error.c_str());
  }
  total.Merge(stats);
  health::StageAdvance();
  return true;
}

/// Checkpoint directories are per department; department names come
/// from the data, so squash anything path-hostile.
std::string SanitizePathComponent(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? "_" : out;
}

/// Rolls the raw bytes of the input CSVs (fixed order) into one CRC-32:
/// the ledger's dataset digest. Absent files contribute nothing.
std::uint32_t DigestDataset(const std::string& dir) {
  static const char* kFiles[] = {"device.csv", "file.csv", "http.csv",
                                 "logon.csv", "ldap.csv"};
  std::uint32_t crc = 0;
  char buf[1 << 16];
  for (const char* name : kFiles) {
    std::ifstream in(dir + "/" + std::string(name), std::ios::binary);
    while (in) {
      in.read(buf, sizeof(buf));
      crc = Crc32(buf, static_cast<std::size_t>(in.gcount()), crc);
    }
  }
  return crc;
}

/// DIR/truth.csv ("user,anomaly_start,anomaly_end", acobe-gen's answer
/// key) as name -> anomaly window. Empty map when the file is absent;
/// malformed rows are skipped (truth is optional metadata, not input).
std::map<std::string, std::pair<Date, Date>> LoadTruth(
    const std::string& dir) {
  std::map<std::string, std::pair<Date, Date>> truth;
  std::ifstream in(dir + "/truth.csv");
  if (!in) return truth;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const std::size_t c1 = line.find(',');
    const std::size_t c2 = c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
    if (c2 == std::string::npos) continue;
    try {
      truth.emplace(line.substr(0, c1),
                    std::make_pair(Date::FromString(
                                       line.substr(c1 + 1, c2 - c1 - 1)),
                                   Date::FromString(line.substr(c2 + 1))));
    } catch (const std::invalid_argument&) {
      continue;
    }
  }
  return truth;
}

/// Writes a quoted, escaped JSON string literal (JsonEscape itself
/// emits only the escaped content, not the quotes).
void JsonStr(std::ostream& out, std::string_view s) {
  out << '"';
  telemetry::JsonEscape(out, s);
  out << '"';
}

/// One department's full output, retained for the emit stage, the
/// explain report and the ledger. Both detection paths buffer these and
/// emit in canonical LDAP department order, which is what makes their
/// stdout and artifacts byte-identical.
struct DeptResult {
  std::string name;
  DetectionOutput out;
};

/// Feature name for an attributed cell (the cell's feature_pos indexes
/// the aspect's feature list, not the catalog).
std::string CellFeatureName(const FeatureCatalog& catalog,
                            const std::string& aspect_name, int feature_pos) {
  const int ai = catalog.AspectIndex(aspect_name);
  if (ai >= 0) {
    const std::vector<int>& indices = catalog.aspects()[ai].feature_indices;
    if (feature_pos >= 0 && feature_pos < static_cast<int>(indices.size())) {
      return catalog.feature(indices[feature_pos]).name;
    }
  }
  return "feature" + std::to_string(feature_pos);
}

void WriteAttributionJson(std::ostream& out, const UserAttribution& ua,
                          const std::string& user_name,
                          const FeatureCatalog& catalog,
                          const TimeFramePartition& partition, Date start) {
  out << "{\"user\":";
  JsonStr(out, user_name);
  out << ",\"priority\":";
  telemetry::JsonNumber(out, ua.priority);
  out << ",\"aspects\":[";
  for (std::size_t a = 0; a < ua.aspects.size(); ++a) {
    const AspectAttribution& aa = ua.aspects[a];
    if (a) out << ',';
    out << "{\"aspect\":";
    JsonStr(out, aa.aspect_name);
    out << ",\"peak_day\":";
    JsonStr(out, start.AddDays(aa.peak_day).ToString());
    out << ",\"peak_score\":";
    telemetry::JsonNumber(out, aa.peak_score);
    out << ",\"total_error\":";
    telemetry::JsonNumber(out, aa.total_error);
    out << ",\"group_error_fraction\":";
    telemetry::JsonNumber(out, aa.group_error_fraction);
    out << ",\"cells\":[";
    for (std::size_t c = 0; c < aa.cells.size(); ++c) {
      const AttributedCell& cell = aa.cells[c];
      if (c) out << ',';
      out << "{\"feature\":";
      JsonStr(
          out, CellFeatureName(catalog, aa.aspect_name, cell.feature_pos));
      out << ",\"frame\":";
      JsonStr(out, partition.FrameLabel(cell.frame));
      out << ",\"day\":";
      JsonStr(out, start.AddDays(cell.day).ToString());
      out << ",\"component\":\"" << (cell.group ? "group" : "individual")
          << "\",\"error\":";
      telemetry::JsonNumber(out, cell.error);
      out << ",\"share\":";
      telemetry::JsonNumber(out, cell.share);
      out << ",\"input\":";
      telemetry::JsonNumber(out, cell.input);
      out << ",\"reconstruction\":";
      telemetry::JsonNumber(out, cell.reconstruction);
      if (cell.has_group_input) {
        out << ",\"group_input\":";
        telemetry::JsonNumber(out, cell.group_input);
      }
      out << '}';
    }
    out << "]}";
  }
  out << "]}";
}

void WriteDriftJson(std::ostream& out, const std::vector<AspectDrift>& drift) {
  out << '[';
  for (std::size_t i = 0; i < drift.size(); ++i) {
    if (i) out << ',';
    out << "{\"aspect\":";
    JsonStr(out, drift[i].aspect_name);
    out << ",\"alert\":" << (drift[i].alert ? "true" : "false")
        << ",\"shifts\":[";
    for (std::size_t s = 0; s < drift[i].shifts.size(); ++s) {
      const QuantileShift& shift = drift[i].shifts[s];
      if (s) out << ',';
      out << "{\"q\":";
      telemetry::JsonNumber(out, shift.q);
      out << ",\"reference\":";
      telemetry::JsonNumber(out, shift.reference);
      out << ",\"current\":";
      telemetry::JsonNumber(out, shift.current);
      out << ",\"rel_shift\":";
      telemetry::JsonNumber(out, shift.rel_shift);
      out << ",\"alert\":" << (shift.alert ? "true" : "false") << '}';
    }
    out << "]}";
  }
  out << ']';
}

/// The whole explain report ("acobe.explain.v1"): build identity, the
/// dataset/split, and per department the printed list plus every
/// attribution and the drift table. acobe-explain renders this without
/// recomputing anything.
void WriteExplainJson(std::ostream& out, const std::vector<DeptResult>& results,
                      const EntityCatalog& tables,
                      const FeatureCatalog& catalog,
                      const TimeFramePartition& partition, Date start,
                      const std::string& in_dir, std::uint32_t dataset_digest,
                      int train_end, int test_end, int top) {
  BuildInfo build = GetBuildInfo();
  nn::AnnotateBuildInfo(build);
  out << "{\"schema\":\"acobe.explain.v1\",\"build\":{\"version\":";
  JsonStr(out, build.version);
  out << ",\"build_type\":";
  JsonStr(out, build.build_type);
  out << ",\"simd\":";
  JsonStr(out, build.simd);
  out << ",\"telemetry\":" << (build.telemetry ? "true" : "false")
      << ",\"nn_backend\":";
  JsonStr(out, build.nn_backend);
  out << ",\"nn_threads\":" << build.nn_threads << "},\"dataset\":{\"dir\":";
  JsonStr(out, in_dir);
  out << ",\"digest\":" << dataset_digest << ",\"start\":";
  JsonStr(out, start.ToString());
  out << ",\"train_end\":";
  JsonStr(out, start.AddDays(train_end).ToString());
  out << ",\"test_end\":";
  JsonStr(out, start.AddDays(test_end).ToString());
  out << "},\"departments\":[";
  for (std::size_t r = 0; r < results.size(); ++r) {
    const DeptResult& result = results[r];
    if (r) out << ',';
    out << "{\"name\":";
    JsonStr(out, result.name);
    out << ",\"members\":" << result.out.members.size()
        << ",\"score_digest\":" << result.out.grid.Digest()
        << ",\"degraded_aspects\":[";
    for (std::size_t i = 0; i < result.out.degraded_aspects.size(); ++i) {
      if (i) out << ',';
      JsonStr(out, result.out.degraded_aspects[i]);
    }
    out << "],\"list\":[";
    const std::size_t shown = std::min<std::size_t>(
        result.out.list.size(), static_cast<std::size_t>(top));
    for (std::size_t i = 0; i < shown; ++i) {
      const UserId user = result.out.members[result.out.list[i].user_idx];
      if (i) out << ',';
      out << "{\"rank\":" << i + 1 << ",\"user\":";
      JsonStr(out, tables.users().NameOf(user));
      out << ",\"priority\":";
      telemetry::JsonNumber(out, result.out.list[i].priority);
      out << '}';
    }
    out << "],\"attributions\":[";
    for (std::size_t i = 0; i < result.out.attributions.size(); ++i) {
      const UserAttribution& ua = result.out.attributions[i];
      if (i) out << ',';
      WriteAttributionJson(
          out, ua, tables.users().NameOf(result.out.members[ua.user_idx]),
          catalog, partition, start);
    }
    out << "],\"drift\":";
    WriteDriftJson(out, result.out.drift);
    out << '}';
  }
  out << "]}\n";
}

/// The same attribution, human-readable, indented under the printed
/// list: per aspect the peak day and its top cells.
void PrintAttribution(const UserAttribution& ua, const std::string& user_name,
                      const FeatureCatalog& catalog,
                      const TimeFramePartition& partition, Date start) {
  std::printf("     %s:\n", user_name.c_str());
  for (const AspectAttribution& aa : ua.aspects) {
    std::printf("       %-8s peak %s score %.3f (group share %.0f%%)\n",
                aa.aspect_name.c_str(),
                start.AddDays(aa.peak_day).ToString().c_str(), aa.peak_score,
                100.0 * aa.group_error_fraction);
    for (const AttributedCell& cell : aa.cells) {
      std::string note;
      if (cell.group) {
        note = " [group]";
      } else if (cell.has_group_input) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " (group at %.2f)", cell.group_input);
        note = buf;
      }
      std::printf("         %-18s %s %s err %.4f (%2.0f%%) val %.2f%s\n",
                  CellFeatureName(catalog, aa.aspect_name, cell.feature_pos)
                      .c_str(),
                  partition.FrameLabel(cell.frame).c_str(),
                  start.AddDays(cell.day).ToString().c_str(), cell.error,
                  100.0 * cell.share, cell.input, note.c_str());
    }
  }
}

/// Emit stage, shared by both detection paths: the printed list and
/// attributions for one department.
void PrintDeptResult(const DeptResult& result, const EntityCatalog& tables,
                     const FeatureCatalog& catalog,
                     const TimeFramePartition& partition, Date start,
                     int top) {
  const DetectionOutput& out = result.out;
  std::printf("\n=== %s (%zu users) ===\n", result.name.c_str(),
              out.members.size());
  for (std::size_t i = 0;
       i < out.list.size() && i < static_cast<std::size_t>(top); ++i) {
    const UserId user = out.members[out.list[i].user_idx];
    std::printf("%3zu. %-10s priority %.0f\n", i + 1,
                tables.users().NameOf(user).c_str(), out.list[i].priority);
  }
  if (!out.attributions.empty()) {
    std::printf("\n  why (top reconstruction-error cells):\n");
    for (const UserAttribution& ua : out.attributions) {
      PrintAttribution(ua, tables.users().NameOf(out.members[ua.user_idx]),
                       catalog, partition, start);
    }
  }
}

/// Emit stage: one department's ledger events (training summaries,
/// detection, drift, quality vs truth).
void AppendDeptLedger(RunLedger& ledger, const DeptResult& result,
                      const EntityCatalog& tables, int top,
                      const std::map<std::string, std::pair<Date, Date>>&
                          truth) {
  const DetectionOutput& out = result.out;
  for (const AspectTrainSummary& summary : out.train_summaries) {
    LedgerEvent event("aspect_trained");
    event.Str("department", result.name)
        .Str("aspect", summary.name)
        .Int("attempts", summary.attempts)
        .Bool("resumed", summary.resumed)
        .Bool("ok", summary.ok)
        .Int("epochs", summary.epochs)
        .Num("final_loss", summary.final_loss)
        .NumList("epoch_losses", summary.epoch_losses);
    ledger.Append(event);
  }
  LedgerEvent detection("detection");
  detection.Str("department", result.name)
      .Int("members", static_cast<std::int64_t>(out.members.size()))
      .Int("score_digest", out.grid.Digest())
      .StrList("degraded_aspects", out.degraded_aspects);
  std::ostringstream listed;
  listed << '[';
  const std::size_t shown =
      std::min<std::size_t>(out.list.size(), static_cast<std::size_t>(top));
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) listed << ',';
    listed << "{\"user\":";
    JsonStr(listed, tables.users().NameOf(out.members[out.list[i].user_idx]));
    listed << ",\"priority\":";
    telemetry::JsonNumber(listed, out.list[i].priority);
    listed << '}';
  }
  listed << ']';
  detection.Raw("list", listed.str());
  ledger.Append(detection);

  if (!out.drift.empty()) {
    std::ostringstream drift_json;
    WriteDriftJson(drift_json, out.drift);
    LedgerEvent drift("drift");
    drift.Str("department", result.name).Raw("aspects", drift_json.str());
    ledger.Append(drift);
  }
  if (!truth.empty()) {
    std::vector<eval::RankedUser> ranked;
    ranked.reserve(out.list.size());
    for (const InvestigationEntry& entry : out.list) {
      const UserId user = out.members[entry.user_idx];
      eval::RankedUser r;
      r.user = user;
      r.priority = entry.priority;
      r.positive = truth.count(tables.users().NameOf(user)) > 0;
      ranked.push_back(r);
    }
    static const std::size_t kCutoffs[] = {1, 3, 5, 10};
    LedgerEvent quality =
        eval::MakeQualityEvent(result.name, std::move(ranked), kCutoffs);
    ledger.Append(quality);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_dir;
  std::string train_end_text, test_end_text;
  std::string metrics_out, trace_out;
  std::string explain_out, ledger_out;
  std::string health_out, prom_out;
  std::string quarantine_dir, checkpoint_dir, spool_dir;
  std::string nn_backend;  // empty = "default" (or ACOBE_NN_BACKEND)
  int omega = 14, epochs = 25, votes = 2, top = 10, threads = 0;
  int nn_threads = 0;  // 0 = ACOBE_NN_THREADS / serial
  int shards = 8, health_interval_ms = 1000;
  bool resume = false, stream = false;
  IngestOptions ingest;
  ingest.ts_min = kTsMin;
  ingest.ts_max = kTsMax;

  const int kMaxInt = std::numeric_limits<int>::max();
  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--in=", 5) == 0) {
        in_dir = arg + 5;
      } else if (std::strncmp(arg, "--train-end=", 12) == 0) {
        train_end_text = arg + 12;
      } else if (std::strncmp(arg, "--test-end=", 11) == 0) {
        test_end_text = arg + 11;
      } else if (std::strncmp(arg, "--omega=", 8) == 0) {
        omega = static_cast<int>(cli::ParseInt(arg, arg + 8, 2, kMaxInt));
      } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
        epochs = static_cast<int>(cli::ParseInt(arg, arg + 9, 1, kMaxInt));
      } else if (std::strncmp(arg, "--votes=", 8) == 0) {
        votes = static_cast<int>(cli::ParseInt(arg, arg + 8, 1, kMaxInt));
      } else if (std::strncmp(arg, "--top=", 6) == 0) {
        top = static_cast<int>(cli::ParseInt(arg, arg + 6, 1, kMaxInt));
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        threads = static_cast<int>(cli::ParseInt(arg, arg + 10, 0, kMaxInt));
      } else if (std::strncmp(arg, "--nn-backend=", 13) == 0) {
        nn_backend = arg + 13;
      } else if (std::strncmp(arg, "--nn-threads=", 13) == 0) {
        nn_threads =
            static_cast<int>(cli::ParseInt(arg, arg + 13, 0, kMaxInt));
      } else if (std::strncmp(arg, "--ingest=", 9) == 0) {
        ingest.policy = IngestPolicyFromString(arg + 9);
      } else if (std::strncmp(arg, "--error-budget=", 15) == 0) {
        ingest.error_budget = cli::ParseDouble(arg, arg + 15, 0.0, 1.0);
      } else if (std::strncmp(arg, "--quarantine-dir=", 17) == 0) {
        quarantine_dir = arg + 17;
      } else if (std::strcmp(arg, "--stream") == 0) {
        stream = true;
      } else if (std::strncmp(arg, "--shards=", 9) == 0) {
        shards = static_cast<int>(cli::ParseInt(arg, arg + 9, 1, 65536));
      } else if (std::strncmp(arg, "--spool-dir=", 12) == 0) {
        spool_dir = arg + 12;
      } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
        checkpoint_dir = arg + 17;
      } else if (std::strcmp(arg, "--resume") == 0) {
        resume = true;
      } else if (std::strncmp(arg, "--explain-out=", 14) == 0) {
        explain_out = arg + 14;
      } else if (std::strncmp(arg, "--ledger-out=", 13) == 0) {
        ledger_out = arg + 13;
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_out = arg + 14;
      } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_out = arg + 12;
      } else if (std::strncmp(arg, "--health-out=", 13) == 0) {
        health_out = arg + 13;
      } else if (std::strncmp(arg, "--health-interval-ms=", 21) == 0) {
        health_interval_ms =
            static_cast<int>(cli::ParseInt(arg, arg + 21, 10, 3600000));
      } else if (std::strncmp(arg, "--prom-out=", 11) == 0) {
        prom_out = arg + 11;
      } else if (std::strcmp(arg, "--version") == 0) {
        // Apply any backend/thread flags seen so far, so
        // `--nn-backend=fma --version` reports the resolved (possibly
        // fallen-back) selection the run would actually use. No flag
        // leaves the ACOBE_NN_BACKEND-driven selection untouched.
        if (!nn_backend.empty()) nn::SelectBackend(nn_backend);
        if (nn_threads > 0) nn::SetNnThreads(nn_threads);
        BuildInfo info = GetBuildInfo();
        nn::AnnotateBuildInfo(info);
        cli::PrintVersionInfo("acobe-detect", info);
        return 0;
      } else if (std::strcmp(arg, "--help") == 0) {
        Usage();
        return 0;
      } else {
        std::fprintf(stderr, "acobe-detect: unknown argument '%s'\n", arg);
        Usage();
        return kExitUsage;
      }
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return kExitUsage;
  } catch (const std::invalid_argument& e) {  // IngestPolicyFromString
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (in_dir.empty() || train_end_text.empty()) {
    std::fprintf(stderr, "acobe-detect: --in and --train-end are required\n");
    Usage();
    return kExitUsage;
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "acobe-detect: --resume requires --checkpoint-dir\n");
    Usage();
    return kExitUsage;
  }
  // Redelivered (duplicated) rows are a fault the permissive policies
  // recover from, so they imply consecutive-duplicate suppression.
  if (ingest.policy != IngestPolicy::kStrict) {
    ingest.drop_consecutive_duplicates = true;
  }
  if (ingest.policy == IngestPolicy::kQuarantine && !quarantine_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(quarantine_dir, ec);
    if (ec) {
      std::fprintf(stderr, "acobe-detect: cannot create %s: %s\n",
                   quarantine_dir.c_str(), ec.message().c_str());
      return kExitFailure;
    }
  }
  if (spool_dir.empty()) spool_dir = in_dir + "/.acobe-spool";
  // Pin the NN compute backend and GEMM thread budget before any math
  // runs; the resolved pair lands in --version, the explain report, and
  // the ledger manifest. An unknown or CPU-unsupported backend request
  // falls back to "default" (warn, don't die — the default is the
  // bit-reproducible anchor, so results are still well-defined).
  if (!nn_backend.empty()) {
    const std::string active = nn::SelectBackend(nn_backend);
    if (active != nn_backend) {
      std::fprintf(stderr,
                   "acobe-detect: nn backend '%s' unavailable, using '%s'\n",
                   nn_backend.c_str(), active.c_str());
    }
  }
  if (nn_threads > 0) nn::SetNnThreads(nn_threads);
  // Provenance is driven by the output flags: asking for an explain
  // report or a ledger turns attribution + drift on; neither flag, and
  // the detection path runs exactly as before (bit-identical scores).
  const bool provenance = !explain_out.empty() || !ledger_out.empty();

  InstallShutdownHandler();
  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());
  if (!health_out.empty()) {
    health::HealthOptions health_opts;
    health_opts.path = health_out;
    health_opts.interval_ms = health_interval_ms;
    health_opts.tool = "acobe-detect";
    if (!health::StartHealth(health_opts)) return kExitFailure;
  }
  health::SetStage("ingest", 5);  // the five CERT CSVs

  // --- ingest (pass A) -----------------------------------------------------
  // In-memory mode buffers every stream in a LogStore; streaming mode
  // keeps only the entity catalog resident and spools packed events to
  // per-shard files. Both leave the same catalog and the same event-day
  // range behind.
  LogStore store;                       // in-memory mode (unused otherwise)
  EntityCatalog streaming_tables;       // streaming mode
  EntityCatalog& tables =
      stream ? streaming_tables : static_cast<EntityCatalog&>(store);
  std::unique_ptr<ShardSpooler> spooler;
  IngestStats ingest_stats;
  Timestamp lo = std::numeric_limits<Timestamp>::max();
  Timestamp hi = std::numeric_limits<Timestamp>::min();

  // Cooperative SIGINT/SIGTERM unwind, polled at loop boundaries: drop
  // the spool shard files, land a run_aborted ledger event (with a
  // manifest, so the aborted artifact still identifies its build), let
  // the final heartbeat record where the run stopped, and exit with
  // the dedicated abort code.
  auto abort_run = [&](const char* where) -> int {
    std::fprintf(stderr,
                 "acobe-detect: shutdown requested during %s; aborting "
                 "cleanly\n",
                 where);
    if (spooler) spooler->Remove();
    if (!ledger_out.empty()) {
      RunLedger aborted;
      BuildInfo build_info = GetBuildInfo();
      nn::AnnotateBuildInfo(build_info);
      aborted.Append(MakeManifestEvent("acobe-detect", build_info));
      LedgerEvent ev("run_aborted");
      ev.Str("reason", "signal")
          .Int("signal", ShutdownSignal())
          .Str("stage", where)
          .Raw("stages", health::StageTimesJson());
      aborted.Append(ev);
      if (aborted.WriteFile(ledger_out)) {
        std::fprintf(stderr, "wrote %s (aborted)\n", ledger_out.c_str());
      } else {
        std::fprintf(stderr, "acobe-detect: cannot write %s\n",
                     ledger_out.c_str());
      }
    }
    health::SetStage("aborted");
    health::StopHealth();
    telemetry::FlushTelemetry("acobe-detect", metrics_out, trace_out,
                              std::cerr);
    return kExitAborted;
  };

  try {
    if (stream) {
      // The roster first: departments define the shard routing. Always
      // strict — a dropped ldap row silently deletes a user.
      IngestOptions roster = ingest;
      roster.policy = IngestPolicy::kStrict;
      const bool have_roster = ReadOneCsv(
          in_dir, "ldap.csv", roster, quarantine_dir, ingest_stats,
          [&](std::istream& in, const IngestOptions& opts) {
            return ReadLdapCsv(in, tables, opts, "ldap.csv");
          });
      if (!have_roster || tables.ldap().empty()) {
        std::fprintf(stderr, "no readable logs under %s\n", in_dir.c_str());
        return kExitBadInput;
      }
      const std::vector<std::string> departments = tables.Departments();
      const int n_shards =
          std::max(1, std::min(shards, static_cast<int>(departments.size())));
      spooler = std::make_unique<ShardSpooler>(spool_dir, n_shards,
                                               kSpoolBufferBytes);
      std::map<std::string, int> dept_shard;
      for (std::size_t d = 0; d < departments.size(); ++d) {
        dept_shard[departments[d]] = static_cast<int>(d) % n_shards;
      }
      for (const LdapRecord& r : tables.ldap()) {
        spooler->AssignUser(r.user, dept_shard[r.department]);
      }
      auto read_stream = [&](const char* name, StreamingReader reader) {
        return ReadOneCsv(in_dir, name, ingest, quarantine_dir, ingest_stats,
                          [&](std::istream& in, const IngestOptions& opts) {
                            return reader(in, tables, *spooler, opts, name);
                          });
      };
      bool any = false;
      any |= read_stream("device.csv", ReadDeviceCsv);
      any |= read_stream("file.csv", ReadFileCsv);
      any |= read_stream("http.csv", ReadHttpCsv);
      any |= read_stream("logon.csv", ReadLogonCsv);
      if (!any) {
        std::fprintf(stderr, "no readable logs under %s\n", in_dir.c_str());
        return kExitBadInput;
      }
      if (ShutdownRequested()) return abort_run("ingest");
      health::SetStage("spool");
      spooler->Finish();
      lo = spooler->ts_lo();
      hi = spooler->ts_hi();
      std::fprintf(stderr,
                   "spooled %zu events into %d shards (%zu dropped: users "
                   "outside the roster), %zu users\n",
                   spooler->events_spooled(), spooler->shards(),
                   spooler->events_dropped(), tables.users().size());
    } else {
      auto read_buffered = [&](const char* name, BufferedReader reader,
                               const IngestOptions& opts) {
        return ReadOneCsv(in_dir, name, opts, quarantine_dir, ingest_stats,
                          [&](std::istream& in, const IngestOptions& o) {
                            return reader(in, store, o, name);
                          });
      };
      bool any = false;
      any |= read_buffered("device.csv", ReadDeviceCsv, ingest);
      any |= read_buffered("file.csv", ReadFileCsv, ingest);
      any |= read_buffered("http.csv", ReadHttpCsv, ingest);
      any |= read_buffered("logon.csv", ReadLogonCsv, ingest);
      // The population roster must be intact in every policy: a dropped
      // ldap row silently deletes a user from the study.
      IngestOptions roster = ingest;
      roster.policy = IngestPolicy::kStrict;
      if (!read_buffered("ldap.csv", ReadLdapCsv, roster) || !any) {
        std::fprintf(stderr, "no readable logs under %s\n", in_dir.c_str());
        return kExitBadInput;
      }
      store.SortChronologically();
      std::fprintf(stderr, "loaded %zu events, %zu users\n",
                   store.TotalEvents(), store.users().size());
      auto scan = [&](auto const& events) {
        for (const auto& e : events) {
          lo = std::min(lo, e.ts);
          hi = std::max(hi, e.ts);
        }
      };
      scan(store.devices());
      scan(store.file_events());
      scan(store.http_events());
      scan(store.logons());
    }
  } catch (const IngestError& e) {
    std::fprintf(stderr, "acobe-detect: malformed input: %s\n", e.what());
    return kExitBadInput;
  }
  if (ShutdownRequested()) return abort_run("ingest");
  if (ingest_stats.rows_rejected > 0 || ingest_stats.rows_deduped > 0) {
    std::fprintf(stderr,
                 "ingest: %zu rows read, %zu rejected, %zu quarantined, "
                 "%zu duplicates dropped\n",
                 ingest_stats.rows_read, ingest_stats.rows_rejected,
                 ingest_stats.rows_quarantined, ingest_stats.rows_deduped);
  }

  // Day range from the data itself.
  if (lo > hi) {
    std::fprintf(stderr, "no events\n");
    return kExitBadInput;
  }
  const Date start = DateOf(lo);
  const Date last = DateOf(hi);
  const int days = static_cast<int>(DaysBetween(start, last)) + 1;
  if (days > kMaxDaySpan) {
    std::fprintf(stderr,
                 "acobe-detect: event timestamps span %d days (%s..%s); "
                 "refusing to allocate a cube that large\n",
                 days, start.ToString().c_str(), last.ToString().c_str());
    return kExitBadInput;
  }

  int train_end = 0, test_end = 0;
  try {
    train_end = static_cast<int>(
        DaysBetween(start, Date::FromString(train_end_text)));
    test_end =
        test_end_text.empty()
            ? days
            : static_cast<int>(
                  DaysBetween(start, Date::FromString(test_end_text))) + 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "acobe-detect: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (train_end <= 0 || train_end >= test_end) {
    std::fprintf(stderr,
                 "acobe-detect: bad train/test split (train-end must fall "
                 "after the first event and before test-end)\n");
    return kExitUsage;
  }

  DetectorSpec spec;
  spec.deviation.omega = omega;
  spec.deviation.matrix_days = omega;
  spec.ensemble.encoder_dims = {64, 32, 16, 8};
  spec.ensemble.train.epochs = epochs;
  spec.ensemble.train_stride = 2;
  spec.ensemble.optimizer = OptimizerKind::kAdam;
  spec.ensemble.learning_rate = 1e-3f;
  spec.critic_votes = votes;
  spec.ensemble.threads = threads;  // deviation inherits via Detector::Run
  spec.ensemble.resume = resume;
  if (provenance) {
    spec.attribution.enabled = true;
    spec.attribution.top_users = top;
    spec.drift.enabled = true;
  }

  // Ledger groundwork: answer key + dataset digest (both provenance-only
  // work, skipped entirely without --explain-out/--ledger-out).
  const std::map<std::string, std::pair<Date, Date>> truth =
      provenance ? LoadTruth(in_dir)
                 : std::map<std::string, std::pair<Date, Date>>{};
  const std::uint32_t dataset_digest = provenance ? DigestDataset(in_dir) : 0;

  RunLedger ledger;
  if (!ledger_out.empty()) {
    BuildInfo build_info = GetBuildInfo();
    nn::AnnotateBuildInfo(build_info);
    LedgerEvent manifest = MakeManifestEvent("acobe-detect", build_info);
    manifest.Str("in", in_dir)
        .Int("dataset_digest", dataset_digest)
        .Str("start", start.ToString())
        .Str("train_end", start.AddDays(train_end).ToString())
        .Str("test_end", start.AddDays(test_end).ToString())
        .Int("omega", omega)
        .Int("epochs", epochs)
        .Int("votes", votes)
        .Int("threads", threads)
        .Int("seed", static_cast<std::int64_t>(spec.ensemble.seed))
        .Bool("resume", resume)
        .Bool("truth_present", !truth.empty());
    ledger.Append(manifest);
  }

  // A catalog-and-partition anchor for the emit stage. The in-memory
  // path keeps its full extractor; the streaming path frees each
  // shard's extractors as it goes, so the metadata lives here.
  const CertAcobeExtractor meta(start, 1);

  auto make_dept_spec = [&](const std::string& department) {
    DetectorSpec dept_spec = spec;
    if (!checkpoint_dir.empty()) {
      dept_spec.ensemble.checkpoint_dir =
          checkpoint_dir + "/" + SanitizePathComponent(department);
    }
    return dept_spec;
  };
  auto warn_degraded = [](const std::string& department,
                          const DetectionOutput& out) {
    for (const std::string& aspect : out.degraded_aspects) {
      std::fprintf(stderr,
                   "acobe-detect: WARNING: %s: aspect '%s' diverged on every "
                   "attempt; ranking without it\n",
                   department.c_str(), aspect.c_str());
    }
  };

  // --- compute (pass B) ----------------------------------------------------
  // Both paths leave `results` in the canonical department order.
  std::vector<DeptResult> results;
  // One "detect" unit per trained aspect plus one for scoring, per
  // department: ensemble training and Detector::Run advance the stage.
  const std::uint64_t dept_units = meta.catalog().aspects().size() + 1;
  try {
    if (stream) {
      const std::vector<std::string> departments = tables.Departments();
      const int n_shards = spooler->shards();
      health::SetStage("replay", static_cast<std::uint64_t>(n_shards));
      for (int s = 0; s < n_shards; ++s) {
        if (ShutdownRequested()) return abort_run("replay");
        health::SetStage("replay");
        health::SetStageDetail("shard " + std::to_string(s));
        DepartmentDemux demux(start, days);
        std::vector<std::pair<std::string, std::vector<UserId>>> shard_depts;
        for (std::size_t d = 0; d < departments.size(); ++d) {
          if (static_cast<int>(d) % n_shards != s) continue;
          auto members = tables.UsersInDepartment(departments[d]);
          if (members.size() < 3) continue;
          demux.AddDepartment(departments[d], members);
          shard_depts.emplace_back(departments[d], std::move(members));
        }
        if (shard_depts.empty()) {
          health::StageAdvance();
          continue;
        }
        {
          telemetry::TraceSpan extract_span("detect.extract_features");
          spooler->Replay(s, demux);
        }
        health::StageAdvance();
        health::SetStage("detect", shard_depts.size() * dept_units);
        for (int d = 0; d < demux.departments(); ++d) {
          if (ShutdownRequested()) return abort_run("detect");
          const auto& [department, members] = shard_depts[d];
          health::SetStageDetail(department);
          const Detector detector(make_dept_spec(department));
          DetectionOutput out =
              detector.Run(demux.extractor(d).cube(), meta.catalog(), members,
                           0, train_end, train_end, test_end);
          warn_degraded(department, out);
          results.push_back(DeptResult{department, std::move(out)});
        }
      }
      // Shard order is not report order: restore the canonical LDAP
      // department order before emitting anything.
      std::map<std::string, std::size_t> order;
      for (std::size_t d = 0; d < departments.size(); ++d) {
        order[departments[d]] = d;
      }
      std::sort(results.begin(), results.end(),
                [&](const DeptResult& a, const DeptResult& b) {
                  return order[a.name] < order[b.name];
                });
      spooler->Remove();
    } else {
      CertAcobeExtractor extractor(start, days);
      {
        health::SetStage("replay", 1);
        telemetry::TraceSpan extract_span("detect.extract_features");
        ReplayStore(store, extractor);
        for (const LdapRecord& r : store.ldap()) {
          extractor.cube().RegisterUser(r.user);
        }
        health::StageAdvance();
      }
      for (const std::string& department : store.Departments()) {
        if (ShutdownRequested()) return abort_run("detect");
        const auto members = store.UsersInDepartment(department);
        if (members.size() < 3) continue;
        health::SetStage("detect", dept_units);
        health::SetStageDetail(department);
        const Detector detector(make_dept_spec(department));
        DetectionOutput out =
            detector.Run(extractor.cube(), extractor.catalog(), members, 0,
                         train_end, train_end, test_end);
        warn_degraded(department, out);
        results.push_back(DeptResult{department, std::move(out)});
      }
    }
  } catch (const CheckpointMismatch& e) {
    std::fprintf(stderr, "acobe-detect: corrupt artifact: %s\n", e.what());
    return kExitCorruptArtifact;
  }
  ACOBE_GAUGE_SET("features.days", days);
  ACOBE_GAUGE_SET("features.features",
                  static_cast<int>(CertAcobeExtractor::kFeatureCount));
  ACOBE_GAUGE_SET("features.frames", meta.partition().frame_count());
  ACOBE_GAUGE_SET("features.aspects", meta.catalog().aspects().size());

  // --- emit ----------------------------------------------------------------
  health::SetStage("write");
  for (const DeptResult& result : results) {
    PrintDeptResult(result, tables, meta.catalog(), meta.partition(), start,
                    top);
    if (!ledger_out.empty()) {
      AppendDeptLedger(ledger, result, tables, top, truth);
    }
  }

  int exit_code = 0;
  if (!explain_out.empty()) {
    try {
      WriteFileAtomic(explain_out, [&](std::ostream& out) {
        WriteExplainJson(out, results, tables, meta.catalog(),
                         meta.partition(), start, in_dir, dataset_digest,
                         train_end, test_end, top);
      });
      std::fprintf(stderr, "wrote %s\n", explain_out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acobe-detect: cannot write %s: %s\n",
                   explain_out.c_str(), e.what());
      exit_code = kExitFailure;
    }
  }
  if (!ledger_out.empty()) {
    LedgerEvent done("run_complete");
    done.Int("departments", static_cast<std::int64_t>(results.size()))
        .Int("events", static_cast<std::int64_t>(ledger.event_count() + 1))
        .Int("peak_rss_bytes", static_cast<std::int64_t>(PeakRssBytes()))
        .Raw("stages", health::StageTimesJson());
    ledger.Append(done);
    if (!ledger.WriteFile(ledger_out)) {
      std::fprintf(stderr, "acobe-detect: cannot write %s\n",
                   ledger_out.c_str());
      exit_code = kExitFailure;
    } else {
      std::fprintf(stderr, "wrote %s\n", ledger_out.c_str());
    }
  }

  health::SetStage("done");
  health::StopHealth();  // final heartbeat carries the full span profile

  if (!telemetry::FlushTelemetry("acobe-detect", metrics_out, trace_out,
                                 std::cerr)) {
    exit_code = kExitFailure;
  }
  if (!prom_out.empty()) {
    if (telemetry::WriteMetricsPromFile(prom_out)) {
      std::fprintf(stderr, "wrote %s\n", prom_out.c_str());
    } else {
      std::fprintf(stderr, "acobe-detect: cannot write %s\n",
                   prom_out.c_str());
      exit_code = kExitFailure;
    }
  }
  return exit_code;
}
