// acobe-top: terminal viewer for a live "acobe.health.v1" heartbeat
// file (written by acobe-detect/acobe-gen --health-out) or, with
// --url, for a resident acobe-serve daemon's observability endpoint.
//
//   acobe-top HEALTH_FILE [--once] [--interval-ms=N] [--spans=N]
//   acobe-top --url=http://HOST:PORT [--once] [--interval-ms=N]
//
// Follow mode (the default) repaints a dashboard every --interval-ms
// (default 1000): tool + uptime, the current stage with a progress bar
// and ETA, per-stage wall times, RSS (current and peak), CPU
// utilization, the busiest counters by rate, and the span self-profile.
// It exits when the run lands its "final":true heartbeat. --once
// renders the latest heartbeat once and exits — the CI smoke uses it as
// a render check.
//
// The file is re-read whole on every tick and the last parseable line
// wins, so a heartbeat torn by a crash (or a writer mid-append) is
// skipped, never fatal.
//
// Remote mode (--url) polls GET /statusz and /cycles instead: service
// readiness, window span, per-shard queue occupancy and quarantine
// state, open alerts per department, the alert-latency/cycle-wall SLO
// rollups, and the recent per-cycle wall-time breakdown. A fetch error
// in follow mode renders as "waiting" (the daemon may be restarting);
// with --once it exits 1.
//
// Exit codes: 0 ok, 1 no heartbeat could be read, 2 usage.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.h"
#include "common/faults.h"
#include "common/json.h"
#include "net/http_client.h"

using namespace acobe;

namespace {

void Usage() {
  std::printf(
      "acobe-top HEALTH_FILE [--once] [--interval-ms=N] [--spans=N]\n"
      "acobe-top --url=http://HOST:PORT [--once] [--interval-ms=N]\n"
      "  --once            render the latest heartbeat once and exit\n"
      "  --interval-ms=N   repaint period in follow mode (default 1000)\n"
      "  --spans=N         span-profile rows shown (default 12)\n"
      "  --url=U           poll a running acobe-serve daemon's /statusz\n"
      "                    and /cycles instead of reading a file\n"
      "  --version         print build identity and exit\n");
}

/// Last line of `path` that parses as a JSON object. Null type when the
/// file is missing, empty, or holds only torn lines.
json::Value LastHeartbeat(const std::string& path) {
  std::ifstream in(path);
  json::Value latest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      json::Value v = json::Value::Parse(line);
      if (v.is_object()) latest = std::move(v);
    } catch (const json::ParseError&) {
      // Torn tail (crash mid-append): keep the previous whole line.
    }
  }
  return latest;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.1f %s", bytes,
                kUnits[unit]);
  return buf;
}

std::string HumanSeconds(double s) {
  char buf[48];
  if (s < 0) return "--:--";
  const long total = static_cast<long>(s + 0.5);
  if (total >= 3600) {
    std::snprintf(buf, sizeof(buf), "%ld:%02ld:%02ld", total / 3600,
                  (total % 3600) / 60, total % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%02ld:%02ld", total / 60, total % 60);
  }
  return buf;
}

std::string ProgressBar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar = "[";
  for (int i = 0; i < width; ++i) bar += i < filled ? '#' : '.';
  bar += ']';
  return bar;
}

struct CounterRow {
  std::string name;
  double total;
  double rate;
};

/// One full repaint of the dashboard into `out`.
void Render(std::ostream& out, const json::Value& hb, int span_rows) {
  const std::string tool = hb.GetString("tool", "?");
  const double uptime_s = hb.GetNumber("uptime_ms", 0) / 1000.0;
  const bool final_beat = hb.GetBool("final", false);
  char line[256];

  std::snprintf(line, sizeof(line),
                "%s  seq %-6.0f up %s  %s\n", tool.c_str(),
                hb.GetNumber("seq", 0), HumanSeconds(uptime_s).c_str(),
                final_beat ? "(run complete)" : "(live)");
  out << line;

  // Stage + progress bar + ETA.
  if (const json::Value* stage = hb.Get("stage")) {
    const std::string name = stage->GetString("name", "?");
    const std::string detail = stage->GetString("detail", "");
    const double done = stage->GetNumber("done", 0);
    const double total = stage->GetNumber("total", 0);
    const double eta = stage->GetNumber("eta_s", -1);
    out << "stage " << name;
    if (!detail.empty()) out << " (" << detail << ")";
    if (total > 0) {
      std::snprintf(line, sizeof(line), "  %s %.0f/%.0f (%.0f%%)  eta %s",
                    ProgressBar(done / total, 24).c_str(), done, total,
                    100.0 * done / total, HumanSeconds(eta).c_str());
      out << line;
    }
    std::snprintf(line, sizeof(line), "  %s in stage\n",
                  HumanSeconds(stage->GetNumber("elapsed_s", 0)).c_str());
    out << line;
  }

  // Memory + CPU.
  const double rss = hb.GetNumber("rss_bytes", 0);
  const double peak = hb.GetNumber("peak_rss_bytes", 0);
  double util = 0.0, cpu_s = 0.0;
  if (const json::Value* cpu = hb.Get("cpu")) {
    util = cpu->GetNumber("utilization", 0);
    cpu_s = cpu->GetNumber("proc_seconds", 0);
  }
  std::snprintf(line, sizeof(line),
                "rss %s (peak %s)  cpu %.1f cores (%.0fs total)\n\n",
                HumanBytes(rss).c_str(), HumanBytes(peak).c_str(), util,
                cpu_s);
  out << line;

  // Per-stage wall times.
  if (const json::Value* stages = hb.Get("stages");
      stages != nullptr && stages->is_array() && stages->size() > 0) {
    out << "  stage        seconds       done/total\n";
    for (std::size_t i = 0; i < stages->size(); ++i) {
      const json::Value& s = (*stages)[i];
      const double total = s.GetNumber("total", 0);
      std::string progress;
      if (total > 0) {
        std::snprintf(line, sizeof(line), "%.0f/%.0f",
                      s.GetNumber("done", 0), total);
        progress = line;
      }
      std::snprintf(line, sizeof(line), "  %-12s %10.2f   %12s\n",
                    s.GetString("stage", "?").c_str(),
                    s.GetNumber("seconds", 0), progress.c_str());
      out << line;
    }
    out << '\n';
  }

  // Busiest counters by current rate (totals as tie-break, so a stalled
  // run still shows where the work went).
  if (const json::Value* counters = hb.Get("counters");
      counters != nullptr && counters->is_object()) {
    std::vector<CounterRow> rows;
    for (const auto& [name, value] : counters->AsObject()) {
      rows.push_back(CounterRow{name, value.GetNumber("total", 0),
                                value.GetNumber("rate", 0)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const CounterRow& a, const CounterRow& b) {
                if (a.rate != b.rate) return a.rate > b.rate;
                return a.total > b.total;
              });
    if (!rows.empty()) {
      out << "  counter                                total    per-second\n";
      const std::size_t shown = std::min<std::size_t>(rows.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        std::snprintf(line, sizeof(line), "  %-32s %12.0f  %12.1f\n",
                      rows[i].name.c_str(), rows[i].total, rows[i].rate);
        out << line;
      }
      out << '\n';
    }
  }

  // Span self-profile (already sorted by total_ms by the writer).
  if (const json::Value* spans = hb.Get("spans");
      spans != nullptr && spans->is_array() && spans->size() > 0) {
    out << "  span                       parent                    count"
           "     total ms      self ms\n";
    const std::size_t shown =
        std::min<std::size_t>(spans->size(),
                              static_cast<std::size_t>(span_rows));
    for (std::size_t i = 0; i < shown; ++i) {
      const json::Value& s = (*spans)[i];
      std::snprintf(line, sizeof(line),
                    "  %-26s %-22s %7.0f %12.1f %12.1f\n",
                    s.GetString("name", "?").c_str(),
                    s.GetString("parent", "").c_str(),
                    s.GetNumber("count", 0), s.GetNumber("total_ms", 0),
                    s.GetNumber("self_ms", 0));
      out << line;
    }
    if (spans->size() > shown) {
      out << "  ... " << spans->size() - shown << " more\n";
    }
  }
}

// --- Remote (daemon) dashboard ---------------------------------------

/// Fetches `path` from the daemon and parses the JSON body. Throws
/// (std::runtime_error / json::ParseError) on any failure, including
/// non-200 statuses other than 503 (503 bodies are valid "not ready"
/// JSON and render as such).
json::Value FetchJson(const net::ParsedUrl& base, const std::string& path) {
  const net::HttpResult res = net::HttpGet(base.host, base.port, path);
  if (res.status != 200 && res.status != 503) {
    throw std::runtime_error(path + " answered HTTP " +
                             std::to_string(res.status));
  }
  return json::Value::Parse(res.body);
}

/// One full repaint of the daemon dashboard from /statusz + /cycles.
void RenderStatus(std::ostream& out, const json::Value& status,
                  const json::Value& cycles) {
  char line[256];
  const bool ready = status.GetBool("ready", false);
  std::snprintf(line, sizeof(line), "%s %s  cycle %-6.0f alerts %-6.0f %s\n",
                status.GetString("tool", "acobe-serve").c_str(),
                status.GetString("version", "?").c_str(),
                status.GetNumber("cycle", 0),
                status.GetNumber("alerts_total", 0),
                ready ? "(ready)" : "(starting: replay in progress)");
  out << line;
  if (!ready) return;

  if (const json::Value* window = status.Get("window");
      window != nullptr && window->is_object()) {
    out << "window " << window->GetString("start", "?") << ".."
        << window->GetString("end", "?") << "  last scored "
        << status.GetString("last_scored_day", "-") << "  last batch "
        << status.GetString("last_batch", "-") << "\n";
  } else {
    out << "window -  (no events ingested yet)\n";
  }

  if (const json::Value* slo = status.Get("slo");
      slo != nullptr && slo->is_object()) {
    std::snprintf(line, sizeof(line),
                  "slo  alert-latency p50 %s p95 %s (%.0f sample(s))  "
                  "cycle-wall p50 %s p95 %s\n\n",
                  HumanSeconds(slo->GetNumber("alert_latency_p50_s", 0))
                      .c_str(),
                  HumanSeconds(slo->GetNumber("alert_latency_p95_s", 0))
                      .c_str(),
                  slo->GetNumber("alert_latency_samples", 0),
                  HumanSeconds(slo->GetNumber("cycle_wall_p50_s", 0)).c_str(),
                  HumanSeconds(slo->GetNumber("cycle_wall_p95_s", 0)).c_str());
    out << line;
  }

  if (const json::Value* shards = status.Get("shards");
      shards != nullptr && shards->is_array() && shards->size() > 0) {
    out << "  shard   queue rows   queue bytes    peak rows       shed"
           "   state\n";
    for (std::size_t i = 0; i < shards->size(); ++i) {
      const json::Value& s = (*shards)[i];
      std::string state = "ok";
      if (s.GetBool("quarantined", false)) {
        state = "QUARANTINED";
      } else if (s.GetNumber("failures", 0) > 0) {
        std::snprintf(line, sizeof(line), "ok (%.0f failure(s))",
                      s.GetNumber("failures", 0));
        state = line;
      }
      std::snprintf(line, sizeof(line),
                    "  %5.0f %12.0f %13s %12.0f %10.0f   %s\n",
                    s.GetNumber("shard", 0), s.GetNumber("queue_rows", 0),
                    HumanBytes(s.GetNumber("queue_bytes", 0)).c_str(),
                    s.GetNumber("queue_peak_rows", 0),
                    s.GetNumber("queue_shed", 0), state.c_str());
      out << line;
    }
    out << '\n';
  }

  if (const json::Value* depts = status.Get("departments");
      depts != nullptr && depts->is_array() && depts->size() > 0) {
    out << "  department                       members   open alerts\n";
    for (std::size_t i = 0; i < depts->size(); ++i) {
      const json::Value& d = (*depts)[i];
      std::snprintf(line, sizeof(line), "  %-32s %7.0f %13.0f\n",
                    d.GetString("name", "?").c_str(),
                    d.GetNumber("members", 0), d.GetNumber("open_alerts", 0));
      out << line;
    }
    out << '\n';
  }

  if (const json::Value* recent = cycles.Get("cycles");
      recent != nullptr && recent->is_array() && recent->size() > 0) {
    out << "  cycle  batch         events    alerts   ingest s    "
           "train s    score s   commit s    total s\n";
    for (std::size_t i = 0; i < recent->size(); ++i) {
      const json::Value& c = (*recent)[i];
      std::snprintf(line, sizeof(line),
                    "  %5.0f  %-12s %8.0f %9.0f %10.2f %10.2f %10.2f "
                    "%10.2f %10.2f\n",
                    c.GetNumber("cycle", 0),
                    c.GetString("batch", "?").c_str(),
                    c.GetNumber("events_admitted", 0),
                    c.GetNumber("alerts", 0), c.GetNumber("ingest_s", 0),
                    c.GetNumber("train_s", 0), c.GetNumber("score_s", 0),
                    c.GetNumber("commit_s", 0), c.GetNumber("total_s", 0));
      out << line;
    }
  }
}

/// Remote mode main loop; mirrors the file-mode once/follow contract.
int RunRemote(const std::string& url, bool once, int interval_ms) {
  net::ParsedUrl base;
  try {
    base = net::ParseHttpUrl(url);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "acobe-top: %s\n", e.what());
    return kExitUsage;
  }

  for (;;) {
    std::ostringstream frame;
    bool fetched = false;
    if (!once) frame << "\033[H\033[2J";  // home + clear
    try {
      const json::Value status = FetchJson(base, "/statusz");
      const json::Value cycles = FetchJson(base, "/cycles?n=8");
      RenderStatus(frame, status, cycles);
      fetched = true;
    } catch (const std::exception& e) {
      frame << "acobe-top: waiting for " << url << " (" << e.what() << ")\n";
    }
    std::fputs(frame.str().c_str(), stdout);
    std::fflush(stdout);
    if (once) return fetched ? 0 : kExitFailure;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string url;
  bool once = false;
  int interval_ms = 1000;
  int span_rows = 12;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--once") == 0) {
        once = true;
      } else if (std::strncmp(arg, "--url=", 6) == 0) {
        url = arg + 6;
      } else if (std::strncmp(arg, "--interval-ms=", 14) == 0) {
        interval_ms =
            static_cast<int>(cli::ParseInt(arg, arg + 14, 10, 3600000));
      } else if (std::strncmp(arg, "--spans=", 8) == 0) {
        span_rows = static_cast<int>(cli::ParseInt(arg, arg + 8, 1, 1000));
      } else if (std::strcmp(arg, "--version") == 0) {
        cli::PrintVersion("acobe-top");
        return 0;
      } else if (std::strcmp(arg, "--help") == 0) {
        Usage();
        return 0;
      } else if (arg[0] == '-') {
        std::fprintf(stderr, "acobe-top: unknown argument '%s'\n", arg);
        Usage();
        return kExitUsage;
      } else if (path.empty()) {
        path = arg;
      } else {
        Usage();
        return kExitUsage;
      }
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "acobe-top: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (!url.empty()) {
    if (!path.empty()) {
      std::fprintf(stderr,
                   "acobe-top: --url and HEALTH_FILE are exclusive\n");
      Usage();
      return kExitUsage;
    }
    return RunRemote(url, once, interval_ms);
  }
  if (path.empty()) {
    Usage();
    return kExitUsage;
  }

  if (once) {
    const json::Value hb = LastHeartbeat(path);
    if (!hb.is_object()) {
      std::fprintf(stderr, "acobe-top: no heartbeat in %s\n", path.c_str());
      return kExitFailure;
    }
    std::ostringstream frame;
    Render(frame, hb, span_rows);
    std::fputs(frame.str().c_str(), stdout);
    return 0;
  }

  // Follow mode: repaint until the final heartbeat lands. A missing or
  // not-yet-written file is just "waiting" — the run may still be
  // starting up.
  bool ever = false;
  for (;;) {
    const json::Value hb = LastHeartbeat(path);
    std::ostringstream frame;
    frame << "\033[H\033[2J";  // home + clear
    if (hb.is_object()) {
      ever = true;
      Render(frame, hb, span_rows);
    } else {
      frame << "acobe-top: waiting for heartbeats in " << path << "\n";
    }
    std::fputs(frame.str().c_str(), stdout);
    std::fflush(stdout);
    if (hb.is_object() && hb.GetBool("final", false)) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return ever ? 0 : kExitFailure;
}
