#pragma once

// Shared strict flag parsing for the acobe command-line tools, plus the
// tools' common exit-code taxonomy (see common/faults.h):
//   2 (kExitUsage)           bad flags / missing arguments
//   3 (kExitBadInput)        unreadable or malformed input data
//   4 (kExitCorruptArtifact) a saved model/checkpoint failed validation
//   1 (kExitFailure)         any other runtime failure
//
// Parsers throw FlagError instead of atoi's silent garbage-to-0; the
// tools catch it at the flag loop, print the message + usage to stderr,
// and exit kExitUsage.

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/faults.h"
#include "common/version.h"

namespace acobe::cli {

/// `--version` output, identical across tools and identical in content
/// to the build block in every run-ledger manifest: repo version, build
/// type, active SIMD dispatch, telemetry compile state, and — for tools
/// that link the NN core and annotate their BuildInfo — the active
/// compute backend and resolved GEMM thread count.
inline void PrintVersionInfo(const char* tool, const BuildInfo& info) {
  std::printf("%s %s (build: %s, simd: %s, telemetry: %s", tool,
              info.version.c_str(), info.build_type.c_str(), info.simd.c_str(),
              info.telemetry ? "on" : "off");
  if (!info.nn_backend.empty()) {
    std::printf(", nn-backend: %s, nn-threads: %d", info.nn_backend.c_str(),
                info.nn_threads);
  }
  std::printf(")\n");
}

inline void PrintVersion(const char* tool) {
  PrintVersionInfo(tool, GetBuildInfo());
}

struct FlagError : std::runtime_error {
  explicit FlagError(const std::string& what) : std::runtime_error(what) {}
};

/// Whole-value strict integer in [min, max].
inline long long ParseInt(const char* arg, const char* value, long long min,
                          long long max) {
  const std::string text(value);
  if (text.empty()) throw FlagError(std::string(arg) + ": empty value");
  long long parsed = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec == std::errc::result_out_of_range) {
    throw FlagError(std::string(arg) + ": out of range");
  }
  if (ec != std::errc() || end != text.data() + text.size()) {
    throw FlagError(std::string(arg) + ": not an integer");
  }
  if (parsed < min || parsed > max) {
    throw FlagError(std::string(arg) + ": must be in [" + std::to_string(min) +
                    ", " + std::to_string(max) + "]");
  }
  return parsed;
}

inline std::uint64_t ParseU64(const char* arg, const char* value) {
  const std::string text(value);
  if (text.empty()) throw FlagError(std::string(arg) + ": empty value");
  std::uint64_t parsed = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc() || end != text.data() + text.size()) {
    throw FlagError(std::string(arg) + ": not an unsigned integer");
  }
  return parsed;
}

/// Whole-value strict double in [min, max]. strtod (not from_chars) for
/// libstdc++ versions without the FP overload, with manual whole-value
/// and range policing.
inline double ParseDouble(const char* arg, const char* value, double min,
                          double max) {
  if (*value == '\0') throw FlagError(std::string(arg) + ": empty value");
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (*end != '\0' || end == value) {
    throw FlagError(std::string(arg) + ": not a number");
  }
  if (errno == ERANGE || parsed < min || parsed > max) {
    throw FlagError(std::string(arg) + ": must be in [" + std::to_string(min) +
                    ", " + std::to_string(max) + "]");
  }
  return parsed;
}

}  // namespace acobe::cli
