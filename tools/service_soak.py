#!/usr/bin/env python3
"""Crash-injection soak for acobe_serve's restart bit-identity contract.

The resident service promises that SIGKILL at *any* instant loses no
output and duplicates no output: after a restart, the concatenated
alert stream and ledger are byte-identical to a run that was never
interrupted. This harness proves it the blunt way:

  1. generate a small CERT-style dataset (acobe_gen, planted insider),
  2. split it into day-range batch directories under a watch dir,
     with the READY marker written last (the daemon's admission rule),
  3. reference run: one uninterrupted `acobe_serve --drain` over all
     batches,
  4. soak run: release the same batches one at a time into a second
     watch dir; before letting each batch complete, start the daemon
     and SIGKILL it after a seeded random delay (landing the kill in
     startup, replay, ingest, detect or commit at random), then run
     to completion; repeat until at least --min-kills kills landed,
  5. compare: alerts.jsonl must be byte-identical, and the ledger must
     be line-identical after dropping run_complete lines (each interim
     completed process appends one, and only the journaled prefix
     survives a restart — the final line legitimately differs in its
     per-process cycle count),
  6. validate the final process's heartbeat file with check_health.py
     --require-final.

With --with-http every soak-side daemon additionally runs the embedded
observability server (--listen=127.0.0.1:0) while the reference run
does not, proving the endpoint plane never perturbs detection output,
and the heartbeat check also enforces the per-shard queue gauges
(check_health.py --daemon).

Everything is driven by one --seed, so a failure reproduces.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import time

DAY = 86400
EVENT_CSVS = ["device.csv", "file.csv", "http.csv", "logon.csv"]

# Small-but-real detection geometry: ~70 days of data, 2 departments,
# a window that forces several multi-batch slides.
GEN_ARGS = [
    "--users=36", "--departments=2", "--seed=7",
    "--start=2010-01-04", "--end=2010-03-15",
    "--scenario1=0:2010-02-15:5",
]
SERVE_ARGS = [
    "--epochs=2", "--window-days=21", "--train-days=12", "--omega=5",
    "--seed=1234", "--alert-top=3", "--persistence-days=2",
    "--cooloff-days=2", "--shards=2", "--admission=block",
]
DAYS_PER_BATCH = 4


def log(msg):
    print(f"[service_soak] {msg}", flush=True)


def fail(msg):
    print(f"[service_soak] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def run_checked(argv, what):
    proc = subprocess.run(argv, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"{what} exited {proc.returncode}:\n"
             f"{proc.stderr.decode(errors='replace')[-2000:]}")


def split_into_batches(data_dir, watch_dir):
    """Splits the event CSVs into per-day-range batch dirs. Returns the
    list of batch directory names in release (lexicographic) order."""
    headers, rows = {}, {}
    lo = None
    for name in EVENT_CSVS:
        with open(os.path.join(data_dir, name)) as fh:
            headers[name] = fh.readline()
            rows[name] = fh.readlines()
            for line in rows[name]:
                d = int(line.split(",", 1)[0]) // DAY
                lo = d if lo is None or d < lo else lo
    batches = {}
    for name in EVENT_CSVS:
        for line in rows[name]:
            d = int(line.split(",", 1)[0]) // DAY
            b = (d - lo) // DAYS_PER_BATCH
            batches.setdefault(b, {n: [] for n in EVENT_CSVS})
            batches[b][name].append(line)
    names = []
    for b in sorted(batches):
        bname = f"batch-{b:03d}"
        bdir = os.path.join(watch_dir, bname)
        os.makedirs(bdir)
        for name in EVENT_CSVS:
            with open(os.path.join(bdir, name), "w") as fh:
                fh.write(headers[name])
                fh.writelines(batches[b][name])
        names.append(bname)
    return names


def release(staging, watch_dir, bname):
    """Moves one staged batch into the watch dir; READY written last."""
    shutil.move(os.path.join(staging, bname), os.path.join(watch_dir, bname))
    with open(os.path.join(watch_dir, bname, "READY"), "w"):
        pass


def serve_argv(serve, watch, out, extra=()):
    return ([serve, f"--watch={watch}", f"--out={out}",
             f"--roster={os.path.join(out, os.pardir, 'data', 'ldap.csv')}"]
            + SERVE_ARGS + ["--drain"] + list(extra))


def read_ledger_without_run_complete(path):
    with open(path, "rb") as fh:
        lines = fh.read().split(b"\n")
    return [l for l in lines if l and b'"event": "run_complete"' not in l]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--gen", required=True)
    ap.add_argument("--serve", required=True)
    ap.add_argument("--check-health", required=True)
    ap.add_argument("--workdir", default=None)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--min-kills", type=int, default=12)
    ap.add_argument("--with-http", action="store_true",
                    help="run every soak daemon with --listen=127.0.0.1:0 "
                         "(the reference run stays serverless; outputs "
                         "must still match byte-for-byte)")
    ap.add_argument("--keep", action="store_true",
                    help="leave the workdir behind for inspection")
    args = ap.parse_args()

    workdir = args.workdir or os.path.join(
        os.environ.get("TMPDIR", "/tmp"), f"acobe_service_soak_{os.getpid()}")
    shutil.rmtree(workdir, ignore_errors=True)
    data = os.path.join(workdir, "data")
    staging = os.path.join(workdir, "staging")
    ref_watch = os.path.join(workdir, "ref_watch")
    ref_out = os.path.join(workdir, "ref_out")
    soak_watch = os.path.join(workdir, "soak_watch")
    soak_out = os.path.join(workdir, "soak_out")
    for d in (data, staging, ref_watch, ref_out, soak_watch, soak_out):
        os.makedirs(d)

    log("generating dataset")
    run_checked([args.gen, f"--out={data}"] + GEN_ARGS, "acobe_gen")
    batch_names = split_into_batches(data, ref_watch)
    log(f"{len(batch_names)} batches of {DAYS_PER_BATCH} days")
    for bname in batch_names:
        shutil.copytree(os.path.join(ref_watch, bname),
                        os.path.join(staging, bname))
        with open(os.path.join(ref_watch, bname, "READY"), "w"):
            pass

    log("reference run (uninterrupted drain)")
    t0 = time.monotonic()
    run_checked(serve_argv(args.serve, ref_watch, ref_out),
                "reference acobe_serve")
    log(f"reference drain took {time.monotonic() - t0:.1f}s")
    for name in ("alerts.jsonl", "ledger.jsonl"):
        if not os.path.exists(os.path.join(ref_out, name)):
            fail(f"reference run produced no {name}")

    rng = random.Random(args.seed)
    kills = 0
    kill_stages = []
    http_args = ["--listen=127.0.0.1:0"] if args.with_http else []

    def killed_attempt(delay):
        """Starts the daemon, SIGKILLs it after `delay` seconds.
        Returns True when the kill actually landed mid-run."""
        nonlocal kills
        proc = subprocess.Popen(
            serve_argv(args.serve, soak_watch, soak_out, http_args),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        time.sleep(delay)
        if proc.poll() is not None:
            return False  # finished before the kill: nothing to prove
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        kills += 1
        kill_stages.append(round(delay, 3))
        return True

    def run_to_completion(extra=()):
        for attempt in range(5):
            proc = subprocess.run(
                serve_argv(args.serve, soak_watch, soak_out,
                           http_args + list(extra)),
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
            if proc.returncode == 0:
                return
        fail(f"soak completion run kept failing (exit {proc.returncode}):\n"
             f"{proc.stderr.decode(errors='replace')[-2000:]}")

    log(f"soak run: >= {args.min_kills} seeded SIGKILLs")
    for i, bname in enumerate(batch_names):
        release(staging, soak_watch, bname)
        # Kill harder early in the schedule so the target is met even
        # if later batches process too fast to catch.
        behind = args.min_kills - kills
        remaining = len(batch_names) - i
        attempts = max(1, -(-behind // max(1, remaining)))  # ceil
        for _ in range(attempts):
            # Short delays land in startup/replay; longer ones land in
            # ingest, detect or the commit protocol of the new cycle.
            # An attempt that finishes before the kill has consumed the
            # batch, so further kills on it would only hit no-op starts.
            if not killed_attempt(rng.uniform(0.01, 0.25)):
                break
        is_last = i == len(batch_names) - 1
        extra = [f"--health-out={os.path.join(soak_out, 'health.jsonl')}",
                 "--health-interval-ms=50"] if is_last else []
        run_to_completion(extra)

    # If fast batches dodged their kills, top up with restarts killed
    # mid-replay: a restart with nothing pending still loads the
    # journal and re-ingests the whole window before drain-exiting,
    # which is exactly the recovery path worth interrupting.
    topped_up = False
    for _ in range(200):
        if kills >= args.min_kills:
            break
        topped_up |= killed_attempt(rng.uniform(0.01, 0.15))
    if topped_up:
        # The last kill may have torn a freshly-appended run_complete
        # tail; one clean completion truncates it back to the journaled
        # prefix and ends the stream with a single completion event.
        run_to_completion()

    log(f"{kills} kills landed (delays: {kill_stages})")
    if kills < args.min_kills:
        fail(f"only {kills} kills landed, wanted >= {args.min_kills}")

    # --- Byte-identity -----------------------------------------------------
    with open(os.path.join(ref_out, "alerts.jsonl"), "rb") as fh:
        ref_alerts = fh.read()
    with open(os.path.join(soak_out, "alerts.jsonl"), "rb") as fh:
        soak_alerts = fh.read()
    if ref_alerts != soak_alerts:
        ref_lines = ref_alerts.split(b"\n")
        soak_lines = soak_alerts.split(b"\n")
        for i, (a, b) in enumerate(zip(ref_lines, soak_lines)):
            if a != b:
                fail(f"alerts.jsonl diverges at line {i + 1}:\n"
                     f"  ref : {a.decode(errors='replace')}\n"
                     f"  soak: {b.decode(errors='replace')}")
        fail(f"alerts.jsonl length mismatch: ref {len(ref_lines)} lines, "
             f"soak {len(soak_lines)} lines")
    if not ref_alerts:
        fail("reference alert stream is empty; soak proves nothing")
    n_alerts = ref_alerts.count(b"\n")
    log(f"alerts.jsonl byte-identical ({len(ref_alerts)} bytes, "
        f"{n_alerts} alerts)")

    ref_ledger = read_ledger_without_run_complete(
        os.path.join(ref_out, "ledger.jsonl"))
    soak_ledger = read_ledger_without_run_complete(
        os.path.join(soak_out, "ledger.jsonl"))
    if ref_ledger != soak_ledger:
        for i, (a, b) in enumerate(zip(ref_ledger, soak_ledger)):
            if a != b:
                fail(f"ledger diverges at event {i + 1}:\n"
                     f"  ref : {a.decode(errors='replace')}\n"
                     f"  soak: {b.decode(errors='replace')}")
        fail(f"ledger event count mismatch: ref {len(ref_ledger)}, "
             f"soak {len(soak_ledger)}")
    log(f"ledger event stream identical ({len(ref_ledger)} events)")

    # Exactly one run_complete must survive: the journal prefix truncates
    # every interim process's completion line on the next restart.
    with open(os.path.join(soak_out, "ledger.jsonl"), "rb") as fh:
        completes = fh.read().count(b'"event": "run_complete"')
    if completes != 1:
        fail(f"expected exactly 1 surviving run_complete, found {completes}")

    log("validating final-run heartbeats")
    run_checked([sys.executable, args.check_health,
                 os.path.join(soak_out, "health.jsonl"), "--require-final"]
                + (["--daemon"] if args.with_http else []),
                "check_health.py")

    log(f"PASS: {kills} kills, output bit-identical to uninterrupted run"
        + (" (observability server enabled)" if args.with_http else ""))
    if not args.keep:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
