#!/usr/bin/env python3
"""End-to-end smoke of acobe_serve's observability endpoints.

Drives one full daemon lifecycle and validates every endpoint:

  1. generate a small dataset (acobe_gen) and split it into two
     batches: everything but the last few days, and the tail,
  2. drain the first batch without the server to build a journal,
  3. restart the daemon resident with --listen=127.0.0.1:0 and watch
     /readyz flip 503 -> 200 across journal replay (the server comes
     up before recovery on purpose, so probes can see the daemon warm
     up),
  4. check /healthz, then release the second batch and wait for the
     cycle counter on /statusz to advance — the daemon scored it live,
  5. validate /statusz and /cycles JSON (schemas acobe.statusz.v1 /
     acobe.cycles.v1), the 400 on a bad ?n=, the 404/405 surface, and
     /metrics under tools/check_prom.py (including the service.slo.*
     and per-shard service.queue.* gauges),
  6. render the remote dashboard once with acobe_top --url,
  7. SIGTERM the daemon, require a clean exit, and validate its
     heartbeat file with check_health.py --daemon.

Usage:
    endpoint_smoke.py --gen GEN --serve SERVE --top TOP \
        --check-prom CHECK_PROM_PY --check-health CHECK_HEALTH_PY

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

import argparse
import http.client
import json
import os
import shutil
import signal
import subprocess
import sys
import time

DAY = 86400
EVENT_CSVS = ["device.csv", "file.csv", "http.csv", "logon.csv"]
GEN_ARGS = [
    "--users=36", "--departments=2", "--seed=7",
    "--start=2010-01-04", "--end=2010-03-15",
    "--scenario1=0:2010-02-15:5",
]
SERVE_ARGS = [
    "--epochs=2", "--window-days=21", "--train-days=12", "--omega=5",
    "--seed=1234", "--shards=2", "--admission=block", "--poll-ms=100",
]
TAIL_DAYS = 4  # days held back for the live batch


def log(msg):
    print(f"[endpoint_smoke] {msg}", flush=True)


def fail(msg):
    print(f"[endpoint_smoke] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def get(addr, path, method="GET", timeout=5.0):
    """One request; returns (status, body_bytes, headers dict)."""
    host, port = addr.rsplit(":", 1)
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        conn.request(method, path)
        res = conn.getresponse()
        return res.status, res.read(), dict(res.getheaders())
    finally:
        conn.close()


def split_tail(data, watch, staging):
    """Writes all-but-the-last-TAIL_DAYS days as watch/batch-000 and
    the tail as staging/batch-001."""
    headers, rows, hi = {}, {}, None
    for name in EVENT_CSVS:
        with open(os.path.join(data, name)) as fh:
            headers[name] = fh.readline()
            rows[name] = fh.readlines()
        for line in rows[name]:
            d = int(line.split(",", 1)[0]) // DAY
            hi = d if hi is None or d > hi else hi
    cutoff = hi - TAIL_DAYS + 1
    for bdir, keep in ((os.path.join(watch, "batch-000"),
                        lambda d: d < cutoff),
                       (os.path.join(staging, "batch-001"),
                        lambda d: d >= cutoff)):
        os.makedirs(bdir)
        for name in EVENT_CSVS:
            with open(os.path.join(bdir, name), "w") as fh:
                fh.write(headers[name])
                fh.writelines(l for l in rows[name]
                              if keep(int(l.split(",", 1)[0]) // DAY))
    with open(os.path.join(watch, "batch-000", "READY"), "w"):
        pass


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--gen", required=True)
    ap.add_argument("--serve", required=True)
    ap.add_argument("--top", required=True)
    ap.add_argument("--check-prom", required=True)
    ap.add_argument("--check-health", required=True)
    ap.add_argument("--workdir", default=None)
    args = ap.parse_args()

    workdir = args.workdir or os.path.join(
        os.environ.get("TMPDIR", "/tmp"), f"acobe_endpoint_smoke_{os.getpid()}")
    shutil.rmtree(workdir, ignore_errors=True)
    data = os.path.join(workdir, "data")
    watch = os.path.join(workdir, "watch")
    staging = os.path.join(workdir, "staging")
    out = os.path.join(workdir, "out")
    for d in (data, watch, staging, out):
        os.makedirs(d)

    log("generating dataset + 2 batches")
    subprocess.run([args.gen, f"--out={data}"] + GEN_ARGS, check=True,
                   stdout=subprocess.DEVNULL)
    split_tail(data, watch, staging)

    serve_base = [args.serve, f"--watch={watch}", f"--out={out}",
                  f"--roster={os.path.join(data, 'ldap.csv')}"] + SERVE_ARGS
    log("drain run (builds the journal the restart must replay)")
    subprocess.run(serve_base + ["--drain"], check=True,
                   stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    addr_file = os.path.join(out, "http.addr")
    os.path.exists(addr_file) and os.remove(addr_file)

    log("starting resident daemon with --listen=127.0.0.1:0")
    daemon = subprocess.Popen(
        serve_base + ["--listen=127.0.0.1:0",
                      f"--health-out={os.path.join(out, 'health.jsonl')}",
                      "--health-interval-ms=100"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        # --- /readyz transition across journal replay ------------------
        addr, saw_503, status = None, False, None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if addr is None:
                if not os.path.exists(addr_file):
                    continue
                with open(addr_file) as fh:
                    addr = fh.read().strip()
                log(f"daemon listening on {addr}")
            try:
                status, _, _ = get(addr, "/readyz", timeout=1.0)
            except OSError:
                continue  # bind raced the addr file; retry
            if status == 503:
                saw_503 = True
            elif status == 200:
                break
            else:
                fail(f"/readyz answered {status}")
        if status != 200:
            fail("/readyz never reached 200")
        if not saw_503:
            fail("/readyz skipped the 503 (not-ready) phase during replay")
        log("/readyz flipped 503 -> 200 across replay")

        st, body, _ = get(addr, "/healthz")
        if st != 200 or body != b"ok\n":
            fail(f"/healthz answered {st} {body!r}")

        st, body, _ = get(addr, "/statusz")
        cycle0 = json.loads(body)["cycle"]

        # --- live batch: the cycle counter must advance ----------------
        log("releasing the tail batch")
        shutil.move(os.path.join(staging, "batch-001"),
                    os.path.join(watch, "batch-001"))
        with open(os.path.join(watch, "batch-001", "READY"), "w"):
            pass
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            st, body, _ = get(addr, "/statusz")
            if st == 200 and json.loads(body)["cycle"] > cycle0:
                break
            time.sleep(0.1)
        else:
            fail("cycle counter never advanced after releasing a batch")

        # --- /statusz schema -------------------------------------------
        st, body, headers = get(addr, "/statusz")
        status_doc = json.loads(body)
        if status_doc.get("schema") != "acobe.statusz.v1":
            fail(f"/statusz schema {status_doc.get('schema')!r}")
        if not status_doc.get("ready"):
            fail("/statusz ready is false after readyz 200")
        if "application/json" not in headers.get("Content-Type", ""):
            fail(f"/statusz content type {headers.get('Content-Type')!r}")
        shards = status_doc.get("shards", [])
        if len(shards) != 2:
            fail(f"/statusz reports {len(shards)} shards, expected 2")
        for s in shards:
            for key in ("shard", "queue_rows", "queue_bytes",
                        "queue_peak_rows", "queue_shed", "quarantined"):
                if key not in s:
                    fail(f"/statusz shard lacks {key!r}: {s}")
        if not status_doc.get("departments"):
            fail("/statusz departments empty")
        for key in ("alert_latency_p50_s", "alert_latency_p95_s",
                    "cycle_wall_p50_s", "cycle_wall_p95_s",
                    "cycles_observed"):
            if key not in status_doc.get("slo", {}):
                fail(f"/statusz slo lacks {key!r}")
        log(f"/statusz valid (cycle {status_doc['cycle']}, "
            f"{len(shards)} shards)")

        # --- /cycles schema --------------------------------------------
        st, body, _ = get(addr, "/cycles?n=8")
        cycles_doc = json.loads(body)
        if cycles_doc.get("schema") != "acobe.cycles.v1":
            fail(f"/cycles schema {cycles_doc.get('schema')!r}")
        cycles = cycles_doc.get("cycles", [])
        if not cycles:
            fail("/cycles empty after a live batch")
        for c in cycles:
            for key in ("cycle", "batch", "events_admitted", "alerts",
                        "ingest_s", "train_s", "score_s", "commit_s",
                        "total_s", "batch_age_s", "alert_latency_s"):
                if key not in c:
                    fail(f"/cycles row lacks {key!r}: {c}")
            if c["total_s"] < 0:
                fail(f"/cycles negative total_s: {c}")
        live = cycles[-1]
        if live["events_admitted"] <= 0 or live["batch_age_s"] < 0:
            fail(f"live cycle looks unpopulated: {live}")
        log(f"/cycles valid ({len(cycles)} rows, live batch "
            f"{live['batch']} admitted {live['events_admitted']})")

        st, _, _ = get(addr, "/cycles?n=0")
        if st != 400:
            fail(f"/cycles?n=0 answered {st}, want 400")

        # --- /metrics under the full validator -------------------------
        st, body, headers = get(addr, "/metrics")
        if st != 200:
            fail(f"/metrics answered {st}")
        if not headers.get("Content-Type", "").startswith(
                "text/plain; version=0.0.4"):
            fail(f"/metrics content type {headers.get('Content-Type')!r}")
        text = body.decode()
        for needle in ("acobe_service_slo_alert_latency_p50_s",
                       "acobe_service_queue_rows_shard0",
                       "acobe_net_http_requests"):
            if needle not in text:
                fail(f"/metrics lacks {needle}")
        prom_path = os.path.join(out, "metrics.prom")
        with open(prom_path, "w") as fh:
            fh.write(text)
        subprocess.run([sys.executable, args.check_prom, prom_path,
                        "--require-prefix=acobe_", "--min-samples=20"],
                       check=True)

        # --- error surface + remote dashboard --------------------------
        st, _, _ = get(addr, "/nope")
        if st != 404:
            fail(f"unknown path answered {st}, want 404")
        st, _, headers = get(addr, "/healthz", method="POST")
        if st != 405 or headers.get("Allow") != "GET":
            fail(f"POST answered {st} Allow={headers.get('Allow')!r}")

        top = subprocess.run([args.top, f"--url=http://{addr}", "--once"],
                             capture_output=True)
        rendered = top.stdout.decode(errors="replace")
        if top.returncode != 0 or "acobe-serve" not in rendered:
            fail(f"acobe_top --url render failed "
                 f"(exit {top.returncode}):\n{rendered}")
        log("acobe_top --url renders the daemon dashboard")

        # --- clean shutdown --------------------------------------------
        daemon.send_signal(signal.SIGTERM)
        if daemon.wait(timeout=30) != 0:
            fail(f"daemon exited {daemon.returncode} on SIGTERM")
        daemon = None
        subprocess.run([sys.executable, args.check_health,
                        os.path.join(out, "health.jsonl"), "--daemon"],
                       check=True)
    finally:
        if daemon is not None and daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    log("PASS: all five endpoints valid, 503->200 readiness transition, "
        "clean SIGTERM")
    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
