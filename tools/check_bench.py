#!/usr/bin/env python3
"""CI gate for the blocked GEMM kernels and the streaming pipeline.

Default mode compares a fresh `micro_nn --metrics-out=...` run against
the checked-in baseline (bench/BENCH_nn.json). Absolute GFLOP/s numbers do not transfer
between machines, so the gate is expressed in terms of the in-run speedup
of the blocked kernel over the scalar reference kernel:

    speedup(N) = BM_Gemm/N.items_per_second / BM_GemmRef/N.items_per_second

Both benchmarks run in the same process on the same machine, so the ratio
cancels out clock speed, turbo state, and container noise. The gate fails
if any size's current speedup drops below `tolerance` times the baseline
speedup (default 0.8, i.e. a >20% relative regression of BM_Gemm).

Default mode also gates the threaded compute paths on their own in-run
ratios, which equally transfer across machines:

  - panel-parallel GEMM: BM_GemmMT/256/4 over BM_GemmMT/256/1 must be
    >= --mt-floor (default 3.0). Applied only when the current run's
    bench.hw_threads gauge is >= 4 — on smaller machines four workers
    time-slice one core and the ratio measures the scheduler, not the
    kernels — and skipped (loudly) otherwise.
  - fused ensemble training: BM_TrainStreamFused/112/4 over
    BM_TrainStreamSolo/112 must be >= --fused-floor (default 1.5),
    applied when bench.hw_threads >= 2, skipped otherwise.

Usage:
    tools/check_bench.py BASELINE.json CURRENT.json [--tolerance 0.8]
        [--mt-floor 3.0] [--fused-floor 1.5]
    tools/check_bench.py --pipeline BASELINE.json CURRENT.json \
        [--rss-tolerance 1.25]

--pipeline gates a `tools/bench_pipeline.py` run (bench/BENCH_pipeline.json
is the checked-in baseline) the same way: on the in-run ratio that
transfers across machines. Here that is
`pipeline.detect.stream_vs_memory_rss_ratio` — streaming peak RSS over
in-memory peak RSS on the same dataset. The gate fails if the current
ratio exceeds the baseline ratio times --rss-tolerance (default 1.25,
i.e. a >25% relative RSS regression of the out-of-core path), or if any
required pipeline gauge is missing or non-positive.

Exit status 0 on pass, 1 on regression or malformed input.
"""

import argparse
import json
import sys

SIZES = (64, 128, 256)


def load_gauges(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "acobe.metrics.v1":
        raise ValueError(f"{path}: not an acobe.metrics.v1 file")
    return doc.get("gauges", {})


def speedup(gauges, size, path):
    blocked_key = f"bench.BM_Gemm/{size}.items_per_second"
    ref_key = f"bench.BM_GemmRef/{size}.items_per_second"
    try:
        blocked = float(gauges[blocked_key])
        ref = float(gauges[ref_key])
    except KeyError as e:
        raise ValueError(f"{path}: missing gauge {e}") from e
    if ref <= 0.0:
        raise ValueError(f"{path}: {ref_key} is non-positive")
    return blocked / ref


# Gauges a healthy pipeline-bench run must always publish, with positive
# values. Structural half of the --pipeline gate.
PIPELINE_REQUIRED = (
    "pipeline.users",
    "pipeline.departments",
    "pipeline.events",
    "pipeline.gen.users_per_second",
    "pipeline.gen.events_per_second",
    "pipeline.gen.peak_rss_bytes",
    "pipeline.detect_stream.users_per_second",
    "pipeline.detect_stream.events_per_second",
    "pipeline.detect_stream.matrices_per_second",
    "pipeline.detect_stream.peak_rss_bytes",
)

PIPELINE_RATIO = "pipeline.detect.stream_vs_memory_rss_ratio"


def check_pipeline(base, cur, rss_tolerance):
    """The --pipeline gate: structure of the current run, plus the
    stream/memory RSS ratio against the baseline's."""
    failed = False
    for key in PIPELINE_REQUIRED:
        value = cur.get(key)
        if value is None:
            print(f"check_bench: missing pipeline gauge {key}",
                  file=sys.stderr)
            failed = True
        elif float(value) <= 0.0:
            print(f"check_bench: non-positive pipeline gauge {key} = {value}",
                  file=sys.stderr)
            failed = True
    base_ratio = base.get(PIPELINE_RATIO)
    cur_ratio = cur.get(PIPELINE_RATIO)
    if base_ratio is None:
        print(f"check_bench: baseline lacks {PIPELINE_RATIO}; "
              "structural checks only")
    elif cur_ratio is None:
        print(f"check_bench: current run lacks {PIPELINE_RATIO} "
              "(--skip-memory?); structural checks only")
    else:
        ceiling = float(base_ratio) * rss_tolerance
        status = "ok" if float(cur_ratio) <= ceiling else "REGRESSION"
        print(f"stream/memory peak-RSS ratio {float(cur_ratio):.3f} "
              f"(baseline {float(base_ratio):.3f}, ceiling {ceiling:.3f}) "
              f"{status}")
        if float(cur_ratio) > ceiling:
            failed = True
    if failed:
        print("check_bench: streaming pipeline regressed vs baseline",
              file=sys.stderr)
        return 1
    print("check_bench: streaming pipeline within tolerance")
    return 0


# In-run ratio gates for the threaded compute paths. Each is (label,
# numerator gauge, denominator gauge, floor-argument name, minimum
# bench.hw_threads for the ratio to be meaningful).
THREADED_GATES = (
    ("GEMM 4-thread speedup",
     "bench.BM_GemmMT/256/4/real_time.items_per_second",
     "bench.BM_GemmMT/256/1/real_time.items_per_second",
     "mt_floor", 4),
    ("fused train-stream speedup",
     "bench.BM_TrainStreamFused/112/4/real_time.items_per_second",
     "bench.BM_TrainStreamSolo/112/real_time.items_per_second",
     "fused_floor", 2),
)


def check_threaded(cur, args):
    """Absolute in-run floors for the threaded paths, hardware-gated by
    the run's own bench.hw_threads gauge."""
    hw = float(cur.get("bench.hw_threads", 0.0))
    failed = False
    for label, num_key, den_key, floor_arg, min_hw in THREADED_GATES:
        floor = getattr(args, floor_arg)
        num, den = cur.get(num_key), cur.get(den_key)
        if num is None or den is None:
            print(f"check_bench: missing gauge for {label} "
                  f"({num_key if num is None else den_key})",
                  file=sys.stderr)
            failed = True
            continue
        if float(den) <= 0.0:
            print(f"check_bench: non-positive {den_key}", file=sys.stderr)
            failed = True
            continue
        ratio = float(num) / float(den)
        if hw < min_hw:
            print(f"{label}: {ratio:.2f}x — SKIPPED "
                  f"(hw_threads {hw:.0f} < {min_hw}, floor not applied)")
            continue
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"{label}: {ratio:.2f}x (floor {floor:.2f}x) {status}")
        if ratio < floor:
            failed = True
    return failed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.8,
                    help="fail if current speedup < baseline speedup * "
                         "TOLERANCE (default 0.8)")
    ap.add_argument("--mt-floor", type=float, default=3.0,
                    help="minimum BM_GemmMT 4-thread/1-thread speedup on "
                         "machines with >= 4 hardware threads (default 3.0)")
    ap.add_argument("--fused-floor", type=float, default=1.5,
                    help="minimum fused/solo train-stream speedup on "
                         "machines with >= 2 hardware threads (default 1.5)")
    ap.add_argument("--pipeline", action="store_true",
                    help="gate a bench_pipeline.py run instead of GEMM")
    ap.add_argument("--rss-tolerance", type=float, default=1.25,
                    help="--pipeline: fail if the stream/memory RSS ratio "
                         "> baseline ratio * RSS_TOLERANCE (default 1.25)")
    args = ap.parse_args()

    try:
        base = load_gauges(args.baseline)
        cur = load_gauges(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 1

    if args.pipeline:
        return check_pipeline(base, cur, args.rss_tolerance)

    failed = False
    for n in SIZES:
        try:
            base_s = speedup(base, n, args.baseline)
            cur_s = speedup(cur, n, args.current)
        except ValueError as e:
            print(f"check_bench: {e}", file=sys.stderr)
            return 1
        floor = base_s * args.tolerance
        status = "ok" if cur_s >= floor else "REGRESSION"
        print(f"BM_Gemm/{n}: blocked/ref speedup {cur_s:.2f}x "
              f"(baseline {base_s:.2f}x, floor {floor:.2f}x) {status}")
        if cur_s < floor:
            failed = True

    if check_threaded(cur, args):
        failed = True

    if failed:
        print("check_bench: blocked GEMM regressed >"
              f"{(1 - args.tolerance) * 100:.0f}% vs baseline",
              file=sys.stderr)
        return 1
    print("check_bench: all GEMM speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
