#!/usr/bin/env python3
"""CI gate for the blocked GEMM kernels.

Compares a fresh `micro_nn --metrics-out=...` run against the checked-in
baseline (bench/BENCH_nn.json). Absolute GFLOP/s numbers do not transfer
between machines, so the gate is expressed in terms of the in-run speedup
of the blocked kernel over the scalar reference kernel:

    speedup(N) = BM_Gemm/N.items_per_second / BM_GemmRef/N.items_per_second

Both benchmarks run in the same process on the same machine, so the ratio
cancels out clock speed, turbo state, and container noise. The gate fails
if any size's current speedup drops below `tolerance` times the baseline
speedup (default 0.8, i.e. a >20% relative regression of BM_Gemm).

Usage:
    tools/check_bench.py BASELINE.json CURRENT.json [--tolerance 0.8]

Exit status 0 on pass, 1 on regression or malformed input.
"""

import argparse
import json
import sys

SIZES = (64, 128, 256)


def load_gauges(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "acobe.metrics.v1":
        raise ValueError(f"{path}: not an acobe.metrics.v1 file")
    return doc.get("gauges", {})


def speedup(gauges, size, path):
    blocked_key = f"bench.BM_Gemm/{size}.items_per_second"
    ref_key = f"bench.BM_GemmRef/{size}.items_per_second"
    try:
        blocked = float(gauges[blocked_key])
        ref = float(gauges[ref_key])
    except KeyError as e:
        raise ValueError(f"{path}: missing gauge {e}") from e
    if ref <= 0.0:
        raise ValueError(f"{path}: {ref_key} is non-positive")
    return blocked / ref


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.8,
                    help="fail if current speedup < baseline speedup * "
                         "TOLERANCE (default 0.8)")
    args = ap.parse_args()

    try:
        base = load_gauges(args.baseline)
        cur = load_gauges(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 1

    failed = False
    for n in SIZES:
        try:
            base_s = speedup(base, n, args.baseline)
            cur_s = speedup(cur, n, args.current)
        except ValueError as e:
            print(f"check_bench: {e}", file=sys.stderr)
            return 1
        floor = base_s * args.tolerance
        status = "ok" if cur_s >= floor else "REGRESSION"
        print(f"BM_Gemm/{n}: blocked/ref speedup {cur_s:.2f}x "
              f"(baseline {base_s:.2f}x, floor {floor:.2f}x) {status}")
        if cur_s < floor:
            failed = True

    if failed:
        print("check_bench: blocked GEMM regressed >"
              f"{(1 - args.tolerance) * 100:.0f}% vs baseline",
              file=sys.stderr)
        return 1
    print("check_bench: all GEMM speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
