#!/usr/bin/env python3
"""CI gate for the blocked GEMM kernels and the streaming pipeline.

Default mode compares a fresh `micro_nn --metrics-out=...` run against
the checked-in baseline (bench/BENCH_nn.json). Absolute GFLOP/s numbers do not transfer
between machines, so the gate is expressed in terms of the in-run speedup
of the blocked kernel over the scalar reference kernel:

    speedup(N) = BM_Gemm/N.items_per_second / BM_GemmRef/N.items_per_second

Both benchmarks run in the same process on the same machine, so the ratio
cancels out clock speed, turbo state, and container noise. The gate fails
if any size's current speedup drops below `tolerance` times the baseline
speedup (default 0.8, i.e. a >20% relative regression of BM_Gemm).

Usage:
    tools/check_bench.py BASELINE.json CURRENT.json [--tolerance 0.8]
    tools/check_bench.py --pipeline BASELINE.json CURRENT.json \
        [--rss-tolerance 1.25]

--pipeline gates a `tools/bench_pipeline.py` run (bench/BENCH_pipeline.json
is the checked-in baseline) the same way: on the in-run ratio that
transfers across machines. Here that is
`pipeline.detect.stream_vs_memory_rss_ratio` — streaming peak RSS over
in-memory peak RSS on the same dataset. The gate fails if the current
ratio exceeds the baseline ratio times --rss-tolerance (default 1.25,
i.e. a >25% relative RSS regression of the out-of-core path), or if any
required pipeline gauge is missing or non-positive.

Exit status 0 on pass, 1 on regression or malformed input.
"""

import argparse
import json
import sys

SIZES = (64, 128, 256)


def load_gauges(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "acobe.metrics.v1":
        raise ValueError(f"{path}: not an acobe.metrics.v1 file")
    return doc.get("gauges", {})


def speedup(gauges, size, path):
    blocked_key = f"bench.BM_Gemm/{size}.items_per_second"
    ref_key = f"bench.BM_GemmRef/{size}.items_per_second"
    try:
        blocked = float(gauges[blocked_key])
        ref = float(gauges[ref_key])
    except KeyError as e:
        raise ValueError(f"{path}: missing gauge {e}") from e
    if ref <= 0.0:
        raise ValueError(f"{path}: {ref_key} is non-positive")
    return blocked / ref


# Gauges a healthy pipeline-bench run must always publish, with positive
# values. Structural half of the --pipeline gate.
PIPELINE_REQUIRED = (
    "pipeline.users",
    "pipeline.departments",
    "pipeline.events",
    "pipeline.gen.users_per_second",
    "pipeline.gen.events_per_second",
    "pipeline.gen.peak_rss_bytes",
    "pipeline.detect_stream.users_per_second",
    "pipeline.detect_stream.events_per_second",
    "pipeline.detect_stream.matrices_per_second",
    "pipeline.detect_stream.peak_rss_bytes",
)

PIPELINE_RATIO = "pipeline.detect.stream_vs_memory_rss_ratio"


def check_pipeline(base, cur, rss_tolerance):
    """The --pipeline gate: structure of the current run, plus the
    stream/memory RSS ratio against the baseline's."""
    failed = False
    for key in PIPELINE_REQUIRED:
        value = cur.get(key)
        if value is None:
            print(f"check_bench: missing pipeline gauge {key}",
                  file=sys.stderr)
            failed = True
        elif float(value) <= 0.0:
            print(f"check_bench: non-positive pipeline gauge {key} = {value}",
                  file=sys.stderr)
            failed = True
    base_ratio = base.get(PIPELINE_RATIO)
    cur_ratio = cur.get(PIPELINE_RATIO)
    if base_ratio is None:
        print(f"check_bench: baseline lacks {PIPELINE_RATIO}; "
              "structural checks only")
    elif cur_ratio is None:
        print(f"check_bench: current run lacks {PIPELINE_RATIO} "
              "(--skip-memory?); structural checks only")
    else:
        ceiling = float(base_ratio) * rss_tolerance
        status = "ok" if float(cur_ratio) <= ceiling else "REGRESSION"
        print(f"stream/memory peak-RSS ratio {float(cur_ratio):.3f} "
              f"(baseline {float(base_ratio):.3f}, ceiling {ceiling:.3f}) "
              f"{status}")
        if float(cur_ratio) > ceiling:
            failed = True
    if failed:
        print("check_bench: streaming pipeline regressed vs baseline",
              file=sys.stderr)
        return 1
    print("check_bench: streaming pipeline within tolerance")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.8,
                    help="fail if current speedup < baseline speedup * "
                         "TOLERANCE (default 0.8)")
    ap.add_argument("--pipeline", action="store_true",
                    help="gate a bench_pipeline.py run instead of GEMM")
    ap.add_argument("--rss-tolerance", type=float, default=1.25,
                    help="--pipeline: fail if the stream/memory RSS ratio "
                         "> baseline ratio * RSS_TOLERANCE (default 1.25)")
    args = ap.parse_args()

    try:
        base = load_gauges(args.baseline)
        cur = load_gauges(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 1

    if args.pipeline:
        return check_pipeline(base, cur, args.rss_tolerance)

    failed = False
    for n in SIZES:
        try:
            base_s = speedup(base, n, args.baseline)
            cur_s = speedup(cur, n, args.current)
        except ValueError as e:
            print(f"check_bench: {e}", file=sys.stderr)
            return 1
        floor = base_s * args.tolerance
        status = "ok" if cur_s >= floor else "REGRESSION"
        print(f"BM_Gemm/{n}: blocked/ref speedup {cur_s:.2f}x "
              f"(baseline {base_s:.2f}x, floor {floor:.2f}x) {status}")
        if cur_s < floor:
            failed = True

    if failed:
        print("check_bench: blocked GEMM regressed >"
              f"{(1 - args.tolerance) * 100:.0f}% vs baseline",
              file=sys.stderr)
        return 1
    print("check_bench: all GEMM speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
