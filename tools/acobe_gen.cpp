// acobe-gen: synthesizes a CERT-style dataset and writes it to a
// directory in the CERT dataset's one-CSV-per-log-type layout
// (device.csv, file.csv, http.csv, logon.csv, ldap.csv) plus a
// ground-truth file listing the planted insiders.
//
//   acobe-gen --out=DIR [--users=N] [--departments=N] [--seed=S]
//             [--start=YYYY-MM-DD] [--end=YYYY-MM-DD] [--rate=R]
//             [--scenario1=DEPT:YYYY-MM-DD:DAYS]...
//             [--scenario2=DEPT:YYYY-MM-DD:DAYS]...
//             [--metrics-out=FILE] [--trace-out=FILE]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "common/trace.h"
#include "logs/log_io.h"
#include "simdata/cert_simulator.h"

using namespace acobe;

namespace {

struct ScenarioArg {
  sim::InsiderScenarioKind kind;
  int department;
  Date start;
  int days;
};

bool ParseScenario(const char* text, sim::InsiderScenarioKind kind,
                   std::vector<ScenarioArg>& out) {
  int dept = 0, days = 0;
  char date[16] = {};
  if (std::sscanf(text, "%d:%10[0-9-]:%d", &dept, date, &days) != 3) {
    return false;
  }
  out.push_back({kind, dept, Date::FromString(date), days});
  return true;
}

void Usage() {
  std::printf(
      "acobe-gen --out=DIR [--users=N] [--departments=N] [--seed=S]\n"
      "          [--start=YYYY-MM-DD] [--end=YYYY-MM-DD] [--rate=R]\n"
      "          [--scenario1=DEPT:DATE:DAYS] [--scenario2=DEPT:DATE:DAYS]\n"
      "          [--metrics-out=FILE] [--trace-out=FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string metrics_out, trace_out;
  sim::CertSimConfig config;
  config.org.departments = 2;
  config.org.users_per_department = 20;
  config.org.extra_users = 0;
  config.profiles.rate_scale = 0.5;
  std::vector<ScenarioArg> scenarios;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_dir = arg + 6;
    } else if (std::strncmp(arg, "--users=", 8) == 0) {
      config.org.users_per_department = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--departments=", 14) == 0) {
      config.org.departments = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--start=", 8) == 0) {
      config.start = Date::FromString(arg + 8);
    } else if (std::strncmp(arg, "--end=", 6) == 0) {
      config.end = Date::FromString(arg + 6);
    } else if (std::strncmp(arg, "--rate=", 7) == 0) {
      config.profiles.rate_scale = std::atof(arg + 7);
    } else if (std::strncmp(arg, "--scenario1=", 12) == 0) {
      if (!ParseScenario(arg + 12, sim::InsiderScenarioKind::kScenario1,
                         scenarios)) {
        Usage();
        return 2;
      }
    } else if (std::strncmp(arg, "--scenario2=", 12) == 0) {
      if (!ParseScenario(arg + 12, sim::InsiderScenarioKind::kScenario2,
                         scenarios)) {
        Usage();
        return 2;
      }
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else {
      Usage();
      return std::strcmp(arg, "--help") == 0 ? 0 : 2;
    }
  }
  if (out_dir.empty()) {
    Usage();
    return 2;
  }

  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());

  LogStore store;
  sim::CertSimulator simulator(config, store);
  for (const ScenarioArg& s : scenarios) {
    const auto& planted =
        simulator.InjectScenario(s.kind, s.department, s.start, s.days);
    std::fprintf(stderr, "planted scenario %d insider %s in department %d\n",
                 static_cast<int>(s.kind), planted.user_name.c_str(),
                 s.department);
  }
  {
    telemetry::TraceSpan sim_span("gen.simulate");
    simulator.Run(store);
    store.SortChronologically();
  }
  ACOBE_COUNT("gen.events_simulated", store.TotalEvents());
  ACOBE_GAUGE_SET("gen.users", store.users().size());
  std::fprintf(stderr, "simulated %zu events for %zu users\n",
               store.TotalEvents(), store.users().size());

  auto write = [&](const char* name, auto writer) {
    const std::string path = out_dir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      std::exit(1);
    }
    writer(store, out);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  };
  write("device.csv", WriteDeviceCsv);
  write("file.csv", WriteFileCsv);
  write("http.csv", WriteHttpCsv);
  write("logon.csv", WriteLogonCsv);
  write("ldap.csv", WriteLdapCsv);

  // Ground truth for evaluation.
  {
    const std::string path = out_dir + "/truth.csv";
    std::ofstream out(path);
    out << "user,anomaly_start,anomaly_end\n";
    for (const auto& scenario : simulator.scenarios()) {
      out << scenario.user_name << ',' << scenario.anomaly_start.ToString()
          << ',' << scenario.anomaly_end.ToString() << '\n';
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

  telemetry::WriteReport(std::cerr);
  if (!metrics_out.empty() && !telemetry::WriteMetricsJsonFile(metrics_out)) {
    std::fprintf(stderr, "acobe-gen: cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  if (!trace_out.empty() && !telemetry::WriteTraceJsonFile(trace_out)) {
    std::fprintf(stderr, "acobe-gen: cannot write %s\n", trace_out.c_str());
    return 1;
  }
  return 0;
}
