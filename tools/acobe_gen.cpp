// acobe-gen: synthesizes a CERT-style dataset and writes it to a
// directory in the CERT dataset's one-CSV-per-log-type layout
// (device.csv, file.csv, http.csv, logon.csv, ldap.csv) plus a
// ground-truth file listing the planted insiders.
//
//   acobe-gen --out=DIR [--users=N] [--departments=N] [--seed=S]
//             [--start=YYYY-MM-DD] [--end=YYYY-MM-DD] [--rate=R]
//             [--scenario1=DEPT:YYYY-MM-DD:DAYS]...
//             [--scenario2=DEPT:YYYY-MM-DD:DAYS]...
//             [--stream] [--shards=N]
//             [--corrupt-rate=R] [--corrupt-seed=S]
//             [--metrics-out=FILE] [--trace-out=FILE]
//             [--health-out=FILE] [--health-interval-ms=N]
//
// --corrupt-rate: after simulation, deterministically corrupt that
// fraction of data rows in the four event CSVs (byte flips, truncated
// rows, duplicated rows — see simdata/fault_injector.h) to exercise
// ingestion fault tolerance. ldap.csv and truth.csv are never
// corrupted: they define the population and the answer key, not the
// event feed under test.
//
// Out-of-core mode: --stream simulates the organization in department
// shards (--shards, default 16), appending each shard's rows straight
// to the output CSVs instead of materializing every event in memory
// first, so a 100k-user or 1M-user org generates in bounded RSS. The
// org-wide environmental-change schedule is resolved once by a probe
// simulator and shared by every shard, so group-correlated bursts stay
// org-wide; user names, PCs and the ground truth are identical in
// structure to the in-memory path. The sampled events themselves are
// NOT byte-identical to a non-streamed run (each shard draws from its
// own seeded stream, and rows land ordered by day within shard rather
// than globally by timestamp) — both detectors re-order by day on
// ingest, so either layout is valid input. --stream excludes
// --corrupt-rate, which needs the rendered file in memory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli_util.h"
#include "common/faults.h"
#include "common/health.h"
#include "common/shutdown.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "logs/log_io.h"
#include "simdata/cert_simulator.h"
#include "simdata/fault_injector.h"

using namespace acobe;

namespace {

struct ScenarioArg {
  sim::InsiderScenarioKind kind;
  int department;
  Date start;
  int days;
};

bool ParseScenario(const char* text, sim::InsiderScenarioKind kind,
                   std::vector<ScenarioArg>& out) {
  int dept = 0, days = 0;
  char date[16] = {};
  if (std::sscanf(text, "%d:%10[0-9-]:%d", &dept, date, &days) != 3) {
    return false;
  }
  out.push_back({kind, dept, Date::FromString(date), days});
  return true;
}

void Usage() {
  std::printf(
      "acobe-gen --out=DIR [--users=N] [--departments=N] [--seed=S]\n"
      "          [--start=YYYY-MM-DD] [--end=YYYY-MM-DD] [--rate=R]\n"
      "          [--scenario1=DEPT:DATE:DAYS] [--scenario2=DEPT:DATE:DAYS]\n"
      "          [--stream] [--shards=N]\n"
      "          [--corrupt-rate=R] [--corrupt-seed=S]\n"
      "          [--metrics-out=FILE] [--trace-out=FILE]\n"
      "          [--health-out=FILE] [--health-interval-ms=N] [--version]\n"
      "  --stream          generate in department shards, appending to the\n"
      "                    CSVs as each shard completes (bounded memory)\n"
      "  --shards=N        department shards in --stream mode (default 16)\n"
      "  --corrupt-rate=R  corrupt fraction R of event-CSV rows (0..1)\n"
      "  --corrupt-seed=S  fault-injection seed (default 99)\n"
      "  --health-out=F    append live heartbeat JSONL to F (watch with\n"
      "                    acobe-top); crashes dump to F.crash.json\n"
      "  --health-interval-ms=N  heartbeat period (default 1000)\n"
      "  --version         print build identity and exit\n");
}

/// One output CSV landed with the same tmp-then-rename discipline as
/// WriteFileAtomic, but held open across the shard loop so rows stream
/// straight to disk instead of being rendered in memory first. An
/// interrupted run leaves only .tmp files behind, never a torn CSV.
class StreamedCsv {
 public:
  explicit StreamedCsv(std::string path)
      : path_(std::move(path)),
        tmp_(path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()))),
        out_(tmp_, std::ios::binary | std::ios::trunc) {}

  ~StreamedCsv() {
    if (!committed_) {
      out_.close();
      std::remove(tmp_.c_str());
    }
  }

  std::ostream& stream() { return out_; }
  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

  /// Flush and rename into place. False on any I/O error.
  bool Commit() {
    out_.flush();
    if (!out_) return false;
    out_.close();
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) return false;
    committed_ = true;
    return true;
  }

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  bool committed_ = false;
};

/// The --stream path: per-shard simulation appended to shared CSVs.
int GenerateStreamed(sim::CertSimConfig base,
                     const std::vector<ScenarioArg>& scenarios,
                     const std::string& out_dir, int shards) {
  const int total_depts = base.org.departments;
  const int n_shards = std::max(1, std::min(shards, total_depts));
  for (const ScenarioArg& s : scenarios) {
    if (s.department < 0 || s.department >= total_depts) {
      std::fprintf(stderr, "acobe-gen: scenario department %d out of range\n",
                   s.department);
      return kExitUsage;
    }
  }

  // Probe: resolve the org-wide environmental-change schedule once,
  // from the base seed, and hand the result to every shard. Without
  // this each shard's mixed seed would sample its own schedule and the
  // "org-wide" bursts would stop being org-wide.
  {
    sim::CertSimConfig probe_cfg = base;
    probe_cfg.org.departments = 1;
    probe_cfg.org.users_per_department = 1;
    probe_cfg.org.extra_users = 0;
    LogStore probe_store;
    const sim::CertSimulator probe(probe_cfg, probe_store);
    base.env_changes = probe.env_changes();
    base.default_env_changes = false;
  }

  StreamedCsv device(out_dir + "/device.csv");
  StreamedCsv file(out_dir + "/file.csv");
  StreamedCsv http(out_dir + "/http.csv");
  StreamedCsv logon(out_dir + "/logon.csv");
  StreamedCsv ldap(out_dir + "/ldap.csv");
  for (StreamedCsv* csv : {&device, &file, &http, &logon, &ldap}) {
    if (!csv->ok()) {
      std::fprintf(stderr, "acobe-gen: cannot open %s for writing\n",
                   csv->path().c_str());
      return kExitFailure;
    }
  }

  std::vector<sim::InsiderScenario> all_scenarios;
  std::size_t total_events = 0, total_users = 0;
  health::SetStage("simulate", static_cast<std::uint64_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    if (ShutdownRequested()) {
      // The StreamedCsv destructors remove the .tmp files; nothing
      // half-written ever carries the real CSV names.
      std::fprintf(stderr,
                   "acobe-gen: shutdown requested during simulate; aborting "
                   "cleanly\n");
      return kExitAborted;
    }
    health::SetStageDetail("shard " + std::to_string(s + 1) + "/" +
                           std::to_string(n_shards));
    const int lo = static_cast<int>(
        static_cast<std::int64_t>(total_depts) * s / n_shards);
    const int hi = static_cast<int>(
        static_cast<std::int64_t>(total_depts) * (s + 1) / n_shards);
    sim::CertSimConfig cfg = base;
    cfg.org.first_department = lo;
    cfg.org.departments = hi - lo;
    // Users are numbered globally; department 0 carries the extras.
    cfg.org.first_ordinal = lo * base.org.users_per_department +
                            (lo > 0 ? base.org.extra_users : 0);
    // Mix the shard index into the seed: reusing the base seed would
    // restart every shard's per-user RNG forks at user.id 0 and clone
    // the same behavior profiles across shards.
    cfg.seed = base.seed ^ (0x9E3779B97F4A7C15ull * (s + 1));

    LogStore shard_store;
    sim::CertSimulator simulator(cfg, shard_store);
    for (const ScenarioArg& sc : scenarios) {
      if (sc.department < lo || sc.department >= hi) continue;
      const auto& planted =
          simulator.InjectScenario(sc.kind, sc.department, sc.start, sc.days);
      std::fprintf(stderr, "planted scenario %d insider %s in department %d\n",
                   static_cast<int>(sc.kind), planted.user_name.c_str(),
                   sc.department);
    }

    CsvEventSink sink(shard_store, &logon.stream(), &device.stream(),
                      &file.stream(), &http.stream(),
                      /*write_headers=*/s == 0);
    {
      telemetry::TraceSpan sim_span("gen.simulate");
      simulator.Run(sink);
    }
    {
      CsvWriter w(ldap.stream());
      if (s == 0) w.WriteRow({"user", "department", "team", "role"});
      for (const LdapRecord& r : shard_store.ldap()) {
        w.WriteRow({r.user_name, r.department, r.team, r.role});
      }
    }
    for (const sim::InsiderScenario& sc : simulator.scenarios()) {
      all_scenarios.push_back(sc);
    }
    total_events += sink.rows_written();
    total_users += shard_store.users().size();
    health::StageAdvance();
    std::fprintf(stderr,
                 "shard %d/%d: departments %d..%d, %zu users, %zu events\n",
                 s + 1, n_shards, lo, hi - 1, shard_store.users().size(),
                 sink.rows_written());
  }
  ACOBE_COUNT("gen.events_simulated", total_events);
  ACOBE_GAUGE_SET("gen.users", total_users);
  std::fprintf(stderr, "simulated %zu events for %zu users\n", total_events,
               total_users);

  health::SetStage("write");
  for (StreamedCsv* csv : {&device, &file, &http, &logon, &ldap}) {
    if (!csv->Commit()) {
      std::fprintf(stderr, "acobe-gen: cannot write %s\n",
                   csv->path().c_str());
      return kExitFailure;
    }
    std::fprintf(stderr, "wrote %s\n", csv->path().c_str());
  }
  const std::string truth_path = out_dir + "/truth.csv";
  try {
    WriteFileAtomic(truth_path, [&](std::ostream& out) {
      out << "user,anomaly_start,anomaly_end\n";
      for (const sim::InsiderScenario& sc : all_scenarios) {
        out << sc.user_name << ',' << sc.anomaly_start.ToString() << ','
            << sc.anomaly_end.ToString() << '\n';
      }
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acobe-gen: cannot write %s: %s\n",
                 truth_path.c_str(), e.what());
    return kExitFailure;
  }
  std::fprintf(stderr, "wrote %s\n", truth_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string metrics_out, trace_out;
  std::string health_out;
  int health_interval_ms = 1000;
  sim::CertSimConfig config;
  config.org.departments = 2;
  config.org.users_per_department = 20;
  config.org.extra_users = 0;
  config.profiles.rate_scale = 0.5;
  std::vector<ScenarioArg> scenarios;
  double corrupt_rate = 0.0;
  std::uint64_t corrupt_seed = 99;
  bool stream = false;
  int shards = 16;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--out=", 6) == 0) {
        out_dir = arg + 6;
      } else if (std::strncmp(arg, "--users=", 8) == 0) {
        config.org.users_per_department =
            static_cast<int>(cli::ParseInt(arg, arg + 8, 1, 1000000));
      } else if (std::strncmp(arg, "--departments=", 14) == 0) {
        config.org.departments =
            static_cast<int>(cli::ParseInt(arg, arg + 14, 1, 10000));
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        config.seed = cli::ParseU64(arg, arg + 7);
      } else if (std::strncmp(arg, "--start=", 8) == 0) {
        config.start = Date::FromString(arg + 8);
      } else if (std::strncmp(arg, "--end=", 6) == 0) {
        config.end = Date::FromString(arg + 6);
      } else if (std::strncmp(arg, "--rate=", 7) == 0) {
        config.profiles.rate_scale = cli::ParseDouble(arg, arg + 7, 0.0, 1e6);
      } else if (std::strcmp(arg, "--stream") == 0) {
        stream = true;
      } else if (std::strncmp(arg, "--shards=", 9) == 0) {
        shards = static_cast<int>(cli::ParseInt(arg, arg + 9, 1, 65536));
      } else if (std::strncmp(arg, "--corrupt-rate=", 15) == 0) {
        corrupt_rate = cli::ParseDouble(arg, arg + 15, 0.0, 1.0);
      } else if (std::strncmp(arg, "--corrupt-seed=", 15) == 0) {
        corrupt_seed = cli::ParseU64(arg, arg + 15);
      } else if (std::strncmp(arg, "--scenario1=", 12) == 0) {
        if (!ParseScenario(arg + 12, sim::InsiderScenarioKind::kScenario1,
                           scenarios)) {
          Usage();
          return kExitUsage;
        }
      } else if (std::strncmp(arg, "--scenario2=", 12) == 0) {
        if (!ParseScenario(arg + 12, sim::InsiderScenarioKind::kScenario2,
                           scenarios)) {
          Usage();
          return kExitUsage;
        }
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_out = arg + 14;
      } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_out = arg + 12;
      } else if (std::strncmp(arg, "--health-out=", 13) == 0) {
        health_out = arg + 13;
      } else if (std::strncmp(arg, "--health-interval-ms=", 21) == 0) {
        health_interval_ms =
            static_cast<int>(cli::ParseInt(arg, arg + 21, 10, 3600000));
      } else if (std::strcmp(arg, "--version") == 0) {
        cli::PrintVersion("acobe-gen");
        return 0;
      } else {
        Usage();
        return std::strcmp(arg, "--help") == 0 ? 0 : kExitUsage;
      }
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "acobe-gen: %s\n", e.what());
    Usage();
    return kExitUsage;
  } catch (const std::invalid_argument& e) {  // Date::FromString
    std::fprintf(stderr, "acobe-gen: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (out_dir.empty()) {
    Usage();
    return kExitUsage;
  }
  if (stream && corrupt_rate > 0.0) {
    std::fprintf(stderr,
                 "acobe-gen: --corrupt-rate is not supported with --stream "
                 "(fault injection needs the rendered file in memory)\n");
    return kExitUsage;
  }

  InstallShutdownHandler();
  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());
  if (!health_out.empty()) {
    health::HealthOptions health_opts;
    health_opts.path = health_out;
    health_opts.interval_ms = health_interval_ms;
    health_opts.tool = "acobe-gen";
    if (!health::StartHealth(health_opts)) return kExitFailure;
  }

  if (stream) {
    const int code = GenerateStreamed(config, scenarios, out_dir, shards);
    // The final heartbeat lands in every outcome, so a supervisor
    // watching the health file sees how the run ended.
    health::SetStage(code == 0 ? "done"
                               : code == kExitAborted ? "aborted" : "failed");
    health::StopHealth();
    if (!telemetry::FlushTelemetry("acobe-gen", metrics_out, trace_out,
                                   std::cerr)) {
      return code != 0 ? code : kExitFailure;
    }
    return code;
  }

  LogStore store;
  sim::CertSimulator simulator(config, store);
  for (const ScenarioArg& s : scenarios) {
    const auto& planted =
        simulator.InjectScenario(s.kind, s.department, s.start, s.days);
    std::fprintf(stderr, "planted scenario %d insider %s in department %d\n",
                 static_cast<int>(s.kind), planted.user_name.c_str(),
                 s.department);
  }
  health::SetStage("simulate", 1);
  {
    telemetry::TraceSpan sim_span("gen.simulate");
    simulator.Run(store);
    store.SortChronologically();
  }
  health::StageAdvance();
  ACOBE_COUNT("gen.events_simulated", store.TotalEvents());
  ACOBE_GAUGE_SET("gen.users", store.users().size());
  std::fprintf(stderr, "simulated %zu events for %zu users\n",
               store.TotalEvents(), store.users().size());

  sim::FaultInjectorConfig fault_config;
  fault_config.rate = corrupt_rate;
  fault_config.seed = corrupt_seed;
  // At-least-once delivery model: the garbled bytes are followed by a
  // clean retransmission, so permissive ingestion can recover the full
  // event stream (strict mode still aborts on the garble).
  fault_config.redeliver = true;
  const sim::FaultInjector injector(fault_config);

  // Render in memory, optionally corrupt, then land on disk atomically
  // so an interrupted acobe-gen never leaves a half-written CSV behind.
  health::SetStage("write", 6);  // five CSVs + truth.csv
  auto write = [&](const char* name,
                   void (*writer)(const LogStore&, std::ostream&),
                   bool corruptible) {
    const std::string path = out_dir + "/" + name;
    std::ostringstream rendered;
    writer(store, rendered);
    std::string text = rendered.str();
    if (corruptible && corrupt_rate > 0.0) {
      // Per-file key: each CSV draws an independent fault stream.
      const sim::FaultReport report = injector.Corrupt(text, Crc32(name));
      ACOBE_COUNT("gen.rows_corrupted", report.rows_corrupted);
      std::fprintf(stderr, "corrupted %zu/%zu rows in %s\n",
                   report.rows_corrupted, report.rows_seen, name);
    }
    try {
      WriteFileAtomic(path, [&](std::ostream& out) { out << text; });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acobe-gen: cannot write %s: %s\n", path.c_str(),
                   e.what());
      std::exit(kExitFailure);
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    health::StageAdvance();
  };
  write("device.csv", WriteDeviceCsv, /*corruptible=*/true);
  write("file.csv", WriteFileCsv, /*corruptible=*/true);
  write("http.csv", WriteHttpCsv, /*corruptible=*/true);
  write("logon.csv", WriteLogonCsv, /*corruptible=*/true);
  write("ldap.csv", WriteLdapCsv, /*corruptible=*/false);

  // Ground truth for evaluation (never corrupted: it is the answer key).
  {
    const std::string path = out_dir + "/truth.csv";
    try {
      WriteFileAtomic(path, [&](std::ostream& out) {
        out << "user,anomaly_start,anomaly_end\n";
        for (const auto& scenario : simulator.scenarios()) {
          out << scenario.user_name << ',' << scenario.anomaly_start.ToString()
              << ',' << scenario.anomaly_end.ToString() << '\n';
        }
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acobe-gen: cannot write %s: %s\n", path.c_str(),
                   e.what());
      return kExitFailure;
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    health::StageAdvance();
  }

  health::SetStage("done");
  health::StopHealth();
  if (!telemetry::FlushTelemetry("acobe-gen", metrics_out, trace_out,
                                 std::cerr)) {
    return kExitFailure;
  }
  return 0;
}
