// acobe-gen: synthesizes a CERT-style dataset and writes it to a
// directory in the CERT dataset's one-CSV-per-log-type layout
// (device.csv, file.csv, http.csv, logon.csv, ldap.csv) plus a
// ground-truth file listing the planted insiders.
//
//   acobe-gen --out=DIR [--users=N] [--departments=N] [--seed=S]
//             [--start=YYYY-MM-DD] [--end=YYYY-MM-DD] [--rate=R]
//             [--scenario1=DEPT:YYYY-MM-DD:DAYS]...
//             [--scenario2=DEPT:YYYY-MM-DD:DAYS]...
//             [--corrupt-rate=R] [--corrupt-seed=S]
//             [--metrics-out=FILE] [--trace-out=FILE]
//
// --corrupt-rate: after simulation, deterministically corrupt that
// fraction of data rows in the four event CSVs (byte flips, truncated
// rows, duplicated rows — see simdata/fault_injector.h) to exercise
// ingestion fault tolerance. ldap.csv and truth.csv are never
// corrupted: they define the population and the answer key, not the
// event feed under test.

#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/faults.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "logs/log_io.h"
#include "simdata/cert_simulator.h"
#include "simdata/fault_injector.h"

using namespace acobe;

namespace {

struct ScenarioArg {
  sim::InsiderScenarioKind kind;
  int department;
  Date start;
  int days;
};

bool ParseScenario(const char* text, sim::InsiderScenarioKind kind,
                   std::vector<ScenarioArg>& out) {
  int dept = 0, days = 0;
  char date[16] = {};
  if (std::sscanf(text, "%d:%10[0-9-]:%d", &dept, date, &days) != 3) {
    return false;
  }
  out.push_back({kind, dept, Date::FromString(date), days});
  return true;
}

void Usage() {
  std::printf(
      "acobe-gen --out=DIR [--users=N] [--departments=N] [--seed=S]\n"
      "          [--start=YYYY-MM-DD] [--end=YYYY-MM-DD] [--rate=R]\n"
      "          [--scenario1=DEPT:DATE:DAYS] [--scenario2=DEPT:DATE:DAYS]\n"
      "          [--corrupt-rate=R] [--corrupt-seed=S]\n"
      "          [--metrics-out=FILE] [--trace-out=FILE] [--version]\n"
      "  --corrupt-rate=R  corrupt fraction R of event-CSV rows (0..1)\n"
      "  --corrupt-seed=S  fault-injection seed (default 99)\n"
      "  --version         print build identity and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string metrics_out, trace_out;
  sim::CertSimConfig config;
  config.org.departments = 2;
  config.org.users_per_department = 20;
  config.org.extra_users = 0;
  config.profiles.rate_scale = 0.5;
  std::vector<ScenarioArg> scenarios;
  double corrupt_rate = 0.0;
  std::uint64_t corrupt_seed = 99;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--out=", 6) == 0) {
        out_dir = arg + 6;
      } else if (std::strncmp(arg, "--users=", 8) == 0) {
        config.org.users_per_department =
            static_cast<int>(cli::ParseInt(arg, arg + 8, 1, 1000000));
      } else if (std::strncmp(arg, "--departments=", 14) == 0) {
        config.org.departments =
            static_cast<int>(cli::ParseInt(arg, arg + 14, 1, 10000));
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        config.seed = cli::ParseU64(arg, arg + 7);
      } else if (std::strncmp(arg, "--start=", 8) == 0) {
        config.start = Date::FromString(arg + 8);
      } else if (std::strncmp(arg, "--end=", 6) == 0) {
        config.end = Date::FromString(arg + 6);
      } else if (std::strncmp(arg, "--rate=", 7) == 0) {
        config.profiles.rate_scale = cli::ParseDouble(arg, arg + 7, 0.0, 1e6);
      } else if (std::strncmp(arg, "--corrupt-rate=", 15) == 0) {
        corrupt_rate = cli::ParseDouble(arg, arg + 15, 0.0, 1.0);
      } else if (std::strncmp(arg, "--corrupt-seed=", 15) == 0) {
        corrupt_seed = cli::ParseU64(arg, arg + 15);
      } else if (std::strncmp(arg, "--scenario1=", 12) == 0) {
        if (!ParseScenario(arg + 12, sim::InsiderScenarioKind::kScenario1,
                           scenarios)) {
          Usage();
          return kExitUsage;
        }
      } else if (std::strncmp(arg, "--scenario2=", 12) == 0) {
        if (!ParseScenario(arg + 12, sim::InsiderScenarioKind::kScenario2,
                           scenarios)) {
          Usage();
          return kExitUsage;
        }
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_out = arg + 14;
      } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_out = arg + 12;
      } else if (std::strcmp(arg, "--version") == 0) {
        cli::PrintVersion("acobe-gen");
        return 0;
      } else {
        Usage();
        return std::strcmp(arg, "--help") == 0 ? 0 : kExitUsage;
      }
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "acobe-gen: %s\n", e.what());
    Usage();
    return kExitUsage;
  } catch (const std::invalid_argument& e) {  // Date::FromString
    std::fprintf(stderr, "acobe-gen: %s\n", e.what());
    Usage();
    return kExitUsage;
  }
  if (out_dir.empty()) {
    Usage();
    return kExitUsage;
  }

  telemetry::EnableMetrics(true);
  telemetry::EnableTracing(!trace_out.empty());

  LogStore store;
  sim::CertSimulator simulator(config, store);
  for (const ScenarioArg& s : scenarios) {
    const auto& planted =
        simulator.InjectScenario(s.kind, s.department, s.start, s.days);
    std::fprintf(stderr, "planted scenario %d insider %s in department %d\n",
                 static_cast<int>(s.kind), planted.user_name.c_str(),
                 s.department);
  }
  {
    telemetry::TraceSpan sim_span("gen.simulate");
    simulator.Run(store);
    store.SortChronologically();
  }
  ACOBE_COUNT("gen.events_simulated", store.TotalEvents());
  ACOBE_GAUGE_SET("gen.users", store.users().size());
  std::fprintf(stderr, "simulated %zu events for %zu users\n",
               store.TotalEvents(), store.users().size());

  sim::FaultInjectorConfig fault_config;
  fault_config.rate = corrupt_rate;
  fault_config.seed = corrupt_seed;
  // At-least-once delivery model: the garbled bytes are followed by a
  // clean retransmission, so permissive ingestion can recover the full
  // event stream (strict mode still aborts on the garble).
  fault_config.redeliver = true;
  const sim::FaultInjector injector(fault_config);

  // Render in memory, optionally corrupt, then land on disk atomically
  // so an interrupted acobe-gen never leaves a half-written CSV behind.
  auto write = [&](const char* name,
                   void (*writer)(const LogStore&, std::ostream&),
                   bool corruptible) {
    const std::string path = out_dir + "/" + name;
    std::ostringstream rendered;
    writer(store, rendered);
    std::string text = rendered.str();
    if (corruptible && corrupt_rate > 0.0) {
      // Per-file key: each CSV draws an independent fault stream.
      const sim::FaultReport report = injector.Corrupt(text, Crc32(name));
      ACOBE_COUNT("gen.rows_corrupted", report.rows_corrupted);
      std::fprintf(stderr, "corrupted %zu/%zu rows in %s\n",
                   report.rows_corrupted, report.rows_seen, name);
    }
    try {
      WriteFileAtomic(path, [&](std::ostream& out) { out << text; });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acobe-gen: cannot write %s: %s\n", path.c_str(),
                   e.what());
      std::exit(kExitFailure);
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  };
  write("device.csv", WriteDeviceCsv, /*corruptible=*/true);
  write("file.csv", WriteFileCsv, /*corruptible=*/true);
  write("http.csv", WriteHttpCsv, /*corruptible=*/true);
  write("logon.csv", WriteLogonCsv, /*corruptible=*/true);
  write("ldap.csv", WriteLdapCsv, /*corruptible=*/false);

  // Ground truth for evaluation (never corrupted: it is the answer key).
  {
    const std::string path = out_dir + "/truth.csv";
    try {
      WriteFileAtomic(path, [&](std::ostream& out) {
        out << "user,anomaly_start,anomaly_end\n";
        for (const auto& scenario : simulator.scenarios()) {
          out << scenario.user_name << ',' << scenario.anomaly_start.ToString()
              << ',' << scenario.anomaly_end.ToString() << '\n';
        }
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acobe-gen: cannot write %s: %s\n", path.c_str(),
                   e.what());
      return kExitFailure;
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

  if (!telemetry::FlushTelemetry("acobe-gen", metrics_out, trace_out,
                                 std::cerr)) {
    return kExitFailure;
  }
  return 0;
}
