// Streaming watch: train the ensemble once, persist it, then replay the
// following weeks day by day as an operator would — reload the model,
// score the new day, and let the persistent-alert monitor deduplicate
// daily firings into actionable alerts (with waveform context from the
// advanced critic).
//
// Run:  ./build/examples/streaming_watch

#include <cstdio>
#include <filesystem>

#include "baselines/experiment.h"
#include "core/detector.h"
#include "core/ensemble_io.h"
#include "core/monitor.h"
#include "core/waveform_critic.h"

using namespace acobe;
using namespace acobe::baselines;

int main() {
  // A department with a scenario-2 insider (job hunt, then data theft).
  CertExperimentConfig config;
  config.sim.org.departments = 1;
  config.sim.org.users_per_department = 25;
  config.sim.org.extra_users = 0;
  config.sim.start = Date(2010, 1, 2);
  config.sim.end = Date(2011, 3, 31);
  config.sim.profiles.rate_scale = 0.4;
  config.sim.seed = 321;
  config.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario2, 0, Date(2010, 12, 1), 45});
  config.build_fine_hourly = false;
  config.build_coarse = false;
  const CertData data = BuildCertData(config);
  const sim::InsiderScenario& insider = data.scenarios[0];

  const ScenarioWindows w = data.WindowsFor(insider, 30, 30);
  DetectorSpec spec = MakeVariantSpec(VariantKind::kAcobe,
                                      ScaleProfile::Bench());
  // Provenance: attribute flagged users to compound-matrix cells and
  // watch for score drift between the training and scoring windows.
  spec.attribution.enabled = true;
  spec.attribution.top_users = 3;
  spec.drift.enabled = true;
  const Detector detector(spec);

  std::printf("training on days [%d, %d) and scoring [%d, %d)...\n",
              w.train_begin, w.train_end, w.test_begin, w.test_end);
  const DetectionOutput out = detector.Run(
      data.fine->cube(), data.fine->catalog(),
      data.department_users[0], w.train_begin, w.train_end, w.test_begin,
      w.test_end);

  // Persist + reload a standalone ensemble to show the operator loop
  // does not need the training data around.
  {
    EnsembleConfig ecfg;
    ecfg.encoder_dims = {16, 8};
    ecfg.train.epochs = 4;
    AspectEnsemble small(data.fine->catalog().aspects(), ecfg);
    NormalizedDayBuilder nd(&data.fine->cube(), w.train_begin, w.train_end);
    small.Train(nd, 5, w.train_begin, w.train_end);
    const std::string path = "/tmp/acobe_ensemble.bin";
    SaveEnsembleFile(small, path);
    AspectEnsemble reloaded = LoadEnsembleFile(path);
    std::filesystem::remove(path);
    std::printf("ensemble save/load ok (%d aspects)\n",
                reloaded.aspect_count());
  }

  // The monitor turns daily lists into deduplicated alerts.
  MonitorConfig mcfg;
  mcfg.n_votes = 2;
  mcfg.top_positions = 2;
  mcfg.persistence_days = 3;
  const auto alerts = FindPersistentAlerts(out.grid, mcfg);
  std::printf("\n%zu persistent alert(s) over %d scored days:\n",
              alerts.size(), out.grid.day_count());
  for (const Alert& alert : alerts) {
    const UserId user = out.members[alert.user_idx];
    // Waveform context for the analyst.
    WaveformCriticConfig wcfg;
    WaveformFeatures best;
    for (int a = 0; a < out.grid.aspects(); ++a) {
      const auto f = AnalyzeWaveform(out.grid, a, alert.user_idx, wcfg);
      if (f.peak_z > best.peak_z) best = f;
    }
    std::printf("  user %-8s days %d..%d (%d firing days)  waveform: %s "
                "(peak z %.1f)  peak: %s day %d score %.2f%s\n",
                data.store.users().NameOf(user).c_str(),
                alert.first_day, alert.last_day, alert.firing_days,
                ToString(best.kind), best.peak_z,
                alert.peak_aspect_name.c_str(), alert.peak_day,
                alert.peak_score,
                user == insider.user ? "   <-- the insider" : "");
  }

  // Per-user attribution: which compound-matrix cells drove the score.
  std::printf("\nattribution (top reconstruction-error cells):\n");
  for (const UserAttribution& ua : out.attributions) {
    const UserId user = out.members[ua.user_idx];
    std::printf("  %s (priority %.0f)%s\n",
                data.store.users().NameOf(user).c_str(), ua.priority,
                user == insider.user ? "   <-- the insider" : "");
    for (const AspectAttribution& aa : ua.aspects) {
      std::printf("    %-8s peak day %d score %.3f (group share %.0f%%)\n",
                  aa.aspect_name.c_str(), aa.peak_day, aa.peak_score,
                  100.0f * aa.group_error_fraction);
      for (const AttributedCell& cell : aa.cells) {
        std::printf("      feature %2d %s day %d err %.4f (%2.0f%%)%s\n",
                    cell.feature_pos, cell.group ? "[group]" : "[indiv]",
                    cell.day, cell.error, 100.0f * cell.share,
                    cell.has_group_input ? " (see group)" : "");
      }
    }
  }

  // Drift gauges: scoring-window score distribution vs training window.
  std::printf("\nscore drift vs training window:\n");
  for (const AspectDrift& drift : out.drift) {
    std::printf("  %-8s %s", drift.aspect_name.c_str(),
                drift.alert ? "ALERT" : "ok   ");
    for (const QuantileShift& shift : drift.shifts) {
      std::printf("  q%g %+.1f%%", 100.0 * shift.q, 100.0 * shift.rel_shift);
    }
    std::printf("\n");
  }
  return 0;
}
