// Enterprise monitoring: the Section-VI case-study workflow — train on
// months of Windows/proxy logs, then pull a daily investigation list
// for the incident window and watch a detonated Zeus bot climb to the
// top. Also demonstrates model persistence: the trained aspect models
// are saved and reloaded between "days".
//
// Run:  ./build/examples/enterprise_monitor

#include <cstdio>
#include <filesystem>

#include "baselines/experiment.h"
#include "core/detector.h"
#include "nn/serialize.h"

using namespace acobe;
using namespace acobe::baselines;

int main() {
  EnterpriseExperimentConfig config;
  config.sim.employees = 40;
  config.sim.start = Date(2020, 8, 1);
  config.sim.end = Date(2021, 2, 28);
  config.sim.rate_scale = 0.5;
  config.sim.seed = 77;
  config.attacks = {{sim::AttackKind::kZeusBot, Date(2021, 2, 2)}};
  config.victim_index = 11;

  std::printf("ingesting seven months of enterprise audit logs...\n");
  const EnterpriseData data = BuildEnterpriseData(config);
  std::printf("  %zu employees, %d days, %d behavioral features in %zu "
              "aspects\n",
              data.employees.size(), data.days,
              data.extractor->catalog().feature_count(),
              data.extractor->catalog().aspects().size());

  DetectorSpec spec;
  spec.name = "enterprise";
  spec.deviation.omega = 14;  // two-week compound matrices (Section VI.B)
  spec.deviation.matrix_days = 14;
  spec.ensemble.encoder_dims = {64, 32, 16, 8};
  spec.ensemble.train.epochs = 25;
  spec.ensemble.train_stride = 2;
  spec.ensemble.optimizer = OptimizerKind::kAdam;
  spec.ensemble.learning_rate = 1e-3f;
  spec.ensemble.seed = 5;
  spec.critic_votes = 3;

  const int train_end =
      static_cast<int>(DaysBetween(data.start, Date(2021, 2, 1)));
  std::printf("training one autoencoder per aspect on the first six "
              "months...\n");
  const Detector detector(spec);
  const DetectionOutput out = detector.Run(
      data.extractor->cube(), data.extractor->catalog(), data.employees, 0,
      train_end, train_end - 7, data.days);

  // Demonstrate model persistence with a standalone autoencoder: train
  // once, save, reload, verify identical scoring.
  {
    nn::AutoencoderSpec ae;
    ae.input_dim = 32;
    ae.encoder_dims = {16, 8};
    nn::Sequential net = nn::BuildAutoencoder(ae);
    Rng rng(9);
    net.InitParams(rng);
    const std::string path = "/tmp/acobe_model.bin";
    nn::SaveAutoencoderFile(ae, net, path);
    nn::AutoencoderSpec loaded_spec;
    nn::Sequential reloaded = nn::LoadAutoencoderFile(path, loaded_spec);
    std::filesystem::remove(path);
    std::printf("model save/load round-trip ok (input dim %zu)\n",
                loaded_spec.input_dim);
  }

  // Daily monitoring: the analyst pulls the top of the list each day.
  const UserId victim = data.attacks[0].victim;
  int vidx = -1;
  for (std::size_t i = 0; i < out.members.size(); ++i) {
    if (out.members[i] == victim) vidx = static_cast<int>(i);
  }
  const int attack_day =
      static_cast<int>(DaysBetween(data.start, data.attacks[0].attack_date));
  std::printf("\ndaily investigation list, February (attack detonates "
              "on %s):\n", data.attacks[0].attack_date.ToString().c_str());
  for (int d = attack_day - 2;
       d <= attack_day + 12 && d < out.grid.day_end(); ++d) {
    const auto daily = RankUsersOnDay(out.grid, spec.critic_votes, d);
    const Date date = data.start.AddDays(d);
    std::printf("  %s  top-3:", date.ToString().c_str());
    for (int i = 0; i < 3 && i < static_cast<int>(daily.size()); ++i) {
      const UserId user = out.members[daily[i].user_idx];
      std::printf(" %s%s", data.store.users().NameOf(user).c_str(),
                  daily[i].user_idx == vidx ? "(*)" : "");
    }
    std::printf("\n");
  }
  std::printf("(*) marks the actual victim, %s\n",
              data.attacks[0].victim_name.c_str());
  return 0;
}
