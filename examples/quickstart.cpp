// Quickstart: the minimal end-to-end ACOBE loop on a tiny synthetic
// organization.
//
//   1. synthesize organizational audit logs (with one injected insider)
//   2. extract per-user behavioral measurements
//   3. train the per-aspect autoencoder ensemble on compound
//      behavioral deviation matrices
//   4. score the test window and print the ordered investigation list
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/variants.h"

using namespace acobe;
using namespace acobe::baselines;

int main() {
  // 1. Synthesize a 20-person department over 4.5 months and plant a
  //    scenario-1 insider (off-hour logons + thumb drive + uploads to
  //    wikileaks.org) in early April.
  CertExperimentConfig config;
  config.sim.org.departments = 1;
  config.sim.org.users_per_department = 20;
  config.sim.org.extra_users = 0;
  config.sim.start = Date(2010, 1, 2);
  config.sim.end = Date(2010, 5, 15);
  config.sim.profiles.rate_scale = 0.4;
  config.sim.seed = 42;
  config.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario1, /*department=*/0,
       /*anomaly_start=*/Date(2010, 4, 5), /*span_days=*/14});

  // 2. One call simulates the logs and streams them through the feature
  //    extractors (device / file / HTTP aspects, work + off hours).
  std::printf("synthesizing logs and extracting features...\n");
  const CertData data = BuildCertData(config);
  const sim::InsiderScenario& insider = data.scenarios[0];
  std::printf("  %d users, %d days; planted insider: %s\n",
              data.fine->cube().users(), data.days,
              insider.user_name.c_str());

  // 3+4. Run ACOBE: deviation matrices -> ensemble -> critic. A
  //    ScaleProfile picks window sizes and training effort; Bench() is
  //    laptop-friendly, Paper() matches the publication.
  ScaleProfile scale = ScaleProfile::Bench();
  scale.omega = 10;        // small dataset -> smaller history window
  scale.matrix_days = 10;
  scale.epochs = 15;
  std::printf("training the autoencoder ensemble...\n");
  const DetectionOutput result = RunVariantOnScenario(
      data, VariantKind::kAcobe, scale, insider,
      /*train_gap_days=*/20, /*test_tail_days=*/15);

  std::printf("\ninvestigation list (top 5 of %zu):\n", result.list.size());
  for (std::size_t i = 0; i < result.list.size() && i < 5; ++i) {
    const UserId user = result.members[result.list[i].user_idx];
    const bool is_insider = data.truth.IsAbnormalUser(user);
    std::printf("  %zu. %-8s priority %-3.0f %s\n", i + 1,
                data.store.users().NameOf(user).c_str(),
                result.list[i].priority, is_insider ? "<-- planted insider" : "");
  }
  return 0;
}
