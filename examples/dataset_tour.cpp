// Dataset tour: exercises the data substrates directly — simulate a
// CERT-style organization, export/reimport logs as CSV (the CERT
// dataset's native shape), inspect group behavior around an injected
// org-wide environmental change, and print the deviation math for one
// user-feature by hand.
//
// Run:  ./build/examples/dataset_tour

#include <cstdio>
#include <sstream>

#include "behavior/deviation.h"
#include "features/cert_features.h"
#include "logs/log_io.h"
#include "simdata/cert_simulator.h"

using namespace acobe;

int main() {
  // --- 1. simulate ---------------------------------------------------------
  sim::CertSimConfig config;
  config.org.departments = 2;
  config.org.users_per_department = 12;
  config.org.extra_users = 0;
  config.start = Date(2010, 1, 2);
  config.end = Date(2010, 4, 30);
  config.profiles.rate_scale = 0.4;
  config.seed = 2024;
  config.default_env_changes = false;
  sim::EnvChange rollout;
  rollout.kind = sim::EnvChangeKind::kNewService;
  rollout.start = Date(2010, 3, 17);
  rollout.duration_days = 3;
  rollout.intensity = 3.0;
  config.env_changes = {rollout};

  LogStore store;
  sim::CertSimulator simulator(config, store);
  simulator.Run(store);  // buffer everything: this is a small run
  store.SortChronologically();
  std::printf("simulated %zu events for %zu users\n", store.TotalEvents(),
              store.users().size());
  std::printf("  logons %zu, device %zu, file %zu, http %zu, email %zu\n",
              store.logons().size(), store.devices().size(),
              store.file_events().size(), store.http_events().size(),
              store.emails().size());

  // --- 2. CSV round-trip (the CERT dataset's file-per-log-type layout) -----
  std::stringstream device_csv, http_csv, ldap_csv;
  WriteDeviceCsv(store, device_csv);
  WriteHttpCsv(store, http_csv);
  WriteLdapCsv(store, ldap_csv);
  LogStore reloaded;
  {
    std::stringstream in(device_csv.str());
    ReadDeviceCsv(in, reloaded);
  }
  std::printf("device.csv round-trip: %zu -> %zu events (%.1f KiB)\n",
              store.devices().size(), reloaded.devices().size(),
              device_csv.str().size() / 1024.0);

  // --- 3. group behavior around the environmental change -------------------
  const int days = static_cast<int>(DaysBetween(config.start, config.end)) + 1;
  CertAcobeExtractor extractor(config.start, days);
  ReplayStore(store, extractor);
  const auto& cube = extractor.cube();

  std::vector<int> everyone;
  for (int u = 0; u < cube.users(); ++u) everyone.push_back(u);
  const auto group_mean = GroupMeanSeries(cube, everyone);

  const int change_day =
      static_cast<int>(DaysBetween(config.start, rollout.start));
  std::printf("\nnew-service rollout on %s (day %d): every user visits an "
              "unseen domain\n", rollout.start.ToString().c_str(), change_day);
  // HTTP new-op group mean jumps on the rollout day.
  const int new_op = CertAcobeExtractor::kHttpNewOp;
  const std::size_t per_feature = static_cast<std::size_t>(days) * 2;
  const float before =
      group_mean[new_op * per_feature + (change_day - 7) * 2 + 0];
  const float during = group_mean[new_op * per_feature + change_day * 2 + 0];
  std::printf("  group-mean http-new-op (work hours): %.2f a week before, "
              "%.2f on the rollout day\n", before, during);

  // --- 4. the deviation math, spelled out ----------------------------------
  DeviationConfig dev_config;
  dev_config.omega = 14;
  const auto dev = DeviationSeries::Compute(cube, dev_config);
  const int user = 0;
  std::printf("\nper-user deviation on the rollout day (http-new-op):\n");
  std::printf("  sigma = clamp((m - mean(h)) / max(std(h), eps), +-%.0f), "
              "weighted by 1/log2(max(std(h),2))\n", dev_config.delta);
  for (int u = user; u < user + 3; ++u) {
    std::printf("  user %-8s m=%4.0f  weighted sigma=%+.2f\n",
                store.users().NameOf(cube.UserAt(u)).c_str(),
                cube.At(u, new_op, change_day, 0),
                dev.Sigma(u, new_op, change_day, 0));
  }
  std::printf("\nbecause the *group* series bursts on the same day, ACOBE's\n"
              "compound matrix shows matching individual+group deviations,\n"
              "which the ensemble learns to treat as normal.\n");
  return 0;
}
