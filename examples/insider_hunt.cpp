// Insider-threat hunt: the paper's Section-V workflow on a multi-
// department organization with both insider scenarios planted, showing
// how an analyst compares ACOBE against the single-day baseline and
// reads precision/recall off the pooled investigation lists.
//
// Run:  ./build/examples/insider_hunt [--paper-scale]

#include <cstdio>
#include <cstring>

#include "baselines/experiment.h"
#include "eval/metrics.h"

using namespace acobe;
using namespace acobe::baselines;

int main(int argc, char** argv) {
  const bool paper_scale =
      argc > 1 && std::strcmp(argv[1], "--paper-scale") == 0;

  CertExperimentConfig config;
  config.sim.org.departments = 2;
  config.sim.org.users_per_department = paper_scale ? 232 : 30;
  config.sim.org.extra_users = 0;
  config.sim.start = Date(2010, 1, 2);
  config.sim.end = Date(2011, 5, 31);
  config.sim.profiles.rate_scale = paper_scale ? 1.0 : 0.5;
  config.sim.seed = 1234;
  config.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario1, 0, Date(2010, 9, 6), 14});
  config.scenarios.push_back(
      {sim::InsiderScenarioKind::kScenario2, 1, Date(2011, 1, 7), 60});
  config.build_fine_hourly = false;  // this example skips Base-FF

  std::printf("building dataset (%d users, %s)...\n",
              config.sim.org.departments * config.sim.org.users_per_department,
              paper_scale ? "paper scale" : "reduced scale");
  const CertData data = BuildCertData(config);

  const ScaleProfile scale =
      paper_scale ? ScaleProfile::Paper() : ScaleProfile::Bench();

  for (const VariantKind kind :
       {VariantKind::kAcobe, VariantKind::kBaseline}) {
    std::printf("\n=== %s ===\n", ToString(kind));
    std::vector<eval::RankedUser> pooled;
    for (const sim::InsiderScenario& scenario : data.scenarios) {
      std::printf("scenario %d in department %d (insider %s)...\n",
                  static_cast<int>(scenario.kind), scenario.department,
                  scenario.user_name.c_str());
      const DetectionOutput out = RunVariantOnScenario(
          data, kind, scale, scenario, config.train_gap_days,
          config.test_tail_days);
      const auto ranked = MakeRankedUsers(out, data.truth);
      // Where did the insider land in this department's list?
      for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (ranked[i].positive) {
          std::printf("  insider listed at position %zu of %zu\n", i + 1,
                      ranked.size());
        }
      }
      pooled.insert(pooled.end(), ranked.begin(), ranked.end());
    }
    eval::SortWorstCase(pooled);
    const auto flags = eval::PositiveFlags(pooled);
    std::printf("pooled: AUC %.4f%%, average precision %.4f\n",
                100.0 * eval::RocAuc(flags), eval::AveragePrecision(flags));
    // What a "investigate the top 1%" policy would catch (Section V.C).
    const std::size_t budget = std::max<std::size_t>(1, flags.size() / 100);
    const auto counts = eval::AtCutoff(flags, budget);
    std::printf("investigating the top %zu users: %d TP, %d FP, %d FN "
                "(precision %.2f, recall %.2f)\n",
                budget, counts.tp, counts.fp, counts.fn, counts.Precision(),
                counts.Recall());
  }
  return 0;
}
