# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(logs_test "/root/repo/build/tests/logs_test")
set_tests_properties(logs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simdata_test "/root/repo/build/tests/simdata_test")
set_tests_properties(simdata_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(features_test "/root/repo/build/tests/features_test")
set_tests_properties(features_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(behavior_test "/root/repo/build/tests/behavior_test")
set_tests_properties(behavior_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(report_test "/root/repo/build/tests/report_test")
set_tests_properties(report_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;acobe_test;/root/repo/tests/CMakeLists.txt;0;")
