file(REMOVE_RECURSE
  "CMakeFiles/simdata_test.dir/simdata_test.cpp.o"
  "CMakeFiles/simdata_test.dir/simdata_test.cpp.o.d"
  "simdata_test"
  "simdata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
