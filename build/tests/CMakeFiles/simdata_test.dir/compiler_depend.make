# Empty compiler generated dependencies file for simdata_test.
# This may be replaced when dependencies are built.
