file(REMOVE_RECURSE
  "CMakeFiles/logs_test.dir/logs_test.cpp.o"
  "CMakeFiles/logs_test.dir/logs_test.cpp.o.d"
  "logs_test"
  "logs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
