# Empty compiler generated dependencies file for logs_test.
# This may be replaced when dependencies are built.
