# Empty compiler generated dependencies file for fig5_score_trends.
# This may be replaced when dependencies are built.
