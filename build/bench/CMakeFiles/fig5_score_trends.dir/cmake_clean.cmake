file(REMOVE_RECURSE
  "CMakeFiles/fig5_score_trends.dir/fig5_score_trends.cpp.o"
  "CMakeFiles/fig5_score_trends.dir/fig5_score_trends.cpp.o.d"
  "fig5_score_trends"
  "fig5_score_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_score_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
