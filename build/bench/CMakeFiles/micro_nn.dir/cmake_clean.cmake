file(REMOVE_RECURSE
  "CMakeFiles/micro_nn.dir/micro_nn.cpp.o"
  "CMakeFiles/micro_nn.dir/micro_nn.cpp.o.d"
  "micro_nn"
  "micro_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
