file(REMOVE_RECURSE
  "CMakeFiles/fig6_roc_pr.dir/fig6_roc_pr.cpp.o"
  "CMakeFiles/fig6_roc_pr.dir/fig6_roc_pr.cpp.o.d"
  "fig6_roc_pr"
  "fig6_roc_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_roc_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
