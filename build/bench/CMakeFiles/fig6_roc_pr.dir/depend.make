# Empty dependencies file for fig6_roc_pr.
# This may be replaced when dependencies are built.
