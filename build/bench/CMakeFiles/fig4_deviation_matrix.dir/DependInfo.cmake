
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_deviation_matrix.cpp" "bench/CMakeFiles/fig4_deviation_matrix.dir/fig4_deviation_matrix.cpp.o" "gcc" "bench/CMakeFiles/fig4_deviation_matrix.dir/fig4_deviation_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/acobe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/acobe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/behavior/CMakeFiles/acobe_behavior.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/acobe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/acobe_features.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/acobe_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/acobe_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/acobe_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
