file(REMOVE_RECURSE
  "CMakeFiles/fig4_deviation_matrix.dir/fig4_deviation_matrix.cpp.o"
  "CMakeFiles/fig4_deviation_matrix.dir/fig4_deviation_matrix.cpp.o.d"
  "fig4_deviation_matrix"
  "fig4_deviation_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_deviation_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
