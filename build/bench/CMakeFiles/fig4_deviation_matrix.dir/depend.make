# Empty dependencies file for fig4_deviation_matrix.
# This may be replaced when dependencies are built.
