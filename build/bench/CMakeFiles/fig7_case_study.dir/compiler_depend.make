# Empty compiler generated dependencies file for fig7_case_study.
# This may be replaced when dependencies are built.
