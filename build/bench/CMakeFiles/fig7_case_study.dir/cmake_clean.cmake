file(REMOVE_RECURSE
  "CMakeFiles/fig7_case_study.dir/fig7_case_study.cpp.o"
  "CMakeFiles/fig7_case_study.dir/fig7_case_study.cpp.o.d"
  "fig7_case_study"
  "fig7_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
