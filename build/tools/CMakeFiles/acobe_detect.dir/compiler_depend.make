# Empty compiler generated dependencies file for acobe_detect.
# This may be replaced when dependencies are built.
