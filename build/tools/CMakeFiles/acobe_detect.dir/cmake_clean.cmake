file(REMOVE_RECURSE
  "CMakeFiles/acobe_detect.dir/acobe_detect.cpp.o"
  "CMakeFiles/acobe_detect.dir/acobe_detect.cpp.o.d"
  "acobe_detect"
  "acobe_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
