file(REMOVE_RECURSE
  "CMakeFiles/acobe_gen.dir/acobe_gen.cpp.o"
  "CMakeFiles/acobe_gen.dir/acobe_gen.cpp.o.d"
  "acobe_gen"
  "acobe_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
