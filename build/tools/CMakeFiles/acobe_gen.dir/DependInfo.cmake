
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/acobe_gen.cpp" "tools/CMakeFiles/acobe_gen.dir/acobe_gen.cpp.o" "gcc" "tools/CMakeFiles/acobe_gen.dir/acobe_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simdata/CMakeFiles/acobe_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/acobe_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
