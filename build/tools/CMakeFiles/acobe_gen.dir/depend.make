# Empty dependencies file for acobe_gen.
# This may be replaced when dependencies are built.
