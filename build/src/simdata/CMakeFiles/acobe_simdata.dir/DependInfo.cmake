
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdata/activity.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/activity.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/activity.cpp.o.d"
  "/root/repo/src/simdata/calendar.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/calendar.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/calendar.cpp.o.d"
  "/root/repo/src/simdata/cert_simulator.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/cert_simulator.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/cert_simulator.cpp.o.d"
  "/root/repo/src/simdata/dga.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/dga.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/dga.cpp.o.d"
  "/root/repo/src/simdata/enterprise_simulator.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/enterprise_simulator.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/enterprise_simulator.cpp.o.d"
  "/root/repo/src/simdata/org_model.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/org_model.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/org_model.cpp.o.d"
  "/root/repo/src/simdata/scenarios.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/scenarios.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/scenarios.cpp.o.d"
  "/root/repo/src/simdata/user_profile.cpp" "src/simdata/CMakeFiles/acobe_simdata.dir/user_profile.cpp.o" "gcc" "src/simdata/CMakeFiles/acobe_simdata.dir/user_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logs/CMakeFiles/acobe_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
