# Empty dependencies file for acobe_simdata.
# This may be replaced when dependencies are built.
