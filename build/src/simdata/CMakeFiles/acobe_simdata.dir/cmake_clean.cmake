file(REMOVE_RECURSE
  "CMakeFiles/acobe_simdata.dir/activity.cpp.o"
  "CMakeFiles/acobe_simdata.dir/activity.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/calendar.cpp.o"
  "CMakeFiles/acobe_simdata.dir/calendar.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/cert_simulator.cpp.o"
  "CMakeFiles/acobe_simdata.dir/cert_simulator.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/dga.cpp.o"
  "CMakeFiles/acobe_simdata.dir/dga.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/enterprise_simulator.cpp.o"
  "CMakeFiles/acobe_simdata.dir/enterprise_simulator.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/org_model.cpp.o"
  "CMakeFiles/acobe_simdata.dir/org_model.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/scenarios.cpp.o"
  "CMakeFiles/acobe_simdata.dir/scenarios.cpp.o.d"
  "CMakeFiles/acobe_simdata.dir/user_profile.cpp.o"
  "CMakeFiles/acobe_simdata.dir/user_profile.cpp.o.d"
  "libacobe_simdata.a"
  "libacobe_simdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_simdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
