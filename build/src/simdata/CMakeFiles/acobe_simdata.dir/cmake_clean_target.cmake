file(REMOVE_RECURSE
  "libacobe_simdata.a"
)
