file(REMOVE_RECURSE
  "CMakeFiles/acobe_baselines.dir/experiment.cpp.o"
  "CMakeFiles/acobe_baselines.dir/experiment.cpp.o.d"
  "CMakeFiles/acobe_baselines.dir/variants.cpp.o"
  "CMakeFiles/acobe_baselines.dir/variants.cpp.o.d"
  "libacobe_baselines.a"
  "libacobe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
