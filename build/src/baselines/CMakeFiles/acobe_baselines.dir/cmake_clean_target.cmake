file(REMOVE_RECURSE
  "libacobe_baselines.a"
)
