# Empty compiler generated dependencies file for acobe_baselines.
# This may be replaced when dependencies are built.
