file(REMOVE_RECURSE
  "CMakeFiles/acobe_logs.dir/entity_table.cpp.o"
  "CMakeFiles/acobe_logs.dir/entity_table.cpp.o.d"
  "CMakeFiles/acobe_logs.dir/log_io.cpp.o"
  "CMakeFiles/acobe_logs.dir/log_io.cpp.o.d"
  "CMakeFiles/acobe_logs.dir/log_store.cpp.o"
  "CMakeFiles/acobe_logs.dir/log_store.cpp.o.d"
  "CMakeFiles/acobe_logs.dir/records.cpp.o"
  "CMakeFiles/acobe_logs.dir/records.cpp.o.d"
  "libacobe_logs.a"
  "libacobe_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
