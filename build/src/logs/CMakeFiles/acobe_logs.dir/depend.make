# Empty dependencies file for acobe_logs.
# This may be replaced when dependencies are built.
