file(REMOVE_RECURSE
  "libacobe_logs.a"
)
