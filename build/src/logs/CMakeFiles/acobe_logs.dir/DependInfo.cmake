
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/entity_table.cpp" "src/logs/CMakeFiles/acobe_logs.dir/entity_table.cpp.o" "gcc" "src/logs/CMakeFiles/acobe_logs.dir/entity_table.cpp.o.d"
  "/root/repo/src/logs/log_io.cpp" "src/logs/CMakeFiles/acobe_logs.dir/log_io.cpp.o" "gcc" "src/logs/CMakeFiles/acobe_logs.dir/log_io.cpp.o.d"
  "/root/repo/src/logs/log_store.cpp" "src/logs/CMakeFiles/acobe_logs.dir/log_store.cpp.o" "gcc" "src/logs/CMakeFiles/acobe_logs.dir/log_store.cpp.o.d"
  "/root/repo/src/logs/records.cpp" "src/logs/CMakeFiles/acobe_logs.dir/records.cpp.o" "gcc" "src/logs/CMakeFiles/acobe_logs.dir/records.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
