file(REMOVE_RECURSE
  "CMakeFiles/acobe_eval.dir/metrics.cpp.o"
  "CMakeFiles/acobe_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/acobe_eval.dir/report.cpp.o"
  "CMakeFiles/acobe_eval.dir/report.cpp.o.d"
  "libacobe_eval.a"
  "libacobe_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
