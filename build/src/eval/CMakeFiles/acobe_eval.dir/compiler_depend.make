# Empty compiler generated dependencies file for acobe_eval.
# This may be replaced when dependencies are built.
