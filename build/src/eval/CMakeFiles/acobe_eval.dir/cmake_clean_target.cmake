file(REMOVE_RECURSE
  "libacobe_eval.a"
)
