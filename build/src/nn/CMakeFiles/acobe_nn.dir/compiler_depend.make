# Empty compiler generated dependencies file for acobe_nn.
# This may be replaced when dependencies are built.
