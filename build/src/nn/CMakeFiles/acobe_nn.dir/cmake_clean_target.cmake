file(REMOVE_RECURSE
  "libacobe_nn.a"
)
