file(REMOVE_RECURSE
  "CMakeFiles/acobe_nn.dir/activations.cpp.o"
  "CMakeFiles/acobe_nn.dir/activations.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/autoencoder.cpp.o"
  "CMakeFiles/acobe_nn.dir/autoencoder.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/acobe_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/dense.cpp.o"
  "CMakeFiles/acobe_nn.dir/dense.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/gemm.cpp.o"
  "CMakeFiles/acobe_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/optimizer.cpp.o"
  "CMakeFiles/acobe_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/sequential.cpp.o"
  "CMakeFiles/acobe_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/serialize.cpp.o"
  "CMakeFiles/acobe_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/acobe_nn.dir/trainer.cpp.o"
  "CMakeFiles/acobe_nn.dir/trainer.cpp.o.d"
  "libacobe_nn.a"
  "libacobe_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
