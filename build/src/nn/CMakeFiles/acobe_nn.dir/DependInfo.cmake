
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/acobe_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/autoencoder.cpp" "src/nn/CMakeFiles/acobe_nn.dir/autoencoder.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/autoencoder.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/acobe_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/acobe_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/acobe_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/acobe_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/acobe_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/acobe_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/acobe_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/acobe_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
