
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/cert_features.cpp" "src/features/CMakeFiles/acobe_features.dir/cert_features.cpp.o" "gcc" "src/features/CMakeFiles/acobe_features.dir/cert_features.cpp.o.d"
  "/root/repo/src/features/enterprise_features.cpp" "src/features/CMakeFiles/acobe_features.dir/enterprise_features.cpp.o" "gcc" "src/features/CMakeFiles/acobe_features.dir/enterprise_features.cpp.o.d"
  "/root/repo/src/features/feature_catalog.cpp" "src/features/CMakeFiles/acobe_features.dir/feature_catalog.cpp.o" "gcc" "src/features/CMakeFiles/acobe_features.dir/feature_catalog.cpp.o.d"
  "/root/repo/src/features/measurement_cube.cpp" "src/features/CMakeFiles/acobe_features.dir/measurement_cube.cpp.o" "gcc" "src/features/CMakeFiles/acobe_features.dir/measurement_cube.cpp.o.d"
  "/root/repo/src/features/sequence_model.cpp" "src/features/CMakeFiles/acobe_features.dir/sequence_model.cpp.o" "gcc" "src/features/CMakeFiles/acobe_features.dir/sequence_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logs/CMakeFiles/acobe_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
