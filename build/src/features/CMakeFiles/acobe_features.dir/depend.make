# Empty dependencies file for acobe_features.
# This may be replaced when dependencies are built.
