file(REMOVE_RECURSE
  "CMakeFiles/acobe_features.dir/cert_features.cpp.o"
  "CMakeFiles/acobe_features.dir/cert_features.cpp.o.d"
  "CMakeFiles/acobe_features.dir/enterprise_features.cpp.o"
  "CMakeFiles/acobe_features.dir/enterprise_features.cpp.o.d"
  "CMakeFiles/acobe_features.dir/feature_catalog.cpp.o"
  "CMakeFiles/acobe_features.dir/feature_catalog.cpp.o.d"
  "CMakeFiles/acobe_features.dir/measurement_cube.cpp.o"
  "CMakeFiles/acobe_features.dir/measurement_cube.cpp.o.d"
  "CMakeFiles/acobe_features.dir/sequence_model.cpp.o"
  "CMakeFiles/acobe_features.dir/sequence_model.cpp.o.d"
  "libacobe_features.a"
  "libacobe_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
