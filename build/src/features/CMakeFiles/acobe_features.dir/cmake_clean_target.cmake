file(REMOVE_RECURSE
  "libacobe_features.a"
)
