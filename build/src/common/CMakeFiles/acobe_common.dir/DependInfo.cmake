
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/acobe_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/acobe_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/date.cpp" "src/common/CMakeFiles/acobe_common.dir/date.cpp.o" "gcc" "src/common/CMakeFiles/acobe_common.dir/date.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/acobe_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/acobe_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/timeframe.cpp" "src/common/CMakeFiles/acobe_common.dir/timeframe.cpp.o" "gcc" "src/common/CMakeFiles/acobe_common.dir/timeframe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
