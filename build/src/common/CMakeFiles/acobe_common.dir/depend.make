# Empty dependencies file for acobe_common.
# This may be replaced when dependencies are built.
