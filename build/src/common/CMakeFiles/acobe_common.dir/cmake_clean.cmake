file(REMOVE_RECURSE
  "CMakeFiles/acobe_common.dir/csv.cpp.o"
  "CMakeFiles/acobe_common.dir/csv.cpp.o.d"
  "CMakeFiles/acobe_common.dir/date.cpp.o"
  "CMakeFiles/acobe_common.dir/date.cpp.o.d"
  "CMakeFiles/acobe_common.dir/rng.cpp.o"
  "CMakeFiles/acobe_common.dir/rng.cpp.o.d"
  "CMakeFiles/acobe_common.dir/timeframe.cpp.o"
  "CMakeFiles/acobe_common.dir/timeframe.cpp.o.d"
  "libacobe_common.a"
  "libacobe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
