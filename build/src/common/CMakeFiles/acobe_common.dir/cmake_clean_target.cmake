file(REMOVE_RECURSE
  "libacobe_common.a"
)
