# Empty compiler generated dependencies file for acobe_core.
# This may be replaced when dependencies are built.
