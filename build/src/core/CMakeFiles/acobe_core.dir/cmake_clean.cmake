file(REMOVE_RECURSE
  "CMakeFiles/acobe_core.dir/critic.cpp.o"
  "CMakeFiles/acobe_core.dir/critic.cpp.o.d"
  "CMakeFiles/acobe_core.dir/detector.cpp.o"
  "CMakeFiles/acobe_core.dir/detector.cpp.o.d"
  "CMakeFiles/acobe_core.dir/ensemble.cpp.o"
  "CMakeFiles/acobe_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/acobe_core.dir/ensemble_io.cpp.o"
  "CMakeFiles/acobe_core.dir/ensemble_io.cpp.o.d"
  "CMakeFiles/acobe_core.dir/monitor.cpp.o"
  "CMakeFiles/acobe_core.dir/monitor.cpp.o.d"
  "CMakeFiles/acobe_core.dir/score_grid.cpp.o"
  "CMakeFiles/acobe_core.dir/score_grid.cpp.o.d"
  "CMakeFiles/acobe_core.dir/waveform_critic.cpp.o"
  "CMakeFiles/acobe_core.dir/waveform_critic.cpp.o.d"
  "libacobe_core.a"
  "libacobe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
