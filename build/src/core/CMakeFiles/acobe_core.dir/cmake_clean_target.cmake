file(REMOVE_RECURSE
  "libacobe_core.a"
)
