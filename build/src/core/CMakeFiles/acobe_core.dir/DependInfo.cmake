
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/critic.cpp" "src/core/CMakeFiles/acobe_core.dir/critic.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/critic.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/acobe_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/core/CMakeFiles/acobe_core.dir/ensemble.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/ensemble.cpp.o.d"
  "/root/repo/src/core/ensemble_io.cpp" "src/core/CMakeFiles/acobe_core.dir/ensemble_io.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/ensemble_io.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/acobe_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/score_grid.cpp" "src/core/CMakeFiles/acobe_core.dir/score_grid.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/score_grid.cpp.o.d"
  "/root/repo/src/core/waveform_critic.cpp" "src/core/CMakeFiles/acobe_core.dir/waveform_critic.cpp.o" "gcc" "src/core/CMakeFiles/acobe_core.dir/waveform_critic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/behavior/CMakeFiles/acobe_behavior.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/acobe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/acobe_features.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/acobe_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
