
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/behavior/compound_matrix.cpp" "src/behavior/CMakeFiles/acobe_behavior.dir/compound_matrix.cpp.o" "gcc" "src/behavior/CMakeFiles/acobe_behavior.dir/compound_matrix.cpp.o.d"
  "/root/repo/src/behavior/deviation.cpp" "src/behavior/CMakeFiles/acobe_behavior.dir/deviation.cpp.o" "gcc" "src/behavior/CMakeFiles/acobe_behavior.dir/deviation.cpp.o.d"
  "/root/repo/src/behavior/normalized_day.cpp" "src/behavior/CMakeFiles/acobe_behavior.dir/normalized_day.cpp.o" "gcc" "src/behavior/CMakeFiles/acobe_behavior.dir/normalized_day.cpp.o.d"
  "/root/repo/src/behavior/render.cpp" "src/behavior/CMakeFiles/acobe_behavior.dir/render.cpp.o" "gcc" "src/behavior/CMakeFiles/acobe_behavior.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/acobe_features.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acobe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/acobe_logs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
