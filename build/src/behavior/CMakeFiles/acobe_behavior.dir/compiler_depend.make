# Empty compiler generated dependencies file for acobe_behavior.
# This may be replaced when dependencies are built.
