file(REMOVE_RECURSE
  "libacobe_behavior.a"
)
