file(REMOVE_RECURSE
  "CMakeFiles/acobe_behavior.dir/compound_matrix.cpp.o"
  "CMakeFiles/acobe_behavior.dir/compound_matrix.cpp.o.d"
  "CMakeFiles/acobe_behavior.dir/deviation.cpp.o"
  "CMakeFiles/acobe_behavior.dir/deviation.cpp.o.d"
  "CMakeFiles/acobe_behavior.dir/normalized_day.cpp.o"
  "CMakeFiles/acobe_behavior.dir/normalized_day.cpp.o.d"
  "CMakeFiles/acobe_behavior.dir/render.cpp.o"
  "CMakeFiles/acobe_behavior.dir/render.cpp.o.d"
  "libacobe_behavior.a"
  "libacobe_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acobe_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
