# Empty compiler generated dependencies file for enterprise_monitor.
# This may be replaced when dependencies are built.
