file(REMOVE_RECURSE
  "CMakeFiles/enterprise_monitor.dir/enterprise_monitor.cpp.o"
  "CMakeFiles/enterprise_monitor.dir/enterprise_monitor.cpp.o.d"
  "enterprise_monitor"
  "enterprise_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
