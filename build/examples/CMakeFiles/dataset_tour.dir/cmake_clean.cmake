file(REMOVE_RECURSE
  "CMakeFiles/dataset_tour.dir/dataset_tour.cpp.o"
  "CMakeFiles/dataset_tour.dir/dataset_tour.cpp.o.d"
  "dataset_tour"
  "dataset_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
