# Empty dependencies file for dataset_tour.
# This may be replaced when dependencies are built.
