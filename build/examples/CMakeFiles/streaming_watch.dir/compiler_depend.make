# Empty compiler generated dependencies file for streaming_watch.
# This may be replaced when dependencies are built.
