file(REMOVE_RECURSE
  "CMakeFiles/streaming_watch.dir/streaming_watch.cpp.o"
  "CMakeFiles/streaming_watch.dir/streaming_watch.cpp.o.d"
  "streaming_watch"
  "streaming_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
