# Empty dependencies file for insider_hunt.
# This may be replaced when dependencies are built.
