file(REMOVE_RECURSE
  "CMakeFiles/insider_hunt.dir/insider_hunt.cpp.o"
  "CMakeFiles/insider_hunt.dir/insider_hunt.cpp.o.d"
  "insider_hunt"
  "insider_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
