#include "features/enterprise_features.h"

#include <algorithm>
#include <string>

namespace acobe {
namespace {

FeatureCatalog MakeEnterpriseCatalog() {
  std::vector<FeatureDef> defs;
  const char* aspects[4] = {"file", "command", "config", "resource"};
  const char* fnames[4] = {"events", "unique-events", "new-events",
                           "distinct-event-ids"};
  for (const char* aspect : aspects) {
    for (const char* fname : fnames) defs.push_back({fname, aspect, 1.0});
  }
  defs.push_back({"success-requests", "http", 1.0});
  defs.push_back({"success-new-domain", "http", 1.0});
  defs.push_back({"failure-requests", "http", 1.0});
  defs.push_back({"failure-new-domain", "http", 1.0});
  const char* logon_features[7] = {
      "logons",        "logoffs",         "sessions",      "session-seconds",
      "mean-session",  "max-session",     "short-sessions"};
  for (const char* fname : logon_features) {
    defs.push_back({fname, "logon", 1.0});
  }
  return FeatureCatalog(std::move(defs));
}

// Mixes a (event_id, object) pair into one entity id for first-seen keys.
std::uint32_t EventEntity(std::uint16_t event_id, std::uint32_t object) {
  std::uint64_t h = (static_cast<std::uint64_t>(event_id) << 32) | object;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h & 0x03ffffffu);  // 26-bit entity space
}

// Folds the day into the kind so per-day uniqueness trackers never
// collide across days.
std::uint32_t DayKind(std::uint32_t base, std::int32_t day) {
  return base + static_cast<std::uint32_t>(day) * 8u;
}

}  // namespace

EnterpriseExtractor::EnterpriseExtractor(Date start, int days,
                                         TimeFramePartition partition)
    : partition_(std::move(partition)),
      catalog_(MakeEnterpriseCatalog()),
      cube_(std::make_unique<MeasurementCube>(start, days, kFeatureCount,
                                              partition_.frame_count())) {}

void EnterpriseExtractor::Consume(const EnterpriseEvent& e) {
  const Date date = DateOf(e.ts);
  const int day = cube_->DayIndex(date);
  if (day < 0) return;
  const int frame = partition_.FrameOf(e.ts);
  const auto aspect = e.aspect;
  const std::uint32_t entity = EventEntity(e.event_id, e.object);

  cube_->Accumulate(e.user, AspectFeatureIndex(aspect, kEventCount), date,
                    frame);
  const std::uint32_t akind = static_cast<std::uint32_t>(aspect);
  if (unique_today_.FirstOccurrence(
          FirstSeenTracker::Key(e.user, DayKind(akind, day), entity), day)) {
    cube_->Accumulate(e.user, AspectFeatureIndex(aspect, kUniqueEvents), date,
                      frame);
  }
  if (first_seen_.SeenNewOnDay(FirstSeenTracker::Key(e.user, akind, entity),
                               day)) {
    cube_->Accumulate(e.user, AspectFeatureIndex(aspect, kNewEvents), date,
                      frame);
  }
  if (event_id_today_.FirstOccurrence(
          FirstSeenTracker::Key(e.user, DayKind(akind + 4, day), e.event_id),
          day)) {
    cube_->Accumulate(e.user, AspectFeatureIndex(aspect, kDistinctEventIds),
                      date, frame);
  }
}

void EnterpriseExtractor::Consume(const ProxyEvent& e) {
  const Date date = DateOf(e.ts);
  const int day = cube_->DayIndex(date);
  if (day < 0) return;
  const int frame = partition_.FrameOf(e.ts);
  const int base = e.success ? kHttpSuccess : kHttpFailure;
  cube_->Accumulate(e.user, base, date, frame);
  // "New domain": the user never reached this domain (with this verdict
  // class) before day d.
  const std::uint32_t kind = e.success ? 100u : 101u;
  if (first_seen_.SeenNewOnDay(FirstSeenTracker::Key(e.user, kind, e.domain),
                               day)) {
    cube_->Accumulate(e.user, base + 1, date, frame);
  }
}

void EnterpriseExtractor::Consume(const LogonEvent& e) {
  const Date date = DateOf(e.ts);
  const int day = cube_->DayIndex(date);
  if (day < 0) return;
  const int frame = partition_.FrameOf(e.ts);
  if (e.activity == LogonActivity::kLogon) {
    cube_->Accumulate(e.user, kLogonCount, date, frame);
    open_sessions_[e.user] = e.ts;
    return;
  }
  cube_->Accumulate(e.user, kLogoffCount, date, frame);
  auto it = open_sessions_.find(e.user);
  if (it == open_sessions_.end()) return;
  const Timestamp start_ts = it->second;
  open_sessions_.erase(it);
  if (e.ts < start_ts) return;
  const auto seconds = static_cast<float>(e.ts - start_ts);
  // Sessions are attributed to the logon's day/frame.
  const Date s_date = DateOf(start_ts);
  if (cube_->DayIndex(s_date) < 0) return;
  const int s_frame = partition_.FrameOf(start_ts);
  cube_->Accumulate(e.user, kSessionCount, s_date, s_frame);
  cube_->Accumulate(e.user, kTotalSessionSeconds, s_date, s_frame, seconds);
  if (seconds < 300.0f) {
    cube_->Accumulate(e.user, kShortSessions, s_date, s_frame);
  }
  const int uidx = cube_->UserIndex(e.user);
  const int s_day = cube_->DayIndex(s_date);
  float& mx = cube_->At(uidx, kMaxSessionSeconds, s_day, s_frame);
  mx = std::max(mx, seconds);
}

void EnterpriseExtractor::Finalize() {
  // Derive mean session length = total / count for every cell.
  for (int u = 0; u < cube_->users(); ++u) {
    for (int d = 0; d < cube_->days(); ++d) {
      for (int t = 0; t < cube_->frames(); ++t) {
        const float count = cube_->At(u, kSessionCount, d, t);
        if (count > 0.0f) {
          cube_->At(u, kMeanSessionSeconds, d, t) =
              cube_->At(u, kTotalSessionSeconds, d, t) / count;
        }
      }
    }
  }
}

}  // namespace acobe
