#pragma once

// Discrete-event sequence anomaly model for "predictable behavioral
// aspects" (Section VI.B.1: when dependency or causality exists among
// consecutive events, upcoming events can be predicted from the recent
// sequence — the paper cites DeepLog). This is the classical
// counterpart: a per-user order-k Markov model over event symbols with
// Laplace smoothing. The anomaly signal is per-event surprise
// (-log p(next | context)), aggregated per day, which can be fed to the
// measurement cube as an additional statistical feature.

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

namespace acobe {

class SequenceModel {
 public:
  /// `order` — context length k (1 = bigram); `alphabet_hint` — expected
  /// symbol count, used for Laplace smoothing (grows automatically).
  explicit SequenceModel(int order = 2, std::size_t alphabet_hint = 16);

  /// Accumulates one training sequence.
  void Train(std::span<const std::uint32_t> sequence);

  /// -log2 p(symbol | context) for each position of `sequence` (the
  /// first `order` positions use shortened contexts). Higher = more
  /// surprising.
  std::vector<double> Surprise(std::span<const std::uint32_t> sequence) const;

  /// Mean surprise of a sequence; 0 for sequences shorter than 2.
  double MeanSurprise(std::span<const std::uint32_t> sequence) const;

  /// Probability of `symbol` following `context` (last `order` symbols,
  /// fewer allowed), Laplace-smoothed.
  double Probability(std::span<const std::uint32_t> context,
                     std::uint32_t symbol) const;

  std::size_t alphabet_size() const { return alphabet_.size(); }
  int order() const { return order_; }

 private:
  static std::uint64_t HashContext(std::span<const std::uint32_t> context);

  int order_;
  std::size_t alphabet_hint_;
  // context hash -> (symbol -> count, total)
  struct ContextStats {
    std::unordered_map<std::uint32_t, std::uint32_t> counts;
    std::uint64_t total = 0;
  };
  std::unordered_map<std::uint64_t, ContextStats> table_;
  std::unordered_map<std::uint32_t, bool> alphabet_;
};

/// Streaming per-user wrapper: push events in arrival order; per day it
/// yields the user's mean sequence surprise (a ready-to-cube feature)
/// and folds the day's events into the model afterwards (train-as-you-go
/// on yesterday's data, so today's surprise is always out-of-sample).
class DailySurpriseTracker {
 public:
  explicit DailySurpriseTracker(int order = 2) : order_(order) {}

  /// Adds an event for (user). Events must arrive grouped by day.
  void Observe(std::uint32_t user, std::int32_t day, std::uint32_t symbol);

  /// Mean surprise of `user`'s events on `day` (0 if none); only valid
  /// for completed days (i.e. after a later day's events arrived or
  /// after Flush).
  double DaySurprise(std::uint32_t user, std::int32_t day) const;

  /// Folds any pending day into the models.
  void Flush();

 private:
  struct UserState {
    SequenceModel model;
    std::int32_t current_day = -1;
    std::vector<std::uint32_t> today;
    std::unordered_map<std::int32_t, double> day_surprise;
    explicit UserState(int order) : model(order) {}
  };

  void CloseDay(UserState& state);

  int order_;
  std::unordered_map<std::uint32_t, UserState> users_;
};

}  // namespace acobe
