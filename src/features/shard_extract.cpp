#include "features/shard_extract.h"

#include "common/telemetry.h"

namespace acobe {

DepartmentDemux::DepartmentDemux(Date start, int days,
                                 TimeFramePartition partition)
    : start_(start), days_(days), partition_(std::move(partition)) {}

int DepartmentDemux::AddDepartment(const std::string& name,
                                   const std::vector<UserId>& members) {
  const int dept = static_cast<int>(extractors_.size());
  names_.push_back(name);
  extractors_.push_back(
      std::make_unique<CertAcobeExtractor>(start_, days_, partition_));
  CertAcobeExtractor& ex = *extractors_.back();
  for (UserId user : members) {
    ex.cube().RegisterUser(user);
    if (user >= routes_.size()) {
      routes_.resize(static_cast<std::size_t>(user) + 1, -1);
    }
    if (routes_[user] < 0) {
      routes_[user] = dept;
    } else if (routes_[user] != dept) {
      extra_routes_.emplace_back(user, dept);
    }
  }
  ACOBE_COUNT("features.departments_sharded", 1);
  return dept;
}

}  // namespace acobe
