#include "features/measurement_cube.h"

#include <algorithm>
#include <stdexcept>

#include "common/telemetry.h"

namespace acobe {

MeasurementCube::MeasurementCube(Date start, int days, int features,
                                 int frames)
    : start_(start), days_(days), features_(features), frames_(frames) {
  if (days <= 0 || features <= 0 || frames <= 0) {
    throw std::invalid_argument("MeasurementCube: non-positive dimension");
  }
}

int MeasurementCube::RegisterUser(UserId user) {
  auto [it, inserted] =
      user_index_.emplace(user, static_cast<int>(user_ids_.size()));
  if (inserted) {
    user_ids_.push_back(user);
    EnsureCapacity(static_cast<int>(user_ids_.size()));
    ACOBE_COUNT("features.users_registered", 1);
    ACOBE_GAUGE_MAX("features.users", user_ids_.size());
  }
  return it->second;
}

int MeasurementCube::UserIndex(UserId user) const {
  auto it = user_index_.find(user);
  return it == user_index_.end() ? -1 : it->second;
}

int MeasurementCube::DayIndex(const Date& d) const {
  const std::int64_t idx = DaysBetween(start_, d);
  if (idx < 0 || idx >= days_) return -1;
  return static_cast<int>(idx);
}

std::size_t MeasurementCube::Offset(int user_idx, int feature, int day,
                                    int frame) const {
  if (user_idx < 0 || user_idx >= users() || feature < 0 ||
      feature >= features_ || day < 0 || day >= days_ || frame < 0 ||
      frame >= frames_) {
    throw std::out_of_range("MeasurementCube: index out of range");
  }
  return ((static_cast<std::size_t>(user_idx) * features_ + feature) * days_ +
          day) *
             frames_ +
         frame;
}

float& MeasurementCube::At(int user_idx, int feature, int day, int frame) {
  return data_[Offset(user_idx, feature, day, frame)];
}

float MeasurementCube::At(int user_idx, int feature, int day,
                          int frame) const {
  return data_[Offset(user_idx, feature, day, frame)];
}

void MeasurementCube::Accumulate(UserId user, int feature, const Date& date,
                                 int frame, float amount) {
  const int day = DayIndex(date);
  if (day < 0) return;
  // Validate the frame before any mutation: registering the user (and
  // growing the cube) first would leave a phantom user behind when the
  // out_of_range below fires, so a single malformed row could not be
  // rejected cleanly under the permissive-ingest error budget.
  if (feature < 0 || feature >= features_ || frame < 0 || frame >= frames_) {
    throw std::out_of_range("MeasurementCube::Accumulate: index out of range");
  }
  const int idx = RegisterUser(user);
  At(idx, feature, day, frame) += amount;
}

std::span<const float> MeasurementCube::Series(int user_idx,
                                               int feature) const {
  const std::size_t begin = Offset(user_idx, feature, 0, 0);
  return {data_.data() + begin,
          static_cast<std::size_t>(days_) * frames_};
}

void MeasurementCube::EnsureCapacity(int user_count) {
  data_.resize(static_cast<std::size_t>(user_count) * features_ * days_ *
               frames_);
}

std::vector<float> TrimmedGroupMeanSeries(const MeasurementCube& cube,
                                          std::span<const int> member_indices,
                                          double trim_fraction) {
  if (trim_fraction < 0.0 || trim_fraction >= 0.5) {
    throw std::invalid_argument(
        "TrimmedGroupMeanSeries: trim_fraction must be in [0, 0.5)");
  }
  const std::size_t n = member_indices.size();
  const std::size_t trim =
      static_cast<std::size_t>(trim_fraction * static_cast<double>(n));
  if (trim == 0) return GroupMeanSeries(cube, member_indices);

  const std::size_t per_feature =
      static_cast<std::size_t>(cube.days()) * cube.frames();
  std::vector<float> out(static_cast<std::size_t>(cube.features()) *
                         per_feature);
  std::vector<float> values(n);
  for (int f = 0; f < cube.features(); ++f) {
    float* dst = out.data() + static_cast<std::size_t>(f) * per_feature;
    for (std::size_t i = 0; i < per_feature; ++i) {
      for (std::size_t m = 0; m < n; ++m) {
        values[m] = cube.Series(member_indices[m], f)[i];
      }
      std::sort(values.begin(), values.end());
      double sum = 0.0;
      for (std::size_t m = trim; m < n - trim; ++m) sum += values[m];
      dst[i] = static_cast<float>(sum / static_cast<double>(n - 2 * trim));
    }
  }
  return out;
}

std::vector<float> GroupMeanSeries(const MeasurementCube& cube,
                                   std::span<const int> member_indices) {
  const std::size_t per_feature =
      static_cast<std::size_t>(cube.days()) * cube.frames();
  std::vector<float> out(static_cast<std::size_t>(cube.features()) *
                         per_feature);
  if (member_indices.empty()) return out;
  for (int f = 0; f < cube.features(); ++f) {
    float* dst = out.data() + static_cast<std::size_t>(f) * per_feature;
    for (int idx : member_indices) {
      const std::span<const float> series = cube.Series(idx, f);
      for (std::size_t i = 0; i < per_feature; ++i) dst[i] += series[i];
    }
    const float inv = 1.0f / static_cast<float>(member_indices.size());
    for (std::size_t i = 0; i < per_feature; ++i) dst[i] *= inv;
  }
  return out;
}

}  // namespace acobe
