#pragma once

// Feature metadata: every extractor publishes a catalog describing its
// features and how they group into behavioral aspects (the unit ACOBE
// assigns one autoencoder to).

#include <string>
#include <vector>

namespace acobe {

struct FeatureDef {
  std::string name;    // e.g. "upload-doc"
  std::string aspect;  // e.g. "http"
  /// Lower weight ceiling for features the operator deems unimportant
  /// (multiplied into the TF-style weight); 1.0 = normal.
  double importance = 1.0;
};

struct AspectGroup {
  std::string name;
  std::vector<int> feature_indices;
};

class FeatureCatalog {
 public:
  FeatureCatalog() = default;
  explicit FeatureCatalog(std::vector<FeatureDef> features);

  int feature_count() const { return static_cast<int>(features_.size()); }
  const FeatureDef& feature(int i) const { return features_.at(i); }
  const std::vector<FeatureDef>& features() const { return features_; }

  /// Aspects in first-seen order with their member feature indices.
  const std::vector<AspectGroup>& aspects() const { return aspects_; }

  /// Index of the aspect named `name`; -1 if absent.
  int AspectIndex(const std::string& name) const;

  /// Feature index by (aspect, name); -1 if absent.
  int FeatureIndex(const std::string& aspect, const std::string& name) const;

 private:
  std::vector<FeatureDef> features_;
  std::vector<AspectGroup> aspects_;
};

}  // namespace acobe
