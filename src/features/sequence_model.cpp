#include "features/sequence_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acobe {

SequenceModel::SequenceModel(int order, std::size_t alphabet_hint)
    : order_(order), alphabet_hint_(std::max<std::size_t>(2, alphabet_hint)) {
  if (order < 1) throw std::invalid_argument("SequenceModel: order < 1");
}

std::uint64_t SequenceModel::HashContext(
    std::span<const std::uint32_t> context) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + context.size();
  for (std::uint32_t symbol : context) {
    h ^= symbol + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
  }
  return h;
}

void SequenceModel::Train(std::span<const std::uint32_t> sequence) {
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    alphabet_[sequence[i]] = true;
    const std::size_t ctx_len =
        std::min<std::size_t>(order_, i);
    if (ctx_len == 0) continue;
    const auto context = sequence.subspan(i - ctx_len, ctx_len);
    ContextStats& stats = table_[HashContext(context)];
    ++stats.counts[sequence[i]];
    ++stats.total;
  }
}

double SequenceModel::Probability(std::span<const std::uint32_t> context,
                                  std::uint32_t symbol) const {
  const std::size_t vocab = std::max(alphabet_hint_, alphabet_.size());
  auto it = table_.find(HashContext(context));
  if (it == table_.end()) {
    return 1.0 / static_cast<double>(vocab);
  }
  const ContextStats& stats = it->second;
  auto cit = stats.counts.find(symbol);
  const double count = cit == stats.counts.end() ? 0.0 : cit->second;
  return (count + 1.0) /
         (static_cast<double>(stats.total) + static_cast<double>(vocab));
}

std::vector<double> SequenceModel::Surprise(
    std::span<const std::uint32_t> sequence) const {
  std::vector<double> out;
  out.reserve(sequence.size());
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const std::size_t ctx_len = std::min<std::size_t>(order_, i);
    if (ctx_len == 0) {
      out.push_back(0.0);  // no context to judge the first symbol by
      continue;
    }
    const auto context = sequence.subspan(i - ctx_len, ctx_len);
    out.push_back(-std::log2(Probability(context, sequence[i])));
  }
  return out;
}

double SequenceModel::MeanSurprise(
    std::span<const std::uint32_t> sequence) const {
  if (sequence.size() < 2) return 0.0;
  const auto s = Surprise(sequence);
  double sum = 0.0;
  int n = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    sum += s[i];
    ++n;
  }
  return n ? sum / n : 0.0;
}

void DailySurpriseTracker::Observe(std::uint32_t user, std::int32_t day,
                                   std::uint32_t symbol) {
  auto [it, inserted] = users_.try_emplace(user, order_);
  UserState& state = it->second;
  if (state.current_day != day) {
    CloseDay(state);
    state.current_day = day;
  }
  state.today.push_back(symbol);
}

void DailySurpriseTracker::CloseDay(UserState& state) {
  if (state.current_day < 0 || state.today.empty()) {
    state.today.clear();
    return;
  }
  // Score today's sequence against the model trained on prior days,
  // then fold it in.
  state.day_surprise[state.current_day] =
      state.model.MeanSurprise(state.today);
  state.model.Train(state.today);
  state.today.clear();
}

double DailySurpriseTracker::DaySurprise(std::uint32_t user,
                                         std::int32_t day) const {
  auto it = users_.find(user);
  if (it == users_.end()) return 0.0;
  auto dit = it->second.day_surprise.find(day);
  return dit == it->second.day_surprise.end() ? 0.0 : dit->second;
}

void DailySurpriseTracker::Flush() {
  for (auto& [user, state] : users_) CloseDay(state);
}

}  // namespace acobe
