#include "features/feature_catalog.h"

namespace acobe {

FeatureCatalog::FeatureCatalog(std::vector<FeatureDef> features)
    : features_(std::move(features)) {
  for (int i = 0; i < feature_count(); ++i) {
    const std::string& aspect = features_[i].aspect;
    int idx = AspectIndex(aspect);
    if (idx < 0) {
      aspects_.push_back({aspect, {}});
      idx = static_cast<int>(aspects_.size()) - 1;
    }
    aspects_[idx].feature_indices.push_back(i);
  }
}

int FeatureCatalog::AspectIndex(const std::string& name) const {
  for (std::size_t i = 0; i < aspects_.size(); ++i) {
    if (aspects_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int FeatureCatalog::FeatureIndex(const std::string& aspect,
                                 const std::string& name) const {
  for (int i = 0; i < feature_count(); ++i) {
    if (features_[i].aspect == aspect && features_[i].name == name) return i;
  }
  return -1;
}

}  // namespace acobe
