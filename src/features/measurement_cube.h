#pragma once

// Dense measurement storage: m_{f,t,d} per user — the raw numeric
// measurements from which behavioral deviations are derived. Laid out
// as [user][feature][day][frame] floats.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/date.h"
#include "common/timeframe.h"
#include "logs/records.h"

namespace acobe {

class MeasurementCube {
 public:
  MeasurementCube(Date start, int days, int features, int frames);

  const Date& start() const { return start_; }
  int days() const { return days_; }
  int features() const { return features_; }
  int frames() const { return frames_; }
  int users() const { return static_cast<int>(user_ids_.size()); }

  /// Dense index for `user`, registering it if new.
  int RegisterUser(UserId user);

  /// Dense index for `user`, or -1 if never registered.
  int UserIndex(UserId user) const;

  UserId UserAt(int index) const { return user_ids_.at(index); }
  const std::vector<UserId>& user_ids() const { return user_ids_; }

  /// Day index of `d` relative to the cube start, or -1 if outside.
  int DayIndex(const Date& d) const;

  float& At(int user_idx, int feature, int day, int frame);
  float At(int user_idx, int feature, int day, int frame) const;

  /// Adds `amount` to the cell, registering the user as needed;
  /// silently ignores days outside the cube's range.
  void Accumulate(UserId user, int feature, const Date& date, int frame,
                  float amount = 1.0f);

  /// The (day-major) series for one user+feature: span of days*frames
  /// floats, index [day*frames + frame].
  std::span<const float> Series(int user_idx, int feature) const;

 private:
  std::size_t Offset(int user_idx, int feature, int day, int frame) const;
  void EnsureCapacity(int user_count);

  Date start_;
  int days_;
  int features_;
  int frames_;
  std::vector<UserId> user_ids_;
  std::unordered_map<UserId, int> user_index_;
  std::vector<float> data_;
};

/// Per-feature group-mean series over `member_indices` of `cube`:
/// result[feature*days*frames + day*frames + frame]. This is the
/// "group behavior" component of the compound matrix (features of
/// group behavior are the averages of member features).
std::vector<float> GroupMeanSeries(const MeasurementCube& cube,
                                   std::span<const int> member_indices);

/// Trimmed variant: per cell, the highest and lowest `trim_fraction` of
/// member values are dropped before averaging. Robust to a single
/// misbehaving member dominating a rare feature's group mean (which
/// would otherwise leak the insider's own anomaly into every group
/// block), while genuinely org-wide bursts — present in most members —
/// survive the trim. trim_fraction 0 reduces to GroupMeanSeries.
std::vector<float> TrimmedGroupMeanSeries(const MeasurementCube& cube,
                                          std::span<const int> member_indices,
                                          double trim_fraction);

}  // namespace acobe
