#pragma once

// Per-department sharded feature extraction.
//
// DepartmentDemux fans one day-ordered event stream (a ShardSpooler
// replay, or any LogSink feed) out to one CertAcobeExtractor per
// department, routing each event by its user. Every department gets
// its own MeasurementCube holding only its members, which is what
// bounds peak memory when an organization is processed shard by shard.
//
// Per-department cubes are bit-identical to the corresponding rows of
// the monolithic cube: measurements are exact per-event adds of 1.0f
// (order-free within a day), first-seen state is keyed per user, and
// the detector consumes cubes only through per-member lookups, trimmed
// group means over the member list, and member-population calibration —
// none of which see non-member rows.

#include <memory>
#include <string>
#include <vector>

#include "features/cert_features.h"
#include "logs/log_sink.h"

namespace acobe {

class DepartmentDemux : public LogSink {
 public:
  DepartmentDemux(Date start, int days,
                  TimeFramePartition partition = TimeFramePartition::WorkOff());

  /// Adds a department and routes its members' events to a dedicated
  /// extractor. Members are registered into the cube up front so
  /// zero-event users still get (all-zero) rows, as the monolithic path
  /// guarantees by registering the LDAP roster. Returns the department
  /// index. A user may belong to several departments; their events
  /// reach each one.
  int AddDepartment(const std::string& name,
                    const std::vector<UserId>& members);

  int departments() const { return static_cast<int>(extractors_.size()); }
  const std::string& name(int dept) const { return names_[dept]; }
  CertAcobeExtractor& extractor(int dept) { return *extractors_[dept]; }
  const CertAcobeExtractor& extractor(int dept) const {
    return *extractors_[dept];
  }

  void Consume(const LogonEvent& e) override { Route(e); }
  void Consume(const DeviceEvent& e) override { Route(e); }
  void Consume(const FileEvent& e) override { Route(e); }
  void Consume(const HttpEvent& e) override { Route(e); }
  void Consume(const EmailEvent& e) override { Route(e); }
  void Consume(const EnterpriseEvent& e) override { Route(e); }
  void Consume(const ProxyEvent& e) override { Route(e); }

  /// Events that reached at least one extractor.
  std::size_t events_routed() const { return events_routed_; }

 private:
  template <typename Event>
  void Route(const Event& e) {
    if (e.user >= routes_.size()) return;
    const int first = routes_[e.user];
    if (first < 0) return;
    extractors_[static_cast<std::size_t>(first)]->Consume(e);
    ++events_routed_;
    // A second (or later) membership is rare; scan the overflow list.
    for (const auto& [user, dept] : extra_routes_) {
      if (user == e.user) {
        extractors_[static_cast<std::size_t>(dept)]->Consume(e);
      }
    }
  }

  Date start_;
  int days_;
  TimeFramePartition partition_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<CertAcobeExtractor>> extractors_;
  std::vector<int> routes_;  // UserId -> first department, -1 none
  std::vector<std::pair<UserId, int>> extra_routes_;
  std::size_t events_routed_ = 0;
};

}  // namespace acobe
