#pragma once

// Feature extraction for the CERT-style dataset.
//
// CertAcobeExtractor produces the paper's fine-grained feature set
// (Section V.A.3): 2 device features, 7 file features, 7 HTTP features,
// measured per (feature, time-frame, day) with first-seen "new-op"
// semantics. CertCoarseExtractor produces the Liu et al. baseline's
// coarse unweighted activity counts (device/file/http/logon aspects)
// over an arbitrary partition (the baseline uses 24 hourly frames).
//
// Both are LogSinks: feed them events (day-ordered) directly from a
// simulator for streaming aggregation, or replay a LogStore through
// ReplayStore().

#include <memory>

#include "common/timeframe.h"
#include "features/feature_catalog.h"
#include "features/first_seen.h"
#include "features/measurement_cube.h"
#include "logs/log_sink.h"
#include "logs/log_store.h"

namespace acobe {

/// Replays every CERT-style stream of `store` into `sink`. Streams are
/// interleaved by day so first-seen semantics hold.
void ReplayStore(const LogStore& store, LogSink& sink);

class CertAcobeExtractor : public LogSink {
 public:
  CertAcobeExtractor(Date start, int days,
                     TimeFramePartition partition = TimeFramePartition::WorkOff());

  const FeatureCatalog& catalog() const { return catalog_; }
  MeasurementCube& cube() { return *cube_; }
  const MeasurementCube& cube() const { return *cube_; }
  const TimeFramePartition& partition() const { return partition_; }

  void Consume(const LogonEvent& e) override;
  void Consume(const DeviceEvent& e) override;
  void Consume(const FileEvent& e) override;
  void Consume(const HttpEvent& e) override;
  void Consume(const EmailEvent& e) override;
  void Consume(const EnterpriseEvent&) override {}
  void Consume(const ProxyEvent&) override {}

  // Feature indices (fixed layout).
  enum Feature : int {
    kDevConnection = 0,
    kDevNewHost,
    kFileOpenFromLocal,
    kFileOpenFromRemote,
    kFileWriteToLocal,
    kFileWriteToRemote,
    kFileCopyL2R,
    kFileCopyR2L,
    kFileNewOp,
    kHttpUploadDoc,
    kHttpUploadExe,
    kHttpUploadJpg,
    kHttpUploadPdf,
    kHttpUploadTxt,
    kHttpUploadZip,
    kHttpNewOp,
    kFeatureCount,
  };

 private:
  TimeFramePartition partition_;
  FeatureCatalog catalog_;
  std::unique_ptr<MeasurementCube> cube_;
  FirstSeenTracker first_seen_;
};

class CertCoarseExtractor : public LogSink {
 public:
  CertCoarseExtractor(Date start, int days,
                      TimeFramePartition partition = TimeFramePartition::Hourly());

  const FeatureCatalog& catalog() const { return catalog_; }
  MeasurementCube& cube() { return *cube_; }
  const MeasurementCube& cube() const { return *cube_; }
  const TimeFramePartition& partition() const { return partition_; }

  void Consume(const LogonEvent& e) override;
  void Consume(const DeviceEvent& e) override;
  void Consume(const FileEvent& e) override;
  void Consume(const HttpEvent& e) override;
  void Consume(const EmailEvent&) override {}
  void Consume(const EnterpriseEvent&) override {}
  void Consume(const ProxyEvent&) override {}

  enum Feature : int {
    kConnect = 0,
    kDisconnect,
    kOpen,
    kWrite,
    kCopy,
    kDelete,
    kVisit,
    kDownload,
    kUpload,
    kLogon,
    kLogoff,
    kFeatureCount,
  };

 private:
  TimeFramePartition partition_;
  FeatureCatalog catalog_;
  std::unique_ptr<MeasurementCube> cube_;
};

}  // namespace acobe
