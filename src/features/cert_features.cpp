#include "features/cert_features.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/telemetry.h"
#include "common/trace.h"

namespace acobe {
namespace {

// Kind tags for first-seen keys; one namespace per new-op family.
enum FirstSeenKind : std::uint32_t {
  kKindDeviceHost = 1,
  kKindFileOpBase = 8,   // + file feature index
  kKindHttpOpBase = 24,  // + http filetype
};

FeatureCatalog MakeAcobeCatalog() {
  std::vector<FeatureDef> defs = {
      {"connection", "device", 1.0},
      {"new-host-connection", "device", 1.0},
      {"open-from-local", "file", 1.0},
      {"open-from-remote", "file", 1.0},
      {"write-to-local", "file", 1.0},
      {"write-to-remote", "file", 1.0},
      {"copy-from-local-to-remote", "file", 1.0},
      {"copy-from-remote-to-local", "file", 1.0},
      {"new-op", "file", 1.0},
      {"upload-doc", "http", 1.0},
      {"upload-exe", "http", 1.0},
      {"upload-jpg", "http", 1.0},
      {"upload-pdf", "http", 1.0},
      {"upload-txt", "http", 1.0},
      {"upload-zip", "http", 1.0},
      {"http-new-op", "http", 1.0},
  };
  return FeatureCatalog(std::move(defs));
}

FeatureCatalog MakeCoarseCatalog() {
  std::vector<FeatureDef> defs = {
      {"connect", "device", 1.0},  {"disconnect", "device", 1.0},
      {"open", "file", 1.0},       {"write", "file", 1.0},
      {"copy", "file", 1.0},       {"delete", "file", 1.0},
      {"visit", "http", 1.0},      {"download", "http", 1.0},
      {"upload", "http", 1.0},     {"logon", "logon", 1.0},
      {"logoff", "logon", 1.0},
  };
  return FeatureCatalog(std::move(defs));
}

int UploadFeature(HttpFileType t) {
  switch (t) {
    case HttpFileType::kDoc: return CertAcobeExtractor::kHttpUploadDoc;
    case HttpFileType::kExe: return CertAcobeExtractor::kHttpUploadExe;
    case HttpFileType::kJpg: return CertAcobeExtractor::kHttpUploadJpg;
    case HttpFileType::kPdf: return CertAcobeExtractor::kHttpUploadPdf;
    case HttpFileType::kTxt: return CertAcobeExtractor::kHttpUploadTxt;
    case HttpFileType::kZip: return CertAcobeExtractor::kHttpUploadZip;
    case HttpFileType::kNone: return -1;
  }
  return -1;
}

int FileOpFeature(const FileEvent& e) {
  switch (e.activity) {
    case FileActivity::kOpen:
      return e.from == FileLocation::kLocal
                 ? CertAcobeExtractor::kFileOpenFromLocal
                 : CertAcobeExtractor::kFileOpenFromRemote;
    case FileActivity::kWrite:
      return e.to == FileLocation::kLocal
                 ? CertAcobeExtractor::kFileWriteToLocal
                 : CertAcobeExtractor::kFileWriteToRemote;
    case FileActivity::kCopy:
      return e.from == FileLocation::kLocal
                 ? CertAcobeExtractor::kFileCopyL2R
                 : CertAcobeExtractor::kFileCopyR2L;
    case FileActivity::kDelete:
      return -1;  // deletes only feed the coarse feature set
  }
  return -1;
}

}  // namespace

void ReplayStore(const LogStore& store, LogSink& sink) {
  ACOBE_SPAN("features.replay");
  // Merge the per-type streams by day so that first-seen semantics see a
  // consistent chronological order. Within a day, type order does not
  // matter (new-op is defined as "never before day d").
  struct Cursor {
    std::size_t logon = 0, device = 0, file = 0, http = 0, email = 0,
                enterprise = 0, proxy = 0;
  } cur;
  // Find overall day range.
  Timestamp lo = std::numeric_limits<Timestamp>::max();
  Timestamp hi = std::numeric_limits<Timestamp>::min();
  auto scan = [&](auto const& v) {
    for (const auto& e : v) {
      lo = std::min(lo, e.ts);
      hi = std::max(hi, e.ts);
    }
  };
  scan(store.logons());
  scan(store.devices());
  scan(store.file_events());
  scan(store.http_events());
  scan(store.emails());
  scan(store.enterprise_events());
  scan(store.proxy_events());
  if (lo > hi) return;

  const std::int64_t first_day = lo / kSecondsPerDay;
  const std::int64_t last_day = hi / kSecondsPerDay;
  std::size_t replayed = 0;
  for (std::int64_t day = first_day; day <= last_day; ++day) {
    const Timestamp day_end = (day + 1) * kSecondsPerDay;
    auto drain = [&](auto const& v, std::size_t& idx) {
      while (idx < v.size() && v[idx].ts < day_end) {
        sink.Consume(v[idx++]);
        ++replayed;
      }
    };
    drain(store.logons(), cur.logon);
    drain(store.devices(), cur.device);
    drain(store.file_events(), cur.file);
    drain(store.http_events(), cur.http);
    drain(store.emails(), cur.email);
    drain(store.enterprise_events(), cur.enterprise);
    drain(store.proxy_events(), cur.proxy);
  }
  ACOBE_COUNT("features.events_replayed", replayed);
}

CertAcobeExtractor::CertAcobeExtractor(Date start, int days,
                                       TimeFramePartition partition)
    : partition_(std::move(partition)),
      catalog_(MakeAcobeCatalog()),
      cube_(std::make_unique<MeasurementCube>(start, days, kFeatureCount,
                                              partition_.frame_count())) {}

void CertAcobeExtractor::Consume(const LogonEvent&) {
  // The fine-grained feature set has no logon features (Section V.A.3).
}

void CertAcobeExtractor::Consume(const DeviceEvent& e) {
  if (e.activity != DeviceActivity::kConnect) return;
  const Date date = DateOf(e.ts);
  const int day = cube_->DayIndex(date);
  if (day < 0) return;
  const int frame = partition_.FrameOf(e.ts);
  cube_->Accumulate(e.user, kDevConnection, date, frame);
  if (first_seen_.SeenNewOnDay(
          FirstSeenTracker::Key(e.user, kKindDeviceHost, e.pc), day)) {
    cube_->Accumulate(e.user, kDevNewHost, date, frame);
  }
}

void CertAcobeExtractor::Consume(const FileEvent& e) {
  const int feature = FileOpFeature(e);
  if (feature < 0) return;
  const Date date = DateOf(e.ts);
  const int day = cube_->DayIndex(date);
  if (day < 0) return;
  const int frame = partition_.FrameOf(e.ts);
  cube_->Accumulate(e.user, feature, date, frame);
  if (first_seen_.SeenNewOnDay(
          FirstSeenTracker::Key(e.user, kKindFileOpBase + feature, e.file),
          day)) {
    cube_->Accumulate(e.user, kFileNewOp, date, frame);
  }
}

void CertAcobeExtractor::Consume(const HttpEvent& e) {
  // Visits and downloads are not taken into consideration (Section
  // V.A.3); only uploads carry signal for the studied scenarios.
  if (e.activity != HttpActivity::kUpload) return;
  const int feature = UploadFeature(e.filetype);
  if (feature < 0) return;
  const Date date = DateOf(e.ts);
  const int day = cube_->DayIndex(date);
  if (day < 0) return;
  const int frame = partition_.FrameOf(e.ts);
  cube_->Accumulate(e.user, feature, date, frame);
  if (first_seen_.SeenNewOnDay(
          FirstSeenTracker::Key(e.user, kKindHttpOpBase + feature, e.domain),
          day)) {
    cube_->Accumulate(e.user, kHttpNewOp, date, frame);
  }
}

void CertAcobeExtractor::Consume(const EmailEvent&) {
  // Email features are not part of the presented evaluation set.
}

CertCoarseExtractor::CertCoarseExtractor(Date start, int days,
                                         TimeFramePartition partition)
    : partition_(std::move(partition)),
      catalog_(MakeCoarseCatalog()),
      cube_(std::make_unique<MeasurementCube>(start, days, kFeatureCount,
                                              partition_.frame_count())) {}

void CertCoarseExtractor::Consume(const LogonEvent& e) {
  const Date date = DateOf(e.ts);
  if (cube_->DayIndex(date) < 0) return;
  cube_->Accumulate(e.user,
                    e.activity == LogonActivity::kLogon ? kLogon : kLogoff,
                    date, partition_.FrameOf(e.ts));
}

void CertCoarseExtractor::Consume(const DeviceEvent& e) {
  const Date date = DateOf(e.ts);
  if (cube_->DayIndex(date) < 0) return;
  cube_->Accumulate(
      e.user, e.activity == DeviceActivity::kConnect ? kConnect : kDisconnect,
      date, partition_.FrameOf(e.ts));
}

void CertCoarseExtractor::Consume(const FileEvent& e) {
  const Date date = DateOf(e.ts);
  if (cube_->DayIndex(date) < 0) return;
  int feature = kOpen;
  switch (e.activity) {
    case FileActivity::kOpen: feature = kOpen; break;
    case FileActivity::kWrite: feature = kWrite; break;
    case FileActivity::kCopy: feature = kCopy; break;
    case FileActivity::kDelete: feature = kDelete; break;
  }
  cube_->Accumulate(e.user, feature, date, partition_.FrameOf(e.ts));
}

void CertCoarseExtractor::Consume(const HttpEvent& e) {
  const Date date = DateOf(e.ts);
  if (cube_->DayIndex(date) < 0) return;
  int feature = kVisit;
  switch (e.activity) {
    case HttpActivity::kVisit: feature = kVisit; break;
    case HttpActivity::kDownload: feature = kDownload; break;
    case HttpActivity::kUpload: feature = kUpload; break;
  }
  cube_->Accumulate(e.user, feature, date, partition_.FrameOf(e.ts));
}

}  // namespace acobe
