#pragma once

// Feature extraction for the enterprise case-study dataset (Section
// VI.B): 27 behavioral features — 16 from the four predictable aspects
// (File, Command, Config, Resource: event count, unique events, new
// events, distinct event ids) and 11 from the statistical aspects
// (HTTP: success / success-to-new-domain / failure /
// failure-to-new-domain; Logon: 7 session statistics).

#include <map>
#include <memory>

#include "features/feature_catalog.h"
#include "features/first_seen.h"
#include "features/measurement_cube.h"
#include "logs/log_sink.h"

namespace acobe {

class EnterpriseExtractor : public LogSink {
 public:
  EnterpriseExtractor(Date start, int days,
                      TimeFramePartition partition =
                          TimeFramePartition::WorkOff());

  const FeatureCatalog& catalog() const { return catalog_; }
  MeasurementCube& cube() { return *cube_; }
  const MeasurementCube& cube() const { return *cube_; }
  const TimeFramePartition& partition() const { return partition_; }

  void Consume(const LogonEvent& e) override;
  void Consume(const DeviceEvent&) override {}
  void Consume(const FileEvent&) override {}
  void Consume(const HttpEvent&) override {}
  void Consume(const EmailEvent&) override {}
  void Consume(const EnterpriseEvent& e) override;
  void Consume(const ProxyEvent& e) override;

  /// Call after the last event of each day (or once at the end; the
  /// extractor flushes pending uniqueness windows automatically when a
  /// later day arrives). Finalize() flushes the final day.
  void Finalize();

  // Feature layout: 4 aspects x 4 features, then HTTP x 4, Logon x 7.
  static constexpr int kPerAspect = 4;
  enum AspectFeature : int {
    kEventCount = 0,
    kUniqueEvents = 1,
    kNewEvents = 2,
    kDistinctEventIds = 3,
  };
  static int AspectFeatureIndex(EnterpriseAspect aspect, AspectFeature f) {
    return static_cast<int>(aspect) * kPerAspect + static_cast<int>(f);
  }
  enum HttpFeature : int {
    kHttpSuccess = 16,
    kHttpSuccessNewDomain,
    kHttpFailure,
    kHttpFailureNewDomain,
  };
  enum LogonFeature : int {
    kLogonCount = 20,
    kLogoffCount,
    kSessionCount,
    kTotalSessionSeconds,
    kMeanSessionSeconds,
    kMaxSessionSeconds,
    kShortSessions,
    kFeatureCount,
  };

 private:
  void TrackSession(const LogonEvent& e);

  TimeFramePartition partition_;
  FeatureCatalog catalog_;
  std::unique_ptr<MeasurementCube> cube_;
  FirstSeenTracker first_seen_;          // "new events" across all history
  FirstSeenTracker unique_today_;        // per-day uniqueness, keyed w/ day
  FirstSeenTracker event_id_today_;      // per-day distinct event ids
  std::map<UserId, Timestamp> open_sessions_;
};

}  // namespace acobe
