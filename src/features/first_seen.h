#pragma once

// First-seen tracking for "new-op" features: the number of operations
// in terms of (feature, entity) pairs that the user never conducted
// before day d. Requires events to be fed in day order (the simulators
// and log stores guarantee day-granularity chronological order).

#include <cstdint>
#include <unordered_map>

namespace acobe {

class FirstSeenTracker {
 public:
  /// Packs a (user, kind, entity) triple into a tracking key.
  /// `kind` distinguishes op types; entity ids up to 2^26, users up to
  /// 2^32, kinds up to 2^6.
  static std::uint64_t Key(std::uint32_t user, std::uint32_t kind,
                           std::uint32_t entity) {
    return (static_cast<std::uint64_t>(user) << 32) ^
           (static_cast<std::uint64_t>(kind) << 26) ^ entity;
  }

  /// Records an occurrence of `key` on `day` and reports whether the
  /// key is new as of that day — i.e. it was never seen on any earlier
  /// day. Multiple occurrences on the first day all count as new
  /// ("never had conducted *before* day d").
  bool SeenNewOnDay(std::uint64_t key, std::int32_t day) {
    auto [it, inserted] = first_day_.emplace(key, day);
    return inserted || it->second == day;
  }

  /// Records an occurrence and reports whether this is the very first
  /// occurrence of `key` (repeats — even same-day — return false). Used
  /// for per-day uniqueness counting with the day baked into the key.
  bool FirstOccurrence(std::uint64_t key, std::int32_t day) {
    return first_day_.emplace(key, day).second;
  }

  /// True if `key` was seen on a day strictly before `day`.
  bool SeenBefore(std::uint64_t key, std::int32_t day) const {
    auto it = first_day_.find(key);
    return it != first_day_.end() && it->second < day;
  }

  std::size_t size() const { return first_day_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::int32_t> first_day_;
};

}  // namespace acobe
