#pragma once

// Process resource probes for the scale benchmarks, telemetry and the
// runtime health plane (common/health.h).

#include <cstdint>

namespace acobe {

/// Peak resident set size of this process in bytes, from
/// /proc/self/status VmHWM (falling back to getrusage ru_maxrss).
/// Returns 0 when neither source is available. This is the number the
/// streaming pipeline's memory claims are gated on: a high-water mark,
/// so it can only be trusted downward — a bounded reading proves the
/// whole run stayed bounded.
std::uint64_t PeakRssBytes();

/// Current resident set size in bytes (/proc/self/statm), 0 if
/// unavailable. Informational; the gate uses the peak.
std::uint64_t CurrentRssBytes();

/// Total CPU seconds (user + system) consumed by this process so far,
/// from getrusage. 0.0 when unavailable. Sampled by the health plane
/// each heartbeat to derive utilization (CPU-seconds per wall-second).
double CpuSeconds();

// --- Parsing internals, exposed for tests -----------------------------
// The probes above read live /proc files; these pure helpers do the
// actual text parsing so the formats can be pinned by unit tests
// without a kernel.

/// "VmHWM:   1234 kB" line extraction from a /proc/self/status body.
/// Returns the value in bytes, or 0 when no VmHWM line parses.
std::uint64_t ParsePeakRssFromStatus(const char* status_text);

/// First two fields of a /proc/self/statm body ("size resident ...").
/// Returns resident * page_size_bytes, or 0 on a malformed body.
std::uint64_t ParseCurrentRssFromStatm(const char* statm_text,
                                       std::uint64_t page_size_bytes);

}  // namespace acobe
