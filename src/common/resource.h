#pragma once

// Process resource probes for the scale benchmarks and telemetry.

#include <cstdint>

namespace acobe {

/// Peak resident set size of this process in bytes, from
/// /proc/self/status VmHWM (falling back to getrusage ru_maxrss).
/// Returns 0 when neither source is available. This is the number the
/// streaming pipeline's memory claims are gated on: a high-water mark,
/// so it can only be trusted downward — a bounded reading proves the
/// whole run stayed bounded.
std::uint64_t PeakRssBytes();

/// Current resident set size in bytes (/proc/self/statm), 0 if
/// unavailable. Informational; the gate uses the peak.
std::uint64_t CurrentRssBytes();

}  // namespace acobe
