#pragma once

// Minimal JSON reader for the observability artifacts this repo writes
// itself: run-ledger JSONL lines (common/ledger.h), explain reports and
// telemetry metric dumps. acobe-explain renders saved provenance
// without recomputation, so it must *parse* JSON; the container bakes
// in no JSON library, hence this ~200-line recursive-descent parser.
//
// Scope: full RFC 8259 value grammar (null/bool/number/string/array/
// object) with \uXXXX escapes decoded to UTF-8. Numbers are doubles.
// Duplicate object keys keep the last value. Not a validator of
// anything beyond syntax; schema checks live in the callers (and in
// tools/check_ledger.py on CI).

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace acobe::json {

/// Malformed JSON, with a character offset into the parsed text.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value (a tagged union over the six JSON types).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document; trailing non-whitespace throws.
  static Value Parse(std::string_view text);

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const Value* Get(std::string_view key) const;

  /// Convenience lookups with defaults for optional schema fields.
  double GetNumber(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Object members in insertion-independent (sorted) order.
  const std::map<std::string, Value, std::less<>>& AsObject() const;

  std::size_t size() const;
  const Value& operator[](std::size_t i) const;

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value, std::less<>> object_;
};

/// Parses line-delimited JSON (one value per non-blank line) — the run
/// ledger's on-disk form. Throws ParseError with the failing line
/// prefixed, so a truncated tail line is reported precisely.
std::vector<Value> ParseLines(std::string_view text);

}  // namespace acobe::json
