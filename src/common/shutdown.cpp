#include "common/shutdown.h"

#include <csignal>

#include <atomic>

namespace acobe {
namespace {

std::atomic<int> g_signal{0};

void OnSignal(int sig) {
  // Only the store: everything else happens at the next poll point.
  g_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownHandler() {
  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a daemon parked in a blocking read should see EINTR
  // and reach its poll point instead of blocking through the signal.
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool ShutdownRequested() {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignal() { return g_signal.load(std::memory_order_relaxed); }

void RequestShutdown(int signal) {
  g_signal.store(signal, std::memory_order_relaxed);
}

void ResetShutdownForTest() { g_signal.store(0, std::memory_order_relaxed); }

}  // namespace acobe
