#include "common/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <memory>
#include <ostream>

#include "common/faults.h"
#include "common/resource.h"

namespace acobe::telemetry {
namespace {

#ifndef ACOBE_TELEMETRY_DISABLED
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_tracing_enabled{false};
#endif

struct TraceEvent {
  std::string name;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

constexpr int kTraceStripes = 16;

// The registry is a leaked singleton: metric objects must outlive every
// thread-exit path and every static destructor that might still record
// (function-local statics at call sites hold references into it).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series;

  struct TraceStripe {
    std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  TraceStripe trace[kTraceStripes];
  std::mutex names_mutex;
  std::map<int, std::string> thread_names;
};

Registry& R() {
  static Registry* registry = new Registry;
  return *registry;
}

template <typename T>
T& GetOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
               std::string_view name) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

double NearestRank(const std::vector<double>& sorted, double percentile) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(percentile / 100.0 * n)));
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

void JsonEscape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

// JSON numbers must not be NaN/Inf; metrics never should be, but a
// defensive clamp keeps the output parseable no matter what.
void JsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out << buf;
}

#ifndef ACOBE_TELEMETRY_DISABLED
bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}
void EnableMetrics(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}
void EnableTracing(bool on) {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}
#else
void EnableMetrics(bool) {}
void EnableTracing(bool) {}
#endif

void Gauge::SetMax(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double v) {
  Stripe& stripe = stripes_[CurrentThreadTid() % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.samples.push_back(v);
}

Histogram::Stats Histogram::Snapshot() const {
  std::vector<double> all;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    all.insert(all.end(), stripe.samples.begin(), stripe.samples.end());
  }
  Stats s;
  s.count = all.size();
  if (all.empty()) return s;
  std::sort(all.begin(), all.end());
  for (double v : all) s.sum += v;
  s.min = all.front();
  s.max = all.back();
  s.mean = s.sum / static_cast<double>(all.size());
  s.p50 = NearestRank(all, 50.0);
  s.p95 = NearestRank(all, 95.0);
  s.p99 = NearestRank(all, 99.0);
  return s;
}

void Histogram::Reset() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.samples.clear();
  }
}

void Series::Append(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.push_back(v);
}

std::vector<double> Series::Values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_;
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
}

Counter& GetCounter(std::string_view name) {
  return GetOrCreate(R().counters, name);
}
Gauge& GetGauge(std::string_view name) { return GetOrCreate(R().gauges, name); }
Histogram& GetHistogram(std::string_view name) {
  return GetOrCreate(R().histograms, name);
}
Series& GetSeries(std::string_view name) {
  return GetOrCreate(R().series, name);
}

void ResetTelemetry() {
  Registry& r = R();
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& [name, c] : r.counters) c->Reset();
    for (auto& [name, g] : r.gauges) g->Reset();
    for (auto& [name, h] : r.histograms) h->Reset();
    for (auto& [name, s] : r.series) s->Reset();
  }
  for (auto& stripe : r.trace) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.events.clear();
  }
  std::lock_guard<std::mutex> lock(r.names_mutex);
  r.thread_names.clear();
}

std::uint64_t NowNs() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

int CurrentThreadTid() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void SetCurrentThreadName(const std::string& name) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.names_mutex);
  r.thread_names[CurrentThreadTid()] = name;
}

void RecordTraceEvent(std::string name, std::uint64_t start_ns,
                      std::uint64_t duration_ns) {
  const int tid = CurrentThreadTid();
  auto& stripe = R().trace[tid % kTraceStripes];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.events.push_back(
      TraceEvent{std::move(name), tid, start_ns, duration_ns});
}

MetricsSnapshot SnapshotCountersAndGauges() {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  return snap;
}

void WriteReport(std::ostream& out) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  // Rates are over the telemetry clock's anchor — effectively the run
  // wall time, since the anchor is set by the first instrumented event.
  const double wall_s = static_cast<double>(NowNs()) / 1e9;
  out << "--- telemetry report ------------------------------------------\n";
  if (!r.counters.empty()) {
    char head[160];
    std::snprintf(head, sizeof head, "%-42s %20s %14s\n",
                  "counters:", "total", "per-second");
    out << head;
    for (const auto& [name, c] : r.counters) {
      const double rate =
          wall_s > 0.0 ? static_cast<double>(c->value()) / wall_s : 0.0;
      char line[200];
      std::snprintf(line, sizeof line, "  %-40s %20llu %12.4g/s\n",
                    name.c_str(), static_cast<unsigned long long>(c->value()),
                    rate);
      out << line;
    }
  }
  if (!r.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, g] : r.gauges) {
      char line[160];
      std::snprintf(line, sizeof line, "  %-40s %20.4g\n", name.c_str(),
                    g->value());
      out << line;
    }
  }
  if (!r.histograms.empty()) {
    char head[200];
    std::snprintf(head, sizeof head, "%-42s %8s %12s %10s %10s %10s %10s\n",
                  "histograms:", "count", "sum", "mean", "p50", "p95", "p99");
    out << head;
    for (const auto& [name, h] : r.histograms) {
      const Histogram::Stats s = h->Snapshot();
      char line[240];
      std::snprintf(line, sizeof line,
                    "  %-40s %8llu %12.3f %10.4f %10.4f %10.4f %10.4f\n",
                    name.c_str(), static_cast<unsigned long long>(s.count),
                    s.sum, s.mean, s.p50, s.p95, s.p99);
      out << line;
    }
  }
  if (!r.series.empty()) {
    out << "series:\n";
    for (const auto& [name, s] : r.series) {
      const std::vector<double> v = s->Values();
      char line[240];
      if (v.empty()) {
        std::snprintf(line, sizeof line, "  %-40s (empty)\n", name.c_str());
      } else {
        std::snprintf(line, sizeof line,
                      "  %-40s n=%-5zu first=%-10.5g last=%-10.5g\n",
                      name.c_str(), v.size(), v.front(), v.back());
      }
      out << line;
    }
  }
  out << "---------------------------------------------------------------\n";
}

void WriteMetricsJson(std::ostream& out) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  out << "{\n  \"schema\": \"acobe.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(out, name);
    out << "\": " << c->value();
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(out, name);
    out << "\": ";
    JsonNumber(out, g->value());
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    const Histogram::Stats s = h->Snapshot();
    out << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(out, name);
    out << "\": {\"count\": " << s.count << ", \"sum\": ";
    JsonNumber(out, s.sum);
    out << ", \"min\": ";
    JsonNumber(out, s.min);
    out << ", \"max\": ";
    JsonNumber(out, s.max);
    out << ", \"mean\": ";
    JsonNumber(out, s.mean);
    out << ", \"p50\": ";
    JsonNumber(out, s.p50);
    out << ", \"p95\": ";
    JsonNumber(out, s.p95);
    out << ", \"p99\": ";
    JsonNumber(out, s.p99);
    out << "}";
    first = false;
  }
  out << "\n  },\n  \"series\": {";
  first = true;
  for (const auto& [name, s] : r.series) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(out, name);
    out << "\": [";
    const std::vector<double> values = s->Values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out << ", ";
      JsonNumber(out, values[i]);
    }
    out << "]";
    first = false;
  }
  out << "\n  }\n}\n";
}

void WriteTraceJson(std::ostream& out) {
  Registry& r = R();
  std::vector<TraceEvent> events;
  for (auto& stripe : r.trace) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    events.insert(events.end(), stripe.events.begin(), stripe.events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(r.names_mutex);
    for (const auto& [tid, name] : r.thread_names) {
      out << (first ? "\n" : ",\n")
          << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
             "\"tid\": "
          << tid << ", \"args\": {\"name\": \"";
      JsonEscape(out, name);
      out << "\"}}";
      first = false;
    }
  }
  for (const TraceEvent& e : events) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \"";
    JsonEscape(out, e.name);
    out << "\", \"cat\": \"acobe\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << e.tid << ", \"ts\": ";
    JsonNumber(out, static_cast<double>(e.start_ns) / 1e3);
    out << ", \"dur\": ";
    JsonNumber(out, static_cast<double>(e.duration_ns) / 1e3);
    out << "}";
    first = false;
  }
  out << "\n]}\n";
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots and
/// anything else exotic in our registry names map to '_'.
std::string PromName(std::string_view name) {
  std::string out = "acobe_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP-text escaping per the exposition format: backslash and newline
/// only (HELP text is otherwise free-form UTF-8).
void PromHelpEscape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    if (c == '\\') {
      out << "\\\\";
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

/// Label-value escaping: backslash, double quote, newline.
void PromLabelEscape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    if (c == '\\') {
      out << "\\\\";
    } else if (c == '"') {
      out << "\\\"";
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

void PromHelpType(std::ostream& out, const std::string& prom_name,
                  const std::string& source_name, const char* type) {
  out << "# HELP " << prom_name << " acobe metric ";
  PromHelpEscape(out, source_name);
  out << "\n# TYPE " << prom_name << " " << type << "\n";
}

}  // namespace

void WriteMetricsProm(std::ostream& out) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  // Sanitization can collide distinct registry names ("a.b" and "a_b"
  // both map to acobe_a_b); a duplicate exposition name is invalid, so
  // later claimants get a numeric suffix. Summary names also reserve
  // their derived _sum/_count sample names.
  std::set<std::string> used;
  const auto claim = [&used](std::string base, bool summary) {
    std::string name = base;
    for (int n = 2;; ++n) {
      const bool free =
          !used.count(name) &&
          (!summary || (!used.count(name + "_sum") &&
                        !used.count(name + "_count")));
      if (free) break;
      name = base + "_" + std::to_string(n);
    }
    used.insert(name);
    if (summary) {
      used.insert(name + "_sum");
      used.insert(name + "_count");
    }
    return name;
  };
  for (const auto& [name, c] : r.counters) {
    const std::string prom = claim(PromName(name), false);
    PromHelpType(out, prom, name, "counter");
    out << prom << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : r.gauges) {
    const std::string prom = claim(PromName(name), false);
    PromHelpType(out, prom, name, "gauge");
    out << prom << " ";
    JsonNumber(out, g->value());
    out << "\n";
  }
  for (const auto& [name, h] : r.histograms) {
    const Histogram::Stats s = h->Snapshot();
    const std::string prom = claim(PromName(name), true);
    PromHelpType(out, prom, name, "summary");
    const struct { const char* q; double v; } quantiles[] = {
        {"0.5", s.p50}, {"0.95", s.p95}, {"0.99", s.p99}};
    for (const auto& [q, v] : quantiles) {
      out << prom << "{quantile=\"";
      PromLabelEscape(out, q);
      out << "\"} ";
      JsonNumber(out, v);
      out << "\n";
    }
    out << prom << "_sum ";
    JsonNumber(out, s.sum);
    out << "\n" << prom << "_count " << s.count << "\n";
  }
}

bool WriteMetricsJsonFile(const std::string& path) {
  // Atomic so a crash mid-dump can't leave a half-written JSON file
  // where a previous run's valid export used to be.
  try {
    WriteFileAtomic(path, [](std::ostream& out) { WriteMetricsJson(out); });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool WriteTraceJsonFile(const std::string& path) {
  try {
    WriteFileAtomic(path, [](std::ostream& out) { WriteTraceJson(out); });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool WriteMetricsPromFile(const std::string& path) {
  try {
    WriteFileAtomic(path, [](std::ostream& out) { WriteMetricsProm(out); });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool FlushTelemetry(const std::string& tool, const std::string& metrics_out,
                    const std::string& trace_out, std::ostream& report) {
  // Stamp the process high-water mark last, so it covers the whole run.
  if (MetricsEnabled()) {
    if (const std::uint64_t peak = PeakRssBytes(); peak > 0) {
      GetGauge("process.peak_rss_bytes").Set(static_cast<double>(peak));
    }
  }
  WriteReport(report);
  bool ok = true;
  if (!metrics_out.empty() && !WriteMetricsJsonFile(metrics_out)) {
    std::fprintf(stderr, "%s: cannot write %s\n", tool.c_str(),
                 metrics_out.c_str());
    ok = false;
  }
  if (!trace_out.empty() && !WriteTraceJsonFile(trace_out)) {
    std::fprintf(stderr, "%s: cannot write %s\n", tool.c_str(),
                 trace_out.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace acobe::telemetry
