#include "common/rng.h"

#include <cmath>

namespace acobe {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextUniform(-1.0, 1.0);
    v = NextUniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

int Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction; fine for the
  // simulator's aggregate event counts.
  const double draw = NextGaussian(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

double Rng::NextExponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::NextExponential: rate<=0");
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

}  // namespace acobe
