#include "common/health.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/resource.h"
#include "common/telemetry.h"

namespace acobe::health {
namespace {

using telemetry::JsonEscape;
using telemetry::JsonNumber;
using telemetry::NowNs;

// --- Stage tracker ---------------------------------------------------
//
// One slot per distinct stage name. `done`/`total` are lock-free (the
// hot StageAdvance path from pool workers is one relaxed RMW); episode
// bookkeeping (which stage is current, accumulated wall) is rare and
// sits under a mutex.

struct StageState {
  const char* name = nullptr;
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> total{0};
  std::uint64_t closed_wall_ns = 0;   // completed episodes (under mutex)
  std::uint64_t episode_start_ns = 0; // nonzero while current
};

struct StageTracker {
  std::mutex mutex;
  std::vector<std::unique_ptr<StageState>> stages;  // first-use order
  std::string detail;
};

StageTracker& Stages() {
  static StageTracker* tracker = new StageTracker;
  return *tracker;
}

// The current stage, readable without the tracker mutex so
// StageAdvance stays a load + RMW.
std::atomic<StageState*> g_current_stage{nullptr};

double StageElapsedSeconds(const StageState& s, std::uint64_t now_ns) {
  std::uint64_t ns = s.closed_wall_ns;
  if (s.episode_start_ns != 0) ns += now_ns - s.episode_start_ns;
  return static_cast<double>(ns) / 1e9;
}

// --- Span stacks + edge profile --------------------------------------

constexpr int kMaxSpanDepth = 48;
constexpr int kMaxSpanThreads = 256;
constexpr int kEdgeStripes = 16;

// Fixed storage, atomically readable from the crash signal handler.
struct SpanStack {
  std::atomic<int> tid{0};  // dense telemetry tid; 0 = free slot
  std::atomic<int> depth{0};
  std::atomic<const char*> names[kMaxSpanDepth] = {};
};

SpanStack g_span_stacks[kMaxSpanThreads];

// Releases the slot when its thread exits (ParallelFor spawns fresh
// workers per call, so slots must recycle).
struct SlotHolder {
  SpanStack* slot = nullptr;
  int overflow = 0;  // pushes beyond kMaxSpanDepth, to keep pops paired
  ~SlotHolder() {
    if (slot) {
      slot->depth.store(0, std::memory_order_relaxed);
      slot->tid.store(0, std::memory_order_release);
    }
  }
};
thread_local SlotHolder t_slot;

SpanStack* MySlot() {
  if (t_slot.slot == nullptr) {
    const int tid = telemetry::CurrentThreadTid();
    for (SpanStack& s : g_span_stacks) {
      int expected = 0;
      if (s.tid.compare_exchange_strong(expected, tid,
                                        std::memory_order_acq_rel)) {
        t_slot.slot = &s;
        break;
      }
    }
    // All slots taken: spans on this thread go unstacked (edges still
    // record with an unknown parent).
  }
  return t_slot.slot;
}

struct EdgeCell {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

// Striped by thread like the telemetry histograms: concurrent span
// exits almost never share a lock.
struct EdgeStripe {
  std::mutex mutex;
  std::map<std::pair<const char*, const char*>, EdgeCell> edges;
};
EdgeStripe g_edges[kEdgeStripes];

// --- Crash flight recorder -------------------------------------------

constexpr std::size_t kCrashPathMax = 512;
char g_crash_path[kCrashPathMax] = {};
std::atomic<bool> g_recorder_installed{false};
std::atomic<int> g_crash_taken{0};

// Last fully rendered heartbeat, pre-escaped JSON, double-buffered so
// the handler always finds one consistent snapshot.
constexpr std::size_t kSnapshotBytes = 1u << 16;
char g_snapshot[2][kSnapshotBytes];
std::atomic<int> g_snapshot_idx{-1};
std::atomic<bool> g_crashing{false};

// write() the whole string, ignoring short writes beyond a few retries
// (we are crashing; best effort).
void WriteRaw(int fd, const char* s, std::size_t n) {
  std::size_t off = 0;
  for (int attempts = 0; off < n && attempts < 16; ++attempts) {
    const ssize_t w = ::write(fd, s + off, n - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
}
void WriteStr(int fd, const char* s) { WriteRaw(fd, s, std::strlen(s)); }
void WriteU64(int fd, std::uint64_t v) {
  char buf[24];
  int i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteRaw(fd, buf + i, sizeof(buf) - static_cast<std::size_t>(i));
}

const char* SigName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case 0: return "terminate";
    default: return "signal";
  }
}

/// The dump itself: async-signal-safe (open/write/close, no stdio, no
/// allocation, only relaxed/acquire atomic loads of fixed storage).
void WriteCrashDump(int sig) {
  const int fd =
      ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  WriteStr(fd, "{\"schema\":\"acobe.crash.v1\",\"signal\":");
  WriteU64(fd, static_cast<std::uint64_t>(sig < 0 ? 0 : sig));
  WriteStr(fd, ",\"signame\":\"");
  WriteStr(fd, SigName(sig));
  WriteStr(fd, "\",\"threads\":[");
  bool first = true;
  for (const SpanStack& s : g_span_stacks) {
    const int tid = s.tid.load(std::memory_order_acquire);
    if (tid == 0) continue;
    if (!first) WriteStr(fd, ",");
    first = false;
    WriteStr(fd, "{\"tid\":");
    WriteU64(fd, static_cast<std::uint64_t>(tid));
    WriteStr(fd, ",\"spans\":[");
    int depth = s.depth.load(std::memory_order_acquire);
    depth = std::min(depth, kMaxSpanDepth);
    for (int i = 0; i < depth; ++i) {
      const char* name = s.names[i].load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      if (i) WriteStr(fd, ",");
      // Span names are static C identifiers with dots; no escaping
      // needed (and none would be signal-safe).
      WriteStr(fd, "\"");
      WriteStr(fd, name);
      WriteStr(fd, "\"");
    }
    WriteStr(fd, "]}");
  }
  WriteStr(fd, "],\"heartbeat\":");
  const int idx = g_snapshot_idx.load(std::memory_order_acquire);
  if (idx >= 0) {
    WriteStr(fd, g_snapshot[idx]);
  } else {
    WriteStr(fd, "null");
  }
  WriteStr(fd, "}\n");
  ::close(fd);
}

void CrashSignalHandler(int sig) {
  if (g_crash_taken.exchange(1) == 0) {
    g_crashing.store(true, std::memory_order_relaxed);
    WriteCrashDump(sig);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void TerminateDump() {
  if (g_crash_taken.exchange(1) == 0) {
    g_crashing.store(true, std::memory_order_relaxed);
    WriteCrashDump(0);
  }
  std::abort();
}

// --- Heartbeat monitor -----------------------------------------------

struct Monitor {
  HealthOptions opts;
  std::ofstream out;
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;

  std::uint64_t seq = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t prev_ns = 0;
  double prev_cpu_s = 0.0;
  std::map<std::string, std::uint64_t> prev_counters;
};

std::mutex g_monitor_mutex;
Monitor* g_monitor = nullptr;  // owned; deleted by StopHealth

/// Renders one heartbeat line (no trailing newline) and advances the
/// monitor's delta state. Called from the sampler thread and, for the
/// final beat, from StopHealth.
std::string RenderHeartbeat(Monitor& m, bool final_beat) {
  const std::uint64_t now_ns = NowNs();
  const double dt_s =
      std::max(1e-9, static_cast<double>(now_ns - m.prev_ns) / 1e9);
  const double cpu_s = CpuSeconds();
  const telemetry::MetricsSnapshot snap =
      telemetry::SnapshotCountersAndGauges();
  const StageSnapshot stage = CurrentStage();
  const std::vector<StageTime> stages = StageTimes();
  const std::vector<SpanEdge> spans = SpanProfile();

  ++m.seq;
  std::ostringstream out;
  out << "{\"schema\":\"acobe.health.v1\",\"tool\":\"";
  JsonEscape(out, m.opts.tool);
  out << "\",\"seq\":" << m.seq << ",\"uptime_ms\":"
      << (now_ns - m.start_ns) / 1000000u
      << ",\"interval_ms\":" << m.opts.interval_ms
      << ",\"final\":" << (final_beat ? "true" : "false");

  out << ",\"stage\":{\"name\":\"";
  JsonEscape(out, stage.name);
  out << "\",\"detail\":\"";
  JsonEscape(out, stage.detail);
  out << "\",\"done\":" << stage.done << ",\"total\":" << stage.total
      << ",\"elapsed_s\":";
  JsonNumber(out, stage.elapsed_s);
  out << ",\"eta_s\":";
  JsonNumber(out, stage.eta_s);
  out << "}";

  out << ",\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i) out << ',';
    out << "{\"stage\":\"";
    JsonEscape(out, stages[i].name);
    out << "\",\"seconds\":";
    JsonNumber(out, stages[i].seconds);
    out << ",\"done\":" << stages[i].done << ",\"total\":" << stages[i].total
        << "}";
  }
  out << "]";

  out << ",\"rss_bytes\":" << CurrentRssBytes()
      << ",\"peak_rss_bytes\":" << PeakRssBytes();
  out << ",\"cpu\":{\"proc_seconds\":";
  JsonNumber(out, cpu_s);
  out << ",\"utilization\":";
  JsonNumber(out, std::max(0.0, cpu_s - m.prev_cpu_s) / dt_s);
  out << "}";

  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;  // keep lines lean: untouched counters skip
    const auto it = m.prev_counters.find(name);
    const std::uint64_t prev = it == m.prev_counters.end() ? 0 : it->second;
    const std::uint64_t delta = value >= prev ? value - prev : 0;
    if (!first) out << ',';
    first = false;
    out << "\"";
    JsonEscape(out, name);
    out << "\":{\"total\":" << value << ",\"delta\":" << delta
        << ",\"rate\":";
    JsonNumber(out, static_cast<double>(delta) / dt_s);
    out << "}";
  }
  out << "}";

  out << ",\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ',';
    first = false;
    out << "\"";
    JsonEscape(out, name);
    out << "\":";
    JsonNumber(out, value);
  }
  out << "}";

  out << ",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i) out << ',';
    out << "{\"name\":\"";
    JsonEscape(out, spans[i].name);
    out << "\",\"parent\":\"";
    JsonEscape(out, spans[i].parent);
    out << "\",\"count\":" << spans[i].count << ",\"total_ms\":";
    JsonNumber(out, spans[i].total_ms);
    out << ",\"self_ms\":";
    JsonNumber(out, spans[i].self_ms);
    out << "}";
  }
  out << "]}";

  m.prev_ns = now_ns;
  m.prev_cpu_s = cpu_s;
  m.prev_counters.clear();
  for (const auto& [name, value] : snap.counters) {
    m.prev_counters.emplace(name, value);
  }
  return out.str();
}

/// Publish the line for the crash handler, then append it to the file.
/// One write + flush per beat: a reader sees whole lines only.
void EmitHeartbeat(Monitor& m, bool final_beat) {
  if (g_crashing.load(std::memory_order_relaxed)) return;
  const std::string line = RenderHeartbeat(m, final_beat);
  const int next = (g_snapshot_idx.load(std::memory_order_relaxed) + 1) & 1;
  const std::size_t n = std::min(line.size(), kSnapshotBytes - 1);
  std::memcpy(g_snapshot[next], line.data(), n);
  g_snapshot[next][n] = '\0';
  g_snapshot_idx.store(next, std::memory_order_release);
  m.out << line << '\n';
  m.out.flush();
}

void MonitorLoop(Monitor* m) {
  telemetry::SetCurrentThreadName("health-sampler");
  std::unique_lock<std::mutex> lock(m->mutex);
  while (!m->stop) {
    m->cv.wait_for(lock, std::chrono::milliseconds(m->opts.interval_ms));
    if (m->stop) break;
    EmitHeartbeat(*m, /*final_beat=*/false);
  }
}

void StopHealthAtExit() { StopHealth(); }

}  // namespace

// --- Stage API -------------------------------------------------------

void SetStage(const char* name, std::uint64_t add_total) {
  StageTracker& t = Stages();
  const std::uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(t.mutex);
  StageState* current = g_current_stage.load(std::memory_order_relaxed);
  if (current != nullptr && std::strcmp(current->name, name) == 0) {
    if (add_total > 0) {
      current->total.fetch_add(add_total, std::memory_order_relaxed);
    }
    return;
  }
  if (current != nullptr && current->episode_start_ns != 0) {
    current->closed_wall_ns += now - current->episode_start_ns;
    current->episode_start_ns = 0;
  }
  StageState* next = nullptr;
  for (const auto& s : t.stages) {
    if (std::strcmp(s->name, name) == 0) {
      next = s.get();
      break;
    }
  }
  if (next == nullptr) {
    t.stages.push_back(std::make_unique<StageState>());
    next = t.stages.back().get();
    next->name = name;
  }
  if (add_total > 0) next->total.fetch_add(add_total, std::memory_order_relaxed);
  next->episode_start_ns = now;
  t.detail.clear();
  g_current_stage.store(next, std::memory_order_release);
}

void StageAdvance(std::uint64_t n) {
  StageState* current = g_current_stage.load(std::memory_order_acquire);
  if (current != nullptr) {
    current->done.fetch_add(n, std::memory_order_relaxed);
  }
}

void SetStageDetail(const std::string& detail) {
  StageTracker& t = Stages();
  std::lock_guard<std::mutex> lock(t.mutex);
  t.detail = detail;
}

StageSnapshot CurrentStage() {
  StageTracker& t = Stages();
  const std::uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(t.mutex);
  StageSnapshot snap;
  const StageState* current = g_current_stage.load(std::memory_order_relaxed);
  if (current == nullptr) return snap;
  snap.name = current->name;
  snap.detail = t.detail;
  snap.done = current->done.load(std::memory_order_relaxed);
  snap.total = current->total.load(std::memory_order_relaxed);
  snap.elapsed_s = StageElapsedSeconds(*current, now);
  if (snap.total > 0 && snap.done > 0 && snap.done < snap.total) {
    snap.eta_s = snap.elapsed_s *
                 static_cast<double>(snap.total - snap.done) /
                 static_cast<double>(snap.done);
  } else if (snap.total > 0 && snap.done >= snap.total) {
    snap.eta_s = 0.0;
  }
  return snap;
}

std::vector<StageTime> StageTimes() {
  StageTracker& t = Stages();
  const std::uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(t.mutex);
  std::vector<StageTime> times;
  times.reserve(t.stages.size());
  for (const auto& s : t.stages) {
    times.push_back(StageTime{s->name, StageElapsedSeconds(*s, now),
                              s->done.load(std::memory_order_relaxed),
                              s->total.load(std::memory_order_relaxed)});
  }
  return times;
}

std::string StageTimesJson() {
  const std::vector<StageTime> times = StageTimes();
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i) out << ',';
    out << "{\"stage\":\"";
    JsonEscape(out, times[i].name);
    out << "\",\"seconds\":";
    JsonNumber(out, times[i].seconds);
    out << ",\"done\":" << times[i].done << ",\"total\":" << times[i].total
        << '}';
  }
  out << ']';
  return out.str();
}

void ResetStages() {
  StageTracker& t = Stages();
  std::lock_guard<std::mutex> lock(t.mutex);
  g_current_stage.store(nullptr, std::memory_order_relaxed);
  t.stages.clear();
  t.detail.clear();
}

// --- Span stack + profile --------------------------------------------

const char* SpanStackPush(const char* name) {
  SpanStack* slot = MySlot();
  if (slot == nullptr) return nullptr;
  const int depth = slot->depth.load(std::memory_order_relaxed);
  if (depth >= kMaxSpanDepth) {
    ++t_slot.overflow;
    return slot->names[kMaxSpanDepth - 1].load(std::memory_order_relaxed);
  }
  slot->names[depth].store(name, std::memory_order_release);
  slot->depth.store(depth + 1, std::memory_order_release);
  return depth > 0 ? slot->names[depth - 1].load(std::memory_order_relaxed)
                   : nullptr;
}

void SpanStackPop(const char* name, const char* parent,
                  std::uint64_t duration_ns) {
  SpanStack* slot = t_slot.slot;
  if (slot != nullptr) {
    if (t_slot.overflow > 0) {
      --t_slot.overflow;
    } else {
      const int depth = slot->depth.load(std::memory_order_relaxed);
      if (depth > 0) slot->depth.store(depth - 1, std::memory_order_release);
    }
  }
  EdgeStripe& stripe =
      g_edges[telemetry::CurrentThreadTid() % kEdgeStripes];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  EdgeCell& cell = stripe.edges[{parent == nullptr ? "" : parent, name}];
  ++cell.count;
  cell.total_ns += duration_ns;
}

std::vector<SpanEdge> SpanProfile() {
  // Merge the stripes by string value (identical literals are not
  // guaranteed to share a pointer across translation units).
  std::map<std::pair<std::string, std::string>, EdgeCell> merged;
  for (EdgeStripe& stripe : g_edges) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [key, cell] : stripe.edges) {
      EdgeCell& into = merged[{key.first, key.second}];
      into.count += cell.count;
      into.total_ns += cell.total_ns;
    }
  }
  std::map<std::string, std::uint64_t> name_total;   // wall per span name
  std::map<std::string, std::uint64_t> child_total;  // wall under a parent
  for (const auto& [key, cell] : merged) {
    name_total[key.second] += cell.total_ns;
    if (!key.first.empty()) child_total[key.first] += cell.total_ns;
  }
  std::vector<SpanEdge> profile;
  profile.reserve(merged.size());
  for (const auto& [key, cell] : merged) {
    SpanEdge edge;
    edge.parent = key.first;
    edge.name = key.second;
    edge.count = cell.count;
    edge.total_ms = static_cast<double>(cell.total_ns) / 1e6;
    // A name's child time is apportioned across its parent edges by
    // each edge's share of the name's total wall.
    const auto children = child_total.find(key.second);
    double self_ns = static_cast<double>(cell.total_ns);
    if (children != child_total.end() && name_total[key.second] > 0) {
      const double share = static_cast<double>(cell.total_ns) /
                           static_cast<double>(name_total[key.second]);
      self_ns -= share * static_cast<double>(children->second);
    }
    edge.self_ms = std::max(0.0, self_ns / 1e6);
    profile.push_back(std::move(edge));
  }
  std::sort(profile.begin(), profile.end(),
            [](const SpanEdge& a, const SpanEdge& b) {
              return a.total_ms > b.total_ms;
            });
  return profile;
}

void ResetSpanProfile() {
  for (EdgeStripe& stripe : g_edges) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.edges.clear();
  }
}

// --- Monitor ---------------------------------------------------------

bool StartHealth(const HealthOptions& options) {
  std::lock_guard<std::mutex> lock(g_monitor_mutex);
  if (g_monitor != nullptr) {
    std::fprintf(stderr, "health: monitor already running\n");
    return false;
  }
  auto monitor = std::make_unique<Monitor>();
  monitor->opts = options;
  monitor->opts.interval_ms = std::max(10, options.interval_ms);
  monitor->out.open(options.path, std::ios::trunc);
  if (!monitor->out) {
    std::fprintf(stderr, "health: cannot write %s\n", options.path.c_str());
    return false;
  }
  monitor->start_ns = NowNs();
  monitor->prev_ns = monitor->start_ns;
  monitor->prev_cpu_s = CpuSeconds();
  if (options.crash_recorder) {
    InstallCrashRecorder(options.path + ".crash.json");
  }
  // First beat immediately: a run that dies before the first interval
  // still leaves its identity line behind.
  EmitHeartbeat(*monitor, /*final_beat=*/false);
  Monitor* raw = monitor.release();
  raw->thread = std::thread(MonitorLoop, raw);
  g_monitor = raw;
  static const bool atexit_registered =
      (std::atexit(StopHealthAtExit), true);
  (void)atexit_registered;
  return true;
}

void StopHealth() {
  Monitor* monitor = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_monitor_mutex);
    monitor = g_monitor;
    g_monitor = nullptr;
  }
  if (monitor == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(monitor->mutex);
    monitor->stop = true;
  }
  monitor->cv.notify_all();
  monitor->thread.join();
  EmitHeartbeat(*monitor, /*final_beat=*/true);
  delete monitor;
}

bool HealthRunning() {
  std::lock_guard<std::mutex> lock(g_monitor_mutex);
  return g_monitor != nullptr;
}

// --- Crash recorder --------------------------------------------------

void InstallCrashRecorder(const std::string& path) {
  const std::size_t n = std::min(path.size(), kCrashPathMax - 1);
  std::memcpy(g_crash_path, path.data(), n);
  g_crash_path[n] = '\0';
  if (g_recorder_installed.exchange(true)) return;  // path updated above
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashSignalHandler;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    sigaction(sig, &action, nullptr);
  }
  g_prev_terminate = std::set_terminate(TerminateDump);
}

}  // namespace acobe::health
