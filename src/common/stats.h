#pragma once

// Small numeric helpers shared across modules.

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>

namespace acobe {

/// Arithmetic mean; 0 for an empty span.
inline double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Population standard deviation (the paper does not specify the ddof;
/// population std matches NumPy's default used by the reference
/// tooling). 0 for an empty span; a single-element span also yields 0
/// (its deviation sum is exactly zero), so only the empty case needs a
/// guard against dividing by zero.
inline double StdDev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

/// Clamps x into [-bound, bound].
inline double ClampSymmetric(double x, double bound) {
  if (x > bound) return bound;
  if (x < -bound) return -bound;
  return x;
}

/// Linear rescale of x from [-bound, bound] to [0, 1].
inline double ToUnitInterval(double x, double bound) {
  return (x + bound) / (2.0 * bound);
}

}  // namespace acobe
