#include "common/resource.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace acobe {

std::uint64_t PeakRssBytes() {
  // VmHWM is the kernel's high-water mark for resident pages; it
  // survives frees, which is exactly what a peak-memory gate needs.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    unsigned long kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0 &&
          std::sscanf(line + 6, "%lu", &kb) == 1) {
        std::fclose(f);
        return static_cast<std::uint64_t>(kb) * 1024;
      }
    }
    std::fclose(f);
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

std::uint64_t CurrentRssBytes() {
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long size = 0, resident = 0;
    const int n = std::fscanf(f, "%lu %lu", &size, &resident);
    std::fclose(f);
    if (n == 2) {
#if defined(__unix__)
      const long page = sysconf(_SC_PAGESIZE);
      return static_cast<std::uint64_t>(resident) *
             static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
      return static_cast<std::uint64_t>(resident) * 4096;
#endif
    }
  }
  return 0;
}

}  // namespace acobe
