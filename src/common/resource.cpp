#include "common/resource.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace acobe {

std::uint64_t ParsePeakRssFromStatus(const char* status_text) {
  // VmHWM is the kernel's high-water mark for resident pages; it
  // survives frees, which is exactly what a peak-memory gate needs.
  const char* line = status_text;
  while (line && *line) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long kb = 0;
      if (std::sscanf(line + 6, "%lu", &kb) == 1) {
        return static_cast<std::uint64_t>(kb) * 1024;
      }
      return 0;
    }
    line = std::strchr(line, '\n');
    if (line) ++line;
  }
  return 0;
}

std::uint64_t ParseCurrentRssFromStatm(const char* statm_text,
                                       std::uint64_t page_size_bytes) {
  unsigned long size = 0, resident = 0;
  if (std::sscanf(statm_text, "%lu %lu", &size, &resident) != 2) return 0;
  return static_cast<std::uint64_t>(resident) * page_size_bytes;
}

std::uint64_t PeakRssBytes() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    if (const std::uint64_t bytes = ParsePeakRssFromStatus(buf); bytes > 0) {
      return bytes;
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

std::uint64_t CurrentRssBytes() {
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    char buf[256];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
#if defined(__unix__)
    const long page = sysconf(_SC_PAGESIZE);
    return ParseCurrentRssFromStatm(
        buf, static_cast<std::uint64_t>(page > 0 ? page : 4096));
#else
    return ParseCurrentRssFromStatm(buf, 4096);
#endif
  }
  return 0;
}

double CpuSeconds() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    auto seconds = [](const struct timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) / 1e6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
  }
#endif
  return 0.0;
}

}  // namespace acobe
