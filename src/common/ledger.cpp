#include "common/ledger.h"

#include <ostream>
#include <sstream>

#include "common/faults.h"
#include "common/telemetry.h"

namespace acobe {
namespace {

void AppendEscaped(std::string& buf, std::string_view s) {
  std::ostringstream os;
  telemetry::JsonEscape(os, s);
  buf += os.str();
}

void AppendNumber(std::string& buf, double v) {
  std::ostringstream os;
  telemetry::JsonNumber(os, v);
  buf += os.str();
}

}  // namespace

LedgerEvent::LedgerEvent(std::string_view type) {
  buf_ = "{\"event\": \"";
  AppendEscaped(buf_, type);
  buf_ += '"';
}

LedgerEvent& LedgerEvent::Key(std::string_view key) {
  buf_ += ", \"";
  AppendEscaped(buf_, key);
  buf_ += "\": ";
  return *this;
}

LedgerEvent& LedgerEvent::Str(std::string_view key, std::string_view value) {
  Key(key);
  buf_ += '"';
  AppendEscaped(buf_, value);
  buf_ += '"';
  return *this;
}

LedgerEvent& LedgerEvent::Num(std::string_view key, double value) {
  Key(key);
  AppendNumber(buf_, value);
  return *this;
}

LedgerEvent& LedgerEvent::Int(std::string_view key, std::int64_t value) {
  Key(key);
  buf_ += std::to_string(value);
  return *this;
}

LedgerEvent& LedgerEvent::Bool(std::string_view key, bool value) {
  Key(key);
  buf_ += value ? "true" : "false";
  return *this;
}

LedgerEvent& LedgerEvent::StrList(std::string_view key,
                                  std::span<const std::string> v) {
  Key(key);
  buf_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) buf_ += ", ";
    buf_ += '"';
    AppendEscaped(buf_, v[i]);
    buf_ += '"';
  }
  buf_ += ']';
  return *this;
}

LedgerEvent& LedgerEvent::NumList(std::string_view key,
                                  std::span<const float> v) {
  Key(key);
  buf_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) buf_ += ", ";
    AppendNumber(buf_, v[i]);
  }
  buf_ += ']';
  return *this;
}

LedgerEvent& LedgerEvent::NumList(std::string_view key,
                                  std::span<const double> v) {
  Key(key);
  buf_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) buf_ += ", ";
    AppendNumber(buf_, v[i]);
  }
  buf_ += ']';
  return *this;
}

LedgerEvent& LedgerEvent::Raw(std::string_view key, std::string_view json) {
  Key(key);
  buf_ += json;
  return *this;
}

std::string LedgerEvent::Finish() const { return buf_ + "}"; }

void RunLedger::Append(const LedgerEvent& event) {
  std::string line = event.Finish();
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

std::size_t RunLedger::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

void RunLedger::WriteTo(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& line : lines_) out << line << '\n';
}

bool RunLedger::WriteFile(const std::string& path) const {
  try {
    WriteFileAtomic(path, [this](std::ostream& out) { WriteTo(out); });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

LedgerEvent MakeManifestEvent(std::string_view tool, const BuildInfo& build) {
  std::string build_json = "{\"version\": \"";
  AppendEscaped(build_json, build.version);
  build_json += "\", \"build_type\": \"";
  AppendEscaped(build_json, build.build_type);
  build_json += "\", \"simd\": \"";
  AppendEscaped(build_json, build.simd);
  build_json += "\", \"telemetry\": ";
  build_json += build.telemetry ? "true" : "false";
  // NN-core identity (nn::AnnotateBuildInfo): attributes every score in
  // the run to the kernel family and GEMM thread count that produced
  // it. Absent for tools with no neural-net dependency.
  if (!build.nn_backend.empty()) {
    build_json += ", \"nn_backend\": \"";
    AppendEscaped(build_json, build.nn_backend);
    build_json += "\", \"nn_threads\": ";
    build_json += std::to_string(build.nn_threads);
  }
  build_json += '}';

  LedgerEvent event("manifest");
  event.Str("schema", "acobe.ledger.v1").Str("tool", tool);
  event.Raw("build", build_json);
  return event;
}

}  // namespace acobe
