#pragma once

// Process-wide observability for the detection pipeline.
//
// A metrics registry (counters, gauges, histograms with nearest-rank
// p50/p95/p99, append-only series) plus buffered trace events, exported
// three ways:
//   - WriteReport()       human-readable end-of-run summary,
//   - WriteMetricsJson()  machine-readable metrics (BENCH_*.json input),
//   - WriteTraceJson()    chrome://tracing / Perfetto "traceEvents".
//
// Concurrency contract: every recording entry point is safe from any
// thread, including inside ParallelFor workers. Counters and gauges are
// single relaxed atomics; histogram samples and trace events go to
// lock-striped buffers (stripe = thread id modulo stripe count, so
// concurrent recorders almost never share a lock) and are merged only
// at flush/snapshot time. Recording never touches pipeline state, so
// results are bit-identical with telemetry on or off (pinned by
// tests/telemetry_test.cpp).
//
// Cost contract: everything is gated on two process-wide flags, both
// default-off. Disabled-at-runtime cost is one relaxed atomic load per
// instrumentation point. Compiling with -DACOBE_TELEMETRY=OFF (the
// ACOBE_TELEMETRY_DISABLED define) turns the flags into constexpr
// false, so every ACOBE_* macro and TraceSpan folds to nothing.
//
// Registered metric objects are never destroyed (the registry leaks by
// design); references returned by GetCounter()/GetGauge()/... stay
// valid for the process lifetime, which lets call sites cache them in
// function-local statics. ResetTelemetry() zeroes values in place.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace acobe::telemetry {

#ifdef ACOBE_TELEMETRY_DISABLED
constexpr bool MetricsEnabled() { return false; }
constexpr bool TracingEnabled() { return false; }
#else
/// True after EnableMetrics(true): counters/gauges/histograms/series
/// record, and spans feed the "span.<name>" duration histograms.
bool MetricsEnabled();
/// True after EnableTracing(true): spans additionally emit trace events
/// (one per span instance, attributed to the recording thread).
bool TracingEnabled();
#endif

/// Both are no-ops in ACOBE_TELEMETRY_DISABLED builds.
void EnableMetrics(bool on);
void EnableTracing(bool on);

/// Monotonically increasing event count (relaxed atomic).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar with an atomic running-max variant.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` is larger (CAS loop).
  void SetMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution; full samples are kept (runs are bounded) and
/// order statistics are computed at snapshot time via nearest-rank.
class Histogram {
 public:
  struct Stats {
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };

  void Record(double v);
  /// Merges every stripe's buffer (a copy; recording continues).
  Stats Snapshot() const;
  void Reset();

 private:
  static constexpr int kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<double> samples;
  };
  Stripe stripes_[kStripes];
};

/// Append-only value sequence (e.g. per-epoch training loss); appends
/// from different threads target different Series objects in practice,
/// but a mutex keeps any interleaving safe.
class Series {
 public:
  void Append(double v);
  std::vector<double> Values() const;
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> values_;
};

/// Lazily creates (and forever retains) the named metric.
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);
Series& GetSeries(std::string_view name);

/// Zeroes every registered metric in place and drops buffered trace
/// events and thread names. References previously returned by the
/// getters remain valid.
void ResetTelemetry();

/// Point-in-time copy of every registered counter and gauge, sorted by
/// name. This is the programmatic export the health plane's heartbeat
/// sampler diffs between ticks; histograms are deliberately excluded
/// (merging every sample buffer per tick would not be cheap — the span
/// self-profile in common/health.h covers them incrementally).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};
MetricsSnapshot SnapshotCountersAndGauges();

/// Human-readable end-of-run report (sections: counters with
/// per-second rates over the run wall time, gauges, histograms incl.
/// span timings, series).
void WriteReport(std::ostream& out);

/// {"schema":"acobe.metrics.v1","counters":{...},"gauges":{...},
///  "histograms":{name:{count,sum,min,max,mean,p50,p95,p99}},
///  "series":{name:[...]}}
void WriteMetricsJson(std::ostream& out);

/// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}
/// with complete ("ph":"X") events plus thread-name metadata records.
void WriteTraceJson(std::ostream& out);

/// Prometheus text exposition (version 0.0.4) of the registry: counters
/// and gauges as single samples, histograms as summaries (quantile
/// labels + _sum/_count). Metric names are prefixed "acobe_" and
/// sanitized to [a-zA-Z0-9_]; the original dotted name is kept in a
/// HELP line. This is the scrape surface the future resident daemon
/// serves; today the tools land it as a file for file-based scraping.
void WriteMetricsProm(std::ostream& out);

/// File variants; return false (and leave no partial guarantee) when
/// the file cannot be opened.
bool WriteMetricsJsonFile(const std::string& path);
bool WriteTraceJsonFile(const std::string& path);
bool WriteMetricsPromFile(const std::string& path);

/// The shared end-of-run flush every telemetry producer (tools, bench
/// binaries) performs: human report to `report`, then the metrics/trace
/// JSON files for whichever of the two paths is non-empty. A failed
/// file write logs "<tool>: cannot write <path>" on stderr and makes
/// the result false; the report and the other file are still attempted.
bool FlushTelemetry(const std::string& tool, const std::string& metrics_out,
                    const std::string& trace_out, std::ostream& report);

/// JSON string-escape / finite-number formatting used by every JSON
/// artifact this repo writes (metrics, traces, ledger, explain
/// reports). Escapes the two JSON metacharacters plus control bytes;
/// NaN/Inf are clamped to 0 so output always parses.
void JsonEscape(std::ostream& out, std::string_view s);
void JsonNumber(std::ostream& out, double v);

// --- Plumbing shared with trace.h (stable public API, rarely called
// --- directly by instrumentation sites).

/// Nanoseconds since the process's telemetry clock anchor (steady).
std::uint64_t NowNs();
/// Small dense id for the calling thread (1 = first thread observed).
int CurrentThreadTid();
/// Labels the calling thread in trace output ("pool-worker-3", ...).
void SetCurrentThreadName(const std::string& name);
/// Buffers one complete trace event for the calling thread.
void RecordTraceEvent(std::string name, std::uint64_t start_ns,
                      std::uint64_t duration_ns);

}  // namespace acobe::telemetry

// Statement macros for instrumentation sites with literal metric names.
// They cache the registry lookup in a function-local static, so the
// steady-state enabled cost is one relaxed load + one relaxed RMW (or a
// striped-lock append for histograms). All fold to ((void)0) in
// ACOBE_TELEMETRY_DISABLED builds. Dynamic names (per-aspect series)
// call GetSeries()/GetHistogram() directly under MetricsEnabled().
#ifdef ACOBE_TELEMETRY_DISABLED
#define ACOBE_COUNT(name, n) ((void)0)
#define ACOBE_GAUGE_SET(name, v) ((void)0)
#define ACOBE_GAUGE_MAX(name, v) ((void)0)
#define ACOBE_HISTOGRAM(name, v) ((void)0)
#else
#define ACOBE_COUNT(name, n)                                      \
  do {                                                            \
    if (acobe::telemetry::MetricsEnabled()) {                     \
      static acobe::telemetry::Counter& acobe_tm_metric =         \
          acobe::telemetry::GetCounter(name);                     \
      acobe_tm_metric.Add(static_cast<std::uint64_t>(n));         \
    }                                                             \
  } while (0)
#define ACOBE_GAUGE_SET(name, v)                                  \
  do {                                                            \
    if (acobe::telemetry::MetricsEnabled()) {                     \
      static acobe::telemetry::Gauge& acobe_tm_metric =           \
          acobe::telemetry::GetGauge(name);                       \
      acobe_tm_metric.Set(static_cast<double>(v));                \
    }                                                             \
  } while (0)
#define ACOBE_GAUGE_MAX(name, v)                                  \
  do {                                                            \
    if (acobe::telemetry::MetricsEnabled()) {                     \
      static acobe::telemetry::Gauge& acobe_tm_metric =           \
          acobe::telemetry::GetGauge(name);                       \
      acobe_tm_metric.SetMax(static_cast<double>(v));             \
    }                                                             \
  } while (0)
#define ACOBE_HISTOGRAM(name, v)                                  \
  do {                                                            \
    if (acobe::telemetry::MetricsEnabled()) {                     \
      static acobe::telemetry::Histogram& acobe_tm_metric =       \
          acobe::telemetry::GetHistogram(name);                   \
      acobe_tm_metric.Record(static_cast<double>(v));             \
    }                                                             \
  } while (0)
#endif
