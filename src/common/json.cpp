#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace acobe::json {
namespace {

// Nesting cap: the artifacts this parser targets are ~4 levels deep;
// a hostile or corrupted file must not be able to overflow the stack.
constexpr int kMaxDepth = 64;

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) {
      throw ParseError("trailing characters after JSON value", pos_);
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      Fail("invalid literal");
    }
    pos_ += literal.size();
  }

  Value ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWhitespace();
    Value v;
    switch (Peek()) {
      case 'n':
        ExpectLiteral("null");
        v.type_ = Value::Type::kNull;
        return v;
      case 't':
        ExpectLiteral("true");
        v.type_ = Value::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        ExpectLiteral("false");
        v.type_ = Value::Type::kBool;
        v.bool_ = false;
        return v;
      case '"':
        v.type_ = Value::Type::kString;
        v.string_ = ParseString();
        return v;
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  Value ParseArray(int depth) {
    Expect('[');
    Value v;
    v.type_ = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      v.array_.push_back(ParseValue(depth + 1));
      SkipWhitespace();
      if (Consume(']')) return v;
      Expect(',');
    }
  }

  Value ParseObject(int depth) {
    Expect('{');
    Value v;
    v.type_ = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.object_[std::move(key)] = ParseValue(depth + 1);
      SkipWhitespace();
      if (Consume('}')) return v;
      Expect(',');
    }
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    // strtod over from_chars: libstdc++ floating-point from_chars
    // availability varies (see cli_util.h's same choice).
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      Fail("malformed number");
    }
    Value v;
    v.type_ = Value::Type::kNumber;
    v.number_ = parsed;
    return v;
  }

  void AppendUtf8(std::string& out, unsigned int cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned int ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    unsigned int cp = 0;
    const auto [end, ec] =
        std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, cp, 16);
    if (ec != std::errc() || end != text_.data() + pos_ + 4) {
      Fail("bad \\u escape");
    }
    pos_ += 4;
    return cp;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned int cp = ParseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: pair it with the following \uXXXX.
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned int lo = ParseHex4();
              if (lo < 0xDC00 || lo > 0xDFFF) Fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              Fail("unpaired surrogate");
            }
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          --pos_;
          Fail("unknown escape");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

bool Value::AsBool() const {
  if (type_ != Type::kBool) throw std::logic_error("json: not a bool");
  return bool_;
}

double Value::AsNumber() const {
  if (type_ != Type::kNumber) throw std::logic_error("json: not a number");
  return number_;
}

const std::string& Value::AsString() const {
  if (type_ != Type::kString) throw std::logic_error("json: not a string");
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  if (type_ != Type::kArray) throw std::logic_error("json: not an array");
  return array_;
}

const std::map<std::string, Value, std::less<>>& Value::AsObject() const {
  if (type_ != Type::kObject) throw std::logic_error("json: not an object");
  return object_;
}

const Value* Value::Get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Value::GetNumber(std::string_view key, double fallback) const {
  const Value* v = Get(key);
  return v && v->is_number() ? v->number_ : fallback;
}

std::string Value::GetString(std::string_view key,
                             const std::string& fallback) const {
  const Value* v = Get(key);
  return v && v->is_string() ? v->string_ : fallback;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value* v = Get(key);
  return v && v->is_bool() ? v->bool_ : fallback;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Value& Value::operator[](std::size_t i) const {
  if (type_ != Type::kArray) throw std::logic_error("json: not an array");
  return array_.at(i);
}

std::vector<Value> ParseLines(std::string_view text) {
  std::vector<Value> values;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    ++line_no;
    const bool blank =
        line.find_first_not_of(" \t\r") == std::string_view::npos;
    if (!blank) {
      try {
        values.push_back(Value::Parse(line));
      } catch (const ParseError& e) {
        throw ParseError("line " + std::to_string(line_no) + ": " + e.what(),
                         e.offset());
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return values;
}

}  // namespace acobe::json
