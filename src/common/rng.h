#pragma once

// Deterministic random number generation.
//
// Every stochastic component in the repo (data synthesis, weight init,
// batch shuffling) draws from an explicitly seeded `Rng`, so that all
// experiments are bit-reproducible. The engine is xoshiro256** seeded
// via splitmix64; distributions are implemented here rather than via
// <random> because libstdc++'s distributions are not guaranteed to be
// stable across versions.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace acobe {

/// Stateless mixer used for seeding and for key-based sub-stream derivation.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** engine with portable distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x == 0 ? 0x9e3779b97f4a7c15ULL : x;
    }
  }

  /// Derives an independent sub-stream keyed by (this stream's seed, key).
  /// Used to give each simulated user / day its own reproducible stream.
  Rng Fork(std::uint64_t key) const {
    return Rng(SplitMix64(state_[0] ^ SplitMix64(key)));
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0,1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::NextBounded: bound==0");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = NextU64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    if (hi < lo) throw std::invalid_argument("Rng::NextInt: hi < lo");
    return lo + static_cast<int>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Poisson draw; inversion for small means, PTRS-like normal
  /// approximation w/ rounding for large means (adequate for simulation).
  int NextPoisson(double mean);

  /// Exponential with the given rate (>0).
  double NextExponential(double rate);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly random element index of a non-empty container.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::Pick: empty vector");
    return v[NextBounded(v.size())];
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace acobe
