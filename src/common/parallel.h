#pragma once

// Minimal parallel runtime for the pipeline's embarrassingly parallel
// hot paths (per-aspect training, per-user scoring, per-entity
// deviation computation).
//
// Thread-count resolution, everywhere a `threads` knob appears:
//   > 0  — use exactly that many workers;
//   == 0 — use the ACOBE_THREADS environment variable if set and
//          positive, otherwise std::thread::hardware_concurrency().
// A resolved count of 1 runs inline on the calling thread (no pool),
// which keeps single-threaded runs bit-identical to the pre-parallel
// code and makes `ACOBE_THREADS=1` a faithful serial reference.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace acobe {

/// Workers from ACOBE_THREADS (if set and positive) else hardware
/// concurrency; always >= 1.
int DefaultThreadCount();

/// Applies the resolution rule above to a config knob. Always >= 1.
int ResolveThreadCount(int configured);

/// Fixed-size pool of worker threads consuming a shared task queue.
/// Construction spawns the workers; destruction drains the queue and
/// joins them. Submit is safe from any thread (including from inside a
/// task, since workers never block on other tasks).
class ThreadPool {
 public:
  /// `threads` is resolved via ResolveThreadCount; the pool always has
  /// at least one worker.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; the future resolves when it finishes (or rethrows
  /// what it threw).
  std::future<void> Submit(std::function<void()> fn);

  /// Pool-backed counterpart of acobe::ParallelFor (same iteration
  /// contract): runs fn(i) for i in [begin, end) on the pool's workers
  /// and blocks until done, rethrowing the first iteration exception.
  /// Must not be called from inside a pool task (the caller waits on
  /// futures served by the same workers).
  void ParallelFor(int begin, int end, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [begin, end) across up to `threads`
/// workers (resolved via ResolveThreadCount). Iterations are claimed
/// dynamically from a shared counter, so callers must make iterations
/// independent: fn must not touch shared mutable state except through
/// disjoint writes (e.g. element i of an output array). Blocks until
/// every iteration finished; the first exception thrown by any
/// iteration is rethrown on the calling thread after the join. With a
/// resolved count of 1 (or end - begin <= 1) runs inline, in order.
/// Spawns fresh worker threads per call; phases that run many times
/// should prefer PooledParallelFor for warm workers.
void ParallelFor(int begin, int end, int threads,
                 const std::function<void(int)>& fn);

/// True while the calling thread is executing inside a ThreadPool
/// worker or a ParallelFor worker (including the calling thread's own
/// participation in ParallelFor). Nested parallel sections use this to
/// degrade to inline execution instead of deadlocking on their own
/// pool or oversubscribing the machine.
bool OnWorkerThread();

/// Process-wide cache of persistent pools, keyed by resolved worker
/// count: the first request for a given count spawns the pool, later
/// requests reuse its warm workers. Pools live for the process (their
/// destructors join at exit). `threads` is resolved via
/// ResolveThreadCount and must resolve to >= 2 (a count of 1 means
/// "run inline" and never needs a pool).
ThreadPool& SharedPool(int threads);

/// Pool-backed ParallelFor with the same iteration contract as
/// ParallelFor, but running on SharedPool(threads) so repeated phases
/// reuse warm workers instead of respawning threads every call. Runs
/// inline (serial, in order) when the resolved count is 1, the range
/// has at most one element, or the caller is already on a worker
/// thread (nested parallelism degrades to serial rather than blocking
/// a worker on its own pool).
void PooledParallelFor(int begin, int end, int threads,
                       const std::function<void(int)>& fn);

}  // namespace acobe
