#pragma once

// Time-frame partitioning of a day.
//
// ACOBE measures features per (feature, time-frame, day). The paper's
// default splits each day into two frames — working hours 06:00-18:00
// and off hours — while the Liu et al. baseline uses 24 hourly frames.
// `TimeFramePartition` abstracts both.

#include <cstdint>
#include <string>
#include <vector>

#include "common/date.h"

namespace acobe {

/// Seconds since the Unix epoch (UTC; the simulation has a single zone).
using Timestamp = std::int64_t;

constexpr std::int64_t kSecondsPerDay = 86400;

/// Builds a timestamp from a date and a second-of-day offset.
Timestamp MakeTimestamp(const Date& date, int hour, int minute = 0,
                        int second = 0);

/// The date a timestamp falls on.
Date DateOf(Timestamp ts);

/// Hour-of-day in [0,24).
int HourOf(Timestamp ts);

/// Partition of the 24-hour day into contiguous hour-aligned frames.
///
/// A partition is defined by its frame boundaries in hours. The default
/// ACOBE partition is {6, 18}: frame 0 = [06:00,18:00) "work", frame 1 =
/// [18:00,06:00) "off" (wrapping across midnight). An hourly partition
/// has 24 single-hour frames.
class TimeFramePartition {
 public:
  /// ACOBE default: working hours [6,18) and off hours.
  static TimeFramePartition WorkOff();

  /// 24 hourly frames (Liu et al. baseline).
  static TimeFramePartition Hourly();

  /// Custom partition from ascending cut hours in [0,24). Frame i covers
  /// [cuts[i], cuts[i+1]) with the last frame wrapping to cuts[0].
  /// Requires at least one cut.
  explicit TimeFramePartition(std::vector<int> cut_hours);

  int frame_count() const { return static_cast<int>(cuts_.size()); }

  /// Index of the frame containing hour-of-day `hour` in [0,24).
  int FrameOfHour(int hour) const;

  /// Index of the frame containing `ts`.
  int FrameOf(Timestamp ts) const { return FrameOfHour(HourOf(ts)); }

  /// Human-readable label, e.g. "06-18" or "18-06".
  std::string FrameLabel(int frame) const;

  friend bool operator==(const TimeFramePartition&,
                         const TimeFramePartition&) = default;

 private:
  std::vector<int> cuts_;
};

}  // namespace acobe
