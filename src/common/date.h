#pragma once

// Civil-date arithmetic on a proleptic Gregorian calendar.
//
// ACOBE's behavioral representation is indexed by *days*; everything in
// the pipeline refers to a day through `Date` (year/month/day) or its
// serial day number (days since 1970-01-01). Conversions use Howard
// Hinnant's public-domain algorithms, which are exact over the full
// int range we care about.

#include <compare>
#include <cstdint>
#include <string>

namespace acobe {

enum class Weekday : int {
  kSunday = 0,
  kMonday = 1,
  kTuesday = 2,
  kWednesday = 3,
  kThursday = 4,
  kFriday = 5,
  kSaturday = 6,
};

/// A calendar date. Value type; totally ordered; cheap to copy.
class Date {
 public:
  /// Constructs the epoch date 1970-01-01.
  constexpr Date() = default;

  /// Constructs from civil year/month/day. Does not validate; use
  /// IsValid() when input is untrusted.
  constexpr Date(int year, int month, int day)
      : year_(year), month_(month), day_(day) {}

  /// Parses "YYYY-MM-DD". Throws std::invalid_argument on malformed input.
  static Date FromString(const std::string& text);

  /// Date from a serial day number (days since 1970-01-01; may be negative).
  static Date FromDayNumber(std::int64_t days);

  constexpr int year() const { return year_; }
  constexpr int month() const { return month_; }
  constexpr int day() const { return day_; }

  /// Days since 1970-01-01.
  std::int64_t DayNumber() const;

  Weekday weekday() const;
  bool IsWeekend() const;
  bool IsValid() const;

  /// This date shifted by `days` (may be negative).
  Date AddDays(std::int64_t days) const;

  /// "YYYY-MM-DD".
  std::string ToString() const;

  friend constexpr auto operator<=>(const Date&, const Date&) = default;

 private:
  std::int16_t year_ = 1970;
  std::int8_t month_ = 1;
  std::int8_t day_ = 1;
};

/// Whole days between two dates: `b - a`.
std::int64_t DaysBetween(const Date& a, const Date& b);

}  // namespace acobe
