#pragma once

// Minimal CSV reading/writing used for log round-trips and bench output.
// Handles quoting of fields containing commas/quotes/newlines; does not
// attempt full RFC 4180 edge cases beyond that.

#include <iosfwd>
#include <string>
#include <vector>

namespace acobe {

/// Writes rows to an output stream, quoting when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Reads rows from an input stream. Returns false at EOF.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  bool ReadRow(std::vector<std::string>& fields);

 private:
  std::istream& in_;
};

/// Splits a single CSV line (no embedded newlines) into fields.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Escapes a single field for CSV output.
std::string CsvEscape(const std::string& field);

}  // namespace acobe
