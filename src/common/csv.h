#pragma once

// Minimal CSV reading/writing used for log round-trips and bench output.
// Handles quoting of fields containing commas/quotes/newlines (including
// newlines embedded in quoted fields, which span physical lines) and
// CRLF line endings; reports structural damage (unterminated quotes,
// runaway rows) instead of guessing, so ingestion policies can decide.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace acobe {

/// Writes rows to an output stream, quoting when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Structural verdict for one logical row.
enum class CsvRowStatus {
  kOk,
  kUnterminatedQuote,  // quote still open at end of input (truncated row)
  kOversizedRow,       // quoted row exceeded kMaxCsvRowBytes; parse stopped
};

/// Cap on one logical row's byte size. An unterminated quote would
/// otherwise swallow the rest of the file as "one row"; past this cap
/// the reader stops accumulating and reports kOversizedRow.
constexpr std::size_t kMaxCsvRowBytes = 1u << 20;

/// Reads logical rows from an input stream. Returns false at EOF. A
/// quoted field may span physical lines; the reader keeps consuming
/// lines until the quote closes (or the row-size cap trips). After each
/// ReadRow the accessors describe the row just read: its structural
/// status, the raw text (for quarantine sinks), and the 1-based
/// physical line it started on (for file:line diagnostics).
class CsvReader {
 public:
  /// `multiline` governs what an open quote at end-of-line means. True
  /// (default): the field legitimately contains the newline — keep
  /// consuming physical lines until the quote closes. False: records
  /// are line-oriented (the CERT log layout) — the open quote is damage
  /// confined to this one line, which is reported kUnterminatedQuote
  /// while the next line parses normally. Line mode is what lets
  /// permissive ingestion resync after a corrupted byte happens to be a
  /// quote; in multiline mode that row would swallow everything up to
  /// the size cap.
  explicit CsvReader(std::istream& in, bool multiline = true)
      : in_(in), multiline_(multiline) {}

  bool ReadRow(std::vector<std::string>& fields);

  CsvRowStatus status() const { return status_; }
  const std::string& raw_row() const { return raw_; }
  std::size_t row_line() const { return row_line_; }

 private:
  std::istream& in_;
  bool multiline_ = true;
  CsvRowStatus status_ = CsvRowStatus::kOk;
  std::string raw_;
  std::size_t next_line_ = 1;
  std::size_t row_line_ = 0;
};

/// Splits a single CSV line into fields, reporting structural damage.
/// A single trailing '\r' (CRLF ending) is ignored; other carriage
/// returns are field content. `fields` is always populated best-effort
/// even on a non-kOk status.
CsvRowStatus SplitCsvLineChecked(const std::string& line,
                                 std::vector<std::string>& fields);

/// Splits a single CSV line (no embedded newlines) into fields,
/// ignoring structural damage (legacy convenience wrapper).
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Escapes a single field for CSV output.
std::string CsvEscape(const std::string& field);

}  // namespace acobe
