#include "common/trace.h"

namespace acobe::telemetry {

void TraceSpan::End() {
  if (!active_) return;
  const std::uint64_t duration_ns = NowNs() - start_ns_;
  health::SpanStackPop(name_, parent_, duration_ns);
  if (MetricsEnabled()) {
    GetHistogram(std::string("span.") + name_)
        .Record(static_cast<double>(duration_ns) / 1e6);
  }
  if (TracingEnabled()) {
    std::string event_name = name_;
    if (!detail_.empty()) {
      event_name += ':';
      event_name += detail_;
    }
    RecordTraceEvent(std::move(event_name), start_ns_, duration_ns);
  }
}

}  // namespace acobe::telemetry
