#pragma once

// Build identity, reported the same way everywhere it matters: the
// tools' --version output, the run-ledger manifest (common/ledger.h),
// and the explain report header. Keeping one definition guarantees an
// analyst can line up a saved ledger with the binary that wrote it.

#include <string>

namespace acobe {

/// Repository version; bump on externally visible format changes
/// (ledger/explain schemas carry their own version strings on top).
inline constexpr const char kAcobeVersion[] = "0.8.0";

struct BuildInfo {
  std::string version;     // kAcobeVersion
  std::string build_type;  // CMAKE_BUILD_TYPE baked in at compile time
  std::string simd;        // "avx2" or "scalar" (runtime dispatch)
  bool telemetry = false;  // instrumentation compiled in
  // NN-core identity, stamped by nn::AnnotateBuildInfo. Left at the
  // defaults below by tools with no neural-net dependency (acobe_gen),
  // whose manifests simply omit the fields.
  std::string nn_backend;  // active kernel family ("default", "fma", ...)
  int nn_threads = 0;      // resolved GEMM thread count (0 = n/a)
};

/// The active GEMM dispatch decision. Mirrors the runtime check in
/// nn/gemm.cpp (__builtin_cpu_supports) without linking acobe_nn, so
/// acobe_gen — which has no neural-net dependency — reports it too.
inline const char* ActiveSimdName() {
  return __builtin_cpu_supports("avx2") ? "avx2" : "scalar";
}

inline BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.version = kAcobeVersion;
#ifdef ACOBE_BUILD_TYPE
  info.build_type = ACOBE_BUILD_TYPE;
#else
  info.build_type = "unknown";
#endif
  info.simd = ActiveSimdName();
#ifdef ACOBE_TELEMETRY_DISABLED
  info.telemetry = false;
#else
  info.telemetry = true;
#endif
  return info;
}

}  // namespace acobe
