#include "common/date.h"

#include <cstdio>
#include <stdexcept>

namespace acobe {
namespace {

// Hinnant's days_from_civil.
std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0,399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0,146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Hinnant's civil_from_days.
void CivilFromDays(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;             // [0,399]
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0,11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m < 1 || m > 12) return 0;
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Date Date::FromString(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    throw std::invalid_argument("Date::FromString: expected YYYY-MM-DD, got '" +
                                text + "'");
  }
  Date date(y, m, d);
  if (!date.IsValid()) {
    throw std::invalid_argument("Date::FromString: invalid date '" + text + "'");
  }
  return date;
}

Date Date::FromDayNumber(std::int64_t days) {
  int y, m, d;
  CivilFromDays(days, y, m, d);
  return Date(y, m, d);
}

std::int64_t Date::DayNumber() const { return DaysFromCivil(year_, month_, day_); }

Weekday Date::weekday() const {
  const std::int64_t z = DayNumber();
  // 1970-01-01 was a Thursday (=4).
  const std::int64_t w = (z >= -4 ? (z + 4) % 7 : (z + 5) % 7 + 6);
  return static_cast<Weekday>(w);
}

bool Date::IsWeekend() const {
  const Weekday w = weekday();
  return w == Weekday::kSaturday || w == Weekday::kSunday;
}

bool Date::IsValid() const {
  return month_ >= 1 && month_ <= 12 && day_ >= 1 &&
         day_ <= DaysInMonth(year_, month_);
}

Date Date::AddDays(std::int64_t days) const {
  return FromDayNumber(DayNumber() + days);
}

std::string Date::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", static_cast<int>(year_),
                static_cast<int>(month_), static_cast<int>(day_));
  return buf;
}

std::int64_t DaysBetween(const Date& a, const Date& b) {
  return b.DayNumber() - a.DayNumber();
}

}  // namespace acobe
