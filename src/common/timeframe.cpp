#include "common/timeframe.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace acobe {

Timestamp MakeTimestamp(const Date& date, int hour, int minute, int second) {
  return date.DayNumber() * kSecondsPerDay + hour * 3600 + minute * 60 + second;
}

Date DateOf(Timestamp ts) {
  std::int64_t days = ts / kSecondsPerDay;
  if (ts < 0 && ts % kSecondsPerDay != 0) --days;
  return Date::FromDayNumber(days);
}

int HourOf(Timestamp ts) {
  std::int64_t sod = ts % kSecondsPerDay;
  if (sod < 0) sod += kSecondsPerDay;
  return static_cast<int>(sod / 3600);
}

TimeFramePartition TimeFramePartition::WorkOff() {
  return TimeFramePartition({6, 18});
}

TimeFramePartition TimeFramePartition::Hourly() {
  std::vector<int> cuts(24);
  for (int h = 0; h < 24; ++h) cuts[h] = h;
  return TimeFramePartition(std::move(cuts));
}

TimeFramePartition::TimeFramePartition(std::vector<int> cut_hours)
    : cuts_(std::move(cut_hours)) {
  if (cuts_.empty()) {
    throw std::invalid_argument("TimeFramePartition: need at least one cut");
  }
  if (!std::is_sorted(cuts_.begin(), cuts_.end()) ||
      std::adjacent_find(cuts_.begin(), cuts_.end()) != cuts_.end() ||
      cuts_.front() < 0 || cuts_.back() >= 24) {
    throw std::invalid_argument(
        "TimeFramePartition: cuts must be strictly ascending hours in [0,24)");
  }
}

int TimeFramePartition::FrameOfHour(int hour) const {
  if (hour < 0 || hour >= 24) {
    throw std::out_of_range("TimeFramePartition::FrameOfHour: hour out of range");
  }
  // Frame i covers [cuts[i], cuts[i+1]); hours before cuts[0] belong to the
  // wrapping last frame.
  if (hour < cuts_.front()) return frame_count() - 1;
  int frame = 0;
  for (int i = frame_count() - 1; i >= 0; --i) {
    if (hour >= cuts_[i]) {
      frame = i;
      break;
    }
  }
  return frame;
}

std::string TimeFramePartition::FrameLabel(int frame) const {
  if (frame < 0 || frame >= frame_count()) {
    throw std::out_of_range("TimeFramePartition::FrameLabel: bad frame");
  }
  const int begin = cuts_[frame];
  const int end = frame + 1 < frame_count() ? cuts_[frame + 1] : cuts_[0];
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d-%02d", begin, end);
  return buf;
}

}  // namespace acobe
