#pragma once

// Live runtime health plane over the telemetry registry.
//
// PR 2's registry answers "what happened" after a run exits; this layer
// answers "what is happening right now" while a multi-hour streamed
// detection run is still in flight, and "what was happening" when one
// dies. Four pieces:
//
//   Stage/progress API  SetStage()/StageAdvance() mark the pipeline's
//                       coarse phases (ingest, spool, replay, detect,
//                       write) with units-done/units-total, so every
//                       heartbeat carries progress and an ETA, and the
//                       per-stage wall times land in the run ledger.
//
//   Heartbeat sampler   StartHealth() spawns one background thread
//                       that every interval appends a self-describing
//                       "acobe.health.v1" JSON line to the health file:
//                       sequence number, uptime, stage + ETA, RSS
//                       (current/peak), CPU utilization, every counter
//                       with its delta and per-second rate since the
//                       previous beat, gauges, and the span
//                       self-profile. Lines are written atomically
//                       (one write + flush per beat), so a reader —
//                       tools/acobe_top, tools/check_health.py — only
//                       ever sees whole heartbeats plus at most one
//                       torn tail after a crash.
//
//   Span self-profile   TraceSpan (common/trace.h) pushes its name on
//                       a per-thread span stack and, on scope exit,
//                       records a (parent, name) -> {count, wall}
//                       edge. SpanProfile() merges those edges into a
//                       hierarchical wall/self-time breakdown without
//                       touching the span histograms' sample buffers.
//
//   Crash flight recorder  InstallCrashRecorder() hooks the fatal
//                       signals (SEGV/ABRT/BUS/FPE/ILL) and
//                       std::terminate. The handler is async-signal-
//                       safe: it formats with its own integer printer
//                       into a fixed buffer (no malloc, no stdio) and
//                       write()s a JSON dump — signal number, each
//                       live thread's active span stack, and the last
//                       pre-rendered heartbeat — then re-raises.
//
// Contract (same as the rest of the telemetry layer, pinned by
// tests/health_test.cpp and the health_identity ctest): everything here
// is purely observational. Detection output — stdout, explain JSON,
// ledger — is byte-identical with the health plane on or off, and the
// enabled overhead stays inside the existing <2% telemetry budget
// (bench/micro_pipeline BM_HealthOverhead).
//
// The stage/progress calls are not gated on MetricsEnabled(): they are
// a handful of relaxed atomics per pipeline phase (not per event), and
// the ledger's per-stage wall times must exist even when no heartbeat
// file was requested.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace acobe::health {

// --- Stage / progress ------------------------------------------------

/// Declares `stage` as the pipeline's current phase. `name` must have
/// static storage duration (the tracker keeps the pointer). `add_total`
/// grows the stage's unit target; re-entering a stage (the streaming
/// shard loop alternates replay/detect) resumes its accumulated wall
/// time and progress instead of resetting them.
void SetStage(const char* name, std::uint64_t add_total = 0);

/// Advances the current stage by `n` units. No-op before the first
/// SetStage, so library code (ensemble training) can advance blindly.
void StageAdvance(std::uint64_t n = 1);

/// Free-form context for the heartbeat only ("dept Sales", "shard 3").
/// Unlike stage names this may be dynamic; a small mutex guards it.
void SetStageDetail(const std::string& detail);

struct StageSnapshot {
  const char* name = "idle";
  std::string detail;
  std::uint64_t done = 0;
  std::uint64_t total = 0;  // 0 = indeterminate (no ETA)
  double elapsed_s = 0.0;   // wall accumulated across this stage's episodes
  double eta_s = -1.0;      // -1 = unknown
};
StageSnapshot CurrentStage();

struct StageTime {
  const char* name;
  double seconds;       // cumulative wall across episodes
  std::uint64_t done;
  std::uint64_t total;
};
/// Every stage seen so far, in first-use order, with cumulative wall
/// times (the current stage includes its open episode).
std::vector<StageTime> StageTimes();

/// Renders StageTimes() as a JSON array ([{"stage":...,"seconds":...,
/// "done":...,"total":...}]) — the run ledger's run_complete payload.
std::string StageTimesJson();

/// Forgets all stages and progress (tests).
void ResetStages();

// --- Span self-profile -----------------------------------------------

struct SpanEdge {
  std::string parent;   // "" for root spans
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;  // wall summed over instances of this edge
  double self_ms = 0.0;   // total minus time attributed to child spans
};
/// Merged (parent, name) profile, sorted by total_ms descending.
/// self_ms apportions a span name's child time across its parent edges
/// proportionally to each edge's share of the name's total wall.
std::vector<SpanEdge> SpanProfile();

/// Clears the accumulated span edges (tests).
void ResetSpanProfile();

// Hooks for TraceSpan (common/trace.h); not for direct use. Push
// returns the parent span's name (nullptr at stack root). Pop records
// the (parent, name) edge with the measured duration.
const char* SpanStackPush(const char* name);
void SpanStackPop(const char* name, const char* parent,
                  std::uint64_t duration_ns);

// --- Heartbeat sampler -----------------------------------------------

struct HealthOptions {
  std::string path;            // heartbeat JSONL file (truncated on start)
  int interval_ms = 1000;      // clamped to >= 10
  std::string tool;            // stamped into every heartbeat
  /// Also install the crash flight recorder, dumping to
  /// `path + ".crash.json"`.
  bool crash_recorder = true;
};

/// Starts the background sampler. False (with a line on stderr) when a
/// monitor is already running or the file cannot be opened. Registers
/// an atexit stop as a safety net; well-behaved tools still call
/// StopHealth() explicitly so the final heartbeat lands before their
/// own end-of-run output.
bool StartHealth(const HealthOptions& options);

/// Emits one final heartbeat ("final":true, full span profile), joins
/// the sampler thread and closes the file. Safe to call twice.
void StopHealth();

bool HealthRunning();

// --- Crash flight recorder -------------------------------------------

/// Installs fatal-signal + std::terminate handlers dumping to `path`.
/// Installing twice replaces the path. Normally reached through
/// StartHealth(); exposed separately for tests and for tools that want
/// the recorder without heartbeats.
void InstallCrashRecorder(const std::string& path);

}  // namespace acobe::health
