#pragma once

// Scoped trace spans over the telemetry registry (common/telemetry.h).
//
// A TraceSpan measures the lifetime of a scope. On destruction it
//   - records the duration (milliseconds) into the histogram
//     "span.<name>" when metrics are enabled, and
//   - buffers one chrome://tracing complete event attributed to the
//     current thread when tracing is enabled (name "<name>" or
//     "<name>:<detail>").
// When both are disabled the constructor is a pair of relaxed loads and
// the destructor a branch; in ACOBE_TELEMETRY_DISABLED builds the whole
// class folds away.
//
// Active spans additionally maintain the health plane's per-thread span
// stack (common/health.h): Begin pushes the name (learning the parent
// span), End pops and records the (parent, name) edge into the span
// self-profile. The stack is what the crash flight recorder dumps, so a
// fatal signal shows each thread's position in the pipeline.
//
// `name` must be a string with static storage duration (the span keeps
// only the pointer). `detail` carries run-dependent context (an aspect
// name, a file stem) into the trace only — histogram names stay at
// bounded cardinality.

#include <cstdint>
#include <string>

#include "common/health.h"
#include "common/telemetry.h"

namespace acobe::telemetry {

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) { Begin(); }
  TraceSpan(const char* name, std::string detail)
      : name_(name), detail_(std::move(detail)) {
    Begin();
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin() {
    active_ = MetricsEnabled() || TracingEnabled();
    if (active_) {
      parent_ = health::SpanStackPush(name_);
      start_ns_ = NowNs();
    }
  }
  void End();

  const char* name_;
  std::string detail_;
  const char* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace acobe::telemetry

// Statement macro: ACOBE_SPAN("ensemble.train"); measures to the end of
// the enclosing scope. ACOBE_SPAN2 adds a dynamic detail string (trace
// event name only). Both vanish in ACOBE_TELEMETRY_DISABLED builds.
#define ACOBE_SPAN_CONCAT2(a, b) a##b
#define ACOBE_SPAN_CONCAT(a, b) ACOBE_SPAN_CONCAT2(a, b)
#ifdef ACOBE_TELEMETRY_DISABLED
#define ACOBE_SPAN(name) ((void)0)
#define ACOBE_SPAN2(name, detail) ((void)0)
#else
#define ACOBE_SPAN(name)                                    \
  acobe::telemetry::TraceSpan ACOBE_SPAN_CONCAT(            \
      acobe_tm_span_, __LINE__)(name)
#define ACOBE_SPAN2(name, detail)                           \
  acobe::telemetry::TraceSpan ACOBE_SPAN_CONCAT(            \
      acobe_tm_span_, __LINE__)(name, detail)
#endif
