#pragma once

// Cooperative shutdown for long-running tools.
//
// A SIGINT/SIGTERM handler that only sets a flag: the tools poll
// ShutdownRequested() at their loop boundaries (per CSV file, per
// shard, per service cycle) and unwind normally — destructors run, so
// spool/StreamedCsv temporaries are removed, the ledger lands its
// run_complete/run_aborted event, and the health plane flushes a final
// heartbeat. Contrast with the crash flight recorder (common/health.h),
// which handles the *fatal* signals and cannot unwind.

namespace acobe {

/// Installs the SIGINT/SIGTERM handlers (idempotent). The handlers are
/// async-signal-safe: they store the signal number and return.
void InstallShutdownHandler();

/// True once a shutdown signal has been delivered (or injected).
bool ShutdownRequested();

/// The delivered signal number, 0 when none yet.
int ShutdownSignal();

/// Injects a shutdown request without a signal (tests, supervisors).
void RequestShutdown(int signal);

/// Clears the flag (tests).
void ResetShutdownForTest();

}  // namespace acobe
