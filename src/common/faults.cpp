#include "common/faults.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

namespace acobe {

const char* ToString(IngestPolicy policy) {
  switch (policy) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kPermissive:
      return "permissive";
    case IngestPolicy::kQuarantine:
      return "quarantine";
  }
  return "?";
}

IngestPolicy IngestPolicyFromString(const std::string& s) {
  if (s == "strict") return IngestPolicy::kStrict;
  if (s == "permissive") return IngestPolicy::kPermissive;
  if (s == "quarantine") return IngestPolicy::kQuarantine;
  throw std::invalid_argument("unknown ingest policy '" + s +
                              "' (strict|permissive|quarantine)");
}

void IngestStats::Merge(const IngestStats& other) {
  rows_read += other.rows_read;
  rows_rejected += other.rows_rejected;
  rows_quarantined += other.rows_quarantined;
  rows_deduped += other.rows_deduped;
  if (first_error.empty()) first_error = other.first_error;
}

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(const std::string& data, std::uint32_t seed) {
  return Crc32(data.data(), data.size(), seed);
}

namespace {

[[noreturn]] void FailAtomicWrite(const std::string& tmp,
                                  const std::string& what) {
  const int saved_errno = errno;
  std::remove(tmp.c_str());
  throw std::runtime_error("WriteFileAtomic: " + what +
                           (saved_errno ? std::string(": ") +
                                              std::strerror(saved_errno)
                                        : std::string()));
}

void FsyncPath(const std::string& path, int open_flags,
               const std::string& tmp_to_cleanup, const char* what) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) FailAtomicWrite(tmp_to_cleanup, std::string("open ") + what);
  if (::fsync(fd) != 0) {
    ::close(fd);
    FailAtomicWrite(tmp_to_cleanup, std::string("fsync ") + what);
  }
  ::close(fd);
}

std::atomic<std::uint64_t> g_dir_fsyncs{0};

}  // namespace

std::uint64_t DirFsyncCount() {
  return g_dir_fsyncs.load(std::memory_order_relaxed);
}

void WriteFileAtomic(const std::string& path,
                     const std::function<void(std::ostream&)>& writer) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      errno = 0;
      throw std::runtime_error("WriteFileAtomic: cannot open " + tmp);
    }
    try {
      writer(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out) FailAtomicWrite(tmp, "write payload");
  }
  FsyncPath(tmp, O_WRONLY, tmp, "temporary");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    FailAtomicWrite(tmp, "rename into place");
  }
  // Make the rename itself durable: sync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {  // best-effort: some filesystems refuse directory fsync
    if (::fsync(dfd) == 0) {
      g_dir_fsyncs.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(dfd);
  }
}

}  // namespace acobe
