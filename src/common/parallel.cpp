#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/telemetry.h"
#include "common/trace.h"

namespace acobe {

namespace {

thread_local bool t_on_worker_thread = false;

/// RAII worker marker: nested parallel sections check OnWorkerThread()
/// and run inline instead of re-entering the runtime.
struct WorkerScope {
  bool previous;
  WorkerScope() : previous(t_on_worker_thread) { t_on_worker_thread = true; }
  ~WorkerScope() { t_on_worker_thread = previous; }
};

}  // namespace

bool OnWorkerThread() { return t_on_worker_thread; }

int DefaultThreadCount() {
  if (const char* env = std::getenv("ACOBE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ResolveThreadCount(int configured) {
  return configured > 0 ? configured : DefaultThreadCount();
}

ThreadPool::ThreadPool(int threads) {
  const int n = ResolveThreadCount(threads);
  ACOBE_GAUGE_MAX("pool.threads", n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      if (telemetry::TracingEnabled()) {
        telemetry::SetCurrentThreadName("pool-worker-" + std::to_string(i));
      }
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ACOBE_COUNT("pool.tasks_submitted", 1);
    ACOBE_HISTOGRAM("pool.queue_depth", queue_.size());
    ACOBE_GAUGE_MAX("pool.queue_depth_peak", queue_.size());
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int)>& fn) {
  if (begin >= end) return;
  const int span = end - begin;
  const int n = std::min(size(), span);
  if (n <= 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<int>>(begin);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (int t = 0; t < n; ++t) {
    futures.push_back(Submit([next, failed, end, &fn] {
      for (;;) {
        const int i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= end || failed->load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;  // carried to the caller by the future
        }
      }
    }));
  }
  std::exception_ptr error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Span "pool.task" is how utilization shows up: the fraction of a
    // worker's trace row covered by pool.task events is its busy share.
    telemetry::TraceSpan span("pool.task");
    WorkerScope worker_scope;
    task();  // exceptions land in the packaged_task's future
    ACOBE_COUNT("pool.tasks_executed", 1);
  }
}

void ParallelFor(int begin, int end, int threads,
                 const std::function<void(int)>& fn) {
  if (begin >= end) return;
  const int span = end - begin;
  int n = ResolveThreadCount(threads);
  if (n > span) n = span;
  ACOBE_COUNT("parallel.for_calls", 1);
  ACOBE_HISTOGRAM("parallel.for_iterations", span);
  if (n <= 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<int> next(begin);
  std::atomic<bool> failed(false);
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    WorkerScope worker_scope;
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> extra;
  extra.reserve(n - 1);
  for (int t = 1; t < n; ++t) {
    extra.emplace_back([&worker] {
      if (telemetry::TracingEnabled()) {
        telemetry::SetCurrentThreadName("parallel-worker");
      }
      telemetry::TraceSpan span("parallel.worker");
      worker();
    });
  }
  worker();  // the calling thread participates
  for (std::thread& t : extra) t.join();
  if (error) std::rethrow_exception(error);
}

ThreadPool& SharedPool(int threads) {
  const int n = ResolveThreadCount(threads);
  static std::mutex mutex;
  static std::map<int, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<ThreadPool>& slot = pools[n];
  if (!slot) slot = std::make_unique<ThreadPool>(n);
  return *slot;
}

void PooledParallelFor(int begin, int end, int threads,
                       const std::function<void(int)>& fn) {
  if (begin >= end) return;
  const int span = end - begin;
  const int n = std::min(ResolveThreadCount(threads), span);
  ACOBE_COUNT("parallel.pooled_for_calls", 1);
  if (n <= 1 || OnWorkerThread()) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  SharedPool(n).ParallelFor(begin, end, fn);
}

}  // namespace acobe
