#pragma once

// Pipeline-wide fault-tolerance primitives.
//
// Real multi-source log feeds (the paper's 7-month ELK-collected
// enterprise dataset) routinely contain truncated lines, bad
// timestamps and duplicated deliveries, and long detection runs can be
// interrupted at any point. This header defines the shared vocabulary
// for surviving both:
//   - IngestPolicy/IngestOptions/IngestStats drive per-row error
//     recovery in the CSV readers (src/logs/log_io.h),
//   - IngestError carries file:line context for the offending row,
//   - Crc32 / WriteFileAtomic make artifact writes crash-safe and
//     corruption detectable (src/nn/serialize.h, src/core/ensemble_io.h),
//   - the kExit* codes standardize tool failure paths.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <stdexcept>
#include <string>

namespace acobe {

// Standard tool exit codes (acobe-detect / acobe-gen / acobe-serve).
constexpr int kExitFailure = 1;          // misc runtime failure
constexpr int kExitUsage = 2;            // bad flags / usage error
constexpr int kExitBadInput = 3;         // malformed input data
constexpr int kExitCorruptArtifact = 4;  // unusable model/checkpoint artifact
constexpr int kExitAborted = 5;          // SIGINT/SIGTERM before completion

/// How the CSV readers react to a malformed row.
enum class IngestPolicy {
  kStrict,      // throw IngestError on the first bad row (legacy behavior)
  kPermissive,  // skip bad rows, keep counts, abort only past the budget
  kQuarantine,  // permissive + copy every rejected raw row to a sink
};

const char* ToString(IngestPolicy policy);
/// Parses "strict" / "permissive" / "quarantine"; throws
/// std::invalid_argument otherwise.
IngestPolicy IngestPolicyFromString(const std::string& s);

struct IngestOptions {
  IngestPolicy policy = IngestPolicy::kStrict;
  /// Bounded error budget: even in permissive/quarantine mode the read
  /// aborts (IngestError) once more than `error_budget` of the data
  /// rows seen so far were rejected. Only enforced after
  /// `budget_min_rows` rows so a handful of bad rows in a tiny file
  /// does not trip it.
  double error_budget = 0.05;
  std::size_t budget_min_rows = 100;
  /// Rejected raw rows are copied here verbatim under kQuarantine
  /// (one line per logical row; embedded newlines are escaped by the
  /// CSV quoting they arrived with). May be null.
  std::ostream* quarantine = nullptr;
  /// Drop a data row identical (byte-for-byte) to its predecessor.
  /// At-least-once log shippers duplicate on redelivery, and the
  /// FaultInjector's duplicate fault models exactly that. Off by
  /// default: legitimate streams may contain identical adjacent events.
  bool drop_consecutive_duplicates = false;
  /// Plausibility window for event timestamps (seconds since epoch);
  /// rows outside are rejected as "bad timestamp". Unrestricted by
  /// default (unit tests use synthetic epochs); acobe-detect narrows it
  /// to 1980..2100 so one corrupted timestamp cannot explode the
  /// day-range (and with it the measurement-cube allocation).
  std::int64_t ts_min = std::numeric_limits<std::int64_t>::min();
  std::int64_t ts_max = std::numeric_limits<std::int64_t>::max();
};

struct IngestStats {
  std::size_t rows_read = 0;         // data rows seen (header excluded)
  std::size_t rows_rejected = 0;     // malformed rows skipped or fatal
  std::size_t rows_quarantined = 0;  // rejected rows copied to the sink
  std::size_t rows_deduped = 0;      // consecutive duplicates dropped
  /// First rejection, as "file:line: reason" (empty when clean).
  std::string first_error;

  void Merge(const IngestStats& other);
};

/// Malformed-input error carrying file:line context of the offending
/// row. Derives from std::invalid_argument so legacy strict-mode
/// callers (and tests) that expect std::invalid_argument keep working.
class IngestError : public std::invalid_argument {
 public:
  IngestError(const std::string& file, std::size_t line,
              const std::string& reason)
      : std::invalid_argument(file + ":" + std::to_string(line) + ": " +
                              reason),
        file_(file),
        line_(line) {}

  const std::string& file() const { return file_; }
  std::size_t line() const { return line_; }

 private:
  std::string file_;
  std::size_t line_;
};

/// CRC-32 (IEEE 802.3, reflected, init/final-xor 0xFFFFFFFF — the
/// zlib/PNG polynomial). `seed` is the running value for incremental
/// use: Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a,b)).
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);
std::uint32_t Crc32(const std::string& data, std::uint32_t seed = 0);

/// Crash-safe file replacement: `writer` streams the payload into a
/// temporary file next to `path`, which is flushed, fsync'd and
/// atomically renamed over `path`. A crash at any point leaves either
/// the old file or the new file, never a torn mix; the temporary is
/// unlinked on failure. Throws std::runtime_error when the payload
/// cannot be written durably.
void WriteFileAtomic(const std::string& path,
                     const std::function<void(std::ostream&)>& writer);

/// Process-wide count of successful parent-directory fsyncs performed
/// by WriteFileAtomic after its rename. The directory sync is what
/// makes the *rename* durable across power loss (the file fsync alone
/// only makes the payload durable); this counter exists so tests can
/// assert the path is actually exercised rather than silently skipped.
std::uint64_t DirFsyncCount();

}  // namespace acobe
