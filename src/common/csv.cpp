#include "common/csv.h"

#include <istream>
#include <ostream>

namespace acobe {

std::string CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvEscape(fields[i]);
  }
  out_ << '\n';
}

CsvRowStatus SplitCsvLineChecked(const std::string& line,
                                 std::vector<std::string>& fields) {
  fields.clear();
  // CRLF line ending: exactly one trailing '\r' is part of the line
  // terminator, not of the last field. Interior CRs are content (a
  // well-formed writer quotes them).
  std::size_t end = line.size();
  if (end > 0 && line[end - 1] == '\r') --end;

  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < end; ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < end && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return in_quotes ? CsvRowStatus::kUnterminatedQuote : CsvRowStatus::kOk;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  SplitCsvLineChecked(line, fields);
  return fields;
}

bool CsvReader::ReadRow(std::vector<std::string>& fields) {
  raw_.clear();
  if (!std::getline(in_, raw_)) return false;
  row_line_ = next_line_++;
  if (!raw_.empty() && raw_.back() == '\r') raw_.pop_back();
  status_ = SplitCsvLineChecked(raw_, fields);
  // A still-open quote means the field legitimately contains the
  // newline getline consumed: keep appending physical lines until the
  // quote closes, input ends (truncated row), or the size cap trips.
  // In line mode the row is simply reported damaged instead.
  while (multiline_ && status_ == CsvRowStatus::kUnterminatedQuote) {
    if (raw_.size() > kMaxCsvRowBytes) {
      status_ = CsvRowStatus::kOversizedRow;
      break;
    }
    std::string more;
    if (!std::getline(in_, more)) break;  // unterminated at EOF
    ++next_line_;
    if (!more.empty() && more.back() == '\r') more.pop_back();
    raw_ += '\n';
    raw_ += more;
    status_ = SplitCsvLineChecked(raw_, fields);
  }
  return true;
}

}  // namespace acobe
