#include "common/csv.h"

#include <istream>
#include <ostream>

namespace acobe {

std::string CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvEscape(fields[i]);
  }
  out_ << '\n';
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool CsvReader::ReadRow(std::vector<std::string>& fields) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  fields = SplitCsvLine(line);
  return true;
}

}  // namespace acobe
