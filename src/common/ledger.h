#pragma once

// Run ledger: an append-only JSONL event stream recording the
// provenance of one detection run — what configuration and data went
// in, how each aspect trained (attempts, resume, per-epoch loss), what
// came out (score digests, quality metrics, drift) — so "what changed
// between yesterday's run and today's" is answerable from two small
// files without rerunning anything.
//
// Shape: one JSON object per line ("schema": "acobe.ledger.v1" on the
// manifest event). Events are buffered in memory in append order and
// landed with WriteFileAtomic, so a crash leaves the previous complete
// ledger, never a torn one. Appends are thread-safe (aspect summaries
// arrive from pool workers); event order is whatever append order the
// callers produce.
//
// Event vocabulary (validated by tools/check_ledger.py):
//   manifest      first event: tool, build info, config, dataset digest
//   aspect_trained  one per (department, aspect): attempts, losses
//   detection     one per department: members, digest, top users
//   quality       AUC / AP / precision@k vs ground truth (when present)
//   drift         per-aspect score-distribution shift vs reference
//   run_complete  last event: ledger is whole iff present

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/version.h"

namespace acobe {

/// Builder for one ledger line. Keys are appended in call order; values
/// are JSON-escaped / finite-clamped by the same helpers the telemetry
/// exporter uses.
class LedgerEvent {
 public:
  explicit LedgerEvent(std::string_view type);

  LedgerEvent& Str(std::string_view key, std::string_view value);
  LedgerEvent& Num(std::string_view key, double value);
  LedgerEvent& Int(std::string_view key, std::int64_t value);
  LedgerEvent& Bool(std::string_view key, bool value);
  LedgerEvent& StrList(std::string_view key, std::span<const std::string> v);
  LedgerEvent& NumList(std::string_view key, std::span<const float> v);
  LedgerEvent& NumList(std::string_view key, std::span<const double> v);
  /// Pre-rendered JSON (an object or array built elsewhere). The caller
  /// guarantees `json` is valid; nothing re-validates it here.
  LedgerEvent& Raw(std::string_view key, std::string_view json);

  /// The finished line, without a trailing newline.
  std::string Finish() const;

 private:
  LedgerEvent& Key(std::string_view key);
  std::string buf_;
};

/// The buffered event stream for one tool invocation.
class RunLedger {
 public:
  void Append(const LedgerEvent& event);
  std::size_t event_count() const;

  /// One event per line, append order.
  void WriteTo(std::ostream& out) const;

  /// Atomic whole-file replacement (WriteFileAtomic); false when the
  /// ledger cannot be written durably.
  bool WriteFile(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// The standard manifest skeleton: schema tag, tool name, and the
/// build-identity block every --version flag prints (version,
/// build_type, simd, telemetry). Callers append run-specific fields
/// (config, seed, dataset digest) before Finish().
LedgerEvent MakeManifestEvent(std::string_view tool, const BuildInfo& build);

}  // namespace acobe
