#pragma once

// The resident service's durability plane.
//
// acobe-serve emits two append-only output streams (alerts.jsonl and
// ledger.jsonl) and keeps one CRC'd journal recording how much of them
// is committed, which batches were consumed, and the serialized
// per-department MonitorState. The commit protocol per cycle:
//
//   1. compute the cycle's emissions in memory,
//   2. append them to the output streams, flush + fsync,
//   3. SaveJournal() — atomically (WriteFileAtomic) replace the
//      journal with the new cycle count, batch list, output byte
//      offsets and monitor blobs.
//
// A crash between 2 and 3 leaves appended-but-unjournaled bytes; on
// restart the outputs are truncated back to the journaled offsets and
// the cycle re-runs, producing the identical bytes (detection is
// deterministic). A crash during 3 leaves the previous journal intact
// (the write is atomic). Either way the concatenated output streams
// are byte-identical to an uninterrupted run — the property the
// service-soak harness enforces with ≥10 seeded kill points.
//
// The journal framing matches the PR 4 checkpoint artifacts: magic,
// version, length-prefixed payload, trailing CRC-32.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace acobe {

/// Unusable journal / output-stream state (bad magic, CRC mismatch,
/// outputs shorter than the journal claims durable).
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

struct BatchRecord {
  std::string name;          // batch directory name under the watch dir
  std::uint32_t digest = 0;  // CRC-32 over its CSV bytes (fixed order)
  std::int64_t day_lo = 0;   // event-day range, absolute day numbers
  std::int64_t day_hi = -1;  // day_hi < day_lo: batch carried no events
};

struct ShardRecord {
  bool quarantined = false;
  std::uint32_t failures = 0;  // cycle failures absorbed so far
};

struct JournalState {
  /// CRC of the config knobs that shape detection output; a restart
  /// with a different fingerprint is refused (it could not resume
  /// bit-identically).
  std::uint64_t config_fingerprint = 0;
  std::uint64_t cycle = 0;          // committed cycles
  std::uint64_t alerts_bytes = 0;   // durable prefix of alerts.jsonl
  std::uint64_t alerts_count = 0;   // alert lines in that prefix
  std::uint64_t ledger_bytes = 0;   // durable prefix of ledger.jsonl
  std::int64_t last_scored_day = -1;  // absolute day number, -1 none
  std::vector<BatchRecord> batches;   // consumed, in consumption order
  std::vector<ShardRecord> shards;
  /// department name -> serialized MonitorState (core/monitor.h).
  std::vector<std::pair<std::string, std::string>> monitors;
};

/// Atomically replaces the journal at `path`.
void SaveJournal(const std::string& path, const JournalState& state);

/// Loads the journal; nullopt when the file does not exist (fresh
/// start), JournalError when it exists but is unreadable or corrupt.
std::optional<JournalState> LoadJournal(const std::string& path);

/// One append-only output stream with explicit durability points.
/// Opening truncates the file to `committed_bytes` — the journaled
/// durable prefix — removing any torn tail from a crash mid-append.
/// Throws JournalError if the file is shorter than the journal claims.
class AppendLog {
 public:
  AppendLog(const std::string& path, std::uint64_t committed_bytes);
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Appends `line` plus a newline (buffered in the kernel, not yet
  /// durable — call Sync() at the commit point).
  void Append(const std::string& line);

  /// fsync; throws std::runtime_error when the stream cannot be made
  /// durable.
  void Sync();

  /// Bytes written so far (== the offset to journal after Sync()).
  std::uint64_t bytes() const { return bytes_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_ = 0;
};

}  // namespace acobe
