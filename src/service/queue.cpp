#include "service/queue.h"

#include <algorithm>
#include <stdexcept>

#include "common/telemetry.h"

namespace acobe {

const char* ToString(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kShed:
      return "shed";
  }
  return "?";
}

AdmissionPolicy AdmissionPolicyFromString(const std::string& s) {
  if (s == "block") return AdmissionPolicy::kBlock;
  if (s == "shed") return AdmissionPolicy::kShed;
  throw std::invalid_argument("unknown admission policy '" + s +
                              "' (block|shed)");
}

BoundedEventQueue::BoundedEventQueue(std::size_t max_rows,
                                     std::size_t max_bytes,
                                     AdmissionPolicy policy)
    : max_rows_(std::max<std::size_t>(
          1, std::min(max_rows, max_bytes / sizeof(PackedEvent)))),
      policy_(policy) {}

bool BoundedEventQueue::Push(const PackedEvent& event) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) throw std::logic_error("BoundedEventQueue: push after close");
  if (events_.size() >= max_rows_) {
    if (policy_ == AdmissionPolicy::kShed) {
      ++shed_;
      ACOBE_COUNT("service.events_shed", 1);
      return false;
    }
    ACOBE_COUNT("service.admission_stalls", 1);
    space_.wait(lock, [&] { return events_.size() < max_rows_; });
  }
  events_.push_back(event);
  ++pushed_;
  peak_rows_ = std::max(peak_rows_, events_.size());
  ACOBE_GAUGE_MAX("service.queue_peak_rows", events_.size());
  data_.notify_one();
  return true;
}

void BoundedEventQueue::CloseBatch() {
  std::lock_guard<std::mutex> lock(mutex_);
  boundaries_.push_back(pushed_);
  data_.notify_all();
}

void BoundedEventQueue::CloseAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  data_.notify_all();
}

BoundedEventQueue::PopResult BoundedEventQueue::Pop(
    std::vector<PackedEvent>& out, std::size_t max_events) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // A boundary at the current consumption point fires before any
    // later-admitted events are handed out.
    if (!boundaries_.empty() && boundaries_.front() == popped_) {
      boundaries_.pop_front();
      return PopResult::kBatchEnd;
    }
    if (!events_.empty()) {
      std::size_t n = std::min(max_events, events_.size());
      // Never hand out events past the next batch boundary.
      if (!boundaries_.empty()) {
        n = std::min(n, boundaries_.front() - popped_);
      }
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(events_.front());
        events_.pop_front();
      }
      popped_ += n;
      space_.notify_all();
      return PopResult::kEvents;
    }
    if (closed_) return PopResult::kClosed;
    data_.wait(lock);
  }
}

std::size_t BoundedEventQueue::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t BoundedEventQueue::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size() * sizeof(PackedEvent);
}

std::size_t BoundedEventQueue::peak_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_rows_;
}

std::size_t BoundedEventQueue::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::size_t BoundedEventQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

}  // namespace acobe
