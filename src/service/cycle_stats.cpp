#include "service/cycle_stats.h"

#include <algorithm>
#include <cmath>

#include "common/telemetry.h"

namespace acobe::service {

double NearestRank(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  // Nearest-rank: ceil(q * N), 1-based; q=0 maps to the minimum.
  const double rank = std::ceil(q * static_cast<double>(values.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  idx = std::min(idx, values.size() - 1);
  return values[idx];
}

CycleStatsRing::CycleStatsRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void CycleStatsRing::Record(const CycleStat& stat) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(stat);
  } else {
    ring_[total_ % capacity_] = stat;
  }
  ++total_;
}

std::vector<CycleStat> CycleStatsRing::SnapshotLocked() const {
  std::vector<CycleStat> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: stored oldest-first already
  } else {
    const std::size_t head = total_ % capacity_;  // oldest element
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

std::vector<CycleStat> CycleStatsRing::Recent(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CycleStat> all = SnapshotLocked();
  if (n < all.size()) {
    all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  }
  return all;
}

std::size_t CycleStatsRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t CycleStatsRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

namespace {

CycleStatsRing::Rollup RollupOf(const std::vector<double>& values) {
  CycleStatsRing::Rollup r;
  r.count = values.size();
  if (values.empty()) return r;
  r.p50 = NearestRank(values, 0.50);
  r.p95 = NearestRank(values, 0.95);
  r.max = *std::max_element(values.begin(), values.end());
  return r;
}

}  // namespace

CycleStatsRing::Rollup CycleStatsRing::AlertLatency() const {
  std::vector<double> values;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const CycleStat& s : ring_) {
      if (s.alert_latency_s >= 0.0) values.push_back(s.alert_latency_s);
    }
  }
  return RollupOf(values);
}

CycleStatsRing::Rollup CycleStatsRing::CycleWall() const {
  std::vector<double> values;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const CycleStat& s : ring_) values.push_back(s.total_s);
  }
  return RollupOf(values);
}

void CycleStatsRing::ExportSloGauges() const {
  if (!telemetry::MetricsEnabled()) return;
  const Rollup alert = AlertLatency();
  const Rollup wall = CycleWall();
  ACOBE_GAUGE_SET("service.slo.alert_latency_p50_s", alert.p50);
  ACOBE_GAUGE_SET("service.slo.alert_latency_p95_s", alert.p95);
  ACOBE_GAUGE_SET("service.slo.cycle_wall_p50_s", wall.p50);
  ACOBE_GAUGE_SET("service.slo.cycle_wall_p95_s", wall.p95);
  ACOBE_GAUGE_SET("service.slo.cycles_observed",
                  static_cast<double>(total_recorded()));
}

}  // namespace acobe::service
