#include "service/retry.h"

#include <algorithm>
#include <cmath>

namespace acobe {

BackoffPolicy::BackoffPolicy(BackoffConfig config)
    : config_(config), rng_(config.seed) {}

std::optional<double> BackoffPolicy::OnFailure() {
  ++failures_;
  if (failures_ > config_.max_retries) return std::nullopt;
  double delay =
      config_.base_ms * std::pow(config_.multiplier, failures_ - 1);
  delay = std::min(delay, config_.cap_ms);
  if (config_.jitter > 0.0) {
    const double lo = delay * (1.0 - config_.jitter);
    const double hi = delay * (1.0 + config_.jitter);
    delay = lo + (hi - lo) * rng_.NextDouble();
  }
  return std::max(delay, 0.0);
}

void BackoffPolicy::OnSuccess() {
  failures_ = 0;
  rng_.Seed(config_.seed);
}

}  // namespace acobe
