#pragma once

// Per-cycle time-series for the resident daemon: a fixed-size
// in-process ring of CycleStat records, one per completed supervisor
// cycle. Backs the /cycles observability endpoint and the
// service.slo.* gauges (nearest-rank p50/p95 of batch-to-alert latency
// and cycle wall time). Recording is O(1) and happens once per cycle
// on the supervisor's main thread; readers (HTTP handlers) snapshot
// under the same mutex, so a scrape never blocks detection for longer
// than a memcpy of a few hundred small structs.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace acobe::service {

struct CycleStat {
  std::uint64_t cycle = 0;        // 1-based supervisor cycle number
  std::string batch;              // batch directory name ("" = none)
  std::int64_t window_start = 0;  // current window span [start, end)
  std::int64_t window_end = 0;
  std::int64_t scored_from = 0;   // scored day range this cycle
  std::int64_t scored_to = 0;
  std::uint64_t events_admitted = 0;  // rows pushed to shard queues
  std::uint64_t events_shed = 0;      // rows dropped by backpressure
  std::size_t departments_scored = 0;
  std::size_t alerts = 0;             // alerts appended this cycle
  std::size_t queue_peak_rows = 0;    // process-lifetime high-water
  // Wall-time breakdown (seconds). train/score come from span-profile
  // deltas, so they are 0 when metrics are disabled.
  double ingest_s = 0.0;
  double train_s = 0.0;
  double score_s = 0.0;
  double commit_s = 0.0;
  double total_s = 0.0;
  // Age of the batch READY marker when ingestion started; -1 when no
  // batch was consumed this cycle.
  double batch_age_s = -1.0;
  // READY-marker mtime -> alert append latency; -1 when the cycle
  // produced no alerts (or consumed no batch).
  double alert_latency_s = -1.0;
};

/// Fixed-capacity ring of the most recent CycleStats. Thread-safe.
class CycleStatsRing {
 public:
  explicit CycleStatsRing(std::size_t capacity = 512);

  void Record(const CycleStat& stat);

  /// Up to `n` most recent records, oldest first.
  std::vector<CycleStat> Recent(std::size_t n) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total records ever recorded (not capped by capacity).
  std::uint64_t total_recorded() const;

  struct Rollup {
    std::size_t count = 0;  // samples the percentiles are over
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
  };

  /// Nearest-rank percentiles over alert_latency_s of retained records
  /// (cycles with no alert, latency < 0, are excluded).
  Rollup AlertLatency() const;
  /// Nearest-rank percentiles over total_s of retained records.
  Rollup CycleWall() const;

  /// Publishes service.slo.* gauges (alert_latency_p50_s/p95_s,
  /// cycle_wall_p50_s/p95_s, cycles_observed) into the telemetry
  /// registry. No-op when metrics are disabled.
  void ExportSloGauges() const;

 private:
  std::vector<CycleStat> SnapshotLocked() const;  // requires mutex_

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<CycleStat> ring_;   // ring_[total_ % capacity_] is next slot
  std::uint64_t total_ = 0;
};

/// Nearest-rank percentile (q in [0,1]) of an unsorted sample set.
/// Returns 0 for an empty set. Exposed for tests.
double NearestRank(std::vector<double> values, double q);

}  // namespace acobe::service
