#include "service/supervisor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/date.h"
#include "common/health.h"
#include "common/ledger.h"
#include "common/shutdown.h"
#include "common/telemetry.h"
#include "common/timeframe.h"
#include "common/version.h"
#include "core/critic.h"
#include "core/detector.h"
#include "core/monitor.h"
#include "features/shard_extract.h"
#include "logs/entity_catalog.h"
#include "logs/log_io.h"

namespace acobe {
namespace fs = std::filesystem;

namespace {

constexpr const char* kReadyMarker = "READY";
// Batch CSVs, parsed in this fixed order: the order is part of the
// determinism contract (it fixes entity-interning order and the
// within-day event order fed to the extractors).
constexpr const char* kBatchCsvs[] = {"device.csv", "file.csv", "http.csv",
                                      "logon.csv"};

std::int64_t DayOfTs(std::int64_t ts) {
  // Floor division: pre-epoch timestamps land on the correct day.
  std::int64_t d = ts / kSecondsPerDay;
  if (ts % kSecondsPerDay < 0) --d;
  return d;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::string DayString(std::int64_t day) {
  return Date::FromDayNumber(day).ToString();
}

double SpanTotalMs(const std::vector<health::SpanEdge>& edges,
                   std::string_view name) {
  double ms = 0.0;
  for (const health::SpanEdge& e : edges) {
    if (e.name == name) ms += e.total_ms;
  }
  return ms;
}

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

// Roster-derived immutable directory: the interning tables, the kept
// departments in canonical (first-seen) order, and the user -> shard
// route map. Read-only once Start() has built it; workers read entity
// names from it during cycles.
class ServiceDirectory {
 public:
  EntityCatalog tables;
  struct Dept {
    std::string name;
    std::size_t order = 0;  // canonical index among *kept* departments
    std::vector<UserId> members;
  };
  std::vector<Dept> depts;         // canonical order
  std::vector<int> user_shard;     // UserId -> shard, -1 unrouted
  std::uint32_t roster_crc = 0;
};

struct ServiceSupervisor::CycleTask {
  std::int64_t win_start = 0;
  std::int64_t win_end = -1;   // win_end < win_start: nothing ingested yet
  std::int64_t scored_from = 0;
  std::int64_t scored_to = -1;  // scored_to < scored_from: ingest-only
};

struct ServiceSupervisor::DeptCycleResult {
  std::size_t order = 0;
  std::string name;
  std::size_t members = 0;
  std::uint32_t score_digest = 0;
  std::vector<std::string> degraded;
  // Investigation list (top config.top), "user" / priority.
  std::vector<std::pair<std::string, double>> top;
  struct AlertRow {
    std::string user;
    std::int64_t first_day = 0;
    std::int64_t last_day = 0;
    std::int64_t peak_day = 0;
    int firing_days = 0;
    std::string peak_aspect;
    float peak_score = 0.0f;
  };
  std::vector<AlertRow> alerts;  // closed this cycle, close order
};

struct ServiceSupervisor::ShardOutcome {
  bool quarantined = false;      // state after this cycle
  bool quarantined_now = false;  // transitioned during this cycle
  std::uint32_t failures = 0;    // cumulative absorbed failures
  std::string error;
  std::vector<DeptCycleResult> depts;
  // (canonical dept order, monitor open-alert count) for every
  // department this shard owns; feeds the /statusz snapshot.
  std::vector<std::pair<std::size_t, std::size_t>> open_alerts;
  // Updated monitor blobs for this shard's departments (only present
  // on scored cycles; monitors are untouched otherwise).
  std::vector<std::pair<std::string, std::string>> monitors;
};

struct ServiceSupervisor::ShardRuntime {
  ShardRuntime(std::size_t rows, std::size_t bytes, AdmissionPolicy policy,
               BackoffConfig backoff_cfg)
      : queue(rows, bytes, policy), backoff(backoff_cfg) {}

  BoundedEventQueue queue;

  // Worker-owned between Dispatch() and the result handoff.
  BackoffPolicy backoff;
  struct DeptRuntime {
    const ServiceDirectory::Dept* dept = nullptr;
    MonitorState monitor;
  };
  std::vector<DeptRuntime> depts;
  std::vector<PackedEvent> window;  // sliding event window, day-sorted lazily
  bool quarantined = false;
  std::uint32_t failures = 0;

  // Main <-> worker handoff. Main writes `task` then calls
  // queue.CloseBatch(); the worker reads `task` after it sees the
  // batch boundary, and posts `result` when the cycle is done.
  std::mutex m;
  std::condition_variable cv;
  CycleTask task;
  ShardOutcome result;
  bool result_ready = false;

  std::thread thread;
};

namespace {

// LogSink that packs each event and routes it to its user's shard
// queue; tracks the batch's day range and admission counts.
class ShardRouter : public LogSink {
 public:
  ShardRouter(const std::vector<int>& user_shard,
              std::vector<BoundedEventQueue*> queues)
      : user_shard_(user_shard), queues_(std::move(queues)) {}

  void Consume(const LogonEvent& e) override { Route(e); }
  void Consume(const DeviceEvent& e) override { Route(e); }
  void Consume(const FileEvent& e) override { Route(e); }
  void Consume(const HttpEvent& e) override { Route(e); }
  void Consume(const EmailEvent& e) override { Route(e); }
  void Consume(const EnterpriseEvent& e) override { Route(e); }
  void Consume(const ProxyEvent& e) override { Route(e); }

  std::size_t admitted() const { return admitted_; }
  std::size_t dropped() const { return dropped_; }
  std::int64_t day_lo() const { return day_lo_; }
  std::int64_t day_hi() const { return day_hi_; }

 private:
  template <typename Event>
  void Route(const Event& e) {
    const int shard =
        e.user < user_shard_.size() ? user_shard_[e.user] : -1;
    if (shard < 0) {
      ++dropped_;
      return;
    }
    const PackedEvent p = PackEvent(e);
    const std::int64_t day = DayOfTs(p.ts);
    day_lo_ = std::min(day_lo_, day);
    day_hi_ = std::max(day_hi_, day);
    if (queues_[static_cast<std::size_t>(shard)]->Push(p)) {
      ++admitted_;
    }
  }

  const std::vector<int>& user_shard_;
  std::vector<BoundedEventQueue*> queues_;
  std::size_t admitted_ = 0;
  std::size_t dropped_ = 0;
  std::int64_t day_lo_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t day_hi_ = std::numeric_limits<std::int64_t>::min();
};

}  // namespace

ServiceSupervisor::ServiceSupervisor(ServiceConfig config)
    : config_(std::move(config)) {
  if (config_.window_days <= config_.train_days ||
      config_.train_days <= config_.omega || config_.omega < 2) {
    throw std::invalid_argument(
        "service config requires window_days > train_days > omega >= 2");
  }
  if (config_.shards < 1) config_.shards = 1;
}

ServiceSupervisor::~ServiceSupervisor() { StopWorkers(); }

std::string ServiceSupervisor::JournalPath() const {
  return (fs::path(config_.out_dir) / "service.journal").string();
}

int ServiceSupervisor::quarantined_shards() const {
  int n = 0;
  for (const ShardRecord& s : state_.shards) n += s.quarantined ? 1 : 0;
  return n;
}

std::size_t ServiceSupervisor::departments() const {
  return dir_ ? dir_->depts.size() : 0;
}

void ServiceSupervisor::LoadRoster() {
  auto d = std::make_unique<ServiceDirectory>();
  const std::string bytes = ReadWholeFile(config_.roster_path);
  d->roster_crc = Crc32(bytes);
  {
    std::istringstream in(bytes);
    IngestOptions strict = config_.ingest;
    strict.policy = IngestPolicy::kStrict;  // a bad roster is fatal
    ReadLdapCsv(in, d->tables, strict, config_.roster_path);
  }

  for (const std::string& name : d->tables.Departments()) {
    std::vector<UserId> members = d->tables.UsersInDepartment(name);
    if (members.size() < config_.min_dept_users) continue;
    ServiceDirectory::Dept dept;
    dept.name = name;
    dept.order = d->depts.size();
    dept.members = std::move(members);
    d->depts.push_back(std::move(dept));
  }
  if (d->depts.empty()) {
    throw std::runtime_error("roster " + config_.roster_path +
                             " yields no department with >= " +
                             std::to_string(config_.min_dept_users) +
                             " members");
  }
  config_.shards = std::min<int>(config_.shards,
                                 static_cast<int>(d->depts.size()));

  // Route users to the shard of their department (a user with several
  // memberships follows the roster's last record, matching the batch
  // tool's streaming path; demux replication covers multi-membership
  // within one shard).
  d->user_shard.assign(d->tables.users().size(), -1);
  std::vector<int> dept_shard;  // canonical dept order -> shard
  dept_shard.reserve(d->depts.size());
  for (const auto& dept : d->depts) {
    dept_shard.push_back(static_cast<int>(dept.order) % config_.shards);
  }
  for (const LdapRecord& r : d->tables.ldap()) {
    for (const auto& dept : d->depts) {
      if (dept.name == r.department) {
        d->user_shard[r.user] = dept_shard[dept.order];
        break;
      }
    }
  }
  dir_ = std::move(d);

  // Shard runtimes + department assignment.
  shards_.clear();
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardRuntime>(
        config_.queue_rows, config_.queue_bytes, config_.admission,
        config_.backoff));
  }
  MonitorConfig mc;
  mc.n_votes = config_.votes;
  mc.top_positions = config_.top_positions;
  mc.persistence_days = config_.persistence_days;
  mc.cooloff_days = config_.cooloff_days;
  for (const auto& dept : dir_->depts) {
    ShardRuntime::DeptRuntime rt;
    rt.dept = &dept;
    rt.monitor = MonitorState(mc);
    shards_[static_cast<std::size_t>(dept_shard[dept.order])]
        ->depts.push_back(std::move(rt));
  }

  // Config fingerprint: every knob that shapes the output stream.
  std::ostringstream fp;
  fp << "acobe-serve.v1;w=" << config_.window_days
     << ";t=" << config_.train_days << ";omega=" << config_.omega
     << ";epochs=" << config_.epochs << ";votes=" << config_.votes
     << ";top=" << config_.top << ";pos=" << config_.top_positions
     << ";persist=" << config_.persistence_days
     << ";cooloff=" << config_.cooloff_days
     << ";min=" << config_.min_dept_users << ";seed=" << config_.seed
     << ";shards=" << config_.shards
     << ";admission=" << ToString(config_.admission)
     << ";roster=" << dir_->roster_crc;
  fingerprint_ = Crc32(fp.str());
}

void ServiceSupervisor::RecoverOrInit() {
  const std::string jpath = JournalPath();
  std::optional<JournalState> j = LoadJournal(jpath);
  recovered_ = j.has_value();

  if (j) {
    if (j->config_fingerprint != fingerprint_) {
      throw JournalError(
          "journal " + jpath +
          " was written under different detection settings (fingerprint " +
          std::to_string(j->config_fingerprint) + " vs " +
          std::to_string(fingerprint_) +
          "); refusing to resume non-identically. Point --out at a fresh "
          "directory or restore the original flags.");
    }
    if (j->shards.size() != static_cast<std::size_t>(config_.shards)) {
      throw JournalError("journal shard count mismatch");
    }
    state_ = *j;
    first_day_seen_ = 0;
    latest_day_ = -1;
    for (const BatchRecord& b : state_.batches) {
      consumed_.push_back(b.name);
      if (b.day_hi < b.day_lo) continue;
      if (latest_day_ < first_day_seen_) {
        first_day_seen_ = b.day_lo;
        latest_day_ = b.day_hi;
      } else {
        first_day_seen_ = std::min(first_day_seen_, b.day_lo);
        latest_day_ = std::max(latest_day_, b.day_hi);
      }
    }
    // Restore monitors + shard supervision state.
    monitor_blobs_ = state_.monitors;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->quarantined = state_.shards[i].quarantined;
      shards_[i]->failures = state_.shards[i].failures;
      for (auto& rt : shards_[i]->depts) {
        for (const auto& [name, blob] : monitor_blobs_) {
          if (name == rt.dept->name) {
            std::istringstream in(blob);
            rt.monitor = MonitorState::Load(in);
            break;
          }
        }
      }
    }
  } else {
    state_ = JournalState{};
    state_.config_fingerprint = fingerprint_;
    state_.shards.resize(static_cast<std::size_t>(config_.shards));
  }

  // Remove stale WriteFileAtomic temporaries from a crash mid-replace.
  for (const auto& entry : fs::directory_iterator(config_.out_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }

  // Open the output streams at their durable prefixes (truncating any
  // torn tail from a crash mid-append).
  const std::string alerts_path =
      (fs::path(config_.out_dir) / "alerts.jsonl").string();
  const std::string ledger_path =
      (fs::path(config_.out_dir) / "ledger.jsonl").string();
  alerts_log_ = std::make_unique<AppendLog>(alerts_path, state_.alerts_bytes);
  ledger_log_ = std::make_unique<AppendLog>(ledger_path, state_.ledger_bytes);

  if (!recovered_) {
    // Fresh start: the manifest is the first committed ledger line.
    LedgerEvent manifest = MakeManifestEvent("acobe-serve", GetBuildInfo());
    manifest.Int("shards", config_.shards)
        .Int("window_days", config_.window_days)
        .Int("train_days", config_.train_days)
        .Str("admission", ToString(config_.admission));
    ledger_log_->Append(manifest.Finish());
    ledger_log_->Sync();
    state_.ledger_bytes = ledger_log_->bytes();
    SaveJournal(JournalPath(), state_);
  }
}

void ServiceSupervisor::Start() {
  if (started_) throw std::logic_error("ServiceSupervisor::Start called twice");
  fs::create_directories(config_.out_dir);
  if (!fs::is_directory(config_.watch_dir)) {
    throw std::runtime_error("watch directory " + config_.watch_dir +
                             " does not exist");
  }
  LoadRoster();
  RecoverOrInit();

  // Seed the open-alert counts from the (possibly restored) monitors
  // while the main thread still owns them — workers spawn next.
  dept_open_alerts_.assign(dir_->depts.size(), 0);
  for (const auto& shard : shards_) {
    for (const auto& rt : shard->depts) {
      dept_open_alerts_[rt.dept->order] = rt.monitor.OpenAlerts().size();
    }
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread =
        std::thread(&ServiceSupervisor::WorkerMain, this, i);
  }
  started_ = true;

  if (recovered_ && latest_day_ >= first_day_seen_) {
    ReplayWindow(state_.batches);
  }

  // Readiness flips only now: journal recovered, window replayed,
  // workers running. /readyz turns 200 at this instant.
  shed_seen_ = 0;
  for (const auto& shard : shards_) shed_seen_ += shard->queue.shed();
  ExportQueueGauges();
  PublishStatus();
  ready_.store(true, std::memory_order_release);
}

void ServiceSupervisor::ReplayWindow(const std::vector<BatchRecord>& batches) {
  // Rebuild the in-memory sliding window by re-parsing every consumed
  // batch that still overlaps it. Entity ids re-intern in a different
  // global order than the original run, but features depend only on
  // id *equality* within one window rebuild, so the cubes — and with
  // them the resumed output bytes — are unaffected.
  health::SetStage("replay");
  CycleTask task;
  task.win_end = latest_day_;
  task.win_start =
      std::max(first_day_seen_, latest_day_ - config_.window_days + 1);

  for (const BatchRecord& b : batches) {
    if (b.day_hi < b.day_lo || b.day_hi < task.win_start) continue;
    health::SetStageDetail(b.name);
    std::size_t admitted = 0, dropped = 0;
    BatchRecord reread = ParseBatch(b.name, &admitted, &dropped);
    if (reread.digest != b.digest) {
      throw JournalError(
          "batch " + b.name + " changed since it was consumed (digest " +
          std::to_string(reread.digest) + " vs journaled " +
          std::to_string(b.digest) +
          "); batches must stay immutable for bit-identical resume");
    }
    ACOBE_COUNT("service.replayed_batches", 1);
  }
  Dispatch(task);  // ingest-only: scored_to < scored_from
  Collect();
}

std::vector<std::string> ServiceSupervisor::PendingBatches() const {
  std::set<std::string> done(consumed_.begin(), consumed_.end());
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(config_.watch_dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (done.count(name)) continue;
    if (!fs::exists(entry.path() / kReadyMarker)) continue;
    out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CycleReport> ServiceSupervisor::ProcessAvailableBatches() {
  std::vector<CycleReport> reports;
  for (const std::string& name : PendingBatches()) {
    if (ShutdownRequested()) break;
    reports.push_back(RunCycle(name));
  }
  return reports;
}

BatchRecord ServiceSupervisor::ParseBatch(const std::string& batch_name,
                                          std::size_t* admitted,
                                          std::size_t* dropped) {
  const fs::path dir = fs::path(config_.watch_dir) / batch_name;
  std::vector<BoundedEventQueue*> queues;
  queues.reserve(shards_.size());
  for (auto& s : shards_) queues.push_back(&s->queue);
  ShardRouter router(dir_->user_shard, std::move(queues));
  std::uint32_t crc = 0;
  for (const char* csv : kBatchCsvs) {
    const fs::path p = dir / csv;
    if (!fs::exists(p)) continue;
    const std::string bytes = ReadWholeFile(p.string());
    crc = Crc32(bytes.data(), bytes.size(), crc);
    std::istringstream in(bytes);
    const std::string source = batch_name + "/" + csv;
    if (csv == kBatchCsvs[0]) {
      ReadDeviceCsv(in, dir_->tables, router, config_.ingest, source);
    } else if (csv == kBatchCsvs[1]) {
      ReadFileCsv(in, dir_->tables, router, config_.ingest, source);
    } else if (csv == kBatchCsvs[2]) {
      ReadHttpCsv(in, dir_->tables, router, config_.ingest, source);
    } else {
      ReadLogonCsv(in, dir_->tables, router, config_.ingest, source);
    }
  }
  BatchRecord rec;
  rec.name = batch_name;
  rec.digest = crc;
  if (router.day_hi() >= router.day_lo()) {
    rec.day_lo = router.day_lo();
    rec.day_hi = router.day_hi();
  } else {
    rec.day_lo = 0;
    rec.day_hi = -1;
  }
  *admitted = router.admitted();
  *dropped = router.dropped();
  ExportQueueGauges();  // heartbeat sees occupancy as ingested
  return rec;
}

void ServiceSupervisor::Dispatch(const CycleTask& task) {
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->m);
      shard->task = task;
    }
    shard->queue.CloseBatch();
  }
}

std::vector<ServiceSupervisor::ShardOutcome> ServiceSupervisor::Collect() {
  std::vector<ShardOutcome> outs;
  outs.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lk(shard->m);
    shard->cv.wait(lk, [&] { return shard->result_ready; });
    outs.push_back(std::move(shard->result));
    shard->result_ready = false;
  }
  return outs;
}

CycleReport ServiceSupervisor::RunCycle(const std::string& batch_name) {
  health::SetStage("ingest");
  health::SetStageDetail(batch_name);

  const auto cycle_t0 = std::chrono::steady_clock::now();
  // READY-marker mtime anchors the batch-to-alert latency SLO: the
  // marker is written last by the feeder, so its age is how long the
  // batch sat in the drop directory plus everything we do with it.
  bool have_ready_mtime = false;
  fs::file_time_type ready_mtime{};
  double batch_age_s = -1.0;
  {
    std::error_code ec;
    ready_mtime = fs::last_write_time(
        fs::path(config_.watch_dir) / batch_name / kReadyMarker, ec);
    if (!ec) {
      have_ready_mtime = true;
      batch_age_s = std::chrono::duration<double>(
                        fs::file_time_type::clock::now() - ready_mtime)
                        .count();
    }
  }

  CycleReport rep;
  rep.batch = batch_name;
  BatchRecord rec = ParseBatch(batch_name, &rep.events_admitted,
                               &rep.events_dropped);
  ACOBE_COUNT("service.batches", 1);
  ACOBE_COUNT("service.events_admitted",
              static_cast<std::uint64_t>(rep.events_admitted));

  if (rec.day_hi >= rec.day_lo) {
    if (latest_day_ < first_day_seen_) {
      first_day_seen_ = rec.day_lo;
      latest_day_ = rec.day_hi;
    } else {
      first_day_seen_ = std::min(first_day_seen_, rec.day_lo);
      latest_day_ = std::max(latest_day_, rec.day_hi);
    }
  }

  CycleTask task;
  if (latest_day_ >= first_day_seen_) {
    task.win_end = latest_day_;
    task.win_start =
        std::max(first_day_seen_, latest_day_ - config_.window_days + 1);
    const std::int64_t scorable_from = task.win_start + config_.train_days;
    task.scored_from = std::max(state_.last_scored_day + 1, scorable_from);
    task.scored_to = task.win_end;
  }
  rep.window_start = task.win_start;
  rep.window_end = task.win_end;
  rep.scored_from = task.scored_from;
  rep.scored_to = task.scored_to;

  const auto t_ingest_done = std::chrono::steady_clock::now();
  // train/score wall comes from span-profile deltas around the detect
  // phase (zero when metrics are off — spans don't record then).
  const std::vector<health::SpanEdge> spans_before = health::SpanProfile();

  Dispatch(task);
  health::SetStage("detect");
  std::vector<ShardOutcome> outs = Collect();

  const auto t_detect_done = std::chrono::steady_clock::now();
  const std::vector<health::SpanEdge> spans_after = health::SpanProfile();

  health::SetStage("commit");
  state_.cycle += 1;
  rep.cycle = state_.cycle;

  // Merge per-shard results into canonical department order.
  std::vector<const DeptCycleResult*> scored;
  for (const ShardOutcome& o : outs) {
    for (const DeptCycleResult& d : o.depts) scored.push_back(&d);
  }
  std::sort(scored.begin(), scored.end(),
            [](const DeptCycleResult* a, const DeptCycleResult* b) {
              return a->order < b->order;
            });
  rep.departments_scored = scored.size();

  // Alerts first: their global sequence numbers are journaled.
  for (const DeptCycleResult* d : scored) {
    for (const auto& row : d->alerts) {
      state_.alerts_count += 1;
      LedgerEvent ev("alert");
      ev.Int("seq", static_cast<std::int64_t>(state_.alerts_count))
          .Int("cycle", static_cast<std::int64_t>(state_.cycle))
          .Str("department", d->name)
          .Str("user", row.user)
          .Str("first_day", DayString(row.first_day))
          .Str("last_day", DayString(row.last_day))
          .Int("firing_days", row.firing_days)
          .Str("peak_day", DayString(row.peak_day))
          .Str("peak_aspect", row.peak_aspect)
          .Num("peak_score", row.peak_score);
      alerts_log_->Append(ev.Finish());
      rep.alerts += 1;
      ACOBE_COUNT("service.alerts_emitted", 1);
    }
  }

  // Ledger: one cycle event, then detection events in canonical order,
  // then any quarantine transitions.
  {
    LedgerEvent ev("cycle");
    ev.Int("cycle", static_cast<std::int64_t>(state_.cycle))
        .Str("batch", batch_name)
        .Int("batch_digest", rec.digest)
        .Int("events_admitted", static_cast<std::int64_t>(rep.events_admitted))
        .Int("events_dropped", static_cast<std::int64_t>(rep.events_dropped));
    if (task.win_end >= task.win_start) {
      ev.Str("window_start", DayString(task.win_start))
          .Str("window_end", DayString(task.win_end));
    }
    if (task.scored_to >= task.scored_from) {
      ev.Str("scored_from", DayString(task.scored_from))
          .Str("scored_to", DayString(task.scored_to));
    }
    ev.Int("departments_scored",
           static_cast<std::int64_t>(rep.departments_scored))
        .Int("alerts", static_cast<std::int64_t>(rep.alerts));
    ledger_log_->Append(ev.Finish());
  }
  for (const DeptCycleResult* d : scored) {
    LedgerEvent ev("detection");
    ev.Int("cycle", static_cast<std::int64_t>(state_.cycle))
        .Str("department", d->name)
        .Int("members", static_cast<std::int64_t>(d->members))
        .Int("score_digest", d->score_digest);
    if (!d->degraded.empty()) {
      ev.StrList("degraded_aspects", d->degraded);
    }
    std::vector<std::string> users;
    std::vector<double> priorities;
    users.reserve(d->top.size());
    priorities.reserve(d->top.size());
    for (const auto& [user, priority] : d->top) {
      users.push_back(user);
      priorities.push_back(priority);
    }
    ev.StrList("list", users).NumList("priority", priorities);
    ledger_log_->Append(ev.Finish());
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (!outs[i].quarantined_now) continue;
    LedgerEvent ev("shard_quarantined");
    ev.Int("cycle", static_cast<std::int64_t>(state_.cycle))
        .Int("shard", static_cast<std::int64_t>(i))
        .Int("failures", outs[i].failures)
        .Str("error", outs[i].error);
    ledger_log_->Append(ev.Finish());
    ACOBE_COUNT("service.shards_quarantined", 1);
  }

  // Fold updated monitor state + supervision records into the journal.
  for (const ShardOutcome& o : outs) {
    for (const auto& [name, blob] : o.monitors) {
      bool found = false;
      for (auto& [have, slot] : monitor_blobs_) {
        if (have == name) {
          slot = blob;
          found = true;
          break;
        }
      }
      if (!found) monitor_blobs_.emplace_back(name, blob);
    }
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    state_.shards[i].quarantined = outs[i].quarantined;
    state_.shards[i].failures = outs[i].failures;
  }
  if (task.scored_to >= task.scored_from) {
    state_.last_scored_day = std::max(state_.last_scored_day, task.scored_to);
  }
  state_.batches.push_back(rec);
  consumed_.push_back(batch_name);
  state_.monitors = monitor_blobs_;

  // Commit point: outputs durable first, then the journal names them.
  alerts_log_->Sync();
  ledger_log_->Sync();
  state_.alerts_bytes = alerts_log_->bytes();
  state_.ledger_bytes = ledger_log_->bytes();
  SaveJournal(JournalPath(), state_);
  ACOBE_COUNT("service.cycles", 1);

  // --- Observability plane: record the cycle, refresh snapshots. None
  // --- of this feeds back into detection state.
  for (const ShardOutcome& o : outs) {
    for (const auto& [order, count] : o.open_alerts) {
      if (order < dept_open_alerts_.size()) dept_open_alerts_[order] = count;
    }
  }
  const auto t_end = std::chrono::steady_clock::now();
  service::CycleStat cs;
  cs.cycle = state_.cycle;
  cs.batch = batch_name;
  cs.window_start = rep.window_start;
  cs.window_end = rep.window_end;
  cs.scored_from = rep.scored_from;
  cs.scored_to = rep.scored_to;
  cs.events_admitted = rep.events_admitted;
  cs.departments_scored = rep.departments_scored;
  cs.alerts = rep.alerts;
  std::uint64_t shed_total = 0;
  for (const auto& shard : shards_) {
    shed_total += shard->queue.shed();
    cs.queue_peak_rows = std::max(cs.queue_peak_rows,
                                  shard->queue.peak_rows());
  }
  cs.events_shed = shed_total - std::min(shed_seen_, shed_total);
  shed_seen_ = shed_total;
  cs.ingest_s = SecondsBetween(cycle_t0, t_ingest_done);
  cs.train_s = (SpanTotalMs(spans_after, "detector.train") -
                SpanTotalMs(spans_before, "detector.train")) /
               1000.0;
  cs.score_s = (SpanTotalMs(spans_after, "detector.score") -
                SpanTotalMs(spans_before, "detector.score")) /
               1000.0;
  cs.commit_s = SecondsBetween(t_detect_done, t_end);
  cs.total_s = SecondsBetween(cycle_t0, t_end);
  cs.batch_age_s = batch_age_s;
  if (rep.alerts > 0 && have_ready_mtime) {
    cs.alert_latency_s = std::chrono::duration<double>(
                             fs::file_time_type::clock::now() - ready_mtime)
                             .count();
  }
  stats_.Record(cs);
  stats_.ExportSloGauges();
  ExportQueueGauges();
  PublishStatus();
  return rep;
}

void ServiceSupervisor::Finish(const std::string& reason) {
  if (!ledger_log_) return;
  LedgerEvent ev("run_complete");
  ev.Str("tool", "acobe-serve")
      .Str("reason", reason)
      .Int("cycles", static_cast<std::int64_t>(state_.cycle))
      .Int("alerts", static_cast<std::int64_t>(state_.alerts_count))
      .Int("departments", static_cast<std::int64_t>(departments()));
  ledger_log_->Append(ev.Finish());
  ledger_log_->Sync();
  // Deliberately not journaled: a subsequent resume truncates this
  // line away, so the stream ends with exactly one completion event.
}

void ServiceSupervisor::WorkerMain(std::size_t shard_idx) {
  ShardRuntime& shard = *shards_[shard_idx];
  for (;;) {
    bool closed = false;
    for (;;) {
      const auto r = shard.queue.Pop(shard.window, 8192);
      if (r == BoundedEventQueue::PopResult::kBatchEnd) break;
      if (r == BoundedEventQueue::PopResult::kClosed) {
        closed = true;
        break;
      }
    }
    if (closed) return;
    CycleTask task;
    {
      std::lock_guard<std::mutex> lk(shard.m);
      task = shard.task;
    }
    ShardOutcome out;
    try {
      out = RunShardCycle(shard, task);
    } catch (const std::exception& e) {
      // A failure outside the retried compute phase (ingest/commit
      // bookkeeping) is not survivable for this shard: quarantine it
      // rather than killing the process.
      shard.quarantined = true;
      out = ShardOutcome{};
      out.quarantined = true;
      out.quarantined_now = true;
      out.failures = ++shard.failures;
      out.error = e.what();
    }
    {
      std::lock_guard<std::mutex> lk(shard.m);
      shard.result = std::move(out);
      shard.result_ready = true;
    }
    shard.cv.notify_all();
  }
}

ServiceSupervisor::ShardOutcome ServiceSupervisor::RunShardCycle(
    ShardRuntime& shard, const CycleTask& task) {
  ShardOutcome out;
  out.quarantined = shard.quarantined;
  out.failures = shard.failures;
  // The worker owns its monitors between Dispatch and the result
  // handoff, so reporting open-alert counts here is race-free.
  const auto report_open_alerts = [&] {
    out.open_alerts.clear();
    for (const auto& rt : shard.depts) {
      out.open_alerts.emplace_back(rt.dept->order,
                                   rt.monitor.OpenAlerts().size());
    }
  };

  if (shard.quarantined) {
    // Keep draining (the producer must never block on a dead shard)
    // but compute nothing.
    shard.window.clear();
    report_open_alerts();
    return out;
  }

  // Ingest: the queue already drained into the window; drop what slid
  // out of it.
  if (task.win_end >= task.win_start) {
    shard.window.erase(
        std::remove_if(shard.window.begin(), shard.window.end(),
                       [&](const PackedEvent& e) {
                         return DayOfTs(e.ts) < task.win_start;
                       }),
        shard.window.end());
  }
  ACOBE_GAUGE_MAX("service.window_events", shard.window.size());

  if (task.scored_to < task.scored_from) {  // ingest-only
    report_open_alerts();
    return out;
  }

  // Compute phase, retried under the shard's backoff policy. Monitors
  // are untouched until the whole phase succeeds, so a retry never
  // double-feeds a day.
  struct DeptCompute {
    ShardRuntime::DeptRuntime* rt = nullptr;
    DeptCycleResult res;
    std::vector<std::vector<bool>> fired;     // [day - scored_from][member]
    std::vector<std::vector<DayPeak>> peaks;  // same shape
  };
  std::vector<DeptCompute> computed;

  const int win_len = static_cast<int>(task.win_end - task.win_start + 1);
  const int score_begin = static_cast<int>(task.scored_from - task.win_start);
  const int n_scored = static_cast<int>(task.scored_to - task.scored_from + 1);

  for (;;) {
    try {
      computed.clear();
      std::stable_sort(shard.window.begin(), shard.window.end(),
                       [](const PackedEvent& a, const PackedEvent& b) {
                         return DayOfTs(a.ts) < DayOfTs(b.ts);
                       });
      DepartmentDemux demux(Date::FromDayNumber(task.win_start), win_len);
      for (auto& rt : shard.depts) {
        demux.AddDepartment(rt.dept->name, rt.dept->members);
      }
      for (const PackedEvent& e : shard.window) DeliverPacked(e, demux);

      DetectorSpec spec;
      spec.name = "acobe-serve";
      spec.deviation.omega = config_.omega;
      spec.deviation.matrix_days = config_.omega;
      spec.ensemble.encoder_dims = {64, 32, 16, 8};
      spec.ensemble.train.epochs = config_.epochs;
      spec.ensemble.train_stride = 2;
      spec.ensemble.optimizer = OptimizerKind::kAdam;
      spec.ensemble.learning_rate = 1e-3f;
      spec.ensemble.seed = config_.seed;
      spec.ensemble.threads = 1;  // per-shard determinism
      spec.ensemble.allow_degraded = true;
      spec.critic_votes = config_.votes;

      for (int d = 0; d < demux.departments(); ++d) {
        ShardRuntime::DeptRuntime& rt = shard.depts[static_cast<std::size_t>(d)];
        const std::vector<UserId>& members = rt.dept->members;
        DetectionOutput det = Detector(spec).Run(
            demux.extractor(d).cube(), demux.extractor(d).catalog(), members,
            /*train_begin=*/0, /*train_end=*/config_.train_days,
            /*score_begin=*/score_begin, /*score_end=*/win_len);

        DeptCompute dc;
        dc.rt = &rt;
        dc.res.order = rt.dept->order;
        dc.res.name = rt.dept->name;
        dc.res.members = members.size();
        dc.res.degraded = det.degraded_aspects;

        // Score digest over the freshly scored region, in a fixed
        // (aspect, member, day) order.
        std::string raw;
        raw.reserve(static_cast<std::size_t>(det.grid.aspects()) *
                    members.size() * static_cast<std::size_t>(n_scored) * 4);
        for (int a = 0; a < det.grid.aspects(); ++a) {
          for (std::size_t u = 0; u < members.size(); ++u) {
            for (int rel = score_begin; rel < score_begin + n_scored; ++rel) {
              const float s = det.grid.At(a, static_cast<int>(u), rel);
              raw.append(reinterpret_cast<const char*>(&s), sizeof(s));
            }
          }
        }
        dc.res.score_digest = Crc32(raw);

        const std::size_t top_n =
            std::min<std::size_t>(det.list.size(),
                                  static_cast<std::size_t>(config_.top));
        for (std::size_t i = 0; i < top_n; ++i) {
          const InvestigationEntry& e = det.list[i];
          dc.res.top.emplace_back(
              dir_->tables.users().NameOf(
                  members[static_cast<std::size_t>(e.user_idx)]),
              e.priority);
        }

        dc.fired.resize(static_cast<std::size_t>(n_scored));
        dc.peaks.resize(static_cast<std::size_t>(n_scored));
        for (int i = 0; i < n_scored; ++i) {
          const int rel = score_begin + i;
          std::vector<InvestigationEntry> daily =
              RankUsersOnDay(det.grid, config_.votes, rel);
          auto& fired = dc.fired[static_cast<std::size_t>(i)];
          fired.assign(members.size(), false);
          const std::size_t firing =
              std::min<std::size_t>(daily.size(),
                                    static_cast<std::size_t>(
                                        config_.top_positions));
          for (std::size_t p = 0; p < firing; ++p) {
            fired[static_cast<std::size_t>(daily[p].user_idx)] = true;
          }
          auto& peaks = dc.peaks[static_cast<std::size_t>(i)];
          peaks.assign(members.size(), DayPeak{});
          for (std::size_t u = 0; u < members.size(); ++u) {
            DayPeak best;
            for (int a = 0; a < det.grid.aspects(); ++a) {
              const float s = det.grid.At(a, static_cast<int>(u), rel);
              if (s > best.score) {
                best.score = s;
                best.aspect = det.grid.aspect_name(a);
              }
            }
            peaks[u] = best;
          }
        }
        computed.push_back(std::move(dc));
      }
      shard.backoff.OnSuccess();
      break;
    } catch (const std::exception& e) {
      shard.failures += 1;
      out.failures = shard.failures;
      const std::optional<double> delay = shard.backoff.OnFailure();
      if (!delay) {
        shard.quarantined = true;
        out.quarantined = true;
        out.quarantined_now = true;
        out.error = e.what();
        report_open_alerts();
        return out;
      }
      ACOBE_COUNT("service.cycle_retries", 1);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(*delay));
    }
  }

  // Commit phase: feed the monitors day by day and collect closures.
  for (DeptCompute& dc : computed) {
    std::vector<Alert> closed;
    for (int i = 0; i < n_scored; ++i) {
      dc.rt->monitor.AdvanceDay(
          static_cast<int>(task.scored_from + i),
          dc.fired[static_cast<std::size_t>(i)],
          &dc.peaks[static_cast<std::size_t>(i)], &closed);
    }
    for (const Alert& a : closed) {
      DeptCycleResult::AlertRow row;
      row.user = dir_->tables.users().NameOf(
          dc.rt->dept->members[static_cast<std::size_t>(a.user_idx)]);
      row.first_day = a.first_day;
      row.last_day = a.last_day;
      row.peak_day = a.peak_day;
      row.firing_days = a.firing_days;
      row.peak_aspect = a.peak_aspect_name;
      row.peak_score = a.peak_score;
      dc.res.alerts.push_back(std::move(row));
    }
    out.depts.push_back(std::move(dc.res));
  }
  // Serialize every monitor this shard owns (cheap; keeps the journal
  // complete even for departments that closed nothing today).
  for (auto& rt : shard.depts) {
    std::ostringstream os;
    rt.monitor.Save(os);
    out.monitors.emplace_back(rt.dept->name, std::move(os).str());
  }
  report_open_alerts();
  return out;
}

ServiceStatus ServiceSupervisor::Status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  ServiceStatus st = status_;
  st.ready = Ready();
  return st;
}

void ServiceSupervisor::PublishStatus() {
  ServiceStatus st;
  st.ready = true;  // Status() overrides from the ready_ flag
  st.cycle = state_.cycle;
  st.alerts_total = state_.alerts_count;
  st.last_scored_day = state_.last_scored_day;
  st.recovered = recovered_;
  st.last_batch = consumed_.empty() ? "" : consumed_.back();
  if (latest_day_ >= first_day_seen_) {
    st.window_end = latest_day_;
    st.window_start =
        std::max(first_day_seen_, latest_day_ - config_.window_days + 1);
  }
  st.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardStatus s;
    // bytes derives from the same rows read so the pair always agrees
    // (the queue moves between two separate accessor calls).
    s.queue_rows = shards_[i]->queue.rows();
    s.queue_bytes = s.queue_rows * sizeof(PackedEvent);
    s.queue_peak_rows = shards_[i]->queue.peak_rows();
    s.queue_shed = shards_[i]->queue.shed();
    s.quarantined = state_.shards[i].quarantined;
    s.failures = state_.shards[i].failures;
    st.shards.push_back(s);
  }
  st.departments.reserve(dir_->depts.size());
  for (const auto& dept : dir_->depts) {
    DepartmentStatus d;
    d.name = dept.name;
    d.members = dept.members.size();
    d.open_alerts =
        dept.order < dept_open_alerts_.size() ? dept_open_alerts_[dept.order]
                                              : 0;
    st.departments.push_back(std::move(d));
  }
  std::lock_guard<std::mutex> lock(status_mutex_);
  status_ = std::move(st);
}

void ServiceSupervisor::ExportQueueGauges() const {
  if (!telemetry::MetricsEnabled()) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string suffix = ".shard" + std::to_string(i);
    // bytes is derived from one rows read (not the queue's own bytes()
    // accessor) so the two gauges can never disagree about emptiness.
    const std::size_t rows = shards_[i]->queue.rows();
    telemetry::GetGauge("service.queue.rows" + suffix)
        .Set(static_cast<double>(rows));
    telemetry::GetGauge("service.queue.bytes" + suffix)
        .Set(static_cast<double>(rows * sizeof(PackedEvent)));
    telemetry::GetGauge("service.queue.shed_total" + suffix)
        .Set(static_cast<double>(shards_[i]->queue.shed()));
  }
}

void ServiceSupervisor::RefreshQueueGauges() const {
  if (!Ready()) return;
  ExportQueueGauges();
}

void ServiceSupervisor::StopWorkers() {
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->queue.CloseAll();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

}  // namespace acobe
