#pragma once

// Deterministic retry/backoff policy for the resident service.
//
// Shard workers, ingestion reads and artifact writes all retry through
// one policy: capped exponential backoff with seeded jitter. The jitter
// stream is an Rng (common/rng.h), so two policies built from the same
// config produce the identical delay sequence — which is what lets the
// crash-injection soak harness and the unit tests pin scheduling
// behavior instead of sleeping and hoping.

#include <cstdint>
#include <optional>

#include "common/rng.h"

namespace acobe {

struct BackoffConfig {
  /// Retries granted after the first failure; 0 means fail fast.
  int max_retries = 3;
  /// Delay before retry #1, milliseconds.
  double base_ms = 100.0;
  /// Growth factor per retry.
  double multiplier = 2.0;
  /// Ceiling on the pre-jitter delay.
  double cap_ms = 30000.0;
  /// Jitter as a fraction of the pre-jitter delay: the delay is drawn
  /// uniformly from [delay * (1 - jitter), delay * (1 + jitter)].
  double jitter = 0.2;
  /// Seed for the jitter stream.
  std::uint64_t seed = 0x5eed;
};

class BackoffPolicy {
 public:
  explicit BackoffPolicy(BackoffConfig config = {});

  /// Records a failure. Returns the delay (ms) to wait before the next
  /// attempt, or nullopt when the retry budget is exhausted.
  std::optional<double> OnFailure();

  /// Records a success: the failure count resets and the jitter stream
  /// is re-seeded, so the next failure sequence replays exactly as a
  /// fresh policy's would.
  void OnSuccess();

  int failures() const { return failures_; }
  const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  Rng rng_;
  int failures_ = 0;
};

}  // namespace acobe
