#pragma once

// The resident detection service.
//
// ServiceSupervisor turns the batch ACOBE pipeline into a 24/7 daemon:
// feeders drop batch directories (CERT-layout CSVs plus a READY
// marker, written last) into a watch directory; each READY batch
// becomes one *cycle*. The watcher thread parses the batch's CSVs in a
// fixed order and routes packed events through bounded admission
// queues (service/queue.h) to per-shard workers; each worker maintains
// a sliding multi-day event window, and when the batch advances the
// window far enough to expose new scorable days, runs the full
// ACOBE detection (representation -> ensemble -> critic) per
// department, feeds the daily top lists into a persistent-alert
// MonitorState, and reports closed alerts.
//
// Robustness properties, in the order they matter:
//
//   crash-restart bit-identity  Every cycle commits through the
//       journal protocol (service/journal.h): outputs are appended and
//       fsynced, then the journal (batch list, output offsets, monitor
//       blobs) is atomically replaced. kill -9 at any instant and the
//       restarted daemon truncates torn output tails, rebuilds the
//       event window by re-parsing journaled batches, restores the
//       monitors, and re-runs the interrupted cycle — producing the
//       same bytes it would have produced uninterrupted. Holds under
//       AdmissionPolicy::kBlock (the default); kShed trades identity
//       for liveness under overload.
//
//   supervision  A shard worker whose cycle computation throws is
//       retried under a seeded BackoffPolicy; when retries exhaust,
//       the shard is quarantined — its departments drop out of the
//       report stream (a "shard_quarantined" ledger event says so) and
//       the remaining shards keep serving.
//
//   backpressure  Queues are capped in rows and bytes; under kBlock the
//       watcher slows to the slowest shard rather than growing without
//       bound. Queue depth, stalls and shed counts land in the
//       telemetry registry ("service.*").
//
// Threading: the caller's thread parses and commits; one worker thread
// per shard computes. Workers only touch their own shard state, and
// every main<->worker handoff goes through a mutex (the queue's, or
// the shard's task/result mutex), so the whole plane is
// ThreadSanitizer-clean by construction.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/faults.h"
#include "service/cycle_stats.h"
#include "service/journal.h"
#include "service/queue.h"
#include "service/retry.h"

namespace acobe {

struct ServiceConfig {
  std::string watch_dir;   // drop directory to scan for READY batches
  std::string out_dir;     // journal + alerts.jsonl + ledger.jsonl
  std::string roster_path; // ldap.csv defining users and departments

  // Window geometry, absolute-day based. Must satisfy
  // window_days > train_days > deviation omega.
  int window_days = 28;
  int train_days = 14;
  int omega = 7;

  // Detection knobs (mirror acobe-detect's streaming path).
  int epochs = 6;
  int votes = 2;
  int top = 10;            // investigation-list length in ledger events
  std::uint64_t seed = 1234;

  // Persistent-alert monitor (core/monitor.h).
  int top_positions = 3;
  int persistence_days = 2;
  int cooloff_days = 2;

  std::size_t min_dept_users = 3;  // departments below this are skipped

  // Admission plane.
  int shards = 2;
  std::size_t queue_rows = 1u << 16;
  std::size_t queue_bytes = 64u << 20;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;

  // Shard-cycle retry / quarantine.
  BackoffConfig backoff;

  IngestOptions ingest;  // CSV policy for batch files (roster is strict)
};

/// What one consumed batch did; returned so the tool can narrate.
struct CycleReport {
  std::uint64_t cycle = 0;
  std::string batch;
  std::int64_t window_start = 0;  // absolute day numbers
  std::int64_t window_end = -1;   // window_end < window_start: no events yet
  std::int64_t scored_from = 0;
  std::int64_t scored_to = -1;    // scored_to < scored_from: ingest-only
  std::size_t departments_scored = 0;
  std::size_t alerts = 0;          // closed alerts emitted this cycle
  std::size_t events_admitted = 0;
  std::size_t events_dropped = 0;  // users outside the roster's departments
};

// Point-in-time snapshots for the observability plane (/statusz).
// Built by the supervisor under a status mutex after Start() and after
// every committed cycle; readers (HTTP handlers, acobe-top) copy the
// whole struct, so a scrape never holds the detection path up.
struct ShardStatus {
  std::size_t queue_rows = 0;       // live occupancy
  std::size_t queue_bytes = 0;      // rows * sizeof(PackedEvent)
  std::size_t queue_peak_rows = 0;  // process-lifetime high-water
  std::size_t queue_shed = 0;       // events dropped by backpressure
  bool quarantined = false;
  std::uint32_t failures = 0;       // cumulative absorbed failures
};

struct DepartmentStatus {
  std::string name;
  std::size_t members = 0;
  std::size_t open_alerts = 0;  // persistent-alert monitor open count
};

struct ServiceStatus {
  bool ready = false;           // journal replayed, shards running
  std::uint64_t cycle = 0;
  std::uint64_t alerts_total = 0;
  std::int64_t window_start = 0;  // window_end < window_start: no events
  std::int64_t window_end = -1;
  std::int64_t last_scored_day = -1;
  std::string last_batch;       // "" before the first cycle
  bool recovered = false;       // this process resumed a journal
  std::vector<ShardStatus> shards;
  std::vector<DepartmentStatus> departments;
};

class ServiceSupervisor {
 public:
  explicit ServiceSupervisor(ServiceConfig config);
  ~ServiceSupervisor();
  ServiceSupervisor(const ServiceSupervisor&) = delete;
  ServiceSupervisor& operator=(const ServiceSupervisor&) = delete;

  /// Loads the roster, recovers the journal (truncating torn output
  /// tails, restoring monitors, rebuilding the event window from
  /// already-consumed batches) and spawns the shard workers. Throws
  /// JournalError when the on-disk state cannot be resumed
  /// bit-identically (config fingerprint mismatch, mutated batch,
  /// corrupt journal) and IngestError/std::runtime_error for input
  /// problems.
  void Start();

  /// READY batches not yet consumed, in processing (lexicographic)
  /// order.
  std::vector<std::string> PendingBatches() const;

  /// Consumes every pending batch as one cycle each; stops early when
  /// ShutdownRequested(). Returns one report per cycle run.
  std::vector<CycleReport> ProcessAvailableBatches();

  /// Appends a run_complete event (reason: "drained" | "signal").
  /// Deliberately not journaled: a later resume truncates it away, so
  /// the final ledger carries exactly one completion event.
  void Finish(const std::string& reason);

  std::uint64_t cycles() const { return state_.cycle; }
  std::uint64_t alerts_emitted() const { return state_.alerts_count; }
  int quarantined_shards() const;
  bool recovered() const { return recovered_; }
  std::size_t departments() const;

  // --- Observability surface (thread-safe; serves /readyz, /statusz,
  // --- /cycles and the queue gauges). ---

  /// True once Start() has finished: journal replayed (window rebuilt)
  /// and shard workers running. /readyz is 503 until then.
  bool Ready() const { return ready_.load(std::memory_order_acquire); }

  /// Copy of the latest published snapshot. Before Ready() this is a
  /// default struct with ready=false — callable from any thread at any
  /// time.
  ServiceStatus Status() const;

  /// Per-cycle time-series backing /cycles and the service.slo.*
  /// gauges. The ring is itself thread-safe.
  const service::CycleStatsRing& cycle_stats() const { return stats_; }

  /// Re-publishes the live service.queue.{rows,bytes,shed_total} gauges
  /// from the shard queues so a scrape sees current occupancy, not the
  /// last cycle's. No-op before Ready() or with metrics disabled.
  void RefreshQueueGauges() const;

 private:
  struct ShardRuntime;
  struct CycleTask;
  struct ShardOutcome;
  struct DeptCycleResult;

  void LoadRoster();
  void RecoverOrInit();
  void ReplayWindow(const std::vector<BatchRecord>& batches);
  CycleReport RunCycle(const std::string& batch_name);
  BatchRecord ParseBatch(const std::string& batch_name, std::size_t* admitted,
                         std::size_t* dropped);
  void Dispatch(const CycleTask& task);
  std::vector<ShardOutcome> Collect();
  void WorkerMain(std::size_t shard_idx);
  ShardOutcome RunShardCycle(ShardRuntime& shard, const CycleTask& task);
  void StopWorkers();
  std::string JournalPath() const;
  void PublishStatus();
  void ExportQueueGauges() const;  // unguarded; main thread only pre-ready

  ServiceConfig config_;
  std::uint64_t fingerprint_ = 0;
  bool recovered_ = false;
  bool started_ = false;

  // Roster-derived, immutable after Start().
  std::unique_ptr<class ServiceDirectory> dir_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;

  JournalState state_;
  std::vector<std::string> consumed_;  // batch names, consumption order
  std::int64_t first_day_seen_ = 0;    // valid when latest_day_ >= first
  std::int64_t latest_day_ = -1;
  // department name -> latest serialized MonitorState, canonical order.
  std::vector<std::pair<std::string, std::string>> monitor_blobs_;

  std::unique_ptr<AppendLog> alerts_log_;
  std::unique_ptr<AppendLog> ledger_log_;

  // Observability plane. dept_open_alerts_ is indexed by canonical
  // department order, refreshed from worker outcomes each cycle.
  std::atomic<bool> ready_{false};
  mutable std::mutex status_mutex_;
  ServiceStatus status_;
  std::vector<std::size_t> dept_open_alerts_;
  std::uint64_t shed_seen_ = 0;  // cumulative shed at last cycle end
  service::CycleStatsRing stats_;
};

}  // namespace acobe
