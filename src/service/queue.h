#pragma once

// Bounded admission queues for the resident service.
//
// One queue sits between the watcher thread (which parses a dropped
// batch's CSVs and packs events) and each shard worker (which drains
// into its sliding window). The queue is capped in both rows and
// bytes; what happens at the cap is the admission policy:
//
//   kBlock  the producer waits for space. Nothing is lost, ingestion
//           slows to the speed of the slowest shard — the default,
//           and the only policy under which the crash-restart
//           bit-identity contract holds, because admission never
//           depends on timing.
//   kShed   the producer drops the incoming event and counts it
//           ("service.events_shed"). Keeps the watcher responsive
//           under overload at the cost of data loss; results then
//           depend on scheduling, so shedding runs are explicitly
//           outside the bit-identity contract (DESIGN.md).
//
// Batch framing: the producer calls CloseBatch() after the last event
// of a drop-directory batch; consumers see every event of the batch,
// then one kBatchEnd. CloseAll() ends the stream for shutdown.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "logs/spool.h"

namespace acobe {

enum class AdmissionPolicy {
  kBlock,
  kShed,
};

const char* ToString(AdmissionPolicy policy);
/// Parses "block" / "shed"; throws std::invalid_argument otherwise.
AdmissionPolicy AdmissionPolicyFromString(const std::string& s);

class BoundedEventQueue {
 public:
  /// Caps are rows and bytes (rows * sizeof(PackedEvent)); the tighter
  /// one binds. Both are clamped to at least one event.
  BoundedEventQueue(std::size_t max_rows, std::size_t max_bytes,
                    AdmissionPolicy policy);

  /// Producer. Returns false when the event was shed (kShed at cap);
  /// under kBlock it waits for space and always returns true.
  bool Push(const PackedEvent& event);

  /// Producer: marks the end of the current batch.
  void CloseBatch();

  /// Producer: ends the stream; consumers drain and then see kClosed.
  void CloseAll();

  enum class PopResult {
    kEvents,    // appended >= 1 event to `out`
    kBatchEnd,  // the current batch is fully delivered
    kClosed,    // stream over: no further events will arrive
  };

  /// Consumer: blocks until events, a batch boundary, or close. Appends
  /// at most `max_events` to `out` (which is not cleared).
  PopResult Pop(std::vector<PackedEvent>& out, std::size_t max_events);

  std::size_t rows() const;
  /// rows() * sizeof(PackedEvent) — the byte occupancy the byte cap
  /// binds against.
  std::size_t bytes() const;
  /// Process-lifetime high-water mark of rows() (never resets).
  std::size_t peak_rows() const;
  std::size_t shed() const;
  std::size_t admitted() const;
  std::size_t max_rows() const { return max_rows_; }

 private:
  const std::size_t max_rows_;
  const AdmissionPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable space_;  // producer waits (kBlock)
  std::condition_variable data_;   // consumer waits
  std::deque<PackedEvent> events_;
  // Batch boundaries as absolute admitted-event counts: a boundary at
  // N means the batch ends after the N-th admitted event is consumed.
  std::deque<std::size_t> boundaries_;
  std::size_t pushed_ = 0;   // admitted events, ever
  std::size_t popped_ = 0;   // consumed events, ever
  std::size_t shed_ = 0;
  std::size_t peak_rows_ = 0;
  bool closed_ = false;
};

}  // namespace acobe
