#include "service/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/faults.h"

namespace acobe {
namespace {

constexpr char kJournalMagic[4] = {'A', 'C', 'J', 'L'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::uint64_t kMaxPayload = 1u << 30;

void PutU32(std::string& buf, std::uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string& buf, std::int64_t v) {
  PutU64(buf, static_cast<std::uint64_t>(v));
}
void PutStr(std::string& buf, const std::string& s) {
  PutU64(buf, s.size());
  buf.append(s);
}

class Reader {
 public:
  explicit Reader(std::string payload) : payload_(std::move(payload)) {}

  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::string Str() {
    const std::uint64_t n = U64();
    if (n > payload_.size() - pos_) Fail();
    std::string s = payload_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  bool AtEnd() const { return pos_ == payload_.size(); }

 private:
  void Raw(void* dst, std::size_t n) {
    if (n > payload_.size() - pos_) Fail();
    std::memcpy(dst, payload_.data() + pos_, n);
    pos_ += n;
  }
  [[noreturn]] static void Fail() {
    throw JournalError("journal: truncated payload");
  }

  std::string payload_;
  std::size_t pos_ = 0;
};

}  // namespace

void SaveJournal(const std::string& path, const JournalState& state) {
  std::string payload;
  PutU64(payload, state.config_fingerprint);
  PutU64(payload, state.cycle);
  PutU64(payload, state.alerts_bytes);
  PutU64(payload, state.alerts_count);
  PutU64(payload, state.ledger_bytes);
  PutI64(payload, state.last_scored_day);
  PutU64(payload, state.batches.size());
  for (const BatchRecord& b : state.batches) {
    PutStr(payload, b.name);
    PutU32(payload, b.digest);
    PutI64(payload, b.day_lo);
    PutI64(payload, b.day_hi);
  }
  PutU64(payload, state.shards.size());
  for (const ShardRecord& s : state.shards) {
    PutU32(payload, s.quarantined ? 1 : 0);
    PutU32(payload, s.failures);
  }
  PutU64(payload, state.monitors.size());
  for (const auto& [dept, blob] : state.monitors) {
    PutStr(payload, dept);
    PutStr(payload, blob);
  }

  const std::uint32_t crc = Crc32(payload);
  WriteFileAtomic(path, [&](std::ostream& out) {
    out.write(kJournalMagic, sizeof(kJournalMagic));
    const std::uint32_t version = kJournalVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t size = payload.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  });
}

std::optional<JournalState> LoadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    throw JournalError("journal: cannot open " + path);
  }
  char magic[4] = {};
  std::uint32_t version = 0;
  std::uint64_t size = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in || std::memcmp(magic, kJournalMagic, sizeof(magic)) != 0) {
    throw JournalError("journal: bad magic in " + path);
  }
  if (version != kJournalVersion) {
    throw JournalError("journal: unsupported version " +
                       std::to_string(version));
  }
  if (size > kMaxPayload) {
    throw JournalError("journal: implausible payload size");
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in) throw JournalError("journal: truncated " + path);
  if (Crc32(payload) != crc) {
    throw JournalError("journal: CRC mismatch in " + path);
  }

  Reader r(std::move(payload));
  JournalState state;
  state.config_fingerprint = r.U64();
  state.cycle = r.U64();
  state.alerts_bytes = r.U64();
  state.alerts_count = r.U64();
  state.ledger_bytes = r.U64();
  state.last_scored_day = r.I64();
  const std::uint64_t n_batches = r.U64();
  if (n_batches > kMaxPayload / 16) {
    throw JournalError("journal: implausible batch count");
  }
  state.batches.resize(static_cast<std::size_t>(n_batches));
  for (BatchRecord& b : state.batches) {
    b.name = r.Str();
    b.digest = r.U32();
    b.day_lo = r.I64();
    b.day_hi = r.I64();
  }
  const std::uint64_t n_shards = r.U64();
  if (n_shards > kMaxPayload / 8) {
    throw JournalError("journal: implausible shard count");
  }
  state.shards.resize(static_cast<std::size_t>(n_shards));
  for (ShardRecord& s : state.shards) {
    s.quarantined = r.U32() != 0;
    s.failures = r.U32();
  }
  const std::uint64_t n_monitors = r.U64();
  if (n_monitors > kMaxPayload / 16) {
    throw JournalError("journal: implausible monitor count");
  }
  state.monitors.resize(static_cast<std::size_t>(n_monitors));
  for (auto& [dept, blob] : state.monitors) {
    dept = r.Str();
    blob = r.Str();
  }
  if (!r.AtEnd()) throw JournalError("journal: trailing bytes");
  return state;
}

AppendLog::AppendLog(const std::string& path, std::uint64_t committed_bytes)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("AppendLog: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    throw std::runtime_error("AppendLog: cannot stat " + path);
  }
  if (static_cast<std::uint64_t>(st.st_size) < committed_bytes) {
    ::close(fd_);
    throw JournalError("AppendLog: " + path + " is shorter (" +
                       std::to_string(st.st_size) +
                       " bytes) than the journal's durable prefix (" +
                       std::to_string(committed_bytes) + ")");
  }
  // Drop any torn tail from a crash mid-append, then resume appending
  // at the committed point.
  if (::ftruncate(fd_, static_cast<off_t>(committed_bytes)) != 0) {
    ::close(fd_);
    throw std::runtime_error("AppendLog: cannot truncate " + path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    throw std::runtime_error("AppendLog: cannot seek " + path);
  }
  bytes_ = committed_bytes;
}

AppendLog::~AppendLog() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendLog::Append(const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  const char* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("AppendLog: write failed on " + path_ + ": " +
                               std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  bytes_ += buf.size();
}

void AppendLog::Sync() {
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("AppendLog: fsync failed on " + path_ + ": " +
                             std::strerror(errno));
  }
}

}  // namespace acobe
