#pragma once

// Detection metrics over ordered investigation lists (Section V.C).
//
// The unit of evaluation is the ordered list of users the critic emits.
// Sweeping the investigation cut-off through the list yields confusion
// counts, the ROC curve (with its AUC) and the precision-recall curve.
// Per the paper, ties are broken pessimistically: when a false positive
// and a true positive share the same priority, the FP is listed first
// to illustrate the worst-case investigation order.

#include <cstdint>
#include <set>
#include <vector>

namespace acobe::eval {

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
};

struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
};

struct ConfusionCounts {
  int tp = 0, fp = 0, tn = 0, fn = 0;

  double TpRate() const { return tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0; }
  double FpRate() const { return fp + tn ? static_cast<double>(fp) / (fp + tn) : 0.0; }
  double Precision() const { return tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0; }
  double Recall() const { return TpRate(); }
  double F1() const {
    const double p = Precision(), r = Recall();
    return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

/// An investigation list entry: a user with the critic's priority
/// (smaller = investigate earlier).
struct RankedUser {
  std::uint32_t user = 0;
  double priority = 0.0;
  bool positive = false;  // ground truth
};

/// Sorts by priority with worst-case tie ordering (FPs before TPs).
void SortWorstCase(std::vector<RankedUser>& list);

/// Positive/negative flags in final investigation order.
std::vector<bool> PositiveFlags(const std::vector<RankedUser>& sorted);

/// Confusion counts when investigating the first `cutoff` users.
ConfusionCounts AtCutoff(const std::vector<bool>& flags, std::size_t cutoff);

/// Precision at an investigation budget of k slots: true positives in
/// the first min(k, list) entries divided by k itself ("if I budget k
/// investigations, what fraction pay off?"). A list shorter than k
/// leaves budget slots empty — they count against precision, so a
/// department with 3 flagged users can never report precision@10 above
/// 0.3. 0 for k == 0.
double PrecisionAtK(const std::vector<bool>& flags, std::size_t k);

/// Full ROC curve: one point per list prefix (plus the origin).
std::vector<RocPoint> RocCurve(const std::vector<bool>& flags);

/// Area under the ROC curve (trapezoidal over the prefix sweep).
double RocAuc(const std::vector<bool>& flags);

/// Precision-recall curve: one point per true positive encountered.
std::vector<PrPoint> PrCurve(const std::vector<bool>& flags);

/// Average precision (area under the PR curve, step interpolation).
double AveragePrecision(const std::vector<bool>& flags);

/// For each true positive (in list order), the number of false
/// positives listed before it — the paper's "k FPs before the i-th TP".
std::vector<int> FalsePositivesBeforeEachTp(const std::vector<bool>& flags);

}  // namespace acobe::eval
