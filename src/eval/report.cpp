#include "eval/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/telemetry.h"

namespace acobe::eval {

void WriteRocCsv(const std::vector<bool>& flags, std::ostream& out) {
  out << "fpr,tpr\n";
  for (const RocPoint& p : RocCurve(flags)) {
    out << p.fpr << ',' << p.tpr << '\n';
  }
}

void WritePrCsv(const std::vector<bool>& flags, std::ostream& out) {
  out << "recall,precision\n";
  for (const PrPoint& p : PrCurve(flags)) {
    out << p.recall << ',' << p.precision << '\n';
  }
}

void WriteRankingCsv(const std::vector<RankedUser>& ranked,
                     std::ostream& out) {
  out << "position,user,priority,positive\n";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    out << i + 1 << ',' << ranked[i].user << ',' << ranked[i].priority << ','
        << (ranked[i].positive ? 1 : 0) << '\n';
  }
}

ModelSummary Summarize(const std::string& name,
                       const std::vector<RankedUser>& ranked) {
  ModelSummary summary;
  summary.name = name;
  const auto flags = PositiveFlags(ranked);
  summary.auc = RocAuc(flags);
  summary.average_precision = AveragePrecision(flags);
  summary.fps_before_tp = FalsePositivesBeforeEachTp(flags);
  return summary;
}

void WriteComparisonTable(const std::vector<ModelSummary>& models,
                          std::ostream& out) {
  std::size_t name_width = 5;
  for (const ModelSummary& m : models) {
    name_width = std::max(name_width, m.name.size());
  }
  out << std::left << std::setw(static_cast<int>(name_width) + 2) << "model"
      << std::right << std::setw(10) << "AUC%" << std::setw(8) << "AP"
      << "  FPs-before-TPs\n";
  for (const ModelSummary& m : models) {
    out << std::left << std::setw(static_cast<int>(name_width) + 2) << m.name
        << std::right << std::fixed << std::setprecision(4) << std::setw(10)
        << 100.0 * m.auc << std::setprecision(3) << std::setw(8)
        << m.average_precision << "  ";
    for (std::size_t i = 0; i < m.fps_before_tp.size(); ++i) {
      if (i) out << ',';
      out << m.fps_before_tp[i];
    }
    out << '\n';
  }
  out.unsetf(std::ios::fixed);
}

void WriteCutoffSweepCsv(const std::vector<bool>& flags,
                         const std::vector<std::size_t>& cutoffs,
                         std::ostream& out) {
  out << "cutoff,tp,fp,fn,tn,precision,recall,f1\n";
  for (std::size_t cutoff : cutoffs) {
    const ConfusionCounts c = AtCutoff(flags, cutoff);
    out << cutoff << ',' << c.tp << ',' << c.fp << ',' << c.fn << ',' << c.tn
        << ',' << c.Precision() << ',' << c.Recall() << ',' << c.F1() << '\n';
  }
}

LedgerEvent MakeQualityEvent(const std::string& model,
                             std::vector<RankedUser> ranked,
                             std::span<const std::size_t> ks) {
  SortWorstCase(ranked);
  const std::vector<bool> flags = PositiveFlags(ranked);
  std::size_t positives = 0;
  for (bool f : flags) positives += f ? 1 : 0;

  LedgerEvent event("quality");
  event.Str("model", model)
      .Int("list_size", static_cast<std::int64_t>(flags.size()))
      .Int("positives", static_cast<std::int64_t>(positives))
      .Num("auc", RocAuc(flags))
      .Num("average_precision", AveragePrecision(flags));
  std::ostringstream p_at;
  p_at << '{';
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (i) p_at << ',';
    p_at << '"' << ks[i] << "\":";
    telemetry::JsonNumber(p_at, PrecisionAtK(flags, ks[i]));
  }
  p_at << '}';
  event.Raw("precision_at", p_at.str());
  return event;
}

}  // namespace acobe::eval
