#include "eval/metrics.h"

#include <algorithm>

namespace acobe::eval {

void SortWorstCase(std::vector<RankedUser>& list) {
  std::stable_sort(list.begin(), list.end(),
                   [](const RankedUser& a, const RankedUser& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     // Same priority: list false positives first.
                     return !a.positive && b.positive;
                   });
}

std::vector<bool> PositiveFlags(const std::vector<RankedUser>& sorted) {
  std::vector<bool> flags;
  flags.reserve(sorted.size());
  for (const RankedUser& r : sorted) flags.push_back(r.positive);
  return flags;
}

ConfusionCounts AtCutoff(const std::vector<bool>& flags, std::size_t cutoff) {
  ConfusionCounts c;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (i < cutoff) {
      flags[i] ? ++c.tp : ++c.fp;
    } else {
      flags[i] ? ++c.fn : ++c.tn;
    }
  }
  return c;
}

double PrecisionAtK(const std::vector<bool>& flags, std::size_t k) {
  if (k == 0) return 0.0;
  const std::size_t n = std::min(k, flags.size());
  std::size_t tp = 0;
  for (std::size_t i = 0; i < n; ++i) tp += flags[i] ? 1 : 0;
  // The denominator is k itself, not min(k, n): an investigation budget
  // of k slots that can only be filled with n < k candidates did not
  // suddenly get more precise — the empty slots count against it.
  return static_cast<double>(tp) / static_cast<double>(k);
}

std::vector<RocPoint> RocCurve(const std::vector<bool>& flags) {
  int total_pos = 0, total_neg = 0;
  for (bool f : flags) f ? ++total_pos : ++total_neg;
  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0});
  int tp = 0, fp = 0;
  for (bool f : flags) {
    f ? ++tp : ++fp;
    curve.push_back({total_neg ? static_cast<double>(fp) / total_neg : 0.0,
                     total_pos ? static_cast<double>(tp) / total_pos : 0.0});
  }
  return curve;
}

double RocAuc(const std::vector<bool>& flags) {
  const std::vector<RocPoint> curve = RocCurve(flags);
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    auc += (curve[i].fpr - curve[i - 1].fpr) *
           (curve[i].tpr + curve[i - 1].tpr) * 0.5;
  }
  return auc;
}

std::vector<PrPoint> PrCurve(const std::vector<bool>& flags) {
  int total_pos = 0;
  for (bool f : flags) total_pos += f ? 1 : 0;
  std::vector<PrPoint> curve;
  int tp = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (!flags[i]) continue;
    ++tp;
    curve.push_back(
        {total_pos ? static_cast<double>(tp) / total_pos : 0.0,
         static_cast<double>(tp) / static_cast<double>(i + 1)});
  }
  return curve;
}

double AveragePrecision(const std::vector<bool>& flags) {
  const std::vector<PrPoint> curve = PrCurve(flags);
  if (curve.empty()) return 0.0;
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

std::vector<int> FalsePositivesBeforeEachTp(const std::vector<bool>& flags) {
  std::vector<int> out;
  int fp = 0;
  for (bool f : flags) {
    if (f) {
      out.push_back(fp);
    } else {
      ++fp;
    }
  }
  return out;
}

}  // namespace acobe::eval
