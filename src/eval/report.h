#pragma once

// Report generation: export detection results as CSV (for plotting the
// paper's figures with external tools) and as fixed-width text tables.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/ledger.h"
#include "eval/metrics.h"

namespace acobe::eval {

/// Writes the ROC curve as CSV ("fpr,tpr" with a header).
void WriteRocCsv(const std::vector<bool>& flags, std::ostream& out);

/// Writes the PR curve as CSV ("recall,precision").
void WritePrCsv(const std::vector<bool>& flags, std::ostream& out);

/// Writes the ranked list as CSV ("position,user,priority,positive").
void WriteRankingCsv(const std::vector<RankedUser>& ranked,
                     std::ostream& out);

/// One row of a model-comparison table.
struct ModelSummary {
  std::string name;
  double auc = 0.0;
  double average_precision = 0.0;
  std::vector<int> fps_before_tp;
};

/// Builds a summary from a ranked list.
ModelSummary Summarize(const std::string& name,
                       const std::vector<RankedUser>& ranked);

/// Renders summaries as an aligned text table (the Figure 6 comparison).
void WriteComparisonTable(const std::vector<ModelSummary>& models,
                          std::ostream& out);

/// Confusion metrics at several cut-offs ("cutoff,tp,fp,fn,tn,
/// precision,recall,f1"), e.g. for budgeted-investigation planning.
void WriteCutoffSweepCsv(const std::vector<bool>& flags,
                         const std::vector<std::size_t>& cutoffs,
                         std::ostream& out);

/// Builds the run ledger's "quality" event from a ranked list with
/// ground truth: ROC AUC, average precision, and precision@k for each
/// requested cutoff (object key = the cutoff). `ranked` is re-sorted
/// worst-case internally; the caller's copy is untouched.
LedgerEvent MakeQualityEvent(const std::string& model,
                             std::vector<RankedUser> ranked,
                             std::span<const std::size_t> ks);

}  // namespace acobe::eval
