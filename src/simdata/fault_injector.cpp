#include "simdata/fault_injector.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace acobe::sim {
namespace {

enum class FaultKind { kByteFlip, kTruncateRow, kDuplicateRow };

// Replacement bytes for flips. Deliberately free of digits: the
// guaranteed flip lands in the timestamp field, and a digit-to-digit
// flip would yield a different but *valid* timestamp — silently moving
// an event in time (and potentially exploding the dataset's day span)
// instead of rejecting the row.
constexpr std::string_view kNastyBytes = "!?~|;#@$%^&*<>\"'\\ \x01\x7f";

void FlipBytes(std::string& row, Rng& rng, FaultReport& report) {
  // One guaranteed flip inside the leading (timestamp) field...
  const std::size_t first_comma = std::min(row.find(','), row.size());
  const std::size_t ts_len = std::max<std::size_t>(first_comma, 1);
  row[rng.NextBounded(ts_len)] =
      kNastyBytes[rng.NextBounded(kNastyBytes.size())];
  ++report.bytes_flipped;
  // ...plus up to two more anywhere in the row.
  const int extra = rng.NextInt(0, 2);
  for (int i = 0; i < extra; ++i) {
    row[rng.NextBounded(row.size())] =
        kNastyBytes[rng.NextBounded(kNastyBytes.size())];
    ++report.bytes_flipped;
  }
}

void TruncateRow(std::string& row, Rng& rng, FaultReport& report) {
  // Cut at or before the last separator so the row always loses at
  // least one field (a cut inside the final field could still parse).
  const std::size_t last_comma = row.rfind(',');
  const std::size_t limit = last_comma == std::string::npos ? 0 : last_comma;
  row.resize(rng.NextBounded(limit + 1));
  ++report.rows_truncated;
}

}  // namespace

FaultReport FaultInjector::Corrupt(std::string& csv, std::uint64_t key) const {
  FaultReport report;
  std::vector<FaultKind> kinds;
  if (config_.byte_flips) kinds.push_back(FaultKind::kByteFlip);
  if (config_.truncate_rows) kinds.push_back(FaultKind::kTruncateRow);
  if (config_.duplicate_rows) kinds.push_back(FaultKind::kDuplicateRow);

  const Rng base = Rng(config_.seed).Fork(key);
  std::string out;
  out.reserve(csv.size() + csv.size() / 16);

  std::size_t pos = 0;
  std::size_t row_index = 0;
  bool header = true;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    const bool had_newline = eol != std::string::npos;
    if (!had_newline) eol = csv.size();
    std::string row = csv.substr(pos, eol - pos);
    pos = had_newline ? eol + 1 : csv.size();

    if (header || row.empty() || kinds.empty()) {
      header = false;
      out += row;
      if (had_newline) out += '\n';
      continue;
    }

    ++report.rows_seen;
    // Every row gets its own forked stream, so whether row k is
    // corrupted is independent of the faults drawn for rows < k.
    Rng rng = base.Fork(row_index++);
    if (!rng.NextBernoulli(config_.rate)) {
      out += row;
      if (had_newline) out += '\n';
      continue;
    }

    ++report.rows_corrupted;
    switch (kinds[rng.NextBounded(kinds.size())]) {
      case FaultKind::kByteFlip: {
        std::string garbled = row;
        FlipBytes(garbled, rng, report);
        out += garbled;
        if (config_.redeliver) {
          out += '\n';
          out += row;
        }
        break;
      }
      case FaultKind::kTruncateRow: {
        std::string garbled = row;
        TruncateRow(garbled, rng, report);
        out += garbled;
        if (config_.redeliver) {
          out += '\n';
          out += row;
        }
        break;
      }
      case FaultKind::kDuplicateRow:
        ++report.rows_duplicated;
        out += row;
        out += '\n';
        out += row;
        break;
    }
    if (had_newline) out += '\n';
  }

  if (config_.truncate_file && out.size() > 1) {
    // A crashed writer: keep at least half, cut somewhere in the rest.
    Rng rng = base.Fork(0xF11E);  // distinct from any row stream key
    const std::size_t keep =
        out.size() / 2 + rng.NextBounded(out.size() - out.size() / 2);
    out.resize(std::max<std::size_t>(keep, 1));
    report.file_truncated = true;
  }

  csv = std::move(out);
  return report;
}

}  // namespace acobe::sim
