#include "simdata/cert_simulator.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace acobe::sim {
namespace {

HttpFileType UploadType(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kHttpUploadDoc: return HttpFileType::kDoc;
    case ActivityKind::kHttpUploadExe: return HttpFileType::kExe;
    case ActivityKind::kHttpUploadJpg: return HttpFileType::kJpg;
    case ActivityKind::kHttpUploadPdf: return HttpFileType::kPdf;
    case ActivityKind::kHttpUploadTxt: return HttpFileType::kTxt;
    case ActivityKind::kHttpUploadZip: return HttpFileType::kZip;
    default: return HttpFileType::kNone;
  }
}

}  // namespace

CertSimulator::CertSimulator(const CertSimConfig& config, LogStore& store)
    : config_(config),
      store_(store),
      calendar_(OrgCalendar::WithDefaultHolidays(config.start.year(),
                                                 config.end.year())),
      master_rng_(config.seed) {
  if (config_.end < config_.start) {
    throw std::invalid_argument("CertSimulator: end before start");
  }
  org_ = std::make_unique<OrgModel>(config_.org, store_);

  for (int i = 0; i < config_.shared_domain_count; ++i) {
    shared_domains_.push_back(
        store_.domains().Intern("domain-" + std::to_string(i) + ".com"));
  }
  for (int i = 0; i < config_.shared_file_count; ++i) {
    shared_files_.push_back(
        store_.files().Intern("share/doc-" + std::to_string(i)));
  }
  wikileaks_ = store_.domains().Intern("wikileaks.org");
  env_domain_ = store_.domains().Intern("new-internal-service.corp");
  for (int i = 0; i < 6; ++i) {
    job_domains_.push_back(
        store_.domains().Intern("jobs-site-" + std::to_string(i) + ".com"));
  }

  const auto base_rates = DefaultWorkRates();
  const std::int64_t total_days = DaysBetween(config_.start, config_.end) + 1;
  profiles_.reserve(org_->org_users().size());
  for (const OrgUser& user : org_->org_users()) {
    Rng user_rng = master_rng_.Fork(user.id * 2654435761u + 17);
    profiles_.push_back(SampleProfile(config_.profiles, base_rates,
                                      shared_domains_, shared_files_,
                                      user.own_pc, user_rng));
    profile_index_[user.id] = profiles_.size() - 1;

    // Personal crunch episodes: a deadline week every few months. Mild
    // (well under the deviation clamp) — busy, not malicious.
    std::vector<CrunchEpisode> episodes;
    const int count = static_cast<int>(total_days / 150);
    for (int e = 0; e < count; ++e) {
      CrunchEpisode episode;
      episode.start_day = user_rng.NextInt(
          0, std::max(1, static_cast<int>(total_days) - 12));
      episode.duration = user_rng.NextInt(4, 9);
      episode.factor = user_rng.NextUniform(1.2, 1.5);
      episodes.push_back(episode);
    }
    crunches_.push_back(std::move(episodes));
  }

  env_changes_ = config_.env_changes;
  if (env_changes_.empty() && config_.default_env_changes) {
    // Environmental changes recur: a new service rolls out roughly
    // every quarter and outages happen in between, so models get to
    // *learn* what an org-wide correlated burst looks like.
    Rng env_rng = master_rng_.Fork(0xE41);
    for (std::int64_t day = 60; day < total_days - 10; day += 95) {
      EnvChange svc;
      svc.kind = EnvChangeKind::kNewService;
      svc.start = config_.start.AddDays(day + env_rng.NextInt(-10, 10));
      svc.duration_days = env_rng.NextInt(3, 5);
      svc.intensity = env_rng.NextUniform(1.8, 3.0);
      env_changes_.push_back(svc);
    }
    for (std::int64_t day = 130; day < total_days - 6; day += 150) {
      EnvChange outage;
      outage.kind = EnvChangeKind::kOutage;
      outage.start = config_.start.AddDays(day + env_rng.NextInt(-8, 8));
      outage.duration_days = env_rng.NextInt(1, 3);
      outage.intensity = env_rng.NextUniform(2.0, 3.5);
      env_changes_.push_back(outage);
    }
  }
}

const UserProfile& CertSimulator::profile(UserId user) const {
  auto it = profile_index_.find(user);
  if (it == profile_index_.end()) {
    throw std::out_of_range("CertSimulator::profile: unknown user");
  }
  return profiles_[it->second];
}

const InsiderScenario& CertSimulator::InjectScenario(InsiderScenarioKind kind,
                                                     int department,
                                                     Date anomaly_start,
                                                     int span_days) {
  if (anomaly_start < config_.start ||
      config_.end < anomaly_start.AddDays(span_days)) {
    throw std::invalid_argument(
        "InjectScenario: anomaly span outside simulated range");
  }
  // Pick a victim matching the scenario's precondition, skipping users
  // already carrying a scenario.
  const OrgUser* victim = nullptr;
  for (const OrgUser& user : org_->org_users()) {
    if (user.department != department) continue;
    if (scenario_by_user_.contains(user.id)) continue;
    const UserProfile& p = profiles_[profile_index_.at(user.id)];
    const bool wants_device_user = kind == InsiderScenarioKind::kScenario2;
    if (p.uses_devices == wants_device_user) {
      victim = &user;
      break;
    }
  }
  if (victim == nullptr) {
    throw std::runtime_error("InjectScenario: no eligible user in department");
  }

  InsiderScenario scenario;
  scenario.kind = kind;
  scenario.user = victim->id;
  scenario.user_name = victim->name;
  scenario.department = department;
  scenario.anomaly_start = anomaly_start;
  scenario.anomaly_end = anomaly_start.AddDays(span_days - 1);
  scenario.leave_date = scenario.anomaly_end.AddDays(
      kind == InsiderScenarioKind::kScenario1 ? 3 : 1);

  scenario_by_user_[victim->id] = scenario;
  scenarios_.push_back(scenario);
  truth_.AddAbnormalUser(victim->id, anomaly_start, scenario.anomaly_end);
  return scenarios_.back();
}

void CertSimulator::Run(LogSink& sink) {
  const std::int64_t days = DaysBetween(config_.start, config_.end) + 1;
  for (std::int64_t di = 0; di < days; ++di) {
    const Date date = config_.start.AddDays(di);
    const double busy = calendar_.BusyFactor(date);
    const EnvChange* active_env = nullptr;
    for (const EnvChange& env : env_changes_) {
      if (env.start <= date && date < env.start.AddDays(env.duration_days)) {
        active_env = &env;
        break;
      }
    }
    for (const OrgUser& user : org_->org_users()) {
      auto sit = scenario_by_user_.find(user.id);
      if (sit != scenario_by_user_.end() && sit->second.leave_date < date) {
        continue;  // the insider has left the organization
      }
      Rng rng = master_rng_.Fork((static_cast<std::uint64_t>(user.id) << 20) ^
                                 static_cast<std::uint64_t>(date.DayNumber()));
      SimulateUserDay(user, date, busy, active_env, rng, sink);
      if (sit != scenario_by_user_.end()) {
        EmitScenarioExtras(sit->second, user, date, rng, sink);
      }
    }
  }
}

Timestamp CertSimulator::DrawTimestamp(const Date& date, int frame,
                                       Rng& rng) const {
  if (frame == 0) {
    // Working hours, biased towards mid-day.
    double hour = rng.NextGaussian(12.0, 2.6);
    hour = std::clamp(hour, 6.0, 17.99);
    return MakeTimestamp(date, 0) +
           static_cast<Timestamp>(hour * 3600.0) + rng.NextInt(0, 59);
  }
  // Off hours: 18:00-06:00 (wrapping); keep the event on `date` by using
  // 18:00-24:00 and 00:00-06:00 halves of the same civil day.
  const bool evening = rng.NextBernoulli(0.55);
  const double hour = evening ? rng.NextUniform(18.0, 23.99)
                              : rng.NextUniform(0.0, 5.99);
  return MakeTimestamp(date, 0) + static_cast<Timestamp>(hour * 3600.0) +
         rng.NextInt(0, 59);
}

DomainId CertSimulator::PickDomain(const UserProfile& profile, Rng& rng,
                                   bool bulk_day) {
  // Bulk work (project migrations, album uploads) targets entities the
  // user already knows; fresh entities stay rare on those days.
  const double new_prob =
      bulk_day ? profile.new_entity_prob * 0.1 : profile.new_entity_prob;
  if (!profile.domains.empty() && !rng.NextBernoulli(new_prob)) {
    return profile.domains[rng.NextBounded(profile.domains.size())];
  }
  return store_.domains().Intern("fresh-domain-" +
                                 std::to_string(fresh_entity_counter_++) +
                                 ".net");
}

FileId CertSimulator::PickFile(const UserProfile& profile, Rng& rng,
                               bool bulk_day) {
  const double new_prob =
      bulk_day ? profile.new_entity_prob * 0.1 : profile.new_entity_prob;
  if (!profile.files.empty() && !rng.NextBernoulli(new_prob)) {
    return profile.files[rng.NextBounded(profile.files.size())];
  }
  return store_.files().Intern("fresh/file-" +
                               std::to_string(fresh_entity_counter_++));
}

void CertSimulator::SimulateUserDay(const OrgUser& user, const Date& date,
                                    double busy_factor,
                                    const EnvChange* active_env, Rng& rng,
                                    LogSink& sink) {
  const std::size_t pidx = profile_index_.at(user.id);
  const UserProfile& profile = profiles_[pidx];
  const bool workday = calendar_.IsWorkday(date);

  // Personal crunch episodes multiply human-initiated activity.
  double crunch = 1.0;
  const int day_index =
      static_cast<int>(DaysBetween(config_.start, date));
  for (const CrunchEpisode& episode : crunches_[pidx]) {
    if (day_index >= episode.start_day &&
        day_index < episode.start_day + episode.duration) {
      crunch = episode.factor;
      break;
    }
  }

  // Legitimate bulk day: large one-day batches of copies/writes/uploads
  // against habitual entities.
  const bool bulk_day =
      workday && rng.NextBernoulli(profile.bulk_day_prob);
  auto bulk_boost = [&](ActivityKind kind) {
    if (!bulk_day) return 1.0;
    switch (kind) {
      case ActivityKind::kFileCopyLocalToRemote:
      case ActivityKind::kFileCopyRemoteToLocal:
      case ActivityKind::kFileWriteLocal:
      case ActivityKind::kFileWriteRemote:
        return profile.bulk_factor;
      case ActivityKind::kHttpUploadDoc:
      case ActivityKind::kHttpUploadJpg:
      case ActivityKind::kHttpUploadPdf:
      case ActivityKind::kHttpUploadZip:
        return profile.bulk_factor * 0.7;
      default:
        return 1.0;
    }
  };

  for (std::size_t k = 0; k < kActivityKindCount; ++k) {
    const auto kind = static_cast<ActivityKind>(k);
    for (int frame = 0; frame < 2; ++frame) {
      double rate = profile.rates[k][frame];
      if (rate <= 0.0) continue;
      if (IsHumanInitiated(kind)) {
        rate *= (workday ? busy_factor : profile.weekend_human_factor) *
                crunch * bulk_boost(kind);
      } else if (!workday) {
        rate *= profile.weekend_machine_factor;
      }
      const int count = rng.NextPoisson(rate);
      if (count > 0) {
        EmitActivity(kind, user, date, frame, count, bulk_day, rng, sink);
      }
    }
  }

  // Org-wide environmental change: correlated HTTP burst, with
  // per-user response intensity (early adopters vs stragglers).
  if (active_env != nullptr) {
    const double burst =
        active_env->intensity * profile.env_response *
        std::max(1.0, profile.rates[Index(ActivityKind::kHttpVisit)][0] * 0.3);
    const int count = rng.NextPoisson(burst);
    for (int i = 0; i < count; ++i) {
      HttpEvent e;
      e.ts = DrawTimestamp(date, 0, rng);
      e.user = user.id;
      e.pc = user.own_pc;
      e.activity = HttpActivity::kVisit;
      // A new service is a domain nobody saw before its launch; an
      // outage causes retries against habitual domains.
      e.domain = active_env->kind == EnvChangeKind::kNewService
                     ? env_domain_
                     : (profile.domains.empty()
                            ? env_domain_
                            : profile.domains[rng.NextBounded(
                                  profile.domains.size())]);
      e.filetype = HttpFileType::kNone;
      sink.Consume(e);
    }
    // A new service also receives content: every user onboards by
    // uploading documents to the previously-unseen domain. This is the
    // benign *common* burst (visible in the upload features) that
    // single-user models wrongly flag and the group block absorbs.
    if (active_env->kind == EnvChangeKind::kNewService) {
      const int uploads = rng.NextPoisson(0.5 * active_env->intensity *
                                          profile.env_response);
      for (int i = 0; i < uploads; ++i) {
        HttpEvent e;
        e.ts = DrawTimestamp(date, 0, rng);
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = HttpActivity::kUpload;
        e.domain = env_domain_;
        e.filetype = rng.NextBernoulli(0.6) ? HttpFileType::kDoc
                                            : HttpFileType::kPdf;
        sink.Consume(e);
      }
    }
  }
}

void CertSimulator::EmitActivity(ActivityKind kind, const OrgUser& user,
                                 const Date& date, int frame, int count,
                                 bool bulk_day, Rng& rng, LogSink& sink) {
  const UserProfile& profile = profiles_[profile_index_.at(user.id)];
  for (int i = 0; i < count; ++i) {
    const Timestamp ts = DrawTimestamp(date, frame, rng);
    switch (kind) {
      case ActivityKind::kLogon: {
        LogonEvent e{ts, user.id, user.own_pc, LogonActivity::kLogon};
        sink.Consume(e);
        LogonEvent off{ts + rng.NextInt(1800, 8 * 3600), user.id, user.own_pc,
                       LogonActivity::kLogoff};
        sink.Consume(off);
        break;
      }
      case ActivityKind::kDeviceConnect: {
        // Occasionally a different host than the user's own PC; feature
        // f2 (new-host-connection) picks up first-time hosts.
        PcId pc = user.own_pc;
        if (rng.NextBernoulli(0.06)) {
          pc = store_.pcs().Intern("PC-shared-" +
                                   std::to_string(rng.NextInt(0, 9)));
        }
        DeviceEvent e{ts, user.id, pc, DeviceActivity::kConnect};
        sink.Consume(e);
        DeviceEvent off{ts + rng.NextInt(300, 2 * 3600), user.id, pc,
                        DeviceActivity::kDisconnect};
        sink.Consume(off);
        break;
      }
      case ActivityKind::kFileOpenLocal:
      case ActivityKind::kFileOpenRemote: {
        FileEvent e;
        e.ts = ts;
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = FileActivity::kOpen;
        e.file = PickFile(profile, rng, bulk_day);
        e.from = kind == ActivityKind::kFileOpenLocal ? FileLocation::kLocal
                                                      : FileLocation::kRemote;
        e.to = e.from;
        sink.Consume(e);
        break;
      }
      case ActivityKind::kFileWriteLocal:
      case ActivityKind::kFileWriteRemote: {
        FileEvent e;
        e.ts = ts;
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = FileActivity::kWrite;
        e.file = PickFile(profile, rng, bulk_day);
        e.to = kind == ActivityKind::kFileWriteLocal ? FileLocation::kLocal
                                                     : FileLocation::kRemote;
        e.from = e.to;
        sink.Consume(e);
        break;
      }
      case ActivityKind::kFileCopyLocalToRemote:
      case ActivityKind::kFileCopyRemoteToLocal: {
        FileEvent e;
        e.ts = ts;
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = FileActivity::kCopy;
        e.file = PickFile(profile, rng, bulk_day);
        if (kind == ActivityKind::kFileCopyLocalToRemote) {
          e.from = FileLocation::kLocal;
          e.to = FileLocation::kRemote;
        } else {
          e.from = FileLocation::kRemote;
          e.to = FileLocation::kLocal;
        }
        sink.Consume(e);
        break;
      }
      case ActivityKind::kFileDelete: {
        FileEvent e;
        e.ts = ts;
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = FileActivity::kDelete;
        e.file = PickFile(profile, rng, bulk_day);
        sink.Consume(e);
        break;
      }
      case ActivityKind::kHttpVisit:
      case ActivityKind::kHttpDownload: {
        HttpEvent e;
        e.ts = ts;
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = kind == ActivityKind::kHttpVisit ? HttpActivity::kVisit
                                                      : HttpActivity::kDownload;
        e.domain = PickDomain(profile, rng, bulk_day);
        e.filetype = kind == ActivityKind::kHttpDownload
                         ? (rng.NextBernoulli(0.2) ? HttpFileType::kExe
                                                   : HttpFileType::kPdf)
                         : HttpFileType::kNone;
        sink.Consume(e);
        break;
      }
      case ActivityKind::kHttpUploadDoc:
      case ActivityKind::kHttpUploadExe:
      case ActivityKind::kHttpUploadJpg:
      case ActivityKind::kHttpUploadPdf:
      case ActivityKind::kHttpUploadTxt:
      case ActivityKind::kHttpUploadZip: {
        HttpEvent e;
        e.ts = ts;
        e.user = user.id;
        e.pc = user.own_pc;
        e.activity = HttpActivity::kUpload;
        e.domain = PickDomain(profile, rng, bulk_day);
        e.filetype = UploadType(kind);
        sink.Consume(e);
        break;
      }
      case ActivityKind::kEmail: {
        EmailEvent e;
        e.ts = ts;
        e.user = user.id;
        e.recipient_count = static_cast<std::uint16_t>(rng.NextInt(1, 5));
        e.attachment_count = static_cast<std::uint16_t>(
            rng.NextBernoulli(0.3) ? rng.NextInt(1, 3) : 0);
        e.size_bytes = static_cast<std::uint32_t>(rng.NextInt(500, 200000));
        e.external = rng.NextBernoulli(0.25);
        sink.Consume(e);
        break;
      }
      case ActivityKind::kCount:
        break;
    }
  }
}

void CertSimulator::EmitScenarioExtras(const InsiderScenario& scenario,
                                       const OrgUser& user, const Date& date,
                                       Rng& rng, LogSink& sink) {
  if (date < scenario.anomaly_start || scenario.anomaly_end < date) return;
  const UserProfile& profile = profiles_[profile_index_.at(user.id)];

  if (scenario.kind == InsiderScenarioKind::kScenario1) {
    // Off-hour logons on a user who never worked off-hours.
    for (int i = rng.NextPoisson(1.5); i > 0; --i) {
      const Timestamp ts = DrawTimestamp(date, 1, rng);
      sink.Consume(LogonEvent{ts, user.id, user.own_pc, LogonActivity::kLogon});
      sink.Consume(LogonEvent{ts + rng.NextInt(1800, 4 * 3600), user.id,
                              user.own_pc, LogonActivity::kLogoff});
    }
    // Thumb-drive use on a user who never used one. The daily count is
    // unremarkable org-wide — only this user's own history exposes it.
    for (int i = rng.NextPoisson(2.0); i > 0; --i) {
      const Timestamp ts = DrawTimestamp(date, 1, rng);
      sink.Consume(
          DeviceEvent{ts, user.id, user.own_pc, DeviceActivity::kConnect});
      sink.Consume(DeviceEvent{ts + rng.NextInt(600, 7200), user.id,
                               user.own_pc, DeviceActivity::kDisconnect});
    }
    // Uploads to wikileaks.org during off hours, piece by piece.
    for (int i = rng.NextPoisson(2.0); i > 0; --i) {
      HttpEvent e;
      e.ts = DrawTimestamp(date, 1, rng);
      e.user = user.id;
      e.pc = user.own_pc;
      e.activity = HttpActivity::kUpload;
      e.domain = wikileaks_;
      e.filetype = rng.NextBernoulli(0.5) ? HttpFileType::kDoc
                                          : HttpFileType::kZip;
      sink.Consume(e);
    }
    // Staging data onto the drive: local->remote copies of files the
    // user never touched before.
    for (int i = rng.NextPoisson(3.0); i > 0; --i) {
      FileEvent e;
      e.ts = DrawTimestamp(date, 1, rng);
      e.user = user.id;
      e.pc = user.own_pc;
      e.activity = FileActivity::kCopy;
      e.file = store_.files().Intern(
          "secret/stash-" + std::to_string(fresh_entity_counter_++));
      e.from = FileLocation::kLocal;
      e.to = FileLocation::kRemote;
      sink.Consume(e);
    }
    return;
  }

  // Scenario 2: a long job-hunting phase followed by a short
  // thumb-drive exfiltration phase.
  const std::int64_t span =
      DaysBetween(scenario.anomaly_start, scenario.anomaly_end) + 1;
  const std::int64_t day_index = DaysBetween(scenario.anomaly_start, date);
  const bool exfil_phase = day_index >= span * 7 / 10;

  if (!exfil_phase) {
    // Surfing job websites and uploading resume.doc to several of them.
    for (int i = rng.NextPoisson(6.0); i > 0; --i) {
      HttpEvent e;
      e.ts = DrawTimestamp(date, 0, rng);
      e.user = user.id;
      e.pc = user.own_pc;
      e.activity = HttpActivity::kVisit;
      e.domain = job_domains_[rng.NextBounded(job_domains_.size())];
      e.filetype = HttpFileType::kNone;
      sink.Consume(e);
    }
    for (int i = rng.NextPoisson(2.5); i > 0; --i) {
      HttpEvent e;
      e.ts = DrawTimestamp(date, 0, rng);
      e.user = user.id;
      e.pc = user.own_pc;
      e.activity = HttpActivity::kUpload;
      e.domain = job_domains_[rng.NextBounded(job_domains_.size())];
      e.filetype = HttpFileType::kDoc;  // resume.doc
      sink.Consume(e);
    }
  } else {
    // Thumb drive at markedly higher rates than previous activity —
    // but still a plausible daily count for a heavy device user.
    const double base =
        std::max(0.3, profile.rates[Index(ActivityKind::kDeviceConnect)][0]);
    for (int i = rng.NextPoisson(base * 4.0 + 1.0); i > 0; --i) {
      const Timestamp ts = DrawTimestamp(date, 0, rng);
      sink.Consume(
          DeviceEvent{ts, user.id, user.own_pc, DeviceActivity::kConnect});
      sink.Consume(DeviceEvent{ts + rng.NextInt(600, 3600), user.id,
                               user.own_pc, DeviceActivity::kDisconnect});
    }
    // Data theft "at markedly higher rates than their previous
    // activity" (Section V.A.1): sustained bulk copies of files the
    // user never touched before.
    for (int i = rng.NextPoisson(9.0); i > 0; --i) {
      FileEvent e;
      e.ts = DrawTimestamp(date, rng.NextBernoulli(0.3) ? 1 : 0, rng);
      e.user = user.id;
      e.pc = user.own_pc;
      e.activity = FileActivity::kCopy;
      e.file = store_.files().Intern(
          "secret/exfil-" + std::to_string(fresh_entity_counter_++));
      e.from = FileLocation::kLocal;
      e.to = FileLocation::kRemote;
      sink.Consume(e);
    }
  }
}

}  // namespace acobe::sim
