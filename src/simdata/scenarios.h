#pragma once

// Insider-threat scenarios of the CERT dataset that the paper evaluates
// (Section V.A.1), plus ground-truth bookkeeping.
//
// Scenario 1: a user who never used removable drives nor worked
//   off-hours begins logging in off-hours, using a thumb drive, and
//   uploading data to wikileaks.org; leaves the organization shortly
//   thereafter.
// Scenario 2: a user surfs job websites, solicits employment from a
//   competitor (uploading resume.doc to several new domains), and
//   before leaving uses a thumb drive at markedly higher rates than
//   before to steal data.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/date.h"
#include "logs/records.h"

namespace acobe::sim {

enum class InsiderScenarioKind : int {
  kScenario1 = 1,
  kScenario2 = 2,
};

struct InsiderScenario {
  InsiderScenarioKind kind = InsiderScenarioKind::kScenario1;
  UserId user = kInvalidId;
  std::string user_name;
  int department = 0;
  /// Labeled anomaly span, inclusive.
  Date anomaly_start;
  Date anomaly_end;
  /// The user's last day in the organization (no activity afterwards).
  Date leave_date;
};

/// Ground truth produced by the simulator: which users are abnormal and
/// on which days.
class GroundTruth {
 public:
  void AddAbnormalUser(UserId user, const Date& start, const Date& end);

  bool IsAbnormalUser(UserId user) const {
    return spans_.contains(user);
  }
  bool IsLabeledDay(UserId user, const Date& d) const;

  std::vector<UserId> AbnormalUsers() const;

  /// Labeled span for an abnormal user.
  std::pair<Date, Date> SpanOf(UserId user) const;

 private:
  std::map<UserId, std::pair<Date, Date>> spans_;
};

}  // namespace acobe::sim
