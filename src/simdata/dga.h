#pragma once

// newGOZ-style domain generation algorithm (the DGA family found in
// Gameover/Peer-to-Peer Zeus). Real newGOZ derives pseudo-random
// domains from a date-based seed; we reproduce the observable
// properties the detector sees — long random-looking second-level
// labels over a small TLD set, hundreds of unique domains per day, all
// previously unseen — with a deterministic hash-based generator.

#include <cstdint>
#include <string>

namespace acobe::sim {

/// The `index`-th domain for a given seed (e.g. day number). Lengths are
/// 12..23 lowercase characters plus a TLD from {com, net, org, biz}.
std::string NewGozDomain(std::uint64_t seed, std::uint32_t index);

}  // namespace acobe::sim
