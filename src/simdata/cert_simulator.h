#pragma once

// CERT-style organizational log synthesizer.
//
// Generates device/file/HTTP/logon/email logs for an organization over
// a date range, reproducing the statistical structure ACOBE exploits in
// the real CERT dataset:
//   - per-user habitual rates per activity and day-half,
//   - weekday/weekend/holiday seasonality and busy Mondays/make-up days,
//   - org-wide environmental changes (new service, outage) that cause
//     group-correlated bursts,
//   - natural "new entity" noise (users occasionally touch new
//     domains/files/hosts),
//   - injected insider-threat scenarios 1 and 2 with ground truth.
//
// Events are emitted day by day (chronologically at day granularity),
// which is what the first-seen ("new-op before day d") feature
// semantics require.

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "logs/log_sink.h"
#include "logs/log_store.h"
#include "simdata/calendar.h"
#include "simdata/org_model.h"
#include "simdata/scenarios.h"
#include "simdata/user_profile.h"

namespace acobe::sim {

struct CertSimConfig {
  OrgConfig org;
  Date start{2010, 1, 2};
  Date end{2011, 5, 31};
  ProfileSamplerConfig profiles;
  /// Org-wide environmental changes; empty means "two defaults placed at
  /// 40% and 75% of the simulated range".
  std::vector<EnvChange> env_changes;
  bool default_env_changes = true;
  std::uint64_t seed = 7;
  int shared_domain_count = 200;
  int shared_file_count = 400;
};

class CertSimulator {
 public:
  /// Builds the organization and profiles; interned entities live in
  /// `store`'s tables (the store need not be the Run sink).
  CertSimulator(const CertSimConfig& config, LogStore& store);

  /// Plants an insider scenario in `department`, with the labeled
  /// anomaly span starting at `anomaly_start` and lasting `span_days`.
  /// Scenario 1 picks a user who never uses devices; scenario 2 picks a
  /// habitual (low-rate) device user. Must be called before Run.
  const InsiderScenario& InjectScenario(InsiderScenarioKind kind,
                                        int department, Date anomaly_start,
                                        int span_days);

  /// Generates all events into `sink`, day by day.
  void Run(LogSink& sink);

  const OrgModel& org() const { return *org_; }
  /// The resolved environmental-change schedule (config-supplied or the
  /// defaults sampled from the seed). Sharded generation probes this
  /// once from a minimal simulator and passes it to every shard via
  /// CertSimConfig::env_changes, so org-wide bursts stay org-wide.
  const std::vector<EnvChange>& env_changes() const { return env_changes_; }
  const GroundTruth& truth() const { return truth_; }
  const OrgCalendar& calendar() const { return calendar_; }
  const std::vector<InsiderScenario>& scenarios() const { return scenarios_; }
  const UserProfile& profile(UserId user) const;

 private:
  void SimulateUserDay(const OrgUser& user, const Date& date,
                       double busy_factor, const EnvChange* active_env,
                       Rng& rng, LogSink& sink);
  void EmitActivity(ActivityKind kind, const OrgUser& user, const Date& date,
                    int frame, int count, bool bulk_day, Rng& rng,
                    LogSink& sink);
  void EmitScenarioExtras(const InsiderScenario& scenario, const OrgUser& user,
                          const Date& date, Rng& rng, LogSink& sink);

  Timestamp DrawTimestamp(const Date& date, int frame, Rng& rng) const;
  DomainId PickDomain(const UserProfile& profile, Rng& rng,
                      bool bulk_day = false);
  FileId PickFile(const UserProfile& profile, Rng& rng,
                  bool bulk_day = false);

  /// A personal busy episode ("crunch week": new project, deadline) —
  /// normal behavior that deviates from the user's own habit. These
  /// exist so that self-deviation alone is NOT proof of compromise,
  /// which is exactly the false-positive pressure the paper discusses.
  struct CrunchEpisode {
    int start_day = 0;
    int duration = 5;
    double factor = 1.8;
  };

  CertSimConfig config_;
  LogStore& store_;
  std::unique_ptr<OrgModel> org_;
  OrgCalendar calendar_;
  std::vector<UserProfile> profiles_;  // indexed by position in org users
  std::vector<std::vector<CrunchEpisode>> crunches_;  // same indexing
  std::map<UserId, std::size_t> profile_index_;
  std::vector<DomainId> shared_domains_;
  std::vector<FileId> shared_files_;
  std::vector<EnvChange> env_changes_;
  std::map<UserId, InsiderScenario> scenario_by_user_;
  std::vector<InsiderScenario> scenarios_;
  GroundTruth truth_;
  Rng master_rng_;
  // Scenario-2 job-site domains, shared by all planted scenario-2 users.
  std::vector<DomainId> job_domains_;
  DomainId wikileaks_ = kInvalidId;
  DomainId env_domain_ = kInvalidId;
  std::uint32_t fresh_entity_counter_ = 0;
};

}  // namespace acobe::sim
