#pragma once

// Organizational calendar: weekends, fixed holidays, busy days (Mondays
// and make-up days after holidays, which the paper singles out as the
// classic false-positive trigger for single-day models), and org-wide
// environmental changes (new service / service outage).

#include <vector>

#include "common/date.h"

namespace acobe::sim {

enum class EnvChangeKind {
  kNewService,  // correlated unrecognized traffic for everyone
  kOutage,      // correlated retry traffic for everyone
};

struct EnvChange {
  EnvChangeKind kind = EnvChangeKind::kNewService;
  Date start;
  int duration_days = 3;
  /// Strength of the org-wide burst, as a multiple of a user's normal
  /// HTTP activity.
  double intensity = 2.0;
};

class OrgCalendar {
 public:
  OrgCalendar() = default;
  explicit OrgCalendar(std::vector<Date> holidays)
      : holidays_(std::move(holidays)) {}

  /// US-style fixed holidays for every year in [first_year, last_year].
  static OrgCalendar WithDefaultHolidays(int first_year, int last_year);

  bool IsHoliday(const Date& d) const;
  bool IsWorkday(const Date& d) const {
    return !d.IsWeekend() && !IsHoliday(d);
  }

  /// Human-activity multiplier for the day: 1.0 normally, elevated on
  /// Mondays (1.4) and on make-up days right after a holiday (1.7).
  double BusyFactor(const Date& d) const;

 private:
  std::vector<Date> holidays_;
};

}  // namespace acobe::sim
