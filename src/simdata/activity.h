#pragma once

// Activity kinds the CERT-style simulator draws per user per day per
// time-frame. Each kind maps to one concrete record shape in src/logs.

#include <array>
#include <cstdint>

namespace acobe::sim {

enum class ActivityKind : std::uint8_t {
  kLogon,
  kDeviceConnect,
  kFileOpenLocal,
  kFileOpenRemote,
  kFileWriteLocal,
  kFileWriteRemote,
  kFileCopyLocalToRemote,
  kFileCopyRemoteToLocal,
  kFileDelete,
  kHttpVisit,
  kHttpDownload,
  kHttpUploadDoc,
  kHttpUploadExe,
  kHttpUploadJpg,
  kHttpUploadPdf,
  kHttpUploadTxt,
  kHttpUploadZip,
  kEmail,
  kCount,
};

constexpr std::size_t kActivityKindCount =
    static_cast<std::size_t>(ActivityKind::kCount);

constexpr std::size_t Index(ActivityKind k) {
  return static_cast<std::size_t>(k);
}

const char* ToString(ActivityKind k);

/// True for activities dominated by humans (bursty on busy days, quiet
/// on weekends); false for computer-initiated background activity
/// (backups, retries), which dominates off hours.
bool IsHumanInitiated(ActivityKind k);

/// Department-level mean daily event counts during working hours for an
/// average user; the simulator scales these per user/frame/day.
std::array<double, kActivityKindCount> DefaultWorkRates();

}  // namespace acobe::sim
