#include "simdata/user_profile.h"

#include <algorithm>
#include <cmath>

namespace acobe::sim {
namespace {

double LogNormalFactor(Rng& rng, double sigma) {
  return std::exp(rng.NextGaussian(0.0, sigma));
}

template <typename Id>
std::vector<Id> SamplePool(std::span<const Id> shared, std::size_t min_n,
                           std::size_t max_n, Rng& rng) {
  std::vector<Id> pool;
  if (shared.empty() || max_n == 0) return pool;
  const std::size_t n =
      min_n + rng.NextBounded(std::max<std::size_t>(1, max_n - min_n + 1));
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.push_back(shared[rng.NextBounded(shared.size())]);
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  return pool;
}

}  // namespace

UserProfile SampleProfile(const ProfileSamplerConfig& config,
                          const std::array<double, kActivityKindCount>&
                              department_work_rates,
                          std::span<const DomainId> shared_domains,
                          std::span<const FileId> shared_files, PcId own_pc,
                          Rng& user_rng) {
  UserProfile profile;
  const double user_factor = LogNormalFactor(user_rng, 0.35);
  profile.uses_devices =
      user_rng.NextBernoulli(config.device_user_fraction);

  for (std::size_t k = 0; k < kActivityKindCount; ++k) {
    const auto kind = static_cast<ActivityKind>(k);
    double work = department_work_rates[k] * user_factor *
                  LogNormalFactor(user_rng, 0.25) * config.rate_scale;
    if (kind == ActivityKind::kDeviceConnect && !profile.uses_devices) {
      work = 0.0;
    }
    // Off-hours: human activity drops sharply; computer-initiated
    // activity (backups, retries, updates) persists.
    const double off_share = IsHumanInitiated(kind)
                                 ? 0.08 * LogNormalFactor(user_rng, 0.3)
                                 : 0.6 * LogNormalFactor(user_rng, 0.2);
    profile.rates[k][0] = work;
    profile.rates[k][1] = work * off_share;
  }

  profile.domains = SamplePool(shared_domains, config.min_domains,
                               config.max_domains, user_rng);
  profile.files =
      SamplePool(shared_files, config.min_files, config.max_files, user_rng);
  profile.pcs = {own_pc};
  // Real users touch previously-unseen files and domains routinely
  // (new projects, links, shared docs) — enough that a single day's
  // new-op count is ambiguous; only *persistently* elevated new-op
  // activity is suspicious.
  profile.new_entity_prob = 0.03 + 0.06 * user_rng.NextDouble();
  profile.bulk_day_prob = 0.02 + 0.04 * user_rng.NextDouble();
  profile.bulk_factor = 5.0 + 7.0 * user_rng.NextDouble();
  profile.env_response = LogNormalFactor(user_rng, 0.5);
  profile.weekend_human_factor = 0.03 + 0.04 * user_rng.NextDouble();
  profile.weekend_machine_factor = 0.4 + 0.2 * user_rng.NextDouble();
  return profile;
}

}  // namespace acobe::sim
