#pragma once

// Organizational structure for the CERT-style dataset: departments
// (the paper's third-tier organizational unit, used as groups) and the
// users inside them, registered into a LogStore's entity tables + LDAP.

#include <string>
#include <vector>

#include "common/rng.h"
#include "logs/log_store.h"

namespace acobe::sim {

struct OrgConfig {
  int departments = 4;
  int users_per_department = 232;  // 4 x 232 = 928 + 1 below ~ paper's 929
  /// Extra users appended to the first department to hit odd totals.
  int extra_users = 1;
  std::uint64_t seed = 0xACBE;
  /// Global offsets for sharded generation: this model covers
  /// departments [first_department, first_department + departments)
  /// of a larger organization, numbering users from first_ordinal so
  /// names and PCs stay globally unique. `extra_users` applies to
  /// global department 0 only. Both 0 for a whole-org model.
  int first_department = 0;
  int first_ordinal = 0;
};

struct OrgUser {
  UserId id = kInvalidId;
  std::string name;       // CERT-style, e.g. "JPH1910"
  int department = 0;     // global department index
  PcId own_pc = kInvalidId;
};

class OrgModel {
 public:
  /// Builds the org, interning users/PCs and filling LDAP in `store`.
  OrgModel(const OrgConfig& config, LogStore& store);

  const std::vector<OrgUser>& org_users() const { return users_; }
  const std::vector<std::string>& department_names() const {
    return departments_;
  }

  /// Users belonging to global department index `dept`.
  std::vector<UserId> DepartmentMembers(int dept) const;

  const OrgUser& UserById(UserId id) const;

  int user_count() const { return static_cast<int>(users_.size()); }

 private:
  std::vector<OrgUser> users_;
  std::vector<std::string> departments_;
};

/// Generates a CERT-style user name: three uppercase letters + the
/// ordinal zero-padded to at least four digits, unique for the given
/// ordinal (the digits widen past 9999 instead of wrapping, so a
/// 100k-user org cannot mint colliding names).
std::string MakeUserName(Rng& rng, int ordinal);

}  // namespace acobe::sim
